"""Package metadata for the CXL-PIM serving simulator.

``numpy`` is a hard install requirement, not a dev extra: the vectorized
iteration core (``repro.core.iteration``, ``repro.serving.engine``) prices
decode batches and fast-forwards event windows through numpy arrays, so the
simulator does not import without it.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.6.0",
    description="CXL-PIM LLM serving simulator",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={
        "dev": ["pytest", "pytest-benchmark", "hypothesis"],
    },
)
