"""Setup shim for environments without the ``wheel`` package.

The project is fully described by ``pyproject.toml``; this file only enables
the legacy ``pip install -e . --no-use-pep517`` / ``python setup.py develop``
paths on machines where PEP 660 editable installs are unavailable.
"""

from setuptools import setup

setup()
