"""Fixed-size KV-cache block pool over one deployment's memory budget.

The pool is pure bookkeeping: it never touches the performance model, it
only answers "how many blocks does a context need" and "are that many
free".  Block identities are not tracked — the simulator prices capacity
and transfer volume, not physical placement — so allocation is a counter,
which keeps the serving engine's per-iteration work O(running requests).

Swap is block-granular: :meth:`swap_out` stages device blocks to host
memory (freeing them for other requests while ``swapped_blocks`` remembers
the host copies still owned by live allocations), :meth:`swap_in` brings
them back all-or-nothing, and :meth:`drop_swapped` discards a host copy
whose owner released (or migrated away).  The device-side invariant
``free_blocks + used_blocks == num_blocks`` holds through every operation;
host-staged blocks live outside the device pool.

**Shared-prefix chains** are the one place the pool does track identity: a
:class:`PrefixChain` pins ``blocks_for(tokens)`` device blocks under a hash
key (tenant system prompts, few-shot preambles) with a reference count of
the allocations currently reading them.  A chain's blocks sit inside
``used_blocks`` exactly once however many requests share them; an
unreferenced chain stays cached — and evictable coldest-first — until pool
pressure reclaims it (:meth:`prefix_evict`).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

__all__ = ["BlockPool", "PrefixChain"]


class PrefixChain:
    """One shared, hash-identified prefix resident in a :class:`BlockPool`.

    ``refcount`` counts the allocations currently attached (reading the
    chain's KV); it pins the chain — only a chain at refcount zero may be
    evicted, so a hot shared prefix naturally outlives every per-request
    eviction.  ``last_use_s`` is the engine-clock stamp of the most recent
    attach/detach and ``seq`` the registration order, together the
    deterministic coldest-first ranking key.
    """

    __slots__ = ("key", "tokens", "blocks", "refcount", "last_use_s", "seq")

    def __init__(self, key: Hashable, tokens: int, blocks: int,
                 last_use_s: float, seq: int) -> None:
        self.key = key
        self.tokens = tokens
        self.blocks = blocks
        self.refcount = 0
        self.last_use_s = last_use_s
        self.seq = seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PrefixChain(key={self.key!r}, tokens={self.tokens}, "
                f"blocks={self.blocks}, refcount={self.refcount})")


class BlockPool:
    """Carves a KV byte budget into fixed-size token blocks.

    Parameters
    ----------
    budget_bytes:
        KV memory left after the model weights (and any replica copies)
        are resident.
    bytes_per_token:
        Full-model KV-cache bytes appended per token
        (:meth:`~repro.models.memory.ModelMemoryProfile.kv_cache_bytes_per_token`).
    block_tokens:
        Tokens per block (vLLM's ``block_size``; 16 by default).
    occupancy:
        Mirrors ``CentConfig.kv_occupancy`` — the fraction of the
        worst-case footprint the reserve path books per in-flight query.
        The pool is sized to ``budget / occupancy`` so paged admission
        sees the *same effective KV capacity* the occupancy-discounted
        reservations assume (the knob emulates on-demand allocation that
        paged mode performs physically); 1.0 leaves the budget unchanged.
    """

    def __init__(
        self,
        budget_bytes: int,
        bytes_per_token: int,
        block_tokens: int = 16,
        occupancy: float = 1.0,
    ) -> None:
        if budget_bytes < 0:
            raise ValueError(f"budget must be non-negative, got {budget_bytes}")
        if bytes_per_token <= 0:
            raise ValueError(f"bytes per token must be positive, got {bytes_per_token}")
        if block_tokens <= 0:
            raise ValueError(f"block_tokens must be positive, got {block_tokens}")
        if not 0 < occupancy <= 1:
            raise ValueError(f"occupancy must be in (0, 1], got {occupancy!r}")
        self.bytes_per_token = bytes_per_token
        self.block_tokens = block_tokens
        self.block_bytes = block_tokens * bytes_per_token
        self.num_blocks = int(budget_bytes / occupancy) // self.block_bytes
        self.free_blocks = self.num_blocks
        #: Blocks staged in host memory that still belong to a live
        #: allocation (block-granular swap); not part of the device pool.
        self.swapped_blocks = 0
        #: Resident shared-prefix chains, keyed by prefix hash.
        self.prefix_chains: Dict[Hashable, PrefixChain] = {}
        self._prefix_seq = 0

    # ------------------------------------------------------------------ sizing

    def blocks_for(self, tokens: int) -> int:
        """Blocks needed to hold ``tokens`` of KV cache (rounded up)."""
        if tokens < 0:
            raise ValueError(f"token count must be non-negative, got {tokens}")
        return -(-tokens // self.block_tokens)

    @property
    def used_blocks(self) -> int:
        return self.num_blocks - self.free_blocks

    @property
    def capacity_tokens(self) -> int:
        """Largest total context the pool can hold at once."""
        return self.num_blocks * self.block_tokens

    @property
    def allocated_bytes(self) -> int:
        return self.used_blocks * self.block_bytes

    @property
    def utilization(self) -> float:
        if self.num_blocks == 0:
            return 0.0
        return self.used_blocks / self.num_blocks

    # ------------------------------------------------------------------ allocation

    def allocate(self, num_blocks: int) -> bool:
        """Take ``num_blocks`` from the free list; False if they don't fit."""
        if num_blocks < 0:
            raise ValueError(f"block count must be non-negative, got {num_blocks}")
        if num_blocks > self.free_blocks:
            return False
        self.free_blocks -= num_blocks
        return True

    def release(self, num_blocks: int) -> None:
        if num_blocks < 0:
            raise ValueError(f"block count must be non-negative, got {num_blocks}")
        if num_blocks > self.used_blocks:
            raise ValueError(
                f"cannot release {num_blocks} blocks; only {self.used_blocks} in use"
            )
        self.free_blocks += num_blocks

    # ------------------------------------------------------------------ swap

    def swap_out(self, num_blocks: int) -> None:
        """Stage ``num_blocks`` allocated blocks to host memory.

        The device blocks become free for other requests; the host copies
        stay accounted in ``swapped_blocks`` until swapped back in or
        dropped.
        """
        if num_blocks < 0:
            raise ValueError(f"block count must be non-negative, got {num_blocks}")
        if num_blocks > self.used_blocks:
            raise ValueError(
                f"cannot swap out {num_blocks} blocks; only {self.used_blocks} in use"
            )
        self.free_blocks += num_blocks
        self.swapped_blocks += num_blocks

    def swap_in(self, num_blocks: int) -> bool:
        """Bring ``num_blocks`` host-staged blocks back on device.

        All-or-nothing: False (side-effect free) when the device pool
        cannot hold every requested block, so a failed swap-in never leaves
        a partially-granted allocation behind.
        """
        if num_blocks < 0:
            raise ValueError(f"block count must be non-negative, got {num_blocks}")
        if num_blocks > self.swapped_blocks:
            raise ValueError(
                f"cannot swap in {num_blocks} blocks; only "
                f"{self.swapped_blocks} staged in host memory"
            )
        if not self.allocate(num_blocks):
            return False
        self.swapped_blocks -= num_blocks
        return True

    def drop_swapped(self, num_blocks: int) -> None:
        """Discard host copies whose owner released (or migrated away)."""
        if num_blocks < 0:
            raise ValueError(f"block count must be non-negative, got {num_blocks}")
        if num_blocks > self.swapped_blocks:
            raise ValueError(
                f"cannot drop {num_blocks} staged blocks; only "
                f"{self.swapped_blocks} staged in host memory"
            )
        self.swapped_blocks -= num_blocks

    # ------------------------------------------------------------------ prefix chains

    @property
    def prefix_blocks(self) -> int:
        """Device blocks currently pinned under shared-prefix chains."""
        return sum(chain.blocks for chain in self.prefix_chains.values())

    def prefix_get(self, key: Hashable) -> Optional[PrefixChain]:
        return self.prefix_chains.get(key)

    def prefix_register(self, key: Hashable, tokens: int,
                        now_s: float = 0.0) -> Optional[PrefixChain]:
        """Cache ``tokens`` of prefix KV under ``key`` at refcount zero.

        Takes ``blocks_for(tokens)`` device blocks for the shared copy;
        returns None (side-effect free) if the pool cannot hold them or a
        chain for ``key`` already exists.
        """
        if tokens <= 0:
            raise ValueError(f"prefix tokens must be positive, got {tokens}")
        if key in self.prefix_chains:
            return None
        blocks = self.blocks_for(tokens)
        if not self.allocate(blocks):
            return None
        chain = PrefixChain(key, tokens, blocks, now_s, self._prefix_seq)
        self._prefix_seq += 1
        self.prefix_chains[key] = chain
        return chain

    def prefix_adopt(self, key: Hashable, tokens: int, blocks: int,
                     now_s: float = 0.0) -> PrefixChain:
        """Install a chain over ``blocks`` already-allocated device blocks.

        The promote path: the blocks stay inside ``used_blocks`` (ownership
        transfers from the promoting request's private allocation), so no
        free-list traffic happens here.
        """
        if tokens <= 0:
            raise ValueError(f"prefix tokens must be positive, got {tokens}")
        if key in self.prefix_chains:
            raise ValueError(f"prefix chain {key!r} already registered")
        if blocks > self.used_blocks:
            raise ValueError(
                f"cannot adopt {blocks} blocks; only {self.used_blocks} in use"
            )
        chain = PrefixChain(key, tokens, blocks, now_s, self._prefix_seq)
        self._prefix_seq += 1
        self.prefix_chains[key] = chain
        return chain

    def prefix_attach(self, key: Hashable, now_s: float = 0.0) -> PrefixChain:
        """Pin the chain for ``key`` on behalf of one more reader."""
        chain = self.prefix_chains[key]
        chain.refcount += 1
        chain.last_use_s = now_s
        return chain

    def prefix_detach(self, key: Hashable, now_s: float = 0.0) -> PrefixChain:
        """Drop one reader; the chain stays cached at refcount zero."""
        chain = self.prefix_chains[key]
        if chain.refcount <= 0:
            raise ValueError(f"prefix chain {key!r} has no readers to detach")
        chain.refcount -= 1
        chain.last_use_s = now_s
        return chain

    def prefix_evict(self, key: Hashable) -> int:
        """Reclaim an unreferenced chain's blocks; returns the count freed."""
        chain = self.prefix_chains[key]
        if chain.refcount > 0:
            raise ValueError(
                f"prefix chain {key!r} still has {chain.refcount} readers"
            )
        del self.prefix_chains[key]
        self.release(chain.blocks)
        return chain.blocks

    def evictable_prefixes(self) -> List[PrefixChain]:
        """Unreferenced chains, coldest first (deterministic tie-break)."""
        idle = [c for c in self.prefix_chains.values() if c.refcount == 0]
        idle.sort(key=lambda c: (c.last_use_s, c.seq))
        return idle
