"""Fixed-size KV-cache block pool over one deployment's memory budget.

The pool is pure bookkeeping: it never touches the performance model, it
only answers "how many blocks does a context need" and "are that many
free".  Block identities are not tracked — the simulator prices capacity
and transfer volume, not physical placement — so allocation is a counter,
which keeps the serving engine's per-iteration work O(running requests).

Swap is block-granular: :meth:`swap_out` stages device blocks to host
memory (freeing them for other requests while ``swapped_blocks`` remembers
the host copies still owned by live allocations), :meth:`swap_in` brings
them back all-or-nothing, and :meth:`drop_swapped` discards a host copy
whose owner released (or migrated away).  The device-side invariant
``free_blocks + used_blocks == num_blocks`` holds through every operation;
host-staged blocks live outside the device pool.
"""

from __future__ import annotations

__all__ = ["BlockPool"]


class BlockPool:
    """Carves a KV byte budget into fixed-size token blocks.

    Parameters
    ----------
    budget_bytes:
        KV memory left after the model weights (and any replica copies)
        are resident.
    bytes_per_token:
        Full-model KV-cache bytes appended per token
        (:meth:`~repro.models.memory.ModelMemoryProfile.kv_cache_bytes_per_token`).
    block_tokens:
        Tokens per block (vLLM's ``block_size``; 16 by default).
    occupancy:
        Mirrors ``CentConfig.kv_occupancy`` — the fraction of the
        worst-case footprint the reserve path books per in-flight query.
        The pool is sized to ``budget / occupancy`` so paged admission
        sees the *same effective KV capacity* the occupancy-discounted
        reservations assume (the knob emulates on-demand allocation that
        paged mode performs physically); 1.0 leaves the budget unchanged.
    """

    def __init__(
        self,
        budget_bytes: int,
        bytes_per_token: int,
        block_tokens: int = 16,
        occupancy: float = 1.0,
    ) -> None:
        if budget_bytes < 0:
            raise ValueError(f"budget must be non-negative, got {budget_bytes}")
        if bytes_per_token <= 0:
            raise ValueError(f"bytes per token must be positive, got {bytes_per_token}")
        if block_tokens <= 0:
            raise ValueError(f"block_tokens must be positive, got {block_tokens}")
        if not 0 < occupancy <= 1:
            raise ValueError(f"occupancy must be in (0, 1], got {occupancy!r}")
        self.bytes_per_token = bytes_per_token
        self.block_tokens = block_tokens
        self.block_bytes = block_tokens * bytes_per_token
        self.num_blocks = int(budget_bytes / occupancy) // self.block_bytes
        self.free_blocks = self.num_blocks
        #: Blocks staged in host memory that still belong to a live
        #: allocation (block-granular swap); not part of the device pool.
        self.swapped_blocks = 0

    # ------------------------------------------------------------------ sizing

    def blocks_for(self, tokens: int) -> int:
        """Blocks needed to hold ``tokens`` of KV cache (rounded up)."""
        if tokens < 0:
            raise ValueError(f"token count must be non-negative, got {tokens}")
        return -(-tokens // self.block_tokens)

    @property
    def used_blocks(self) -> int:
        return self.num_blocks - self.free_blocks

    @property
    def capacity_tokens(self) -> int:
        """Largest total context the pool can hold at once."""
        return self.num_blocks * self.block_tokens

    @property
    def allocated_bytes(self) -> int:
        return self.used_blocks * self.block_bytes

    @property
    def utilization(self) -> float:
        if self.num_blocks == 0:
            return 0.0
        return self.used_blocks / self.num_blocks

    # ------------------------------------------------------------------ allocation

    def allocate(self, num_blocks: int) -> bool:
        """Take ``num_blocks`` from the free list; False if they don't fit."""
        if num_blocks < 0:
            raise ValueError(f"block count must be non-negative, got {num_blocks}")
        if num_blocks > self.free_blocks:
            return False
        self.free_blocks -= num_blocks
        return True

    def release(self, num_blocks: int) -> None:
        if num_blocks < 0:
            raise ValueError(f"block count must be non-negative, got {num_blocks}")
        if num_blocks > self.used_blocks:
            raise ValueError(
                f"cannot release {num_blocks} blocks; only {self.used_blocks} in use"
            )
        self.free_blocks += num_blocks

    # ------------------------------------------------------------------ swap

    def swap_out(self, num_blocks: int) -> None:
        """Stage ``num_blocks`` allocated blocks to host memory.

        The device blocks become free for other requests; the host copies
        stay accounted in ``swapped_blocks`` until swapped back in or
        dropped.
        """
        if num_blocks < 0:
            raise ValueError(f"block count must be non-negative, got {num_blocks}")
        if num_blocks > self.used_blocks:
            raise ValueError(
                f"cannot swap out {num_blocks} blocks; only {self.used_blocks} in use"
            )
        self.free_blocks += num_blocks
        self.swapped_blocks += num_blocks

    def swap_in(self, num_blocks: int) -> bool:
        """Bring ``num_blocks`` host-staged blocks back on device.

        All-or-nothing: False (side-effect free) when the device pool
        cannot hold every requested block, so a failed swap-in never leaves
        a partially-granted allocation behind.
        """
        if num_blocks < 0:
            raise ValueError(f"block count must be non-negative, got {num_blocks}")
        if num_blocks > self.swapped_blocks:
            raise ValueError(
                f"cannot swap in {num_blocks} blocks; only "
                f"{self.swapped_blocks} staged in host memory"
            )
        if not self.allocate(num_blocks):
            return False
        self.swapped_blocks -= num_blocks
        return True

    def drop_swapped(self, num_blocks: int) -> None:
        """Discard host copies whose owner released (or migrated away)."""
        if num_blocks < 0:
            raise ValueError(f"block count must be non-negative, got {num_blocks}")
        if num_blocks > self.swapped_blocks:
            raise ValueError(
                f"cannot drop {num_blocks} staged blocks; only "
                f"{self.swapped_blocks} staged in host memory"
            )
        self.swapped_blocks -= num_blocks
