"""Victim selection and restore pricing for paged-KV preemption.

When the block pool runs dry the serving engine evicts one running request
at a time until the starved request's growth fits.  The policy here decides
*who* (deterministically — same trace, same victim sequence), and the
restore mode decides *what the eviction costs*:

* ``swap`` — the victim's KV bytes stream out to host memory over the CXL
  fabric and stream back on resume; :func:`kv_swap_time_s` prices both
  directions from :class:`~repro.cxl.link.CxlLinkParameters` (per-device x4
  links in parallel across pipeline stages, bounded by the host x16 link);
* ``recompute`` — the KV is dropped and the victim's context is
  re-prefilled on resume through the engine's normal chunked-prefill path,
  so the cost comes from :class:`~repro.core.iteration.IterationCostModel`
  and competes with genuine prefill work for the chunk budget.

Victim candidates are duck-typed (anything with ``request_id``,
``arrival_time_s``, ``last_token_time_s``, ``admitted_time_s`` and a
``query`` carrying ``priority``) so this module stays import-cycle-free of
``repro.serving``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cxl.link import CxlLinkParameters

__all__ = [
    "PREEMPTION_POLICIES",
    "RESTORE_MODES",
    "PreemptionPolicy",
    "kv_swap_time_s",
]

#: Supported victim-selection policies.
PREEMPTION_POLICIES = ("lru", "priority", "sla_deadline")

#: Supported restore paths for a preempted request's KV cache.
RESTORE_MODES = ("swap", "recompute")


def kv_swap_time_s(
    num_bytes: int,
    link: CxlLinkParameters,
    pp_stages: int = 1,
) -> float:
    """One-direction KV swap time over the CXL fabric, in seconds.

    A request's KV cache is sharded across its pipeline stages' devices, so
    up to ``pp_stages`` x4 device links stream concurrently; the shared x16
    host link bounds the aggregate.  One switch traversal of latency fronts
    the transfer (the per-block transactions behind it are pipelined).
    """
    if num_bytes < 0:
        raise ValueError(f"transfer size must be non-negative, got {num_bytes}")
    if num_bytes == 0:
        return 0.0
    shards = max(int(pp_stages), 1)
    device_ns = (num_bytes / shards) / link.device_bandwidth_gbps
    host_ns = num_bytes / link.host_bandwidth_gbps
    return (link.base_latency_ns + max(device_ns, host_ns)) * 1e-9


class PreemptionPolicy:
    """Deterministic victim selection plus the configured restore path.

    Policies (ties always break toward the later arrival, then the larger
    ``request_id``, so a given trace yields one victim sequence):

    * ``lru`` — evict the request that made progress least recently (its
      last emitted token, else its admission, else its arrival); the
      stalest request has the most to redo anyway.
    * ``priority`` — evict the lowest ``Query.priority`` first, LRU within
      a priority level.
    * ``sla_deadline`` — evict the request with the most slack to its SLA
      deadline (``arrival + sla_latency_s``); without an SLA the latest
      arrival has the most implicit slack.

    ``partial_blocks`` enables **block-granular swap**: instead of evicting
    a victim's whole allocation, only its ``partial_blocks`` coldest prefix
    blocks are staged to host memory — the victim stays partially resident,
    and its restore stall shrinks to the staged blocks' transfer instead of
    the whole context's.  Swap-only: a recompute restore rebuilds the
    entire KV by re-prefilling, so a partial drop saves it nothing.
    """

    def __init__(
        self,
        policy: str = "lru",
        restore: str = "swap",
        sla_latency_s: Optional[float] = None,
        partial_blocks: Optional[int] = None,
    ) -> None:
        if policy not in PREEMPTION_POLICIES:
            raise ValueError(
                f"unknown preemption policy {policy!r}; "
                f"choose from {PREEMPTION_POLICIES}"
            )
        if restore not in RESTORE_MODES:
            raise ValueError(
                f"unknown restore mode {restore!r}; choose from {RESTORE_MODES}"
            )
        if sla_latency_s is not None and sla_latency_s <= 0:
            raise ValueError("the SLA latency bound must be positive")
        if partial_blocks is not None:
            if partial_blocks <= 0:
                raise ValueError(
                    f"partial_blocks must be positive when set, got {partial_blocks}"
                )
            if restore != "swap":
                raise ValueError(
                    "block-granular (partial) eviction requires restore='swap': "
                    "a recompute restore re-prefills the whole context anyway"
                )
        self.policy = policy
        self.restore = restore
        self.sla_latency_s = sla_latency_s
        self.partial_blocks = partial_blocks

    # ------------------------------------------------------------------ keys

    @staticmethod
    def _last_use_s(request) -> float:
        for stamp in (request.last_token_time_s, request.admitted_time_s):
            if stamp is not None:
                return stamp
        return request.arrival_time_s

    def _deadline_s(self, request) -> float:
        if self.sla_latency_s is None:
            return request.arrival_time_s
        return request.arrival_time_s + self.sla_latency_s

    # ------------------------------------------------------------------ selection

    def select_victim(self, candidates: Sequence, clock: float = 0.0):
        """The request to evict, or ``None`` when no candidate exists."""
        pool = list(candidates)
        if not pool:
            return None
        if self.policy == "lru":
            def key(r):
                return (self._last_use_s(r), -r.arrival_time_s, -r.request_id)
        elif self.policy == "priority":
            def key(r):
                return (getattr(r.query, "priority", 1.0), self._last_use_s(r),
                        -r.arrival_time_s, -r.request_id)
        else:  # sla_deadline: most slack to its deadline goes first
            def key(r):
                return (clock - self._deadline_s(r), -r.request_id)
        return min(pool, key=key)

    def select_eviction(self, candidates: Sequence, chains: Sequence,
                        clock: float = 0.0):
        """Rank requests and idle shared-prefix chains jointly.

        ``chains`` is the pool's unreferenced (refcount-zero)
        :class:`~repro.kvstore.block_pool.PrefixChain` candidates — a chain
        some live request still reads is pinned and never offered, which is
        what makes a hot shared prefix naturally the last thing evicted.
        Returns ``("chain", chain)``, ``("request", victim)`` or
        ``(None, None)``; eviction bites the coldest blocks pool-wide, so a
        cached-but-idle prefix colder than every running request goes
        before any request is preempted.  With no chains resident this
        degrades to exactly :meth:`select_victim`.
        """
        victim = self.select_victim(candidates, clock)
        coldest = None
        for chain in chains:
            if coldest is None or (chain.last_use_s, chain.seq) < \
                    (coldest.last_use_s, coldest.seq):
                coldest = chain
        if coldest is None:
            return ("request", victim) if victim is not None else (None, None)
        if victim is None or coldest.last_use_s <= self._last_use_s(victim):
            return ("chain", coldest)
        return ("request", victim)
