"""Per-request KV allocations over a shared :class:`BlockPool`.

The allocator owns the owner→blocks map the serving engine consults every
iteration: a request allocates blocks for its prompt at admission, grows by
one token per decode step (a new block only when it crosses a block
boundary), and releases everything on completion or preemption.

Swap is block-granular: :meth:`evict_blocks` stages an owner's coldest
prefix blocks to host memory (the owner stays *partially resident* — its
remaining blocks keep their device residency), and :meth:`readmit` brings
the staged blocks back all-or-nothing, so a failed readmission under pool
pressure never strands a half-granted allocation.

**Shared prefixes.**  :meth:`allocate` takes an optional prefix key: on a
cache hit the owner *attaches* to the resident
:class:`~repro.kvstore.block_pool.PrefixChain` instead of allocating the
prefix's blocks — it books only the suffix's private blocks, plus one
copy-on-write duplicate of the chain's partial tail block when the prefix
ends mid-block (the attacher appends divergent tokens there).  A miss
prefills privately and then *promotes* via :meth:`register_prefix`, which
transfers the owner's full prefix blocks into a new chain (at most one
extra block for the tail snapshot) so the next request with the same hash
attaches.  :meth:`release` with ``keep_prefix=True`` lets a preempted
owner keep its chain reference — a parked victim pins its prefix, so a hot
shared prefix is never reclaimed underneath a restore.  Unreferenced
chains stay cached until :meth:`evict_prefix` (the engine's joint eviction
ranking) or the internal coldest-first reclaim that backs admission and
readmission under pool pressure.  The per-owner invariant
``holds_blocks(owner) == pool.blocks_for(holds_tokens(owner))`` holds with
or without sharing — attached owners count their chain's full shared
blocks — which is what keeps the vectorized fast-forward's closed-form
block demand exact over shared allocations.

With a :class:`~repro.telemetry.ScopedRecorder` attached the allocator
emits ``kv.*`` events for its *bounded* operations — allocation grants,
releases, block-granular evictions and readmissions, plus the prefix
lifecycle (``kv.prefix_hit``, ``kv.cow``, ``kv.prefix_register``,
``kv.prefix_evict``) — stamped with the engine clock the owner mirrors
into ``recorder.now_s``.  Per-step growth (:meth:`grow` /
:meth:`grow_many`) is deliberately silent: those run once per decode token
(and once per fast-forwarded window on the vectorized path), so recording
them would both flood the trace and break the scalar/vectorized
stream-equivalence contract.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Hashable, List, Optional

from repro.kvstore.block_pool import BlockPool, PrefixChain

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.telemetry.recorder import ScopedRecorder

__all__ = ["KvAllocator"]


class KvAllocator:
    """Tracks each owner's token count and block count against one pool."""

    def __init__(self, pool: BlockPool, *,
                 recorder: Optional["ScopedRecorder"] = None) -> None:
        self.pool = pool
        #: Optional telemetry sink (``repro.telemetry.ScopedRecorder``);
        #: ``None`` keeps every operation emission-free.
        self.recorder = recorder
        self._tokens: Dict[Hashable, int] = {}
        #: Private (unshared) device-resident blocks per owner.
        self._blocks: Dict[Hashable, int] = {}
        #: Blocks each owner currently has staged in host memory.
        self._swapped: Dict[Hashable, int] = {}
        #: Chain key each owner is attached to (holds one chain reference);
        #: survives a ``keep_prefix`` release so parked victims pin their
        #: prefix across preemption.
        self._shared: Dict[Hashable, Hashable] = {}

    # ------------------------------------------------------------------ queries

    def holds_tokens(self, owner: Hashable) -> int:
        return self._tokens.get(owner, 0)

    def holds_blocks(self, owner: Hashable) -> int:
        """Blocks the owner's allocation logically covers (private resident
        + host-staged + full blocks read from its shared prefix chain)."""
        blocks = self._blocks.get(owner, 0) + self._swapped.get(owner, 0)
        key = self._shared.get(owner)
        if key is not None:
            chain = self.pool.prefix_chains[key]
            blocks += chain.tokens // self.pool.block_tokens
        return blocks

    def holds_resident_blocks(self, owner: Hashable) -> int:
        """Blocks the owner currently has on device."""
        return self._blocks.get(owner, 0)

    def holds_swapped_blocks(self, owner: Hashable) -> int:
        """Blocks the owner currently has staged in host memory."""
        return self._swapped.get(owner, 0)

    def shared_key(self, owner: Hashable) -> Optional[Hashable]:
        """Chain key the owner is attached to, or None."""
        return self._shared.get(owner)

    def shared_blocks(self, owner: Hashable) -> int:
        """Full blocks the owner reads from its shared prefix chain."""
        key = self._shared.get(owner)
        if key is None:
            return 0
        return self.pool.prefix_chains[key].tokens // self.pool.block_tokens

    def shared_tokens(self, owner: Hashable) -> int:
        """Tokens of the owner's context resident in shared chain blocks.

        Only whole shared blocks count — a prefix's partial tail block is
        copy-on-write private, so its tokens swap and recompute with the
        owner's own KV.
        """
        return self.shared_blocks(owner) * self.pool.block_tokens

    @property
    def num_owners(self) -> int:
        return len(self._tokens)

    @property
    def allocated_bytes(self) -> int:
        return self.pool.allocated_bytes

    # ------------------------------------------------------------------ lifecycle

    def allocate(self, owner: Hashable, tokens: int, *,
                 prefix: Optional[Hashable] = None,
                 now_s: float = 0.0) -> bool:
        """Allocation covering ``tokens``; False if the pool is short.

        With ``prefix`` set and a matching chain resident, the owner
        attaches: it takes only ``blocks_for(tokens)`` minus the chain's
        full shared blocks from the pool (the difference includes the
        copy-on-write duplicate of a partial chain tail).  A parked owner
        that kept its chain reference across preemption re-attaches to the
        same chain regardless of ``prefix``.  Pool shortage first reclaims
        unreferenced chains coldest-first; failure after that is
        side-effect free on the owner, so admission can probe and retry.
        """
        if owner in self._tokens:
            raise ValueError(f"owner {owner!r} already holds an allocation")
        if tokens < 0:
            raise ValueError(f"token count must be non-negative, got {tokens}")
        blocks = self.pool.blocks_for(tokens)
        recorder = self.recorder
        pinned = self._shared.get(owner)
        if pinned is not None:
            # Resuming a preempted owner whose chain reference survived.
            chain = self.pool.prefix_chains[pinned]
            private = blocks - chain.tokens // self.pool.block_tokens
            if not self._pool_allocate(private, exclude=pinned):
                return False
            chain.last_use_s = now_s
            self._tokens[owner] = tokens
            self._blocks[owner] = private
            if recorder is not None:
                recorder.event("kv.alloc", recorder.now_s, owner,
                               tokens=tokens, blocks=private,
                               free_blocks=self.pool.free_blocks)
            return True
        chain = self.pool.prefix_get(prefix) if prefix is not None else None
        if chain is not None:
            if tokens < chain.tokens:
                raise ValueError(
                    f"owner {owner!r} asked for {tokens} tokens, fewer than "
                    f"its {chain.tokens}-token prefix chain"
                )
            shared = chain.tokens // self.pool.block_tokens
            private = blocks - shared
            if not self._pool_allocate(private, exclude=prefix):
                return False
            self.pool.prefix_attach(prefix, now_s)
            self._shared[owner] = prefix
            self._tokens[owner] = tokens
            self._blocks[owner] = private
            if recorder is not None:
                cow = 1 if chain.tokens % self.pool.block_tokens else 0
                recorder.event("kv.prefix_hit", recorder.now_s, owner,
                               prefix_tokens=chain.tokens,
                               shared_blocks=shared, private_blocks=private,
                               cow_blocks=cow,
                               free_blocks=self.pool.free_blocks)
                if cow:
                    recorder.event("kv.cow", recorder.now_s, owner,
                                   blocks=cow, prefix_tokens=chain.tokens)
            return True
        if not self._pool_allocate(blocks, exclude=prefix):
            return False
        self._tokens[owner] = tokens
        self._blocks[owner] = blocks
        if recorder is not None:
            recorder.event("kv.alloc", recorder.now_s, owner,
                           tokens=tokens, blocks=blocks,
                           free_blocks=self.pool.free_blocks)
        return True

    def grow(self, owner: Hashable, tokens: int) -> bool:
        """Extend ``owner``'s allocation to cover ``tokens`` in total.

        Allocates a new block only when the target crosses a block
        boundary; False (side-effect free) when the pool cannot supply it —
        the caller preempts a victim and retries.
        """
        held = self._tokens.get(owner)
        if held is None:
            raise ValueError(f"owner {owner!r} holds no allocation to grow")
        if tokens < held:
            raise ValueError(
                f"allocations only grow ({owner!r} holds {held} tokens, "
                f"asked for {tokens}); release and re-allocate to shrink"
            )
        needed = self.pool.blocks_for(tokens) - self.holds_blocks(owner)
        if needed > 0 and not self.pool.allocate(needed):
            return False
        self._tokens[owner] = tokens
        self._blocks[owner] += max(needed, 0)
        return True

    def grow_many(self, owners, targets, needs) -> bool:
        """Batch :meth:`grow`: extend every owner in one pool transaction.

        ``needs[i]`` is the number of *new* blocks owner ``i`` must acquire
        to cover ``targets[i]`` tokens; the caller has already derived it
        from the owners' resident block counts (the serving engine's
        fast-forward window computes all three arrays vectorized).
        All-or-nothing: False (side-effect free) when the pool cannot
        supply the total.
        """
        total = 0
        for need in needs:
            if need > 0:
                total += need
        if total and not self.pool.allocate(total):
            return False
        tokens_map = self._tokens
        blocks_map = self._blocks
        for owner, tokens, need in zip(owners, targets, needs, strict=True):
            tokens_map[owner] = tokens
            if need > 0:
                blocks_map[owner] += need
        return True

    def release(self, owner: Hashable, *, keep_prefix: bool = False,
                now_s: float = 0.0) -> int:
        """Free ``owner``'s blocks; returns the token count it covered.

        Host-staged blocks (block-granular swap) are dropped with the
        device-resident ones.  An attached owner normally detaches from its
        chain too (the chain stays cached at refcount zero once its last
        reader leaves); ``keep_prefix=True`` — the preemption path — keeps
        the chain reference alive so the parked owner's prefix cannot be
        reclaimed before it resumes.
        """
        tokens = self._tokens.pop(owner, 0)
        blocks = self._blocks.pop(owner, 0)
        if blocks:
            self.pool.release(blocks)
        swapped = self._swapped.pop(owner, 0)
        if swapped:
            self.pool.drop_swapped(swapped)
        if not keep_prefix:
            key = self._shared.pop(owner, None)
            if key is not None:
                self.pool.prefix_detach(key, now_s)
        recorder = self.recorder
        if recorder is not None and (blocks or swapped):
            recorder.event("kv.release", recorder.now_s, owner,
                           tokens=tokens, blocks=blocks,
                           dropped_staged=swapped,
                           free_blocks=self.pool.free_blocks)
        return tokens

    # ------------------------------------------------------------------ prefix chains

    def register_prefix(self, key: Hashable, tokens: int, owner: Hashable,
                        *, now_s: float = 0.0) -> bool:
        """Promote ``owner``'s freshly-prefilled prefix into a shared chain.

        The owner's first ``tokens // block_tokens`` private blocks hold
        pure prefix KV; they transfer to a new chain under ``key`` and the
        owner attaches to it (so the promoter pins its own prefix).  A
        prefix ending mid-block additionally snapshots the boundary block
        — one extra pool block — so later attachers have a clean tail to
        copy-on-write from.  False (side-effect free) when ``key`` is
        already chained, the owner is already attached, or the pool cannot
        supply the tail snapshot.
        """
        if tokens <= 0:
            raise ValueError(f"prefix tokens must be positive, got {tokens}")
        if owner not in self._tokens:
            raise ValueError(f"owner {owner!r} holds no allocation to promote")
        if tokens > self._tokens[owner]:
            raise ValueError(
                f"owner {owner!r} holds {self._tokens[owner]} tokens, cannot "
                f"promote a {tokens}-token prefix"
            )
        if owner in self._shared or key in self.pool.prefix_chains:
            return False
        block_tokens = self.pool.block_tokens
        shared = tokens // block_tokens
        tail = 1 if tokens % block_tokens else 0
        if self._blocks.get(owner, 0) < shared:
            # Part of the prefix is host-staged (partial swap); promoting
            # would share blocks that are not on device. Skip.
            return False
        if tail and not self.pool.allocate(tail):
            return False
        chain = self.pool.prefix_adopt(key, tokens, shared + tail, now_s)
        chain.refcount = 1
        self._blocks[owner] -= shared
        self._shared[owner] = key
        recorder = self.recorder
        if recorder is not None:
            recorder.event("kv.prefix_register", recorder.now_s, owner,
                           prefix=str(key), tokens=tokens,
                           shared_blocks=shared, tail_blocks=tail,
                           free_blocks=self.pool.free_blocks)
        return True

    def evictable_prefixes(self) -> List[PrefixChain]:
        """Unreferenced chains, coldest first (deterministic)."""
        return self.pool.evictable_prefixes()

    def evict_prefix(self, key: Hashable) -> int:
        """Reclaim an unreferenced chain; returns the blocks freed."""
        chain = self.pool.prefix_chains[key]
        blocks = self.pool.prefix_evict(key)
        recorder = self.recorder
        if recorder is not None:
            recorder.event("kv.prefix_evict", recorder.now_s, None,
                           prefix=str(key), tokens=chain.tokens,
                           blocks=blocks,
                           free_blocks=self.pool.free_blocks)
        return blocks

    def _pool_allocate(self, blocks: int, exclude: Optional[Hashable]) -> bool:
        """Pool grab that reclaims cold unreferenced chains on shortage."""
        if self.pool.allocate(blocks):
            return True
        shortfall = blocks - self.pool.free_blocks
        for chain in self.pool.evictable_prefixes():
            if shortfall <= 0:
                break
            if chain.key == exclude:
                continue
            shortfall -= self.evict_prefix(chain.key)
        return self.pool.allocate(blocks)

    # ------------------------------------------------------------------ swap

    def evict_blocks(self, owner: Hashable, num_blocks: int) -> int:
        """Stage up to ``num_blocks`` of ``owner``'s coldest prefix blocks
        to host memory, freeing their device blocks for other requests.

        Returns the number actually staged (bounded by the owner's resident
        count); the owner keeps the rest of its allocation on device and
        must :meth:`readmit` before its KV is whole again.
        """
        if owner not in self._tokens:
            raise ValueError(f"owner {owner!r} holds no allocation to evict from")
        if num_blocks <= 0:
            raise ValueError(f"block count must be positive, got {num_blocks}")
        staged = min(num_blocks, self._blocks[owner])
        if staged:
            self.pool.swap_out(staged)
            self._blocks[owner] -= staged
            self._swapped[owner] = self._swapped.get(owner, 0) + staged
            recorder = self.recorder
            if recorder is not None:
                recorder.event("kv.evict", recorder.now_s, owner,
                               staged_blocks=staged,
                               resident_blocks=self._blocks[owner],
                               free_blocks=self.pool.free_blocks)
        return staged

    def readmit(self, owner: Hashable) -> bool:
        """Bring ``owner``'s host-staged blocks back on device.

        All-or-nothing: False (side-effect free) when the pool cannot hold
        every staged block, so a failed readmission under pressure never
        leaves the owner with a partially-granted restore.
        """
        if owner not in self._tokens:
            raise ValueError(f"owner {owner!r} holds no allocation to readmit")
        staged = self._swapped.get(owner, 0)
        if staged == 0:
            return True
        if not self.pool.swap_in(staged):
            shortfall = staged - self.pool.free_blocks
            for chain in self.pool.evictable_prefixes():
                if shortfall <= 0:
                    break
                shortfall -= self.evict_prefix(chain.key)
            if not self.pool.swap_in(staged):
                return False
        self._blocks[owner] += staged
        del self._swapped[owner]
        recorder = self.recorder
        if recorder is not None:
            recorder.event("kv.readmit", recorder.now_s, owner,
                           blocks=staged,
                           free_blocks=self.pool.free_blocks)
        return True
