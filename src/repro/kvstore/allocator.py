"""Per-request KV allocations over a shared :class:`BlockPool`.

The allocator owns the owner→blocks map the serving engine consults every
iteration: a request allocates blocks for its prompt at admission, grows by
one token per decode step (a new block only when it crosses a block
boundary), and releases everything on completion or preemption.
"""

from __future__ import annotations

from typing import Dict, Hashable

from repro.kvstore.block_pool import BlockPool

__all__ = ["KvAllocator"]


class KvAllocator:
    """Tracks each owner's token count and block count against one pool."""

    def __init__(self, pool: BlockPool) -> None:
        self.pool = pool
        self._tokens: Dict[Hashable, int] = {}
        self._blocks: Dict[Hashable, int] = {}

    # ------------------------------------------------------------------ queries

    def holds_tokens(self, owner: Hashable) -> int:
        return self._tokens.get(owner, 0)

    def holds_blocks(self, owner: Hashable) -> int:
        return self._blocks.get(owner, 0)

    @property
    def num_owners(self) -> int:
        return len(self._tokens)

    @property
    def allocated_bytes(self) -> int:
        return self.pool.allocated_bytes

    # ------------------------------------------------------------------ lifecycle

    def allocate(self, owner: Hashable, tokens: int) -> bool:
        """Fresh allocation covering ``tokens``; False if the pool is short.

        Failure is side-effect free, so admission can probe and retry later.
        """
        if owner in self._tokens:
            raise ValueError(f"owner {owner!r} already holds an allocation")
        if tokens < 0:
            raise ValueError(f"token count must be non-negative, got {tokens}")
        blocks = self.pool.blocks_for(tokens)
        if not self.pool.allocate(blocks):
            return False
        self._tokens[owner] = tokens
        self._blocks[owner] = blocks
        return True

    def grow(self, owner: Hashable, tokens: int) -> bool:
        """Extend ``owner``'s allocation to cover ``tokens`` in total.

        Allocates a new block only when the target crosses a block
        boundary; False (side-effect free) when the pool cannot supply it —
        the caller preempts a victim and retries.
        """
        held = self._tokens.get(owner)
        if held is None:
            raise ValueError(f"owner {owner!r} holds no allocation to grow")
        if tokens < held:
            raise ValueError(
                f"allocations only grow ({owner!r} holds {held} tokens, "
                f"asked for {tokens}); release and re-allocate to shrink"
            )
        needed = self.pool.blocks_for(tokens) - self._blocks[owner]
        if needed > 0 and not self.pool.allocate(needed):
            return False
        self._tokens[owner] = tokens
        self._blocks[owner] += max(needed, 0)
        return True

    def release(self, owner: Hashable) -> int:
        """Free ``owner``'s blocks; returns the token count it covered."""
        tokens = self._tokens.pop(owner, 0)
        blocks = self._blocks.pop(owner, 0)
        if blocks:
            self.pool.release(blocks)
        return tokens
