"""Per-request KV allocations over a shared :class:`BlockPool`.

The allocator owns the owner→blocks map the serving engine consults every
iteration: a request allocates blocks for its prompt at admission, grows by
one token per decode step (a new block only when it crosses a block
boundary), and releases everything on completion or preemption.

Swap is block-granular: :meth:`evict_blocks` stages an owner's coldest
prefix blocks to host memory (the owner stays *partially resident* — its
remaining blocks keep their device residency), and :meth:`readmit` brings
the staged blocks back all-or-nothing, so a failed readmission under pool
pressure never strands a half-granted allocation.

With a :class:`~repro.telemetry.ScopedRecorder` attached the allocator
emits ``kv.*`` events for its *bounded* operations — allocation grants,
releases, block-granular evictions and readmissions — stamped with the
engine clock the owner mirrors into ``recorder.now_s``.  Per-step growth
(:meth:`grow` / :meth:`grow_many`) is deliberately silent: those run once
per decode token (and once per fast-forwarded window on the vectorized
path), so recording them would both flood the trace and break the
scalar/vectorized stream-equivalence contract.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Hashable, Optional

from repro.kvstore.block_pool import BlockPool

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.telemetry.recorder import ScopedRecorder

__all__ = ["KvAllocator"]


class KvAllocator:
    """Tracks each owner's token count and block count against one pool."""

    def __init__(self, pool: BlockPool, *,
                 recorder: Optional["ScopedRecorder"] = None) -> None:
        self.pool = pool
        #: Optional telemetry sink (``repro.telemetry.ScopedRecorder``);
        #: ``None`` keeps every operation emission-free.
        self.recorder = recorder
        self._tokens: Dict[Hashable, int] = {}
        self._blocks: Dict[Hashable, int] = {}
        #: Blocks each owner currently has staged in host memory.
        self._swapped: Dict[Hashable, int] = {}

    # ------------------------------------------------------------------ queries

    def holds_tokens(self, owner: Hashable) -> int:
        return self._tokens.get(owner, 0)

    def holds_blocks(self, owner: Hashable) -> int:
        """Blocks the owner's allocation logically covers (resident + staged)."""
        return self._blocks.get(owner, 0) + self._swapped.get(owner, 0)

    def holds_resident_blocks(self, owner: Hashable) -> int:
        """Blocks the owner currently has on device."""
        return self._blocks.get(owner, 0)

    def holds_swapped_blocks(self, owner: Hashable) -> int:
        """Blocks the owner currently has staged in host memory."""
        return self._swapped.get(owner, 0)

    @property
    def num_owners(self) -> int:
        return len(self._tokens)

    @property
    def allocated_bytes(self) -> int:
        return self.pool.allocated_bytes

    # ------------------------------------------------------------------ lifecycle

    def allocate(self, owner: Hashable, tokens: int) -> bool:
        """Fresh allocation covering ``tokens``; False if the pool is short.

        Failure is side-effect free, so admission can probe and retry later.
        """
        if owner in self._tokens:
            raise ValueError(f"owner {owner!r} already holds an allocation")
        if tokens < 0:
            raise ValueError(f"token count must be non-negative, got {tokens}")
        blocks = self.pool.blocks_for(tokens)
        if not self.pool.allocate(blocks):
            return False
        self._tokens[owner] = tokens
        self._blocks[owner] = blocks
        recorder = self.recorder
        if recorder is not None:
            recorder.event("kv.alloc", recorder.now_s, owner,
                           tokens=tokens, blocks=blocks,
                           free_blocks=self.pool.free_blocks)
        return True

    def grow(self, owner: Hashable, tokens: int) -> bool:
        """Extend ``owner``'s allocation to cover ``tokens`` in total.

        Allocates a new block only when the target crosses a block
        boundary; False (side-effect free) when the pool cannot supply it —
        the caller preempts a victim and retries.
        """
        held = self._tokens.get(owner)
        if held is None:
            raise ValueError(f"owner {owner!r} holds no allocation to grow")
        if tokens < held:
            raise ValueError(
                f"allocations only grow ({owner!r} holds {held} tokens, "
                f"asked for {tokens}); release and re-allocate to shrink"
            )
        needed = self.pool.blocks_for(tokens) - self.holds_blocks(owner)
        if needed > 0 and not self.pool.allocate(needed):
            return False
        self._tokens[owner] = tokens
        self._blocks[owner] += max(needed, 0)
        return True

    def grow_many(self, owners, targets, needs) -> bool:
        """Batch :meth:`grow`: extend every owner in one pool transaction.

        ``needs[i]`` is the number of *new* blocks owner ``i`` must acquire
        to cover ``targets[i]`` tokens; the caller has already derived it
        from the owners' resident block counts (the serving engine's
        fast-forward window computes all three arrays vectorized).
        All-or-nothing: False (side-effect free) when the pool cannot
        supply the total.
        """
        total = 0
        for need in needs:
            if need > 0:
                total += need
        if total and not self.pool.allocate(total):
            return False
        tokens_map = self._tokens
        blocks_map = self._blocks
        for owner, tokens, need in zip(owners, targets, needs):
            tokens_map[owner] = tokens
            if need > 0:
                blocks_map[owner] += need
        return True

    def release(self, owner: Hashable) -> int:
        """Free ``owner``'s blocks; returns the token count it covered.

        Host-staged blocks (block-granular swap) are dropped with the
        device-resident ones — nothing of the owner survives.
        """
        tokens = self._tokens.pop(owner, 0)
        blocks = self._blocks.pop(owner, 0)
        if blocks:
            self.pool.release(blocks)
        swapped = self._swapped.pop(owner, 0)
        if swapped:
            self.pool.drop_swapped(swapped)
        recorder = self.recorder
        if recorder is not None and (blocks or swapped):
            recorder.event("kv.release", recorder.now_s, owner,
                           tokens=tokens, blocks=blocks,
                           dropped_staged=swapped,
                           free_blocks=self.pool.free_blocks)
        return tokens

    # ------------------------------------------------------------------ swap

    def evict_blocks(self, owner: Hashable, num_blocks: int) -> int:
        """Stage up to ``num_blocks`` of ``owner``'s coldest prefix blocks
        to host memory, freeing their device blocks for other requests.

        Returns the number actually staged (bounded by the owner's resident
        count); the owner keeps the rest of its allocation on device and
        must :meth:`readmit` before its KV is whole again.
        """
        if owner not in self._tokens:
            raise ValueError(f"owner {owner!r} holds no allocation to evict from")
        if num_blocks <= 0:
            raise ValueError(f"block count must be positive, got {num_blocks}")
        staged = min(num_blocks, self._blocks[owner])
        if staged:
            self.pool.swap_out(staged)
            self._blocks[owner] -= staged
            self._swapped[owner] = self._swapped.get(owner, 0) + staged
            recorder = self.recorder
            if recorder is not None:
                recorder.event("kv.evict", recorder.now_s, owner,
                               staged_blocks=staged,
                               resident_blocks=self._blocks[owner],
                               free_blocks=self.pool.free_blocks)
        return staged

    def readmit(self, owner: Hashable) -> bool:
        """Bring ``owner``'s host-staged blocks back on device.

        All-or-nothing: False (side-effect free) when the pool cannot hold
        every staged block, so a failed readmission under pressure never
        leaves the owner with a partially-granted restore.
        """
        if owner not in self._tokens:
            raise ValueError(f"owner {owner!r} holds no allocation to readmit")
        staged = self._swapped.get(owner, 0)
        if staged == 0:
            return True
        if not self.pool.swap_in(staged):
            return False
        self._blocks[owner] += staged
        del self._swapped[owner]
        recorder = self.recorder
        if recorder is not None:
            recorder.event("kv.readmit", recorder.now_s, owner,
                           blocks=staged,
                           free_blocks=self.pool.free_blocks)
        return True
