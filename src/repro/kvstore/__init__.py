"""Paged KV-cache management with preemption-aware restore pricing.

``repro.kvstore`` is the vLLM-style memory manager behind the serving
engine's ``admission="paged"`` mode:

* :class:`BlockPool` — carves the post-weight KV budget of a deployment
  into fixed-size token blocks (sized from
  :meth:`~repro.models.memory.ModelMemoryProfile.kv_cache_bytes_per_token`,
  at the same effective capacity the reserve path's
  ``kv_occupancy``-discounted reservations assume);
* :class:`KvAllocator` — grows each request's block allocation as its
  context advances through decode, and releases it on completion or
  preemption;
* :class:`PreemptionPolicy` — deterministic victim selection
  (``lru`` / ``priority`` / ``sla_deadline``) when the pool runs dry, with
  two restore paths: ``swap`` (KV bytes staged out and back over the CXL
  links, priced by :func:`kv_swap_time_s`) and ``recompute`` (the victim's
  context is re-prefilled through the normal
  :class:`~repro.core.iteration.IterationCostModel` path).

The serving engine (``repro.serving.engine``) owns the event loop; this
package owns the bookkeeping and the policy decisions, so they can be unit
tested without simulating a single transformer block.
"""

from repro.kvstore.block_pool import BlockPool
from repro.kvstore.allocator import KvAllocator
from repro.kvstore.preemption import (
    PREEMPTION_POLICIES,
    RESTORE_MODES,
    PreemptionPolicy,
    kv_swap_time_s,
)

__all__ = [
    "BlockPool",
    "KvAllocator",
    "PreemptionPolicy",
    "PREEMPTION_POLICIES",
    "RESTORE_MODES",
    "kv_swap_time_s",
]
