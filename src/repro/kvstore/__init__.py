"""Paged KV-cache management with preemption-aware restore pricing.

``repro.kvstore`` is the vLLM-style memory manager behind the serving
engine's ``admission="paged"`` mode:

* :class:`BlockPool` — carves the post-weight KV budget of a deployment
  into fixed-size token blocks (sized from
  :meth:`~repro.models.memory.ModelMemoryProfile.kv_cache_bytes_per_token`,
  at the same effective capacity the reserve path's
  ``kv_occupancy``-discounted reservations assume), with a host-staging
  ledger (``swap_out`` / ``swap_in`` / ``drop_swapped``) for
  block-granular swap;
* :class:`KvAllocator` — grows each request's block allocation as its
  context advances through decode, releases it on completion or
  preemption, and supports partial residency: ``evict_blocks`` stages an
  owner's coldest prefix blocks to host memory and ``readmit`` brings
  them back all-or-nothing;
* :class:`PrefixChain` — a hash-identified shared prefix resident in the
  pool with a refcount of its readers: requests with a matching prefix
  hash *attach* (booking only their suffix blocks plus a copy-on-write
  duplicate of a partial chain tail), a cache miss *promotes* its own
  prefix blocks into a new chain after prefill, and unreferenced chains
  stay cached — reclaimed coldest-first under pool pressure or by the
  joint (request, chain) eviction ranking
  (:meth:`PreemptionPolicy.select_eviction`);
* :class:`PreemptionPolicy` — deterministic victim selection
  (``lru`` / ``priority`` / ``sla_deadline``) when the pool runs dry, with
  two restore paths: ``swap`` (KV bytes staged out and back over the CXL
  links, priced by :func:`kv_swap_time_s`) and ``recompute`` (the victim's
  context is re-prefilled through the normal
  :class:`~repro.core.iteration.IterationCostModel` path); with
  ``partial_blocks=N`` a swap eviction takes only the victim's N coldest
  prefix blocks, so the restore transfer shrinks from the whole context
  to the staged blocks.

The serving engine (``repro.serving.engine``) owns the event loop; this
package owns the bookkeeping and the policy decisions, so they can be unit
tested without simulating a single transformer block.
"""

from repro.kvstore.block_pool import BlockPool, PrefixChain
from repro.kvstore.allocator import KvAllocator
from repro.kvstore.preemption import (
    PREEMPTION_POLICIES,
    RESTORE_MODES,
    PreemptionPolicy,
    kv_swap_time_s,
)

__all__ = [
    "BlockPool",
    "PrefixChain",
    "KvAllocator",
    "PreemptionPolicy",
    "PREEMPTION_POLICIES",
    "RESTORE_MODES",
    "kv_swap_time_s",
]
