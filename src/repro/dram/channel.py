"""Command-level timing model of one GDDR6-PIM channel.

The channel accepts :class:`~repro.dram.commands.DRAMCommand` objects in
program order and schedules each at the earliest time permitted by the
GDDR6-PIM timing constraints.  It returns the issue time of every command so
higher layers (the PIM controller) can compute instruction latencies, and it
keeps per-command-type activity counters consumed by the power model.

The model covers:

* per-bank activate / precharge / column constraints (tRC, tRP, tRAS, tRCD,
  tCCD_L, tWR),
* channel-wide column-bus occupancy (tCCD_S) — also the issue rate of the
  all-bank ``MACab`` command (one MAC step per tCCD_S, i.e. the 1 GHz PU
  clock),
* tRRD between activates to different banks,
* refresh overhead as a bandwidth derating factor (tRFC / tREFI), applied to
  the final busy time rather than by injecting individual REF commands.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.dram.bank import Bank, BankGroup
from repro.dram.commands import CommandType, DRAMCommand
from repro.dram.geometry import ChannelGeometry, GDDR6_PIM_GEOMETRY
from repro.dram.timing import TimingParameters, GDDR6_PIM_TIMINGS

__all__ = ["DRAMChannel", "CommandStats"]


@dataclass
class CommandStats:
    """Activity counters for one channel, consumed by the power model."""

    counts: Dict[CommandType, int] = field(default_factory=dict)

    def record(self, kind: CommandType, amount: int = 1) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + amount

    def count(self, kind: CommandType) -> int:
        return self.counts.get(kind, 0)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def merge(self, other: "CommandStats") -> None:
        for kind, amount in other.counts.items():
            self.record(kind, amount)


class DRAMChannel:
    """Timing/state model of a single GDDR6-PIM channel."""

    def __init__(
        self,
        timing: TimingParameters = GDDR6_PIM_TIMINGS,
        geometry: ChannelGeometry = GDDR6_PIM_GEOMETRY,
        apply_refresh_derating: bool = True,
    ) -> None:
        self.timing = timing
        self.geometry = geometry
        self.apply_refresh_derating = apply_refresh_derating
        self.bank_groups: List[BankGroup] = []
        bank_index = 0
        for group_index in range(geometry.num_bank_groups):
            banks = []
            for _ in range(geometry.banks_per_group):
                banks.append(Bank(index=bank_index, timing=timing))
                bank_index += 1
            self.bank_groups.append(BankGroup(index=group_index, banks=banks))
        self.stats = CommandStats()
        self._now: float = 0.0
        self._last_column_bus: float = -1e18
        self._last_activate_any: float = -1e18

    # ------------------------------------------------------------------ helpers

    @property
    def now_ns(self) -> float:
        """Current channel time: when the last issued command completed issue."""
        return self._now

    def banks(self) -> List[Bank]:
        return [bank for group in self.bank_groups for bank in group.banks]

    def bank(self, flat_index: int) -> Bank:
        group, local = divmod(flat_index, self.geometry.banks_per_group)
        return self.bank_groups[group].banks[local]

    def reset_time(self) -> None:
        """Reset the clock and bank state (activity counters are kept)."""
        self._now = 0.0
        self._last_column_bus = -1e18
        self._last_activate_any = -1e18
        for bank in self.banks():
            bank.open_row = None
            bank.last_activate = -1e18
            bank.last_precharge = -1e18
            bank.last_column_access = -1e18
            bank.last_write_end = -1e18

    # ------------------------------------------------------------------ issue

    def issue(self, command: DRAMCommand) -> float:
        """Schedule one command and return its issue time in nanoseconds."""
        handler = {
            CommandType.ACT: self._issue_activate,
            CommandType.PRE: self._issue_precharge,
            CommandType.ACT_ALL: self._issue_activate_all,
            CommandType.PRE_ALL: self._issue_precharge_all,
            CommandType.RD: self._issue_column,
            CommandType.WR: self._issue_column,
            CommandType.MAC_ALL: self._issue_mac_all,
            CommandType.EWMUL: self._issue_ewmul,
            CommandType.AF: self._issue_af,
            CommandType.REF: self._issue_refresh,
        }[command.kind]
        issue_time = handler(command)
        self.stats.record(command.kind)
        self._now = max(self._now, issue_time)
        return issue_time

    def issue_column_burst(self, command: DRAMCommand, count: int) -> float:
        """Issue ``count`` back-to-back column commands of the same kind.

        A burst repeatedly targets the same bank (or the same set of banks for
        all-bank PIM commands).  All-bank PIM commands (MACab, EWMUL) pipeline
        at tCCD_S — the 1 GHz PU clock — while ordinary per-bank reads/writes
        obey the per-bank-group tCCD_L.  The burst is scheduled as the first
        command followed by ``count - 1`` commands at that spacing, which is
        timing-equivalent to issuing them one by one while keeping the cost
        of large ``OPsize`` instructions independent of the size.
        """
        if count <= 0:
            raise ValueError("burst count must be positive")
        if not command.kind.is_column_command:
            raise ValueError(f"{command.kind.value} is not a column command")
        first = self.issue(command)
        if count == 1:
            return first
        spacing = (self.timing.t_ccd_s if command.kind.is_all_bank
                   else self.timing.t_ccd_l)
        last = first + (count - 1) * spacing
        is_write = command.kind is CommandType.WR
        if command.kind.is_all_bank:
            affected = self.banks()
        elif command.kind is CommandType.EWMUL:
            affected = self.bank_groups[command.bank_group].banks
        else:
            affected = [self.bank(command.bank)]
        for bank in affected:
            bank.record_column(last, is_write=is_write)
        self._last_column_bus = last
        self.stats.record(command.kind, count - 1)
        self._now = max(self._now, last)
        return last

    def issue_all(self, commands: List[DRAMCommand]) -> float:
        """Issue a command sequence in order; return the completion time."""
        last = self._now
        for command in commands:
            last = self.issue(command)
        return self.completion_time(last)

    def completion_time(self, last_issue: float) -> float:
        """Completion time of the command stream whose last issue was at
        ``last_issue`` (adds CAS latency and burst time, plus the refresh
        bandwidth derating)."""
        completion = last_issue + self.timing.t_cl + self.timing.burst_ns
        if self.apply_refresh_derating:
            derating = 1.0 + self.timing.t_rfc / self.timing.t_refi
            completion *= derating
        return completion

    # ------------------------------------------------------------------ per-kind

    def _issue_activate(self, command: DRAMCommand) -> float:
        bank = self.bank(command.bank)
        time = max(
            bank.earliest_activate(self._now),
            self._last_activate_any + self.timing.t_rrd,
        )
        bank.record_activate(time, command.row)
        self._last_activate_any = time
        return time

    def _issue_precharge(self, command: DRAMCommand) -> float:
        bank = self.bank(command.bank)
        time = bank.earliest_precharge(self._now)
        bank.record_precharge(time)
        return time

    def _issue_activate_all(self, command: DRAMCommand) -> float:
        """ACTab: activate the same row in every bank of the channel."""
        time = max(
            max(bank.earliest_activate(self._now) for bank in self.banks()),
            self._last_activate_any + self.timing.t_rrd,
        )
        for bank in self.banks():
            bank.record_activate(time, command.row)
        self._last_activate_any = time
        return time

    def _issue_precharge_all(self, command: DRAMCommand) -> float:
        time = max(bank.earliest_precharge(self._now) for bank in self.banks())
        for bank in self.banks():
            bank.record_precharge(time)
        return time

    def _issue_column(self, command: DRAMCommand) -> float:
        is_write = command.kind is CommandType.WR
        bank = self.bank(command.bank)
        time = max(
            bank.earliest_column(self._now, is_write=is_write),
            self._last_column_bus + self.timing.t_ccd_s,
        )
        bank.record_column(time, is_write=is_write)
        self._last_column_bus = time
        return time

    def _issue_mac_all(self, command: DRAMCommand) -> float:
        """MACab: one MAC step in all 16 near-bank PUs.

        All banks must have a row open (the controller issues ACTab first).
        Successive MACab commands are pipelined at tCCD_S, i.e. one 256-bit
        operand per bank per nanosecond — the 1 GHz PU rate.
        """
        constraint = self._last_column_bus + self.timing.t_ccd_s
        for bank in self.banks():
            constraint = max(constraint, bank.earliest_column(self._now, is_write=False,
                                                              all_bank=True))
        time = max(self._now, constraint)
        for bank in self.banks():
            bank.record_column(time, is_write=False)
        self._last_column_bus = time
        return time

    def _issue_ewmul(self, command: DRAMCommand) -> float:
        """EWMUL: element-wise multiply of two banks in a bank group, with the
        result written to a third bank of the group.  Occupies the column bus
        like a column command and also incurs the write recovery of the
        destination bank."""
        group = self.bank_groups[command.bank_group]
        constraint = self._last_column_bus + self.timing.t_ccd_s
        for bank in group.banks:
            constraint = max(constraint, bank.earliest_column(self._now, is_write=False,
                                                              all_bank=True))
        time = max(self._now, constraint)
        for bank in group.banks:
            bank.record_column(time, is_write=False)
        # Destination bank sees a write.
        group.banks[-1].record_column(time, is_write=True)
        self._last_column_bus = time
        return time

    def _issue_af(self, command: DRAMCommand) -> float:
        """AF: activation-function lookup in the near-bank PUs.  Modelled as a
        column access (LUT read) on the column bus."""
        time = max(self._now, self._last_column_bus + self.timing.t_ccd_l)
        self._last_column_bus = time
        return time

    def _issue_refresh(self, command: DRAMCommand) -> float:
        time = max(
            self._now,
            max(bank.earliest_precharge(self._now) for bank in self.banks()),
        )
        for bank in self.banks():
            bank.record_precharge(time)
            bank.last_activate = time + self.timing.t_rfc - self.timing.t_rc
        return time + self.timing.t_rfc

    # ------------------------------------------------------------------ throughput

    def peak_internal_bandwidth_gbps(self) -> float:
        """Peak internal bandwidth of this channel in GB/s.

        16 banks each deliver a 32-byte burst per tCCD_S to their local PU:
        16 * 32 B / 1 ns = 512 GB/s, matching the paper's 512 TB/s across
        1024 channels.
        """
        bytes_per_burst = self.geometry.access_granularity_bytes
        return (
            self.geometry.num_banks
            * bytes_per_burst
            / self.timing.t_ccd_s
        )

    def peak_compute_gflops(self) -> float:
        """Peak BF16 MAC throughput of the channel in GFLOPS.

        Each of the 16 PUs performs a 16-wide MAC (32 FLOPs) per tCCD_S.
        """
        flops_per_pu_per_cmd = 2 * self.geometry.elements_per_access
        return (
            self.geometry.num_banks
            * flops_per_pu_per_cmd
            / self.timing.t_ccd_s
        )
