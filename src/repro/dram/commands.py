"""DRAM command vocabulary of the GDDR6-PIM channel.

Besides the standard GDDR6 commands (activate, precharge, read, write,
refresh) the PIM channel supports the AiM-style all-bank commands: ``ACTab``
activates the same row in all 16 banks (enabled by reservoir capacitors),
``MACab`` performs one multiply-accumulate step in all near-bank PUs, ``EWMUL``
performs element-wise multiplication inside a bank group, and ``PREab``
precharges all banks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["CommandType", "DRAMCommand"]


class CommandType(enum.Enum):
    """DRAM / PIM command types issued by the PIM controller."""

    ACT = "ACT"
    PRE = "PRE"
    RD = "RD"
    WR = "WR"
    ACT_ALL = "ACTab"
    PRE_ALL = "PREab"
    MAC_ALL = "MACab"
    EWMUL = "EWMUL"
    AF = "AF"
    REF = "REF"

    @property
    def is_all_bank(self) -> bool:
        return self in (CommandType.ACT_ALL, CommandType.PRE_ALL,
                        CommandType.MAC_ALL, CommandType.EWMUL)

    @property
    def is_column_command(self) -> bool:
        """Column commands are pipelined back-to-back at tCCD granularity."""
        return self in (CommandType.RD, CommandType.WR,
                        CommandType.MAC_ALL, CommandType.EWMUL)


@dataclass
class DRAMCommand:
    """A single command targeting one bank (or all banks) of a channel.

    ``bank`` is ignored for all-bank commands.  ``row`` and ``column`` are
    only meaningful for the command types that carry an address.
    """

    kind: CommandType
    bank: int = 0
    bank_group: int = 0
    row: int = 0
    column: int = 0
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.bank < 0 or self.bank_group < 0 or self.row < 0 or self.column < 0:
            raise ValueError("command addresses must be non-negative")
