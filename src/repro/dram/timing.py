"""GDDR6-PIM timing parameters.

All values are expressed in nanoseconds.  The defaults follow Table 4 of the
paper (tRCDRD=18 ns, tRAS=27 ns, tCL=25 ns, tRCDWR=14 ns, tCCDS=1 ns,
tRP=16 ns) and the Samsung 8Gb GDDR6 SGRAM C-die datasheet for the remaining
constraints that Table 4 does not list.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TimingParameters", "GDDR6_PIM_TIMINGS"]


@dataclass(frozen=True)
class TimingParameters:
    """DRAM timing constraints, in nanoseconds.

    Attributes
    ----------
    t_ck:
        DRAM command-clock period.  The near-bank PU runs at 1 GHz, which the
        paper states is ``tCCDS`` (two DRAM clocks), so ``t_ck`` is 0.5 ns.
    t_rcd_rd / t_rcd_wr:
        Activate-to-read / activate-to-write delay.
    t_ras:
        Minimum time a row must stay open.
    t_rp:
        Precharge period.
    t_cl:
        CAS (read) latency.
    t_cwl:
        Write latency.
    t_ccd_s / t_ccd_l:
        Column-to-column delay, short (different bank group) and long (same
        bank group).  All-bank PIM commands are pipelined at ``t_ccd_s``.
    t_rrd:
        Activate-to-activate delay between different banks.
    t_wr:
        Write recovery time.
    t_refi / t_rfc:
        Average refresh interval and refresh cycle time.
    burst_ns:
        Time to stream one 256-bit burst on the internal bank I/O.
    """

    t_ck: float = 0.5
    t_rcd_rd: float = 18.0
    t_rcd_wr: float = 14.0
    t_ras: float = 27.0
    t_rp: float = 16.0
    t_cl: float = 25.0
    t_cwl: float = 8.0
    t_ccd_s: float = 1.0
    t_ccd_l: float = 2.0
    t_rrd: float = 4.0
    t_wr: float = 12.0
    t_refi: float = 3900.0
    t_rfc: float = 120.0
    burst_ns: float = 1.0

    def __post_init__(self) -> None:
        for name, value in self.__dict__.items():
            if value <= 0:
                raise ValueError(f"timing parameter {name} must be positive, got {value}")
        if self.t_ccd_l < self.t_ccd_s:
            raise ValueError("t_ccd_l must be >= t_ccd_s")
        if self.t_ras < self.t_rcd_rd:
            raise ValueError("t_ras must cover at least the activate-to-read delay")

    @property
    def t_rc(self) -> float:
        """Row cycle time: minimum time between activates to the same bank."""
        return self.t_ras + self.t_rp

    @property
    def pu_clock_ghz(self) -> float:
        """Near-bank PU clock, derived from tCCDS (one MAC per tCCDS)."""
        return 1.0 / self.t_ccd_s


#: Timing preset used throughout the paper's evaluation (Table 4).
GDDR6_PIM_TIMINGS = TimingParameters()
