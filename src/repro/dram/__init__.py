"""GDDR6-PIM DRAM timing substrate.

This subpackage models a GDDR6-PIM memory channel at the DRAM-command level.
It plays the role the modified Ramulator 2 plays in the paper's artifact: the
PIM controller converts CENT micro-ops into sequences of DRAM commands
(activate, precharge, read, write, and the AiM-style all-bank PIM commands)
and this substrate schedules them under the GDDR6-PIM timing constraints of
Table 4, producing per-instruction latency and per-command activity counts
used by the power model.
"""

from repro.dram.timing import TimingParameters, GDDR6_PIM_TIMINGS
from repro.dram.geometry import ChannelGeometry, GDDR6_PIM_GEOMETRY
from repro.dram.commands import CommandType, DRAMCommand
from repro.dram.bank import Bank, BankGroup
from repro.dram.channel import DRAMChannel, CommandStats

__all__ = [
    "TimingParameters",
    "GDDR6_PIM_TIMINGS",
    "ChannelGeometry",
    "GDDR6_PIM_GEOMETRY",
    "CommandType",
    "DRAMCommand",
    "Bank",
    "BankGroup",
    "DRAMChannel",
    "CommandStats",
]
