"""Per-bank and per-bank-group state machines.

A bank tracks its open row and the earliest time each class of command may be
issued to it.  The channel-level scheduler (``repro.dram.channel``) combines
these per-bank constraints with channel-wide constraints (column bus
occupancy, tRRD, refresh) to timestamp every command.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.dram.timing import TimingParameters

__all__ = ["Bank", "BankGroup"]


@dataclass
class Bank:
    """State of a single DRAM bank."""

    index: int
    timing: TimingParameters
    open_row: Optional[int] = None
    last_activate: float = field(default=-1e18)
    last_precharge: float = field(default=-1e18)
    last_column_access: float = field(default=-1e18)
    last_write_end: float = field(default=-1e18)
    activate_count: int = 0
    precharge_count: int = 0

    def earliest_activate(self, now: float) -> float:
        """Earliest time a new row may be activated in this bank."""
        ready = max(
            self.last_activate + self.timing.t_rc,
            self.last_precharge + self.timing.t_rp,
        )
        return max(now, ready)

    def earliest_precharge(self, now: float) -> float:
        """Earliest time the open row may be precharged."""
        ready = max(
            self.last_activate + self.timing.t_ras,
            self.last_write_end + self.timing.t_wr,
        )
        return max(now, ready)

    def earliest_column(self, now: float, is_write: bool, all_bank: bool = False) -> float:
        """Earliest time a column command (RD/WR/MAC) may be issued.

        ``all_bank`` selects the AiM-style all-bank PIM commands (MACab,
        EWMUL), which the PIM channel pipelines at tCCD_S — the 1 GHz
        near-bank PU clock — instead of the per-bank-group tCCD_L that
        ordinary reads and writes obey.
        """
        if self.open_row is None:
            raise RuntimeError(
                f"bank {self.index}: column command issued with no open row"
            )
        rcd = self.timing.t_rcd_wr if is_write else self.timing.t_rcd_rd
        spacing = self.timing.t_ccd_s if all_bank else self.timing.t_ccd_l
        ready = max(
            self.last_activate + rcd,
            self.last_column_access + spacing,
        )
        return max(now, ready)

    def record_activate(self, time: float, row: int) -> None:
        self.open_row = row
        self.last_activate = time
        self.activate_count += 1

    def record_precharge(self, time: float) -> None:
        self.open_row = None
        self.last_precharge = time
        self.precharge_count += 1

    def record_column(self, time: float, is_write: bool) -> None:
        self.last_column_access = time
        if is_write:
            self.last_write_end = time + self.timing.t_cwl + self.timing.burst_ns


@dataclass
class BankGroup:
    """A group of banks sharing the long column-to-column delay (tCCD_L)."""

    index: int
    banks: list

    def __post_init__(self) -> None:
        if not self.banks:
            raise ValueError("a bank group must contain at least one bank")

    def bank(self, local_index: int) -> Bank:
        return self.banks[local_index]
