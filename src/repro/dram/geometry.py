"""Physical organisation of a GDDR6-PIM channel.

A GDDR6-PIM channel (Figure 7a) contains four bank groups of four banks.
Every bank provides 32 MB of storage and hosts one near-bank processing unit.
The channel-level global buffer is 2 KB and can broadcast 256-bit operands to
all 16 PUs concurrently.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ChannelGeometry", "GDDR6_PIM_GEOMETRY"]


@dataclass(frozen=True)
class ChannelGeometry:
    """Bank/row/column organisation of one PIM channel."""

    num_bank_groups: int = 4
    banks_per_group: int = 4
    bank_capacity_bytes: int = 32 * 1024 * 1024
    row_size_bytes: int = 2048
    access_granularity_bits: int = 256
    global_buffer_bytes: int = 2 * 1024

    def __post_init__(self) -> None:
        if self.num_bank_groups <= 0 or self.banks_per_group <= 0:
            raise ValueError("bank group / bank counts must be positive")
        if self.bank_capacity_bytes % self.row_size_bytes != 0:
            raise ValueError("bank capacity must be a whole number of rows")
        if self.access_granularity_bits % 16 != 0:
            raise ValueError("access granularity must hold whole BF16 elements")

    @property
    def num_banks(self) -> int:
        """Total banks (and therefore near-bank PUs) in the channel."""
        return self.num_bank_groups * self.banks_per_group

    @property
    def channel_capacity_bytes(self) -> int:
        return self.num_banks * self.bank_capacity_bytes

    @property
    def rows_per_bank(self) -> int:
        return self.bank_capacity_bytes // self.row_size_bytes

    @property
    def access_granularity_bytes(self) -> int:
        return self.access_granularity_bits // 8

    @property
    def columns_per_row(self) -> int:
        """Number of 256-bit column accesses per row."""
        return self.row_size_bytes // self.access_granularity_bytes

    @property
    def elements_per_access(self) -> int:
        """BF16 elements delivered by one 256-bit access."""
        return self.access_granularity_bits // 16

    @property
    def global_buffer_slots(self) -> int:
        """Number of 256-bit slots in the global buffer."""
        return self.global_buffer_bytes // self.access_granularity_bytes


#: Geometry used by the paper: 16 banks x 32 MB = 512 MB per channel.
GDDR6_PIM_GEOMETRY = ChannelGeometry()
