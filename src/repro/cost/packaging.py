"""Packaging cost: conventional 2D and interposer-based 2.5D.

The CENT CXL controller uses conventional 2D packaging, whose cost is taken
as a fixed fraction of the chip cost (29%, §6).  The 2.5D model (interposer,
die placement, substrate assembly) is used for the NPU/HBM baselines in the
TCO comparison of §7.3.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PackagingCostModel"]


@dataclass(frozen=True)
class PackagingCostModel:
    """Cost of packaging one die (or one 2.5D assembly)."""

    #: 2D packaging cost as a fraction of the bare chip cost.
    cost_fraction_2d: float = 0.29
    #: Interposer cost per mm^2 (silicon interposer, 65 nm-class).
    interposer_cost_per_mm2: float = 0.035
    #: Die-placement cost per die in a 2.5D assembly.
    die_placement_cost: float = 5.0
    #: Substrate and assembly cost per package.
    substrate_assembly_cost: float = 12.0
    #: Assembly yield of the 2.5D flow.
    assembly_yield: float = 0.95

    def __post_init__(self) -> None:
        if not 0 <= self.cost_fraction_2d <= 1:
            raise ValueError("2D packaging fraction must be in [0, 1]")
        if not 0 < self.assembly_yield <= 1:
            raise ValueError("assembly yield must be in (0, 1]")

    def package_2d(self, chip_cost: float) -> float:
        """2D packaging cost for a chip of the given cost."""
        if chip_cost < 0:
            raise ValueError("chip cost must be non-negative")
        return chip_cost * self.cost_fraction_2d

    def package_2_5d(self, interposer_area_mm2: float, num_dies: int) -> float:
        """2.5D packaging cost for an assembly of ``num_dies`` on an interposer."""
        if interposer_area_mm2 <= 0 or num_dies <= 0:
            raise ValueError("interposer area and die count must be positive")
        raw = (self.interposer_cost_per_mm2 * interposer_area_mm2
               + self.die_placement_cost * num_dies
               + self.substrate_assembly_cost)
        return raw / self.assembly_yield
