"""Cost models: die cost, packaging, NRE and total cost of ownership.

The paper's TCO analysis (Table 4, Table 6, Figure 12) builds the cost of a
CENT CXL controller from die cost (wafer price, area, yield), packaging and
amortised non-recurring engineering (NRE), adds the GDDR6-PIM memory, switch
and host CPU to obtain the system hardware cost, and combines hardware with
operational (electricity) cost into owned and rental 3-year TCO rates that
feed the tokens-per-dollar comparison.
"""

from repro.cost.die import DieCostModel, WaferSpec, SEVEN_NM_WAFER
from repro.cost.packaging import PackagingCostModel
from repro.cost.nre import NreCostModel, NreBreakdown
from repro.cost.tco import (
    TcoModel,
    SystemCost,
    CENT_SYSTEM_COST,
    GPU_SYSTEM_COST,
    cent_controller_unit_cost,
)

__all__ = [
    "DieCostModel",
    "WaferSpec",
    "SEVEN_NM_WAFER",
    "PackagingCostModel",
    "NreCostModel",
    "NreBreakdown",
    "TcoModel",
    "SystemCost",
    "CENT_SYSTEM_COST",
    "GPU_SYSTEM_COST",
    "cent_controller_unit_cost",
]
