"""Non-recurring engineering (NRE) cost and its amortisation over volume.

Figure 12 breaks the CXL controller NRE into system NRE, package design, IP
licensing, front-end labour, back-end CAD, back-end labour and mask costs —
roughly $24M in total for a 7 nm design — and amortises it over the projected
production volume (~3M units), at which point the per-unit controller cost is
about $11.9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["NreBreakdown", "NreCostModel"]

#: Default NRE components (million USD), following the Moonwalk/supply-chain
#: costing methodology the paper cites for a 7 nm ASIC of ~20 mm^2.
DEFAULT_NRE_COMPONENTS_MUSD: Dict[str, float] = {
    "system_nre": 4.0,
    "package_design": 1.0,
    "ip_licensing": 6.0,
    "frontend_labor": 5.5,
    "backend_cad": 2.5,
    "backend_labor": 3.0,
    "mask": 2.0,
}


@dataclass(frozen=True)
class NreBreakdown:
    """NRE components in million USD."""

    components_musd: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_NRE_COMPONENTS_MUSD)
    )

    def __post_init__(self) -> None:
        for name, value in self.components_musd.items():
            if value < 0:
                raise ValueError(f"NRE component {name} must be non-negative")

    @property
    def total_musd(self) -> float:
        return sum(self.components_musd.values())

    @property
    def total_usd(self) -> float:
        return self.total_musd * 1e6


@dataclass(frozen=True)
class NreCostModel:
    """Amortises NRE over production volume."""

    breakdown: NreBreakdown = field(default_factory=NreBreakdown)

    def per_unit_cost(self, production_volume: int) -> float:
        """NRE dollars attributed to each produced unit."""
        if production_volume <= 0:
            raise ValueError("production volume must be positive")
        return self.breakdown.total_usd / production_volume

    def cost_vs_volume(self, volumes_millions) -> Dict[float, float]:
        """Per-unit NRE cost for a sweep of production volumes (in millions)."""
        return {volume: self.per_unit_cost(int(volume * 1e6)) for volume in volumes_millions}
