"""Die cost from wafer price, die area and yield.

A 300 mm 7 nm wafer costs $9,346 with a defect density of 0.0015/mm^2
(paper §6).  Yield follows the negative-binomial (Murphy-like) model used by
the supply-chain-aware costing literature the paper cites.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["WaferSpec", "DieCostModel", "SEVEN_NM_WAFER"]


@dataclass(frozen=True)
class WaferSpec:
    """Wafer price, size and process defect density."""

    diameter_mm: float = 300.0
    cost_usd: float = 9346.0
    defect_density_per_mm2: float = 0.0015
    #: Clustering parameter of the negative-binomial yield model.
    clustering_alpha: float = 3.0
    edge_exclusion_mm: float = 3.0

    def __post_init__(self) -> None:
        if self.diameter_mm <= 0 or self.cost_usd <= 0:
            raise ValueError("wafer size and cost must be positive")
        if self.defect_density_per_mm2 < 0:
            raise ValueError("defect density must be non-negative")


#: 7 nm wafer used for the CXL controller cost estimate.
SEVEN_NM_WAFER = WaferSpec()


@dataclass(frozen=True)
class DieCostModel:
    """Computes dies per wafer, yield and cost per good die."""

    wafer: WaferSpec = SEVEN_NM_WAFER

    def dies_per_wafer(self, die_area_mm2: float) -> int:
        """Gross dies per wafer with the standard circular-wafer correction."""
        if die_area_mm2 <= 0:
            raise ValueError("die area must be positive")
        usable_diameter = self.wafer.diameter_mm - 2 * self.wafer.edge_exclusion_mm
        wafer_area = math.pi * (usable_diameter / 2) ** 2
        edge_loss = math.pi * usable_diameter / math.sqrt(2 * die_area_mm2)
        return max(int(wafer_area / die_area_mm2 - edge_loss), 0)

    def yield_fraction(self, die_area_mm2: float) -> float:
        """Negative-binomial die yield."""
        if die_area_mm2 <= 0:
            raise ValueError("die area must be positive")
        defects = self.wafer.defect_density_per_mm2 * die_area_mm2
        alpha = self.wafer.clustering_alpha
        return (1.0 + defects / alpha) ** (-alpha)

    def cost_per_good_die(self, die_area_mm2: float) -> float:
        """Wafer cost amortised over yielded dies."""
        gross = self.dies_per_wafer(die_area_mm2)
        if gross == 0:
            raise ValueError(f"die of {die_area_mm2} mm^2 does not fit on the wafer")
        good = gross * self.yield_fraction(die_area_mm2)
        return self.wafer.cost_usd / good
