"""Total cost of ownership (Tables 4 and 6) and tokens per dollar.

Owned TCO amortises the hardware cost over three years and adds the
electricity cost of the average power draw at $0.139/kWh.  Rental TCO uses
cloud prices for the components that can be rented (the host CPU and the
GPUs) and the owned methodology for the CXL devices, for which no rental
reference exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.cost.die import DieCostModel
from repro.cost.nre import NreCostModel
from repro.cost.packaging import PackagingCostModel

__all__ = [
    "SystemCost",
    "TcoModel",
    "cent_controller_unit_cost",
    "CENT_SYSTEM_COST",
    "GPU_SYSTEM_COST",
    "HardwarePrices",
]

#: Electricity price used for the operational cost ($ per kWh).
ELECTRICITY_USD_PER_KWH = 0.139

#: Amortisation window of the owned-TCO analysis.
TCO_YEARS = 3
HOURS_PER_YEAR = 24 * 365


@dataclass(frozen=True)
class HardwarePrices:
    """Unit prices of the hardware components (Table 6 and §6)."""

    xeon_gold_6430_usd: float = 2128.0
    a100_80gb_usd: float = 10000.0
    gddr6_pim_512gb_usd: float = 11873.0
    cxl_switch_usd: float = 490.0
    #: Cloud rental of the host CPU VM, $/hour.
    host_rental_per_hour: float = 0.35
    #: Cloud rental of one A100 80GB, $/hour.
    a100_rental_per_hour: float = 1.35


DEFAULT_PRICES = HardwarePrices()


def cent_controller_unit_cost(
    die_area_mm2: float = 19.0,
    production_volume: int = 3_000_000,
    die_model: DieCostModel | None = None,
    packaging: PackagingCostModel | None = None,
    nre: NreCostModel | None = None,
) -> Dict[str, float]:
    """Per-unit cost breakdown of the CENT CXL controller (Figure 12).

    Returns a dict with ``die``, ``packaging``, ``nre`` and ``total`` entries.
    """
    die_model = die_model or DieCostModel()
    packaging = packaging or PackagingCostModel()
    nre = nre or NreCostModel()
    die_cost = die_model.cost_per_good_die(die_area_mm2)
    packaging_cost = packaging.package_2d(die_cost)
    nre_cost = nre.per_unit_cost(production_volume)
    return {
        "die": die_cost,
        "packaging": packaging_cost,
        "nre": nre_cost,
        "total": die_cost + packaging_cost + nre_cost,
    }


@dataclass(frozen=True)
class SystemCost:
    """Hardware bill of materials and power of one inference system."""

    name: str
    components_usd: Dict[str, float] = field(default_factory=dict)
    average_power_w: float = 0.0
    rental_per_hour_usd: float = 0.0

    def __post_init__(self) -> None:
        if self.average_power_w < 0 or self.rental_per_hour_usd < 0:
            raise ValueError("power and rental rate must be non-negative")
        for component, cost in self.components_usd.items():
            if cost < 0:
                raise ValueError(f"component {component} has negative cost")

    @property
    def hardware_cost_usd(self) -> float:
        return sum(self.components_usd.values())


def _cent_system_cost(num_devices: int = 32,
                      prices: HardwarePrices = DEFAULT_PRICES,
                      average_power_w: float = 1160.0) -> SystemCost:
    controller = cent_controller_unit_cost()["total"]
    return SystemCost(
        name=f"CENT-{num_devices}dev",
        components_usd={
            "host_cpu": prices.xeon_gold_6430_usd,
            "gddr6_pim": prices.gddr6_pim_512gb_usd * num_devices / 32,
            "cxl_controllers": controller * num_devices,
            "cxl_switch": prices.cxl_switch_usd,
        },
        average_power_w=average_power_w,
        rental_per_hour_usd=prices.host_rental_per_hour,
    )


def _gpu_system_cost(num_gpus: int = 4,
                     prices: HardwarePrices = DEFAULT_PRICES,
                     average_power_w: float = 1400.0) -> SystemCost:
    return SystemCost(
        name=f"GPU-{num_gpus}xA100",
        components_usd={
            "host_cpu": prices.xeon_gold_6430_usd,
            "gpus": prices.a100_80gb_usd * num_gpus,
        },
        average_power_w=average_power_w,
        rental_per_hour_usd=prices.host_rental_per_hour
        + prices.a100_rental_per_hour * num_gpus,
    )


#: Default system costs of the paper's main comparison (Table 6).
CENT_SYSTEM_COST = _cent_system_cost()
GPU_SYSTEM_COST = _gpu_system_cost()


@dataclass(frozen=True)
class TcoModel:
    """Owned / rental 3-year TCO and cost-efficiency metrics."""

    electricity_usd_per_kwh: float = ELECTRICITY_USD_PER_KWH
    years: int = TCO_YEARS

    def __post_init__(self) -> None:
        if self.electricity_usd_per_kwh < 0 or self.years <= 0:
            raise ValueError("electricity price must be non-negative, years positive")

    @property
    def amortisation_hours(self) -> float:
        return self.years * HOURS_PER_YEAR

    def operational_cost_per_hour(self, average_power_w: float) -> float:
        return average_power_w / 1000.0 * self.electricity_usd_per_kwh

    def owned_tco_per_hour(self, system: SystemCost) -> float:
        hardware = system.hardware_cost_usd / self.amortisation_hours
        return hardware + self.operational_cost_per_hour(system.average_power_w)

    def rental_tco_per_hour(self, system: SystemCost,
                            rented_components: float | None = None) -> float:
        """Rental TCO: rented components at cloud prices, the rest owned.

        ``rented_components`` overrides the dollar value of components priced
        via rental; by default the system's ``rental_per_hour_usd`` covers the
        rentable part and everything else (e.g. the CXL devices) uses the
        owned methodology.
        """
        rented = system.rental_per_hour_usd if rented_components is None else rented_components
        owned_components = {
            key: value for key, value in system.components_usd.items()
            if key not in ("host_cpu", "gpus")
        }
        owned_hardware = sum(owned_components.values()) / self.amortisation_hours
        operational = self.operational_cost_per_hour(system.average_power_w) \
            if owned_components else 0.0
        return rented + owned_hardware + operational

    def tokens_per_dollar(self, throughput_tokens_per_s: float, tco_per_hour: float) -> float:
        if throughput_tokens_per_s < 0 or tco_per_hour <= 0:
            raise ValueError("throughput must be non-negative and TCO positive")
        return throughput_tokens_per_s * 3600.0 / tco_per_hour

    # ------------------------------------------------------------------ convenience

    def cent_tco_per_hour(self, num_devices: int = 32, average_power_w: float = 1160.0,
                          owned: bool = True) -> float:
        system = _cent_system_cost(num_devices, average_power_w=average_power_w)
        return self.owned_tco_per_hour(system) if owned else self.rental_tco_per_hour(system)

    def gpu_tco_per_hour(self, num_gpus: int = 4, average_power_w: float = 1400.0,
                         owned: bool = True) -> float:
        system = _gpu_system_cost(num_gpus, average_power_w=average_power_w)
        return self.owned_tco_per_hour(system) if owned else self.rental_tco_per_hour(system)
