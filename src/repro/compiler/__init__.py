"""Compiler from LLM operations to CENT instruction programs.

The CENT library exposes Python APIs for the common LLM operations (GEMV,
RMSNorm, RoPE, Softmax, SiLU/GeLU, element-wise products, residual additions)
and an in-house compiler lowers them to the arithmetic and data-movement
instructions of §4.3.  The unit of compilation is a *per-channel* instruction
stream: all PIM channels assigned to a transformer block execute the same
stream over their own slice of the weights, so the performance model needs to
simulate only one representative channel.

Operations that the PIM channels cannot perform (square root, division,
exponent normalisation, residual addition, RoPE packing) are emitted as
:class:`~repro.compiler.operations.PnmTask` work items handled by the PNM
accelerators and RISC-V cores.
"""

from repro.compiler.operations import CompiledOperation, PnmTask, PnmUnit
from repro.compiler.allocator import ChannelAllocator, MatrixPlacement
from repro.compiler.gemv import compile_gemv
from repro.compiler.elementwise import compile_elementwise_multiply, compile_activation
from repro.compiler.normalization import compile_rmsnorm
from repro.compiler.rope import compile_rope
from repro.compiler.attention import compile_attention
from repro.compiler.ffn import compile_ffn
from repro.compiler.transformer import BlockProgram, compile_transformer_block

__all__ = [
    "CompiledOperation",
    "PnmTask",
    "PnmUnit",
    "ChannelAllocator",
    "MatrixPlacement",
    "compile_gemv",
    "compile_elementwise_multiply",
    "compile_activation",
    "compile_rmsnorm",
    "compile_rope",
    "compile_attention",
    "compile_ffn",
    "BlockProgram",
    "compile_transformer_block",
]
