"""Rotary positional embedding compilation (Figure 10e).

The RISC-V PNM cores first transform each 128-element attention head into 64
complex pairs, the PIM PUs multiply the complex values with the pre-loaded
rotation weights (element-wise multiplications), and the RISC-V cores convert
the result back to the real representation.  RoPE is applied to the query and
key vectors of every head.
"""

from __future__ import annotations

from repro.compiler.elementwise import compile_elementwise_multiply
from repro.compiler.operations import CompiledOperation, PnmTask, PnmUnit
from repro.dram.geometry import ChannelGeometry, GDDR6_PIM_GEOMETRY

__all__ = ["compile_rope"]


def compile_rope(
    name: str,
    num_elements: int,
    num_channels: int,
    geometry: ChannelGeometry = GDDR6_PIM_GEOMETRY,
) -> CompiledOperation:
    """Compile RoPE over ``num_elements`` query/key elements.

    ``num_elements`` is the total number of vector elements rotated, i.e.
    ``d_model + kv_dim`` for one token (query heads plus key heads).
    """
    if num_elements <= 0 or num_channels <= 0:
        raise ValueError("element and channel counts must be positive")
    # Complex multiply: 4 real multiplies + 2 adds per complex pair, i.e. two
    # element-wise multiply passes over the packed representation.
    first = compile_elementwise_multiply(f"{name}.cmul_real", num_elements, num_channels,
                                         geometry=geometry)
    second = compile_elementwise_multiply(f"{name}.cmul_imag", num_elements, num_channels,
                                          geometry=geometry)
    program = first.program.concat(second.program)
    program.label = name
    pnm_tasks = [
        PnmTask(PnmUnit.RISCV, num_elements=num_elements, routine="rope_pack"),
        PnmTask(PnmUnit.RISCV, num_elements=num_elements, routine="rope_unpack"),
    ]
    return CompiledOperation(
        name=name,
        program=program,
        pnm_tasks=pnm_tasks,
        parallel_channels=num_channels,
        flops=6 * num_elements,
        dram_bytes_read=first.dram_bytes_read + second.dram_bytes_read,
    )
