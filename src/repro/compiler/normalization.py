"""RMSNorm compilation (Figure 10b).

RMSNorm(x) = x / sqrt(mean(x^2)) * gamma.  The vector dot product ``x . x``
runs on the PIM channels (MAC over neighbouring banks, using only one of each
pair of PUs), the square root and inversion run on the PNM RISC-V cores, and
the two element-wise scalings (by the normalisation factor and by the weight
vector gamma) run on the PIM channels with ``EW_MUL``.
"""

from __future__ import annotations

from repro.compiler.elementwise import compile_elementwise_multiply
from repro.compiler.operations import CompiledOperation, PnmTask, PnmUnit
from repro.dram.geometry import ChannelGeometry, GDDR6_PIM_GEOMETRY
from repro.isa.instructions import MacAllBank, ReadMacRegister, WriteBias
from repro.isa.program import Program

__all__ = ["compile_rmsnorm"]


def compile_rmsnorm(
    name: str,
    hidden_dim: int,
    num_channels: int,
    geometry: ChannelGeometry = GDDR6_PIM_GEOMETRY,
    bytes_per_element: int = 2,
) -> CompiledOperation:
    """Compile one RMSNorm over a ``hidden_dim`` embedding vector."""
    if hidden_dim <= 0 or num_channels <= 0:
        raise ValueError("hidden dimension and channel count must be positive")
    ch_mask = (1 << num_channels) - 1
    program = Program(label=name)

    # Vector dot product x . x: the vector is stored in neighbouring banks,
    # one PU of each pair accumulates.  Elements per micro-op: half of the
    # banks are producers, 16 lanes each.
    elements_per_channel = -(-hidden_dim // num_channels)
    lanes = (geometry.num_banks // 2) * geometry.elements_per_access
    dot_micro_ops = -(-elements_per_channel // lanes)
    program.append(WriteBias(ch_mask=ch_mask, rs=0))
    program.append(MacAllBank(ch_mask=ch_mask, op_size=dot_micro_ops, row=0, column=0, reg_id=0))
    program.append(ReadMacRegister(ch_mask=ch_mask, rd=0, reg_id=0))

    # Scaling by 1/sqrt(mean) and by gamma: two element-wise multiplies.
    scale = compile_elementwise_multiply(
        f"{name}.scale", hidden_dim, num_channels, geometry=geometry
    )
    gamma = compile_elementwise_multiply(
        f"{name}.gamma", hidden_dim, num_channels, geometry=geometry
    )
    program.extend(scale.program)
    program.extend(gamma.program)

    pnm_tasks = [
        # Partial sums from each channel are reduced and combined ...
        PnmTask(PnmUnit.REDUCTION, num_elements=max(num_channels, 1)),
        # ... then 1/sqrt(.) runs on a RISC-V core (a single scalar).
        PnmTask(PnmUnit.RISCV, num_elements=1, routine="sqrt_inv"),
    ]
    total_flops = 2 * hidden_dim + 2 * hidden_dim  # dot product + two scalings
    return CompiledOperation(
        name=name,
        program=program,
        pnm_tasks=pnm_tasks,
        parallel_channels=num_channels,
        flops=total_flops,
        dram_bytes_read=3 * hidden_dim * bytes_per_element,
    )
