"""Weight and KV-cache placement inside the PIM channels of one block.

The allocator assigns matrices to DRAM rows.  All PIM channels assigned to a
transformer block use an identical layout over their own slice of the matrix
rows, so a single allocator instance describes every channel.  The placement
records where each matrix starts and how its rows map onto DRAM rows and
columns; the GEMV compiler uses this to emit ``MAC_ABK`` instructions with the
correct row/column addresses, and the capacity check guards against mapping a
block onto too few channels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.dram.geometry import ChannelGeometry, GDDR6_PIM_GEOMETRY

__all__ = ["MatrixPlacement", "ChannelAllocator"]


@dataclass(frozen=True)
class MatrixPlacement:
    """Placement of one matrix slice inside every bank of a channel.

    The matrix is partitioned along its rows across the 16 banks of the
    channel; each bank stores ``rows_per_bank`` matrix rows contiguously
    starting at DRAM row ``base_row``.
    """

    name: str
    base_row: int
    rows_per_bank: int
    columns_per_matrix_row: int
    dram_rows: int

    @property
    def end_row(self) -> int:
        return self.base_row + self.dram_rows


class ChannelAllocator:
    """Tracks DRAM-row usage of the channels assigned to one block."""

    def __init__(self, geometry: ChannelGeometry = GDDR6_PIM_GEOMETRY) -> None:
        self.geometry = geometry
        self.next_row = 0
        self.placements: Dict[str, MatrixPlacement] = {}

    # ------------------------------------------------------------------ allocation

    def allocate_matrix(self, name: str, rows_per_bank: int, columns: int) -> MatrixPlacement:
        """Allocate a matrix slice of ``rows_per_bank`` rows per bank.

        ``columns`` is the full matrix width in BF16 elements; each matrix row
        occupies ``ceil(columns / 16)`` DRAM columns.  Rows are packed into
        DRAM rows without splitting a matrix row across DRAM rows unless it is
        wider than one DRAM row, in which case it spans whole DRAM rows.
        """
        if name in self.placements:
            raise ValueError(f"matrix {name!r} is already allocated")
        if rows_per_bank <= 0 or columns <= 0:
            raise ValueError("matrix dimensions must be positive")
        cols_per_matrix_row = -(-columns // self.geometry.elements_per_access)
        dram_columns = self.geometry.columns_per_row
        if cols_per_matrix_row >= dram_columns:
            dram_rows_per_matrix_row = -(-cols_per_matrix_row // dram_columns)
            dram_rows = rows_per_bank * dram_rows_per_matrix_row
        else:
            matrix_rows_per_dram_row = dram_columns // cols_per_matrix_row
            dram_rows = -(-rows_per_bank // matrix_rows_per_dram_row)
        placement = MatrixPlacement(
            name=name,
            base_row=self.next_row,
            rows_per_bank=rows_per_bank,
            columns_per_matrix_row=cols_per_matrix_row,
            dram_rows=dram_rows,
        )
        if placement.end_row > self.geometry.rows_per_bank:
            raise MemoryError(
                f"matrix {name!r} does not fit: needs rows up to {placement.end_row}, "
                f"bank has {self.geometry.rows_per_bank} rows.  Assign more channels "
                "to this block."
            )
        self.placements[name] = placement
        self.next_row = placement.end_row
        return placement

    def placement(self, name: str) -> MatrixPlacement:
        if name not in self.placements:
            raise KeyError(f"matrix {name!r} has not been allocated")
        return self.placements[name]

    # ------------------------------------------------------------------ capacity

    @property
    def used_bytes_per_bank(self) -> int:
        return self.next_row * self.geometry.row_size_bytes

    @property
    def used_bytes_per_channel(self) -> int:
        return self.used_bytes_per_bank * self.geometry.num_banks

    @property
    def free_rows(self) -> int:
        return self.geometry.rows_per_bank - self.next_row

    def utilization(self) -> float:
        """Fraction of the channel capacity currently allocated."""
        return self.next_row / self.geometry.rows_per_bank
