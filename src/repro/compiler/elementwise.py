"""Element-wise operations and activation functions on the PIM channels.

Element-wise multiplication uses the ``EW_MUL`` instruction: the two operand
vectors are stored in two banks of each bank group and the product lands in a
third bank of the group, so a channel processes ``4 groups x 16 lanes``
elements per micro-op.  Activation functions use the per-PU lookup tables via
the ``AF`` instruction, evaluated 16 lanes x 16 PUs at a time.
"""

from __future__ import annotations

from repro.compiler.operations import CompiledOperation
from repro.dram.geometry import ChannelGeometry, GDDR6_PIM_GEOMETRY
from repro.isa.instructions import ActivationFunction, ElementwiseMul
from repro.isa.program import Program
from repro.numerics.lut import AF_TABLE_IDS

__all__ = ["compile_elementwise_multiply", "compile_activation"]


def compile_elementwise_multiply(
    name: str,
    num_elements: int,
    num_channels: int,
    geometry: ChannelGeometry = GDDR6_PIM_GEOMETRY,
    row: int = 0,
    bytes_per_element: int = 2,
) -> CompiledOperation:
    """Compile an element-wise product of two ``num_elements`` vectors."""
    if num_elements <= 0 or num_channels <= 0:
        raise ValueError("element and channel counts must be positive")
    ch_mask = (1 << num_channels) - 1
    elements_per_channel = -(-num_elements // num_channels)
    elements_per_micro_op = geometry.num_bank_groups * geometry.elements_per_access
    op_size = -(-elements_per_channel // elements_per_micro_op)
    program = Program(label=name)
    program.append(ElementwiseMul(ch_mask=ch_mask, op_size=op_size, row=row, column=0))
    return CompiledOperation(
        name=name,
        program=program,
        parallel_channels=num_channels,
        flops=num_elements,
        dram_bytes_read=2 * num_elements * bytes_per_element,
    )


def compile_activation(
    name: str,
    num_elements: int,
    num_channels: int,
    function: str = "sigmoid",
    geometry: ChannelGeometry = GDDR6_PIM_GEOMETRY,
    bytes_per_element: int = 2,
) -> CompiledOperation:
    """Compile a lookup-table activation over a ``num_elements`` vector."""
    if num_elements <= 0 or num_channels <= 0:
        raise ValueError("element and channel counts must be positive")
    if function not in AF_TABLE_IDS:
        raise ValueError(f"unknown activation function {function!r}")
    ch_mask = (1 << num_channels) - 1
    elements_per_channel = -(-num_elements // num_channels)
    elements_per_instruction = geometry.num_banks * geometry.elements_per_access
    num_instructions = -(-elements_per_channel // elements_per_instruction)
    program = Program(label=name)
    af_id = AF_TABLE_IDS[function]
    for _ in range(num_instructions):
        program.append(ActivationFunction(ch_mask=ch_mask, af_id=af_id, reg_id=0))
    return CompiledOperation(
        name=name,
        program=program,
        parallel_channels=num_channels,
        flops=num_elements,
        dram_bytes_read=num_elements * bytes_per_element,
    )
