"""Feed-forward network compilation (Figure 10a/c).

Llama2's gated FFN computes ``W2 (SiLU(W1 x) * (W3 x))``: two parallel
fully-connected layers, a SiLU activation, an element-wise product and a
final fully-connected layer.  OPT/GPT3-style models use the plain two-matrix
FFN with GeLU.  The GEMVs run on the PIM channels; SiLU/GeLU decompose into a
sigmoid/tanh lookup (``AF``) plus an element-wise product (``EW_MUL``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.compiler.allocator import ChannelAllocator
from repro.compiler.elementwise import compile_activation, compile_elementwise_multiply
from repro.compiler.gemv import compile_gemv
from repro.compiler.operations import CompiledOperation
from repro.dram.geometry import ChannelGeometry, GDDR6_PIM_GEOMETRY
from repro.models.config import FfnKind, ModelConfig

__all__ = ["compile_ffn", "FfnPrograms"]


@dataclass
class FfnPrograms:
    """Compiled operations of one feed-forward layer."""

    operations: List[CompiledOperation]


def compile_ffn(
    model: ModelConfig,
    num_channels: int,
    allocator: Optional[ChannelAllocator] = None,
    geometry: ChannelGeometry = GDDR6_PIM_GEOMETRY,
) -> FfnPrograms:
    """Compile the FFN of one transformer block."""
    if allocator is None:
        allocator = ChannelAllocator(geometry)
    operations: List[CompiledOperation] = []

    if model.ffn_kind is FfnKind.GATED:
        operations.append(compile_gemv(
            "ffn.w1", out_dim=model.d_ff, in_dim=model.d_model,
            num_channels=num_channels, allocator=allocator, geometry=geometry,
        ))
        operations.append(compile_gemv(
            "ffn.w3", out_dim=model.d_ff, in_dim=model.d_model,
            num_channels=num_channels, allocator=allocator, geometry=geometry,
        ))
        operations.append(compile_activation(
            "ffn.silu", num_elements=model.d_ff, num_channels=num_channels,
            function="sigmoid", geometry=geometry,
        ))
        # SiLU(x) = x * sigmoid(x), then the gate multiplies the W3 branch.
        operations.append(compile_elementwise_multiply(
            "ffn.silu_product", num_elements=model.d_ff, num_channels=num_channels,
            geometry=geometry,
        ))
        operations.append(compile_elementwise_multiply(
            "ffn.gate", num_elements=model.d_ff, num_channels=num_channels,
            geometry=geometry,
        ))
        operations.append(compile_gemv(
            "ffn.w2", out_dim=model.d_model, in_dim=model.d_ff,
            num_channels=num_channels, allocator=allocator, geometry=geometry,
        ))
    else:
        operations.append(compile_gemv(
            "ffn.fc1", out_dim=model.d_ff, in_dim=model.d_model,
            num_channels=num_channels, allocator=allocator, geometry=geometry,
        ))
        operations.append(compile_activation(
            "ffn.gelu", num_elements=model.d_ff, num_channels=num_channels,
            function="gelu", geometry=geometry,
        ))
        operations.append(compile_elementwise_multiply(
            "ffn.gelu_product", num_elements=model.d_ff, num_channels=num_channels,
            geometry=geometry,
        ))
        operations.append(compile_gemv(
            "ffn.fc2", out_dim=model.d_model, in_dim=model.d_ff,
            num_channels=num_channels, allocator=allocator, geometry=geometry,
        ))

    return FfnPrograms(operations=operations)
