"""Transformer-block compiler (Figure 10a).

``compile_transformer_block`` lowers one decoder block — attention with
rotary embedding and grouped-query support, residual connections, RMSNorm and
the feed-forward network — onto the PIM channels assigned to it, producing a
:class:`BlockProgram`: the ordered list of compiled operations together with
the residual-connection PNM tasks.  The performance model consumes a
``BlockProgram`` to obtain the PIM / PNM / CXL latency breakdown of a
pipeline stage or tensor-parallel shard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.compiler.allocator import ChannelAllocator
from repro.compiler.attention import compile_attention
from repro.compiler.ffn import compile_ffn
from repro.compiler.gemv import compile_gemv
from repro.compiler.normalization import compile_rmsnorm
from repro.compiler.operations import CompiledOperation, PnmTask, PnmUnit
from repro.compiler.rope import compile_rope
from repro.dram.geometry import ChannelGeometry, GDDR6_PIM_GEOMETRY
from repro.models.config import ModelConfig

__all__ = ["BlockProgram", "compile_transformer_block"]


@dataclass
class BlockProgram:
    """All compiled operations of one transformer block for one token."""

    model: ModelConfig
    context_length: int
    num_channels: int
    attention_channels: int = 0
    operations: List[CompiledOperation] = field(default_factory=list)
    allocator: ChannelAllocator = field(default_factory=ChannelAllocator)

    def __post_init__(self) -> None:
        if self.attention_channels <= 0:
            self.attention_channels = self.num_channels

    @property
    def total_flops(self) -> int:
        return sum(op.flops for op in self.operations)

    @property
    def total_dram_bytes(self) -> int:
        return sum(op.dram_bytes_read for op in self.operations)

    @property
    def total_instructions(self) -> int:
        return sum(len(op.program) for op in self.operations)

    @property
    def pnm_tasks(self) -> List[PnmTask]:
        tasks: List[PnmTask] = []
        for op in self.operations:
            tasks.extend(op.pnm_tasks)
        return tasks

    def operation(self, name: str) -> CompiledOperation:
        for op in self.operations:
            if op.name == name:
                return op
        raise KeyError(f"block has no operation named {name!r}")

    def mac_fraction(self) -> float:
        """Fraction of element-level arithmetic operations that are MACs.

        The paper reports this exceeds 99% for a transformer block, which
        motivates the hierarchical PIM-PNM split.  Micro-op counts are
        weighted by the number of BF16 element operations each performs: a
        ``MAC_ABK`` micro-op drives all 16 near-bank PUs over 16 lanes, an
        ``EW_MUL`` micro-op multiplies 16 lanes in each of the 4 bank groups,
        and PNM tasks are already expressed in elements.
        """
        from repro.isa.instructions import Opcode

        mac_elements = 0
        other_elements = 0
        banks = 16
        lanes = 16
        groups = 4
        for op in self.operations:
            stats = op.program.stats
            mac_elements += stats.micro_ops(Opcode.MAC_ABK) * banks * lanes
            mac_elements += stats.micro_ops(Opcode.EW_MUL) * groups * lanes
            other_elements += stats.micro_ops(Opcode.AF) * banks * lanes
        other_elements += sum(task.num_elements for task in self.pnm_tasks)
        total = mac_elements + other_elements
        return mac_elements / total if total else 0.0


def compile_transformer_block(
    model: ModelConfig,
    context_length: int,
    num_channels: int,
    attention_channels: int | None = None,
    geometry: ChannelGeometry = GDDR6_PIM_GEOMETRY,
) -> BlockProgram:
    """Compile one transformer block for a single token at ``context_length``.

    ``num_channels`` is the channel count executing the sharded
    fully-connected layers; ``attention_channels`` (defaulting to
    ``num_channels``) is the channel count of the master device that runs the
    normalisation, RoPE and attention layers under tensor parallelism.
    """
    if context_length <= 0:
        raise ValueError("context length must be positive")
    if context_length > model.max_context:
        raise ValueError(
            f"context {context_length} exceeds {model.name}'s maximum "
            f"of {model.max_context}"
        )
    if num_channels <= 0:
        raise ValueError("num_channels must be positive")
    if attention_channels is None:
        attention_channels = num_channels
    if attention_channels <= 0:
        raise ValueError("attention_channels must be positive")

    allocator = ChannelAllocator(geometry)
    attention_allocator = (allocator if attention_channels == num_channels
                           else ChannelAllocator(geometry))
    operations: List[CompiledOperation] = []

    # --------------------------------------------------------------- attention
    operations.append(compile_rmsnorm(
        "attn.rmsnorm", model.d_model, attention_channels, geometry=geometry))
    operations.append(compile_gemv(
        "attn.wq", out_dim=model.d_model, in_dim=model.d_model,
        num_channels=num_channels, allocator=allocator, geometry=geometry))
    operations.append(compile_gemv(
        "attn.wk", out_dim=model.kv_dim, in_dim=model.d_model,
        num_channels=num_channels, allocator=allocator, geometry=geometry))
    operations.append(compile_gemv(
        "attn.wv", out_dim=model.kv_dim, in_dim=model.d_model,
        num_channels=num_channels, allocator=allocator, geometry=geometry))
    if model.positional_encoding == "rotary":
        operations.append(compile_rope(
            "attn.rope", num_elements=model.d_model + model.kv_dim,
            num_channels=attention_channels, geometry=geometry))
    attention = compile_attention(
        model, context_length, attention_channels,
        allocator=attention_allocator, geometry=geometry)
    operations.extend(attention.operations)
    operations.append(compile_gemv(
        "attn.wo", out_dim=model.d_model, in_dim=model.d_model,
        num_channels=num_channels, allocator=allocator, geometry=geometry))
    residual_1 = CompiledOperation(
        name="attn.residual",
        program=_empty_program("attn.residual"),
        pnm_tasks=[PnmTask(PnmUnit.RISCV, num_elements=model.d_model,
                           routine="residual_add")],
        parallel_channels=attention_channels,
        flops=model.d_model,
    )
    operations.append(residual_1)

    # --------------------------------------------------------------- feed forward
    operations.append(compile_rmsnorm(
        "ffn.rmsnorm", model.d_model, attention_channels, geometry=geometry))
    ffn = compile_ffn(model, num_channels, allocator=allocator, geometry=geometry)
    operations.extend(ffn.operations)
    residual_2 = CompiledOperation(
        name="ffn.residual",
        program=_empty_program("ffn.residual"),
        pnm_tasks=[PnmTask(PnmUnit.RISCV, num_elements=model.d_model,
                           routine="residual_add")],
        parallel_channels=attention_channels,
        flops=model.d_model,
    )
    operations.append(residual_2)

    return BlockProgram(
        model=model,
        context_length=context_length,
        num_channels=num_channels,
        attention_channels=attention_channels,
        operations=operations,
        allocator=allocator,
    )


def _empty_program(label: str):
    from repro.isa.program import Program

    return Program(label=label)
