"""Self-attention compilation: KV-cache update, scores, Softmax, output.

The query/key/value projections are ordinary weight GEMVs handled by the
transformer-block compiler; this module covers the context-length-dependent
parts:

* appending the new key/value vectors to the caches (``WR_SBK`` writes),
* the attention-score GEMV of the query against the key cache,
* Softmax (exponent and reduction on the PNM accelerators, normalisation on
  the RISC-V cores, scaling on the PIM channels),
* the attention-output GEMV of the score vector against the value cache.

Grouped-query attention is supported by unrolling the narrow GEMM into
``group_size`` GEMVs over the shared key/value caches (paper §5.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.compiler.allocator import ChannelAllocator
from repro.compiler.elementwise import compile_elementwise_multiply
from repro.compiler.gemv import compile_gemv
from repro.compiler.operations import CompiledOperation, PnmTask, PnmUnit
from repro.dram.geometry import ChannelGeometry, GDDR6_PIM_GEOMETRY
from repro.isa.instructions import WriteSingleBank
from repro.isa.program import Program
from repro.models.config import ModelConfig

__all__ = ["compile_attention", "AttentionPrograms"]


@dataclass
class AttentionPrograms:
    """The compiled operations of one self-attention layer (context part)."""

    kv_append: CompiledOperation
    scores: CompiledOperation
    softmax: CompiledOperation
    output: CompiledOperation

    @property
    def operations(self) -> List[CompiledOperation]:
        return [self.kv_append, self.scores, self.softmax, self.output]


def compile_attention(
    model: ModelConfig,
    context_length: int,
    num_channels: int,
    allocator: Optional[ChannelAllocator] = None,
    geometry: ChannelGeometry = GDDR6_PIM_GEOMETRY,
    bytes_per_element: int = 2,
) -> AttentionPrograms:
    """Compile the context-dependent attention operations for one token."""
    if context_length <= 0:
        raise ValueError("context length must be positive")
    if num_channels <= 0:
        raise ValueError("num_channels must be positive")
    if allocator is None:
        allocator = ChannelAllocator(geometry)
    ch_mask = (1 << num_channels) - 1

    head_dim = model.head_dim
    kv_rows = model.num_kv_heads * context_length
    group_size = model.gqa_group_size

    # Key and value caches are allocated for the full supported context so
    # the placement does not move as the sequence grows.
    max_rows_per_bank = -(-(model.num_kv_heads * model.max_context)
                          // (num_channels * geometry.num_banks))
    key_placement = allocator.allocate_matrix("kv_cache.key", max_rows_per_bank, head_dim)
    value_placement = allocator.allocate_matrix("kv_cache.value", max_rows_per_bank, head_dim)

    # ------------------------------------------------------------- KV append
    kv_program = Program(label="attention.kv_append")
    slots_per_head = -(-head_dim // geometry.elements_per_access)
    heads_per_channel = -(-model.num_kv_heads // num_channels)
    for head in range(max(heads_per_channel, 1)):
        for placement in (key_placement, value_placement):
            kv_program.append(
                WriteSingleBank(
                    ch_id=0,
                    op_size=slots_per_head,
                    bank=head % geometry.num_banks,
                    row=placement.base_row,
                    column=0,
                    rs=0,
                )
            )
    kv_append = CompiledOperation(
        name="attention.kv_append",
        program=kv_program,
        parallel_channels=num_channels,
        flops=0,
        dram_bytes_read=0,
    )

    # ------------------------------------------------------------- scores
    scores = compile_gemv(
        "attention.scores",
        out_dim=kv_rows,
        in_dim=head_dim,
        num_channels=num_channels,
        placement=key_placement,
        repeat=group_size,
        geometry=geometry,
        ch_mask=ch_mask,
        bytes_per_element=bytes_per_element,
    )

    # ------------------------------------------------------------- softmax
    score_elements = model.num_heads * context_length
    softmax_scale = compile_elementwise_multiply(
        "attention.softmax_scale", score_elements, num_channels, geometry=geometry
    )
    softmax = CompiledOperation(
        name="attention.softmax",
        program=softmax_scale.program,
        pnm_tasks=[
            PnmTask(PnmUnit.RISCV, num_elements=score_elements, routine="softmax_max"),
            PnmTask(PnmUnit.EXPONENT, num_elements=score_elements),
            PnmTask(PnmUnit.REDUCTION, num_elements=score_elements),
            PnmTask(PnmUnit.RISCV, num_elements=model.num_heads, routine="inverse"),
        ],
        parallel_channels=num_channels,
        flops=4 * score_elements,
        dram_bytes_read=score_elements * bytes_per_element,
    )

    # ------------------------------------------------------------- output
    output = compile_gemv(
        "attention.output",
        out_dim=model.num_kv_heads * head_dim,
        in_dim=context_length,
        num_channels=num_channels,
        placement=value_placement,
        repeat=group_size,
        geometry=geometry,
        ch_mask=ch_mask,
        bytes_per_element=bytes_per_element,
    )
    # The value cache is read once per query head; correct the traffic to the
    # unrolled volume (out_dim above is per KV head).
    output.flops = 2 * model.num_heads * head_dim * context_length
    output.dram_bytes_read = model.num_heads * head_dim * context_length * bytes_per_element

    return AttentionPrograms(kv_append=kv_append, scores=scores, softmax=softmax, output=output)
