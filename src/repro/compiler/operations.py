"""Data structures produced by the compiler."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List

from repro.isa.program import Program

__all__ = ["PnmUnit", "PnmTask", "CompiledOperation"]


class PnmUnit(enum.Enum):
    """PNM execution resources a task can target."""

    ACCUMULATOR = "accumulator"
    REDUCTION = "reduction"
    EXPONENT = "exponent"
    RISCV = "riscv"


@dataclass(frozen=True)
class PnmTask:
    """One unit of PNM work: which resource, which routine, how many elements."""

    unit: PnmUnit
    num_elements: int
    routine: str = ""

    def __post_init__(self) -> None:
        if self.num_elements <= 0:
            raise ValueError("a PNM task must process at least one element")
        if self.unit is PnmUnit.RISCV and not self.routine:
            raise ValueError("RISC-V tasks must name their routine")


@dataclass
class CompiledOperation:
    """One LLM operation lowered onto the CENT hardware.

    Attributes
    ----------
    name:
        Human-readable operation name, e.g. ``"ffn.w1_gemv"``.
    program:
        Per-channel PIM instruction stream.  Every channel assigned to the
        operation executes the same stream over its own weight slice.
    pnm_tasks:
        PNM accelerator / RISC-V work items executed on the device's shared
        PNM units after (or between) the PIM phases.
    parallel_channels:
        Number of PIM channels executing ``program`` concurrently.
    flops:
        Total arithmetic operations across all channels (multiply+add = 2).
    dram_bytes_read:
        Total bytes streamed out of DRAM banks across all channels
        (weights, KV-cache entries and stored activations).
    """

    name: str
    program: Program
    pnm_tasks: List[PnmTask] = field(default_factory=list)
    parallel_channels: int = 1
    flops: int = 0
    dram_bytes_read: int = 0

    def __post_init__(self) -> None:
        if self.parallel_channels <= 0:
            raise ValueError("parallel_channels must be positive")
        if self.flops < 0 or self.dram_bytes_read < 0:
            raise ValueError("flops and byte counts must be non-negative")

    @property
    def mac_micro_ops(self) -> int:
        """Per-channel MAC micro-op count (timing proxy for PIM work)."""
        from repro.isa.instructions import Opcode

        return self.program.stats.micro_ops(Opcode.MAC_ABK)
