"""GEMV compilation (Figure 11 of the paper).

A matrix-vector product ``y = W x`` is distributed across the PIM channels
assigned to the operation: the matrix is partitioned along its rows, every
channel receives an equal slice, and within a channel the rows are spread
over the 16 banks.  The vector is staged in the 2 KB global buffer (in tiles
when it is longer than 1K elements) and broadcast to all near-bank PUs, which
accumulate one output element per bank per *sweep*.

The emitted per-channel instruction stream follows the paper's compilation
example: ``WR_GB`` to load a vector tile, ``WR_BIAS`` to clear the
accumulation registers, a series of ``MAC_ABK`` covering the matrix-row
segments held in each DRAM row, and ``RD_MAC`` to retrieve the results.
"""

from __future__ import annotations

from typing import Optional

from repro.compiler.allocator import ChannelAllocator, MatrixPlacement
from repro.compiler.operations import CompiledOperation
from repro.dram.geometry import ChannelGeometry, GDDR6_PIM_GEOMETRY
from repro.isa.instructions import (
    MacAllBank,
    ReadMacRegister,
    WriteBias,
    WriteGlobalBuffer,
)
from repro.isa.program import Program
from repro.pim.pu import NUM_ACCUMULATION_REGISTERS

__all__ = ["compile_gemv"]


def compile_gemv(
    name: str,
    out_dim: int,
    in_dim: int,
    num_channels: int,
    allocator: Optional[ChannelAllocator] = None,
    placement: Optional[MatrixPlacement] = None,
    repeat: int = 1,
    geometry: ChannelGeometry = GDDR6_PIM_GEOMETRY,
    ch_mask: int = 0,
    bytes_per_element: int = 2,
) -> CompiledOperation:
    """Compile one GEMV onto ``num_channels`` PIM channels.

    Parameters
    ----------
    name:
        Operation label, e.g. ``"attn.wq"``.
    out_dim / in_dim:
        Matrix shape (``out_dim`` rows, ``in_dim`` columns).
    num_channels:
        PIM channels sharing the work; the per-channel program covers
        ``ceil(out_dim / num_channels)`` output rows.
    allocator:
        Channel allocator for the weights.  A private allocator is created if
        neither ``allocator`` nor ``placement`` is given.
    placement:
        Reuse an existing matrix placement (e.g. the KV cache) instead of
        allocating new rows.
    repeat:
        Number of times the matrix slice is swept with *different* input
        vectors.  Grouped-query attention unrolls a narrow GEMM into
        ``repeat`` GEMVs over the same key/value cache.
    ch_mask:
        Channel mask placed in the emitted instructions; defaults to a mask
        selecting ``num_channels`` channels.
    """
    if out_dim <= 0 or in_dim <= 0:
        raise ValueError("matrix dimensions must be positive")
    if num_channels <= 0:
        raise ValueError("num_channels must be positive")
    if repeat <= 0:
        raise ValueError("repeat must be positive")

    if ch_mask == 0:
        ch_mask = (1 << num_channels) - 1

    elements_per_access = geometry.elements_per_access
    dram_columns = geometry.columns_per_row
    gb_slots = geometry.global_buffer_slots

    rows_this_channel = -(-out_dim // num_channels)
    rows_per_bank = -(-rows_this_channel // geometry.num_banks)
    cols_per_matrix_row = -(-in_dim // elements_per_access)

    if placement is None:
        if allocator is None:
            allocator = ChannelAllocator(geometry)
        placement = allocator.allocate_matrix(name, rows_per_bank, in_dim)
    sweeps = min(rows_per_bank, placement.rows_per_bank) if placement.rows_per_bank else rows_per_bank
    sweeps = max(sweeps, 1)

    program = Program(label=name)

    # Tiles partition the input vector into global-buffer-sized chunks that
    # also align with DRAM rows when a matrix row spans several DRAM rows.
    tile_slots = min(cols_per_matrix_row, gb_slots, dram_columns)
    num_tiles = -(-cols_per_matrix_row // tile_slots)

    # Register pressure only matters when a sweep needs several tiles, because
    # results can only be read out once every tile has been accumulated.
    batch_size = NUM_ACCUMULATION_REGISTERS if num_tiles > 1 else sweeps

    for _ in range(repeat):
        for batch_start in range(0, sweeps, batch_size):
            batch = range(batch_start, min(batch_start + batch_size, sweeps))
            for tile in range(num_tiles):
                tile_len = min(tile_slots, cols_per_matrix_row - tile * tile_slots)
                program.append(
                    WriteGlobalBuffer(ch_mask=ch_mask, op_size=tile_len, column=0, rs=0)
                )
                for sweep in batch:
                    reg_id = sweep % NUM_ACCUMULATION_REGISTERS
                    if tile == 0:
                        program.append(WriteBias(ch_mask=ch_mask, rs=0))
                    row, column = _address_of(
                        placement, sweep, tile, tile_slots, dram_columns
                    )
                    program.append(
                        MacAllBank(
                            ch_mask=ch_mask,
                            op_size=tile_len,
                            row=row,
                            column=column,
                            reg_id=reg_id,
                        )
                    )
            for sweep in batch:
                program.append(
                    ReadMacRegister(
                        ch_mask=ch_mask,
                        rd=sweep % NUM_ACCUMULATION_REGISTERS,
                        reg_id=sweep % NUM_ACCUMULATION_REGISTERS,
                    )
                )

    total_elements = out_dim * in_dim * repeat
    return CompiledOperation(
        name=name,
        program=program,
        parallel_channels=num_channels,
        flops=2 * total_elements,
        dram_bytes_read=total_elements * bytes_per_element,
    )


def _address_of(
    placement: MatrixPlacement,
    sweep: int,
    tile: int,
    tile_slots: int,
    dram_columns: int,
) -> tuple:
    """DRAM (row, column) of tile ``tile`` of the ``sweep``-th matrix row."""
    cols = placement.columns_per_matrix_row
    if cols >= dram_columns:
        dram_rows_per_matrix_row = -(-cols // dram_columns)
        global_column = tile * tile_slots
        row = placement.base_row + sweep * dram_rows_per_matrix_row + global_column // dram_columns
        column = global_column % dram_columns
    else:
        matrix_rows_per_dram_row = dram_columns // cols
        row = placement.base_row + sweep // matrix_rows_per_dram_row
        column = (sweep % matrix_rows_per_dram_row) * cols + tile * tile_slots
    return row, column
