"""The lint engine: walk files, run rules in two passes, apply escapes.

Pass 1 (``collect``) shows every module to every rule so cross-module
state (the slots registry) is complete before pass 2 (``check``) emits
findings.  Findings then flow through the inline-suppression table and
the optional baseline; whatever survives fails the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.analysis.findings import Baseline, Finding, scan_suppressions
from repro.analysis.registry import Module, Rule, rule_classes

__all__ = ["LintResult", "lint_paths", "iter_source_files"]


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    #: Baseline entries that matched nothing (fixed or drifted findings).
    stale_baseline: List[str] = field(default_factory=list)
    #: Files that failed to parse: (display path, error message).
    errors: List[str] = field(default_factory=list)
    num_files: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings and not self.errors


def iter_source_files(paths: Sequence[Path]) -> Iterable[Path]:
    """Python files under ``paths`` (files kept, dirs walked), sorted."""
    out: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            out.extend(p for p in sorted(path.rglob("*.py"))
                       if "__pycache__" not in p.parts)
        else:
            out.append(path)
    return out


def _display(path: Path) -> str:
    """Stable display path: relative to cwd when possible, posix."""
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_paths(paths: Sequence[Path], *,
               baseline: Optional[Baseline] = None,
               select: Optional[Sequence[str]] = None) -> LintResult:
    """Run all (or ``select``-ed) rules over ``paths``."""
    rules: List[Rule] = [cls() for cls in rule_classes()
                         if select is None or cls.id in select]
    result = LintResult()

    modules: List[Module] = []
    for path in iter_source_files(paths):
        display = _display(path)
        try:
            source = path.read_text(encoding="utf-8")
            modules.append(Module(path, display, source))
        except (OSError, SyntaxError, ValueError) as error:
            result.errors.append(f"{display}: {error}")
    result.num_files = len(modules)

    for rule in rules:
        for module in modules:
            if rule.applies_to(module.display):
                rule.collect(module)

    raw: List[Finding] = []
    for rule in rules:
        for module in modules:
            if rule.applies_to(module.display):
                raw.extend(rule.check(module))

    suppressions_by_module = {
        module.display: scan_suppressions(module.source)
        for module in modules
    }
    for finding in raw:
        suppressed = suppressions_by_module.get(finding.path, {})
        if finding.rule in suppressed.get(finding.line, ()):
            result.suppressed.append(finding)
        elif baseline is not None and baseline.matches(finding):
            result.baselined.append(finding)
        else:
            result.findings.append(finding)

    if baseline is not None:
        result.stale_baseline = baseline.stale
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return result
