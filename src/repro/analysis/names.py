"""Import tracking and dotted-name resolution shared by the rules.

Rules that ban calls by *module-qualified* name (``time.perf_counter``,
``numpy.random.rand``) must see through local aliases: ``import numpy as
np`` makes ``np.random.rand`` the banned call, and ``from time import
perf_counter as clock`` makes a bare ``clock()`` one.  :class:`ImportMap`
records a module's import statements; :func:`resolve` canonicalises any
``Name``/``Attribute`` chain against it.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional

__all__ = ["ImportMap", "dotted_name", "resolve"]


class ImportMap:
    """Alias -> canonical dotted prefix, from one module's imports."""

    def __init__(self, tree: ast.AST) -> None:
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else local
                    self.aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{node.module}.{alias.name}"


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a pure Name/Attribute chain, else None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def resolve(node: ast.AST, imports: ImportMap) -> Optional[str]:
    """Canonical module-qualified dotted name of an expression, if any.

    ``np.random.rand`` with ``import numpy as np`` resolves to
    ``numpy.random.rand``; a name that is not rooted in an import resolves
    to itself (so local shadowing is treated literally, not guessed at).
    """
    dotted = dotted_name(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    canonical = imports.aliases.get(head, head)
    return f"{canonical}.{rest}" if rest else canonical
