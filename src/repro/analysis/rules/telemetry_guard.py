"""Rule ``telemetry-guard``: every emission site behind one None check.

The zero-overhead-when-off contract (CONTRIBUTING, PR 7): with
``telemetry=None`` the hot path must execute the exact pre-telemetry
instruction stream, so every ``recorder.event(...)`` /
``recorder.window_step(...)`` call site must be *dominated* by an
``X is None`` / ``X is not None`` check on the same receiver.

The dominance analysis understands the idioms the codebase uses::

    if rec is not None:
        rec.event(...)                      # guarded (branch)

    if recorder is not None and blocks:
        recorder.event(...)                 # guarded (and-clause)

    if rec is None:
        return
    rec.event(...)                          # guarded (early exit)

    assert rec is not None
    rec.event(...)                          # guarded (assert)

Rebinding the receiver name drops its guard.  Receivers are recognised by
name (``rec``, ``recorder``, ``*_rec``, ``telemetry``, ``self.recorder``,
…), which is also the naming convention the telemetry layer documents.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.names import dotted_name
from repro.analysis.registry import Module, Rule, register

_EMIT_METHODS = {"event", "window_step"}
_RECEIVER_RE = re.compile(r"(^|_)(rec|recorder|telemetry)$")


def _receiver_key(node: ast.AST) -> Optional[str]:
    """Stable key for a recorder-ish receiver expression, else None."""
    dotted = dotted_name(node)
    if dotted is None:
        return None
    terminal = dotted.rsplit(".", 1)[-1]
    if _RECEIVER_RE.search(terminal):
        return dotted
    return None


def _guards_from_test(test: ast.AST) -> Tuple[Set[str], Set[str]]:
    """(non-None-in-body, non-None-in-orelse) receiver keys of a test."""
    if isinstance(test, ast.Compare) and len(test.ops) == 1 \
            and isinstance(test.comparators[0], ast.Constant) \
            and test.comparators[0].value is None:
        key = _receiver_key(test.left)
        if key is None:
            return set(), set()
        if isinstance(test.ops[0], ast.IsNot):
            return {key}, set()
        if isinstance(test.ops[0], ast.Is):
            return set(), {key}
        return set(), set()
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        body: Set[str] = set()
        for value in test.values:
            body |= _guards_from_test(value)[0]
        return body, set()
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.Or):
        orelse: Set[str] = set()
        for value in test.values:
            orelse |= _guards_from_test(value)[1]
        return set(), orelse
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        body, orelse = _guards_from_test(test.operand)
        return orelse, body
    return set(), set()


def _terminates(body: List[ast.stmt]) -> bool:
    return bool(body) and isinstance(
        body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break))


@register
class TelemetryGuardRule(Rule):
    id = "telemetry-guard"
    summary = ("recorder emission sites must be dominated by an "
               "`is (not) None` guard")
    rationale = (
        "telemetry=None must cost nothing: one `recorder is not None` "
        "check and no other work. An unguarded emission either crashes "
        "with None or sneaks formatting/clock work onto the disabled "
        "hot path.")
    scope = ("*serving*", "*kvstore*", "*cluster*")

    def check(self, module: Module) -> Iterable[Finding]:
        findings: List[Finding] = []
        self._walk_body(module, list(ast.iter_child_nodes(module.tree)),
                        set(), findings)
        yield from findings

    # ------------------------------------------------------------------
    # statement walk with a set of receiver keys known to be non-None
    # ------------------------------------------------------------------

    def _walk_body(self, module: Module, body: List[ast.AST],
                   guarded: Set[str], findings: List[Finding]) -> None:
        guarded = set(guarded)
        for stmt in body:
            if isinstance(stmt, ast.Assign):
                self._scan_expr(module, stmt.value, guarded, findings)
                for target in stmt.targets:
                    key = dotted_name(target)
                    if key is not None:
                        guarded.discard(key)
            elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
                if stmt.value is not None:
                    self._scan_expr(module, stmt.value, guarded, findings)
            elif isinstance(stmt, ast.Assert):
                self._scan_expr(module, stmt.test, guarded, findings)
                guarded |= _guards_from_test(stmt.test)[0]
            elif isinstance(stmt, ast.If):
                self._scan_expr(module, stmt.test, guarded, findings)
                body_g, else_g = _guards_from_test(stmt.test)
                self._walk_body(module, stmt.body, guarded | body_g,
                                findings)
                self._walk_body(module, stmt.orelse, guarded | else_g,
                                findings)
                # `if x is None: return` guards the rest of this block.
                if _terminates(stmt.body):
                    guarded |= else_g
                if stmt.orelse and _terminates(stmt.orelse):
                    guarded |= body_g
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._scan_expr(module, stmt.iter, guarded, findings)
                self._walk_body(module, stmt.body, guarded, findings)
                self._walk_body(module, stmt.orelse, guarded, findings)
            elif isinstance(stmt, ast.While):
                self._scan_expr(module, stmt.test, guarded, findings)
                self._walk_body(module, stmt.body, guarded, findings)
                self._walk_body(module, stmt.orelse, guarded, findings)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self._scan_expr(module, item.context_expr, guarded,
                                    findings)
                self._walk_body(module, stmt.body, guarded, findings)
            elif isinstance(stmt, ast.Try):
                self._walk_body(module, stmt.body, guarded, findings)
                for handler in stmt.handlers:
                    self._walk_body(module, handler.body, guarded,
                                    findings)
                self._walk_body(module, stmt.orelse, guarded, findings)
                self._walk_body(module, stmt.finalbody, guarded, findings)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                # Nested scope: enclosing guards do not dominate calls that
                # may run later, start clean.
                self._walk_body(module, stmt.body, set(), findings)
            else:
                for child in ast.iter_child_nodes(stmt):
                    if isinstance(child, ast.expr):
                        self._scan_expr(module, child, guarded, findings)

    # ------------------------------------------------------------------
    # guard-aware expression scan (short-circuit and conditional forms)
    # ------------------------------------------------------------------

    def _scan_expr(self, module: Module, expr: ast.AST,
                   guarded: Set[str], findings: List[Finding]) -> None:
        if isinstance(expr, ast.BoolOp) and isinstance(expr.op, ast.And):
            running = set(guarded)
            for value in expr.values:
                self._scan_expr(module, value, running, findings)
                running |= _guards_from_test(value)[0]
            return
        if isinstance(expr, ast.IfExp):
            self._scan_expr(module, expr.test, guarded, findings)
            body_g, else_g = _guards_from_test(expr.test)
            self._scan_expr(module, expr.body, guarded | body_g, findings)
            self._scan_expr(module, expr.orelse, guarded | else_g,
                            findings)
            return
        if isinstance(expr, ast.Call):
            self._check_call(module, expr, guarded, findings)
        for child in ast.iter_child_nodes(expr):
            self._scan_expr(module, child, guarded, findings)

    def _check_call(self, module: Module, call: ast.Call,
                    guarded: Set[str], findings: List[Finding]) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute) \
                or func.attr not in _EMIT_METHODS:
            return
        key = _receiver_key(func.value)
        if key is None:
            return
        if key not in guarded:
            findings.append(self.finding(
                module, call,
                f"emission `{key}.{func.attr}(...)` is not dominated by a "
                f"`{key} is not None` guard (zero-overhead-when-off rule)"))
