"""Built-in repro-lint rules.

Importing this package registers every rule with
:mod:`repro.analysis.registry`; adding a rule is adding a module here
(and importing it below) with one ``@register``-decorated class.
"""

from repro.analysis.rules import (  # noqa: F401  (import registers rules)
    determinism,
    float_fold,
    set_iteration,
    slots_discipline,
    telemetry_guard,
    unit_suffix,
)

__all__ = [
    "determinism",
    "float_fold",
    "set_iteration",
    "slots_discipline",
    "telemetry_guard",
    "unit_suffix",
]
