"""Rule ``slots-discipline``: view-handle classes keep a closed attribute set.

``ServingRequest`` (PR 6) is a ``__slots__`` view handle over the columnar
request store: its attribute surface *is* its contract with the vectorized
engine.  An attribute write outside the declared surface either raises
``AttributeError`` at runtime (on the class itself) or — worse, on a
future un-slotted refactor — silently grows per-instance dicts back onto
the hot path.  This rule makes the surface machine-checked:

* inside a slotted class, ``self.x = ...`` must target a declared slot, a
  class-level descriptor (the ``_int_column`` properties) or a property
  setter;
* outside, writes through a variable whose class is statically known
  (``x = ServingRequest(...)``, ``x: ServingRequest`` annotations,
  annotated parameters) are held to the same surface, including literal
  ``setattr(x, "name", ...)`` spellings.

``__slots__`` values are resolved statically, following module- and
class-level name constants and tuple concatenation (the
``RequestColumns.__slots__ = _INT_COLUMNS + _FLOAT_COLUMNS + (...)``
idiom).  A class whose slots cannot be fully resolved, or that has bases,
is left unchecked rather than guessed at.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.registry import Module, Rule, register


def _constant_tuples(body: List[ast.stmt]) -> Dict[str, ast.expr]:
    """Simple ``NAME = <expr>`` bindings in a statement list."""
    table: Dict[str, ast.expr] = {}
    for stmt in body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            table[stmt.targets[0].id] = stmt.value
    return table


def _resolve_strings(expr: ast.expr,
                     tables: List[Dict[str, ast.expr]],
                     depth: int = 0) -> Optional[Tuple[str, ...]]:
    """Evaluate a tuple-of-strings expression statically, or None."""
    if depth > 8:
        return None
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return (expr.value,)
    if isinstance(expr, (ast.Tuple, ast.List)):
        out: List[str] = []
        for elt in expr.elts:
            resolved = _resolve_strings(elt, tables, depth + 1)
            if resolved is None:
                return None
            out.extend(resolved)
        return tuple(out)
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Add):
        left = _resolve_strings(expr.left, tables, depth + 1)
        right = _resolve_strings(expr.right, tables, depth + 1)
        if left is None or right is None:
            return None
        return left + right
    if isinstance(expr, ast.Name):
        for table in tables:
            if expr.id in table:
                return _resolve_strings(table[expr.id], tables, depth + 1)
        return None
    return None


class _SlottedClass:
    """Statically resolved attribute surface of one slotted class."""

    def __init__(self, name: str, writable: Set[str]) -> None:
        self.name = name
        self.writable = writable


@register
class SlotsDisciplineRule(Rule):
    id = "slots-discipline"
    summary = "attribute writes outside a slotted class's declared surface"
    rationale = (
        "A __slots__ view handle's attribute set is its contract with the "
        "columnar store: an out-of-surface write is an AttributeError "
        "today and a silent per-instance dict after a careless refactor.")

    def __init__(self) -> None:
        #: class name -> surface, across every collected module.
        self._classes: Dict[str, _SlottedClass] = {}

    # ------------------------------------------------------------------
    # pass 1: build the cross-module slotted-class registry
    # ------------------------------------------------------------------

    def collect(self, module: Module) -> None:
        module_table = _constant_tuples(module.tree.body)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if node.bases or node.keywords:
                continue  # inheritance: surface not statically known
            class_table = _constant_tuples(node.body)
            slots: Optional[Tuple[str, ...]] = None
            writable: Set[str] = set()
            for stmt in node.body:
                if isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if not isinstance(target, ast.Name):
                            continue
                        if target.id == "__slots__":
                            slots = _resolve_strings(
                                stmt.value, [class_table, module_table])
                        else:
                            # Class-level descriptor (property factories
                            # like `_int_column(...)`) or constant.
                            writable.add(target.id)
                elif isinstance(stmt, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                    # Methods and decorated properties/setters.
                    writable.add(stmt.name)
            if slots is None:
                continue  # not slotted, or slots not statically resolvable
            writable.update(slots)
            self._classes[node.name] = _SlottedClass(node.name, writable)

    # ------------------------------------------------------------------
    # pass 2: check writes against the surface
    # ------------------------------------------------------------------

    def check(self, module: Module) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) \
                    and node.name in self._classes:
                yield from self._check_self_writes(module, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_typed_locals(module, node)

    def _check_self_writes(self, module: Module,
                           cls: ast.ClassDef) -> Iterable[Finding]:
        surface = self._classes[cls.name].writable
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                continue
            for node in ast.walk(method):
                for target, attr in self._write_targets(node):
                    if isinstance(target, ast.Name) \
                            and target.id == "self" \
                            and attr not in surface:
                        yield self.finding(
                            module, node,
                            f"write to self.{attr} outside "
                            f"{cls.name}'s declared __slots__ surface")

    def _check_typed_locals(self, module: Module,
                            func: ast.AST) -> Iterable[Finding]:
        # Variable -> slotted class name, from annotations and constructor
        # calls; a rebind to anything else forgets the type.
        typed: Dict[str, str] = {}
        for arg in list(func.args.args) + list(func.args.kwonlyargs):
            cls = self._annotation_class(arg.annotation)
            if cls is not None:
                typed[arg.arg] = cls
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                typed.pop(node.targets[0].id, None)
                cls = self._constructed_class(node.value)
                if cls is not None:
                    typed[node.targets[0].id] = cls
            elif isinstance(node, ast.AnnAssign) \
                    and isinstance(node.target, ast.Name):
                cls = self._annotation_class(node.annotation)
                if cls is not None:
                    typed[node.target.id] = cls
        if not typed:
            return
        for node in ast.walk(func):
            for target, attr in self._write_targets(node):
                if isinstance(target, ast.Name) and target.id != "self":
                    cls = typed.get(target.id)
                    if cls is not None \
                            and attr not in self._classes[cls].writable:
                        yield self.finding(
                            module, node,
                            f"write to {target.id}.{attr} outside "
                            f"{cls}'s declared __slots__ surface")

    # ------------------------------------------------------------------

    def _write_targets(self, node: ast.AST):
        """(receiver, attribute-name) pairs this statement writes."""
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Attribute):
                    yield target.value, target.attr
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            if isinstance(node.target, ast.Attribute):
                yield node.target.value, node.target.attr
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Name) \
                and node.func.id == "setattr" and len(node.args) >= 2 \
                and isinstance(node.args[1], ast.Constant) \
                and isinstance(node.args[1].value, str):
            yield node.args[0], node.args[1].value

    def _annotation_class(self,
                          annotation: Optional[ast.expr]) -> Optional[str]:
        if annotation is None:
            return None
        name = None
        if isinstance(annotation, ast.Name):
            name = annotation.id
        elif isinstance(annotation, ast.Attribute):
            name = annotation.attr
        elif isinstance(annotation, ast.Constant) \
                and isinstance(annotation.value, str):
            name = annotation.value.rsplit(".", 1)[-1]
        return name if name in self._classes else None

    def _constructed_class(self, value: ast.expr) -> Optional[str]:
        if not isinstance(value, ast.Call):
            return None
        name = None
        if isinstance(value.func, ast.Name):
            name = value.func.id
        elif isinstance(value.func, ast.Attribute):
            name = value.func.attr
        return name if name in self._classes else None
