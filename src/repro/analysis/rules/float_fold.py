"""Rule ``float-fold``: conserved float totals use the canonical left fold.

The attribution layer's conservation invariant (PR 8) holds because every
total is produced by the *same* operation sequence: a left-to-right
``acc += x`` fold (``segment_sum_s``), whose final segment is the fold's
residual.  A total produced any other way — ``math.fsum`` (compensated),
``numpy`` reductions (pairwise), or a casual ``sum(...)`` that someone
later "optimises" — can differ in the last ulp and break bit-exact
conservation between two spellings of the same quantity.

In the conservation-critical modules (``telemetry/attribution.py``,
``core/iteration.py``) bare ``sum()`` / ``math.fsum()`` / ``np.sum()``
over float expressions is therefore banned: accumulate with an explicit
left fold so the order of operations is visible and pinned.  Integer
reductions are exempt when the element is obviously integral (an ``int``
literal or an ``int(...)``/``len(...)`` cast) — integer addition is
associative, so no fold discipline is needed.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.findings import Finding
from repro.analysis.names import ImportMap, resolve
from repro.analysis.registry import Module, Rule, register

_INT_CASTS = {"int", "len", "round", "ord"}


def _obviously_integral(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, int) \
            and not isinstance(node.value, bool):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in _INT_CASTS:
        return True
    return False


def _int_exempt(call: ast.Call) -> bool:
    """True when the summed elements are obviously integral."""
    if not call.args:
        return False
    arg = call.args[0]
    if isinstance(arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
        return _obviously_integral(arg.elt)
    if isinstance(arg, (ast.List, ast.Tuple)):
        return bool(arg.elts) and all(_obviously_integral(elt)
                                      for elt in arg.elts)
    return False


@register
class FloatFoldRule(Rule):
    id = "float-fold"
    summary = ("bare sum()/fsum()/np.sum() in conservation-critical "
               "modules")
    rationale = (
        "Bit-exact conservation requires one canonical operation order: "
        "the explicit left-to-right fold (cf. segment_sum_s). fsum and "
        "numpy reductions use different summation orders; even builtin "
        "sum hides the order from review. Spell the fold out.")
    scope = ("*telemetry/attribution.py", "*core/iteration.py")

    def check(self, module: Module) -> Iterable[Finding]:
        imports = ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = resolve(node.func, imports)
            if resolved == "sum":
                if not _int_exempt(node):
                    yield self.finding(
                        module, node,
                        "bare sum() over float expressions — accumulate "
                        "with an explicit left-to-right fold (cf. "
                        "segment_sum_s) so the operation order is pinned")
            elif resolved in ("math.fsum", "numpy.sum"):
                yield self.finding(
                    module, node,
                    f"{resolved}() does not reproduce the canonical left "
                    "fold (compensated/pairwise summation); use the "
                    "explicit fold")
