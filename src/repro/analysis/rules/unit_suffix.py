"""Rule ``unit-suffix``: don't add seconds to bytes.

The cost-model code carries units in names — ``_s`` / ``_ns`` / ``_ms`` /
``_bytes`` / ``_tokens`` / ``_qps`` — which makes the cheapest unit-bug
net an AST walk: an ``x_s + y_bytes`` (or ``x_s += y_tokens``, or a bare
``x_s = y_ns`` rebinding) is almost certainly a dropped conversion.
Multiplication and division are untouched (that *is* how units convert),
as is arithmetic where either side has no unit suffix.

A deliberate mixed-unit identity (rare, e.g. re-interpreting a field)
takes an inline ``# repro-lint: ignore[unit-suffix]`` with a
justification.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.analysis.findings import Finding
from repro.analysis.registry import Module, Rule, register

_UNITS = {"s", "ns", "ms", "us", "bytes", "tokens", "qps"}


def _unit_of(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    else:
        return None
    head, sep, suffix = name.rpartition("_")
    if sep and head and suffix in _UNITS:
        return suffix
    return None


@register
class UnitSuffixRule(Rule):
    id = "unit-suffix"
    summary = "+/-/= arithmetic mixing _s/_bytes/_tokens/_qps quantities"
    rationale = (
        "Unit suffixes are the cost model's type system. Adding or "
        "assigning across different suffixes without an explicit "
        "conversion factor is the classic silent unit bug.")

    def check(self, module: Module) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.BinOp) \
                    and isinstance(node.op, (ast.Add, ast.Sub)):
                left, right = _unit_of(node.left), _unit_of(node.right)
                if left and right and left != right:
                    yield self.finding(
                        module, node,
                        f"`_{left}` {'+' if isinstance(node.op, ast.Add) else '-'} "
                        f"`_{right}` mixes units — convert explicitly")
            elif isinstance(node, ast.AugAssign) \
                    and isinstance(node.op, (ast.Add, ast.Sub)):
                left, right = _unit_of(node.target), _unit_of(node.value)
                if left and right and left != right:
                    yield self.finding(
                        module, node,
                        f"`_{left}` {'+=' if isinstance(node.op, ast.Add) else '-='} "
                        f"`_{right}` mixes units — convert explicitly")
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                left = _unit_of(node.targets[0])
                right = _unit_of(node.value)
                if left and right and left != right:
                    yield self.finding(
                        module, node,
                        f"assigning a `_{right}` quantity to a `_{left}` "
                        "name — unit mismatch, convert or rename")
