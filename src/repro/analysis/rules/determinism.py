"""Rule ``determinism``: no ambient nondeterminism in simulator code.

The simulator's replay guarantee (same trace + same seed = bit-identical
result, run to run and machine to machine) dies the moment simulation code
reads a wall clock, the process environment, or an unseeded RNG.  All
simulated time comes from the engine clock; all randomness flows from an
explicit seed threaded through the workload generators.

Banned inside ``src/repro``:

* wall-clock reads — ``time.time``/``perf_counter``/``monotonic``/
  ``process_time`` (and their ``_ns`` variants), ``datetime.now``/
  ``utcnow``/``today``;
* the global/unseeded RNGs — any ``random.<fn>`` on the stdlib module,
  ``random.Random()`` with no seed, ``random.SystemRandom``, any
  ``numpy.random.<fn>`` legacy global call, and ``default_rng()`` without
  an explicit seed;
* environment reads — ``os.environ`` and ``os.getenv`` (configuration
  enters through constructors, never ambiently).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.findings import Finding
from repro.analysis.names import ImportMap, resolve
from repro.analysis.registry import Module, Rule, register

_WALL_CLOCKS = {
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

#: Seedable constructors: fine exactly when called with an explicit seed.
_SEEDABLE = {
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
    "numpy.random.PCG64",
    "numpy.random.Philox",
}

# ``os.environ`` itself (including ``os.environ.get``/``[...]``) is caught
# as an attribute access; only the function spelling needs a call entry.
_ENV_READS = {"os.getenv"}


@register
class DeterminismRule(Rule):
    id = "determinism"
    summary = ("no wall-clock reads, unseeded RNGs or os.environ in "
               "simulator code")
    rationale = (
        "Deterministic replay is a headline guarantee: the same trace and "
        "seed must reproduce every timestamp bit-exactly. Wall clocks, the "
        "process environment and global RNG state are ambient inputs that "
        "silently break it.")

    def check(self, module: Module) -> Iterable[Finding]:
        imports = ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node, imports)
            elif isinstance(node, ast.Attribute):
                resolved = resolve(node, imports)
                if resolved == "os.environ":
                    yield self.finding(
                        module, node,
                        "os.environ read — configuration must enter "
                        "through explicit parameters, never ambiently")

    def _check_call(self, module: Module, node: ast.Call,
                    imports: ImportMap) -> Iterable[Finding]:
        resolved = resolve(node.func, imports)
        if resolved is None:
            return
        if resolved in _WALL_CLOCKS:
            yield self.finding(
                module, node,
                f"wall-clock read {resolved}() — simulated time must come "
                "from the engine clock, never the host")
        elif resolved in _ENV_READS:
            yield self.finding(
                module, node,
                f"{resolved}() — environment reads make runs "
                "machine-dependent; take the value as a parameter")
        elif resolved in _SEEDABLE:
            if not node.args and not node.keywords:
                yield self.finding(
                    module, node,
                    f"{resolved}() without an explicit seed — thread the "
                    "workload seed through instead")
        elif resolved == "random.SystemRandom":
            yield self.finding(
                module, node,
                "random.SystemRandom is nondeterministic by design; use a "
                "seeded random.Random or numpy default_rng")
        elif resolved.startswith("random."):
            yield self.finding(
                module, node,
                f"{resolved}() uses the global stdlib RNG — construct a "
                "seeded random.Random(seed) and call that")
        elif resolved.startswith("numpy.random."):
            yield self.finding(
                module, node,
                f"{resolved}() uses numpy's legacy global RNG — use "
                "numpy.random.default_rng(seed)")
