"""Rule ``no-set-iteration``: hash-ordered iteration must not reach outcomes.

Python set iteration order depends on insertion history and hash seeding.
In engine/kvstore/cluster code, the order of a loop frequently decides who
is admitted, evicted or routed first — iterating a set there turns a hash
accident into a simulated outcome.  Wrap the set in ``sorted(...)`` (any
deterministic key) before iterating; order-independent reductions
(``sorted``/``min``/``max``/``sum``/``len``/``any``/``all``, membership
tests) are untouched.

Flagged: ``for x in <set>``, comprehension generators over ``<set>``, and
``list``/``tuple``/``enumerate``/``iter`` of an obvious set — where
``<set>`` is a set literal/comprehension, a ``set()``/``frozenset()``
call, a set-algebra expression built from one, or a name assigned one of
those anywhere in the module (names are tracked module-wide, which is
deliberately conservative: a name that ever holds a set is treated as one
at every loop).
"""

from __future__ import annotations

import ast
from typing import Iterable, Set

from repro.analysis.findings import Finding
from repro.analysis.registry import Module, Rule, register

_ORDERING_CALLS = {"list", "tuple", "enumerate", "iter"}
_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def _is_obvious_set(node: ast.AST, set_names: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("set", "frozenset"):
        return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
        return (_is_obvious_set(node.left, set_names)
                or _is_obvious_set(node.right, set_names))
    return False


def _set_typed_names(tree: ast.AST) -> Set[str]:
    """Names bound to an obvious set anywhere in the module."""
    names: Set[str] = set()
    # Two passes so ``a = set(x); b = a | other`` marks ``b`` too.
    for _ in range(2):
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) \
                    and _is_obvious_set(node.value, names):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and node.value is not None \
                    and isinstance(node.target, ast.Name) \
                    and _is_obvious_set(node.value, names):
                names.add(node.target.id)
    return names


@register
class SetIterationRule(Rule):
    id = "no-set-iteration"
    summary = "iteration over sets in engine/kvstore/cluster/core code"
    rationale = (
        "Set iteration order is a hash accident. Where loop order decides "
        "admission, eviction or routing, it must be made deterministic "
        "with sorted(...) before the hash seed becomes a simulation input.")
    scope = ("*serving*", "*kvstore*", "*cluster*", "*core*")

    def check(self, module: Module) -> Iterable[Finding]:
        set_names = _set_typed_names(module.tree)
        flagged: Set[int] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._flag(module, node.iter, set_names,
                                      flagged)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.GeneratorExp, ast.DictComp)):
                for generator in node.generators:
                    yield from self._flag(module, generator.iter,
                                          set_names, flagged)
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Name) \
                    and node.func.id in _ORDERING_CALLS and node.args:
                yield from self._flag(module, node.args[0], set_names,
                                      flagged)

    def _flag(self, module: Module, iter_expr: ast.AST,
              set_names: Set[str], flagged: Set[int]) -> Iterable[Finding]:
        if not _is_obvious_set(iter_expr, set_names):
            return
        if id(iter_expr) in flagged:  # one finding per expression
            return
        flagged.add(id(iter_expr))
        yield self.finding(
            module, iter_expr,
            "iterating a set — order is hash-dependent and feeds "
            "simulated outcomes; wrap in sorted(...)")
