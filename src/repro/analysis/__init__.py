"""repro-lint: AST-based invariant linter for the simulator stack.

The simulator's headline guarantees — bit-exact scalar/vectorized and
traced/untraced runs, deterministic replay, zero-cost telemetry when off —
are properties of the *source code*: no wall-clock reads, guarded emission
sites, canonical left-fold accumulation, closed slotted-class surfaces.
This package makes them machine-checked instead of reviewer-checked:

* ``python -m repro.analysis [--baseline FILE] [paths...]`` lints the tree
  (default ``src/repro``) and exits non-zero on any unsuppressed finding;
* ``--list-rules`` prints the rule catalog (also in CONTRIBUTING.md);
* ``# repro-lint: ignore[rule-id]`` suppresses one finding inline, with a
  justification comment;
* ``--baseline`` tolerates a reviewed set of legacy findings while a sweep
  is in flight (the goal state is an empty baseline).

Dependency-free by design (stdlib ``ast`` only), so the lint gate runs
anywhere the interpreter does.
"""

from repro.analysis.engine import LintResult, iter_source_files, lint_paths
from repro.analysis.findings import Baseline, Finding, scan_suppressions
from repro.analysis.registry import Module, Rule, register, rule_classes

__all__ = [
    "Baseline",
    "Finding",
    "LintResult",
    "Module",
    "Rule",
    "iter_source_files",
    "lint_paths",
    "register",
    "rule_classes",
    "scan_suppressions",
]
