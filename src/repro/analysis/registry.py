"""The rule registry: how invariants become machine-checked.

A rule is a class with an ``id``, a one-line ``summary``, an optional path
``scope`` and a ``check`` method that yields :class:`~repro.analysis.
findings.Finding` objects for one parsed module.  Rules needing
cross-module knowledge (the slots registry) implement ``collect``, which
the engine runs over *every* module before any ``check`` call.

Registering is one decorator::

    from repro.analysis.registry import Rule, register

    @register
    class MyRule(Rule):
        id = "my-rule"
        summary = "what invariant this protects"
        scope = ("*serving*",)          # fnmatch globs; None = all files

        def check(self, module):
            yield self.finding(module, node, "message")

Rules are instantiated fresh per lint run, so per-run state (registries,
caches) lives safely on ``self``.
"""

from __future__ import annotations

import ast
import fnmatch
from typing import Dict, Iterable, Iterator, List, Type

from repro.analysis.findings import Finding

__all__ = ["Module", "Rule", "register", "rule_classes"]

_REGISTRY: Dict[str, Type["Rule"]] = {}


class Module:
    """One parsed source file handed to the rules."""

    def __init__(self, path, display: str, source: str) -> None:
        self.path = path
        self.display = display
        self.source = source
        self.tree = ast.parse(source, filename=display)
        self.lines = source.splitlines()

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


class Rule:
    """Base class: one machine-checked source invariant."""

    id: str = ""
    summary: str = ""
    #: Rationale shown by ``--list-rules`` (one short paragraph).
    rationale: str = ""
    #: fnmatch globs over the posix display path; None applies everywhere.
    scope = None

    def applies_to(self, display: str) -> bool:
        if self.scope is None:
            return True
        return any(fnmatch.fnmatch(display, pattern)
                   for pattern in self.scope)

    def collect(self, module: Module) -> None:
        """First pass over every module (cross-module state); optional."""

    def check(self, module: Module) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, module: Module, node: ast.AST,
                message: str) -> Finding:
        lineno = getattr(node, "lineno", 1)
        return Finding(
            rule=self.id,
            path=module.display,
            line=lineno,
            col=getattr(node, "col_offset", 0),
            message=message,
            source_line=module.line_text(lineno),
        )


def register(cls: Type[Rule]) -> Type[Rule]:
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id!r}")
    _REGISTRY[cls.id] = cls
    return cls


def rule_classes() -> List[Type[Rule]]:
    """All registered rules, id-sorted (imports the rule modules)."""
    # Importing the package body registers every built-in rule exactly once.
    import repro.analysis.rules  # noqa: F401  (import for side effect)

    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def iter_registered() -> Iterator[Type[Rule]]:
    yield from rule_classes()
