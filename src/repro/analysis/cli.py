"""``python -m repro.analysis`` — the repro-lint command line.

Exit status 0 means the tree is clean: no unsuppressed, unbaselined
findings and no parse errors.  Typical invocations::

    python -m repro.analysis src/repro            # lint the package
    python -m repro.analysis --list-rules         # rule catalog
    python -m repro.analysis --baseline b.json src/repro
    python -m repro.analysis --write-baseline b.json src/repro
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.engine import lint_paths
from repro.analysis.findings import Baseline
from repro.analysis.registry import rule_classes

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=("repro-lint: AST-based invariant linter for the "
                     "simulator (determinism, zero-overhead telemetry, "
                     "bit-exactness rules)"))
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to lint (default: src/repro)")
    parser.add_argument(
        "--baseline", type=Path, metavar="FILE",
        help="JSON baseline of tolerated finding fingerprints")
    parser.add_argument(
        "--write-baseline", type=Path, metavar="FILE",
        help="write current findings' fingerprints to FILE and exit 0")
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule ids to run (default: all)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit")
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="print findings only, no summary line")
    return parser


def _default_paths() -> List[Path]:
    for candidate in (Path("src/repro"), Path("repro")):
        if candidate.is_dir():
            return [candidate]
    return [Path(".")]


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for cls in rule_classes():
            scope = ", ".join(cls.scope) if cls.scope else "all files"
            print(f"{cls.id}: {cls.summary}")
            print(f"    scope: {scope}")
            if cls.rationale:
                print(f"    {cls.rationale}")
        return 0

    baseline = None
    if args.baseline is not None:
        try:
            baseline = Baseline.load(args.baseline)
        except (OSError, ValueError) as error:
            print(f"repro-lint: cannot read baseline: {error}",
                  file=sys.stderr)
            return 2

    select = None
    if args.select:
        select = [rule.strip() for rule in args.select.split(",")
                  if rule.strip()]
        known = {cls.id for cls in rule_classes()}
        unknown = sorted(set(select) - known)
        if unknown:
            print(f"repro-lint: unknown rule(s) {', '.join(unknown)}; "
                  f"known: {', '.join(sorted(known))}", file=sys.stderr)
            return 2

    paths = args.paths or _default_paths()
    result = lint_paths(paths, baseline=baseline, select=select)

    if args.write_baseline is not None:
        Baseline().write(args.write_baseline,
                         result.findings + result.baselined)
        print(f"repro-lint: wrote {len(result.findings) + len(result.baselined)} "
              f"fingerprint(s) to {args.write_baseline}")
        return 0

    for error in result.errors:
        print(f"error: {error}")
    for finding in result.findings:
        print(finding.render())
        text = finding.source_line.strip()
        if text:
            print(f"    {text}")

    if not args.quiet:
        extras = []
        if result.suppressed:
            extras.append(f"{len(result.suppressed)} suppressed inline")
        if result.baselined:
            extras.append(f"{len(result.baselined)} baselined")
        if result.stale_baseline:
            extras.append(
                f"{len(result.stale_baseline)} stale baseline entr"
                f"{'y' if len(result.stale_baseline) == 1 else 'ies'} "
                "(fixed or drifted — prune them)")
        detail = f" ({'; '.join(extras)})" if extras else ""
        status = "clean" if result.ok else (
            f"{len(result.findings)} finding(s)"
            + (f", {len(result.errors)} error(s)" if result.errors else ""))
        print(f"repro-lint: {status} across {result.num_files} "
              f"file(s){detail}")
    return 0 if result.ok else 1
