"""Findings, inline suppressions and the baseline ledger.

A :class:`Finding` is one rule violation at one source location.  Its
``fingerprint`` deliberately ignores the line *number* (hashing the rule id,
the file's display path and the stripped source text instead) so a baseline
entry survives unrelated edits above the finding.

Two escape hatches, with different lifetimes:

* **Inline suppression** — ``# repro-lint: ignore[rule-id]`` on the flagged
  statement's first line, or on a comment line directly above it.  Permanent
  and reviewed: the pragma must carry a justification comment next to it.
* **Baseline** — a JSON file of fingerprints passed via ``--baseline``.
  Temporary: it lets the linter land before a large sweep finishes, and the
  goal state (enforced by this repo's acceptance tests) is an *empty*
  baseline.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Set

__all__ = [
    "Baseline",
    "Finding",
    "scan_suppressions",
]

#: ``# repro-lint: ignore[rule-a]`` or ``ignore[rule-a, rule-b]``.
_PRAGMA_RE = re.compile(r"#\s*repro-lint:\s*ignore\[([A-Za-z0-9_\-, ]+)\]")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # display path (posix, relative when possible)
    line: int  # 1-based
    col: int  # 0-based, as reported by ast
    message: str
    #: Stripped source text of the flagged line (fingerprint input).
    source_line: str = ""

    @property
    def fingerprint(self) -> str:
        digest = hashlib.sha1(
            self.source_line.strip().encode("utf-8")).hexdigest()[:12]
        return f"{self.rule}:{self.path}:{digest}"

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col + 1}: "
                f"{self.rule} {self.message}")


def scan_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> rule ids suppressed on that line.

    A pragma on a code line suppresses findings reported on that line; a
    pragma on a standalone comment line suppresses findings on the next
    line (so multi-clause statements can keep the justification above).
    """
    suppressed: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        rules = {part.strip() for part in match.group(1).split(",")
                 if part.strip()}
        target = lineno + 1 if text.lstrip().startswith("#") else lineno
        suppressed.setdefault(target, set()).update(rules)
    return suppressed


class Baseline:
    """A set of tolerated finding fingerprints loaded from JSON.

    File format: ``{"version": 1, "entries": ["<fingerprint>", ...]}``
    (a bare JSON list is accepted too).  Matching is by fingerprint only;
    entries never matched during a run are reported as *stale* so the
    baseline can only shrink.
    """

    def __init__(self, entries: Iterable[str] = ()) -> None:
        self.entries: Set[str] = set(entries)
        self._matched: Set[str] = set()

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        if isinstance(data, dict):
            entries = data.get("entries", [])
        else:
            entries = data
        if not isinstance(entries, list) or not all(
                isinstance(entry, str) for entry in entries):
            raise ValueError(
                f"baseline {path} must hold a JSON list of fingerprint "
                "strings (optionally under an 'entries' key)")
        return cls(entries)

    def write(self, path: Path, findings: Iterable[Finding]) -> None:
        payload = {"version": 1,
                   "entries": sorted({f.fingerprint for f in findings})}
        Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                              encoding="utf-8")

    def matches(self, finding: Finding) -> bool:
        if finding.fingerprint in self.entries:
            self._matched.add(finding.fingerprint)
            return True
        return False

    @property
    def stale(self) -> List[str]:
        """Entries that matched nothing this run (fixed or drifted)."""
        return sorted(self.entries - self._matched)
