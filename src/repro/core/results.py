"""Result containers of the CENT inference and serving simulations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.telemetry.metrics import MetricsRegistry, MetricsSnapshot
from repro.telemetry.slo import AlertLog

__all__ = [
    "LatencyBreakdown",
    "InferenceResult",
    "LatencyStats",
    "ServingResult",
    "ClusterResult",
    "percentile",
]


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-th percentile of ``samples`` with linear interpolation.

    ``numpy.percentile``'s default (``linear``) method, plus a total
    behaviour for the empty sample set (0.0) so result containers need no
    special cases.
    """
    if not 0 <= q <= 100:
        raise ValueError("percentile must be in [0, 100]")
    values = list(samples)
    if not values:
        return 0.0
    return float(np.percentile(values, q))


@dataclass(frozen=True)
class LatencyStats:
    """Summary statistics of a latency sample set (all values in seconds)."""

    count: int = 0
    mean_s: float = 0.0
    p50_s: float = 0.0
    p90_s: float = 0.0
    p99_s: float = 0.0
    max_s: float = 0.0

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencyStats":
        # One list→array conversion feeds every statistic (np.percentile
        # would otherwise convert again); the mean stays a sequential
        # left fold (cumsum) so it matches the former builtin-sum value
        # bit for bit on every sample order.
        values = np.asarray(samples, dtype=np.float64)
        if values.size == 0:
            return cls()
        p50, p90, p99 = np.percentile(values, [50.0, 90.0, 99.0])
        return cls(
            count=int(values.size),
            mean_s=float(values.cumsum()[-1]) / values.size,
            p50_s=float(p50),
            p90_s=float(p90),
            p99_s=float(p99),
            max_s=float(values.max()),
        )


@dataclass(frozen=True)
class LatencyBreakdown:
    """Latency components of one transformer block (or one token), in ns."""

    pim_ns: float = 0.0
    pnm_ns: float = 0.0
    cxl_ns: float = 0.0
    host_ns: float = 0.0

    def __post_init__(self) -> None:
        for name in ("pim_ns", "pnm_ns", "cxl_ns", "host_ns"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def total_ns(self) -> float:
        return self.pim_ns + self.pnm_ns + self.cxl_ns + self.host_ns

    def scaled(self, factor: float) -> "LatencyBreakdown":
        return LatencyBreakdown(
            pim_ns=self.pim_ns * factor,
            pnm_ns=self.pnm_ns * factor,
            cxl_ns=self.cxl_ns * factor,
            host_ns=self.host_ns * factor,
        )

    def plus(self, other: "LatencyBreakdown") -> "LatencyBreakdown":
        return LatencyBreakdown(
            pim_ns=self.pim_ns + other.pim_ns,
            pnm_ns=self.pnm_ns + other.pnm_ns,
            cxl_ns=self.cxl_ns + other.cxl_ns,
            host_ns=self.host_ns + other.host_ns,
        )

    def fractions(self) -> Dict[str, float]:
        """Relative share of each component (used by Figure 14c)."""
        total = self.total_ns
        if total == 0:
            return {"pim": 0.0, "pnm": 0.0, "cxl": 0.0, "host": 0.0}
        return {
            "pim": self.pim_ns / total,
            "pnm": self.pnm_ns / total,
            "cxl": self.cxl_ns / total,
            "host": self.host_ns / total,
        }


@dataclass
class InferenceResult:
    """End-to-end outcome of serving one batch of identical queries."""

    model_name: str
    plan_name: str
    prompt_tokens: int
    decode_tokens: int
    queries_in_flight: int
    prefill_latency_s: float
    decode_latency_s: float
    prefill_throughput_tokens_per_s: float
    decode_throughput_tokens_per_s: float
    token_latency_breakdown: LatencyBreakdown = field(default_factory=LatencyBreakdown)
    devices_used: int = 0
    average_power_w: float = 0.0
    energy_per_token_j: float = 0.0

    def __post_init__(self) -> None:
        if self.prompt_tokens < 0 or self.decode_tokens < 0:
            raise ValueError("token counts must be non-negative")
        if self.queries_in_flight <= 0:
            raise ValueError("at least one query must be in flight")

    # ------------------------------------------------------------------ latency

    @property
    def query_latency_s(self) -> float:
        """End-to-end latency of one query (prefill + decoding)."""
        return self.prefill_latency_s + self.decode_latency_s

    @property
    def token_latency_s(self) -> float:
        """Average decoding latency per output token of one query."""
        if self.decode_tokens == 0:
            return 0.0
        return self.decode_latency_s / self.decode_tokens

    # ------------------------------------------------------------------ throughput

    @property
    def end_to_end_throughput_tokens_per_s(self) -> float:
        """Output tokens per second across all in-flight queries, counting the
        whole query duration (prefill + decode)."""
        if self.query_latency_s == 0:
            return 0.0
        total_output_tokens = self.decode_tokens * self.queries_in_flight
        return total_output_tokens / self.query_latency_s

    # ------------------------------------------------------------------ efficiency

    @property
    def tokens_per_joule(self) -> float:
        if self.energy_per_token_j <= 0:
            return 0.0
        return 1.0 / self.energy_per_token_j

    def tokens_per_dollar(self, dollars_per_hour: float) -> float:
        """Cost efficiency given a total cost of ownership rate."""
        if dollars_per_hour <= 0:
            raise ValueError("cost rate must be positive")
        tokens_per_hour = self.end_to_end_throughput_tokens_per_s * 3600.0
        return tokens_per_hour / dollars_per_hour


@dataclass(frozen=True)
class ServingResult:
    """Measured outcome of one trace-driven serving run.

    Produced by :class:`repro.serving.ServingEngine`; all latency statistics
    are measured per request over the event-driven run, not derived from
    closed-form batch math.
    """

    model_name: str
    plan_name: str
    num_requests: int
    num_completed: int
    num_rejected: int
    makespan_s: float
    ttft: LatencyStats = field(default_factory=LatencyStats)
    tbt: LatencyStats = field(default_factory=LatencyStats)
    query_latency: LatencyStats = field(default_factory=LatencyStats)
    #: Per-request time from first to last token (query latency minus TTFT).
    decode_latency: LatencyStats = field(default_factory=LatencyStats)
    total_prompt_tokens: int = 0
    total_decode_tokens: int = 0
    prefill_time_s: float = 0.0
    decode_time_s: float = 0.0
    decode_step_tokens: int = 0
    peak_memory_bytes: int = 0
    memory_capacity_bytes: int = 0
    sla_latency_s: Optional[float] = None
    completed_within_sla: int = 0
    sla_decode_tokens: int = 0
    #: Evictions under paged admission (``repro.kvstore``); all zero on the
    #: legacy ``admission="reserve"`` path.
    num_preemptions: int = 0
    num_swap_outs: int = 0
    num_swap_ins: int = 0
    #: Total CXL time spent staging KV caches out and back (swap restore).
    swap_time_s: float = 0.0
    #: Tokens re-prefilled to rebuild evicted KV (recompute restore).
    recompute_tokens: int = 0
    #: Total time preempted requests spent off the device (eviction to
    #: decode-ready), summed over requests.
    preemption_stall_time_s: float = 0.0
    #: Block-granular (partial) evictions among ``num_preemptions``: only
    #: the victim's coldest prefix blocks were staged out, the rest stayed
    #: resident (``repro.kvstore`` with ``preemption_partial_blocks``).
    num_partial_evictions: int = 0
    #: Requests this engine received mid-flight through live KV migration,
    #: and the host-staged KV bytes that travelled with them.
    num_migrated_in: int = 0
    migrated_kv_bytes: int = 0
    #: Shared-prefix KV cache accounting (``prefix_sharing`` in paged
    #: mode): admissions of prefix-tagged requests, the subset that
    #: attached to a resident chain, the prefix tokens whose prefill those
    #: hits skipped, and the copy-on-write blocks taken of partial chain
    #: tails.  All zero with sharing off or a prefix-free trace.
    num_prefix_lookups: int = 0
    num_prefix_hits: int = 0
    prefix_hit_tokens: int = 0
    num_cow_blocks: int = 0
    #: Per-iteration ``(time_s, queued, running)`` samples: ``queued`` are
    #: arrived requests not currently running (admission queue plus any
    #: preempted victims awaiting restore).  The measured backlog signal a
    #: cluster router can feed back into its dispatch decisions.
    queue_depth_timeline: Tuple[Tuple[float, int, int], ...] = ()

    def __post_init__(self) -> None:
        if self.num_requests < 0 or self.num_completed < 0 or self.num_rejected < 0:
            raise ValueError("request counts must be non-negative")
        if self.num_completed + self.num_rejected > self.num_requests:
            raise ValueError("completed + rejected cannot exceed the trace size")
        if self.makespan_s < 0:
            raise ValueError("makespan must be non-negative")
        if (self.num_preemptions < 0 or self.num_swap_outs < 0
                or self.num_swap_ins < 0):
            raise ValueError("preemption counters must be non-negative")
        if (self.swap_time_s < 0 or self.recompute_tokens < 0
                or self.preemption_stall_time_s < 0):
            raise ValueError("preemption costs must be non-negative")
        if (self.num_partial_evictions < 0 or self.num_migrated_in < 0
                or self.migrated_kv_bytes < 0):
            raise ValueError("migration counters must be non-negative")
        if (self.num_prefix_lookups < 0 or self.num_prefix_hits < 0
                or self.prefix_hit_tokens < 0 or self.num_cow_blocks < 0):
            raise ValueError("prefix-cache counters must be non-negative")
        if self.num_prefix_hits > self.num_prefix_lookups:
            raise ValueError("prefix hits cannot exceed prefix lookups")

    # ------------------------------------------------------------------ throughput

    @property
    def throughput_tokens_per_s(self) -> float:
        """Generated tokens per wall-clock second over the whole run."""
        if self.makespan_s <= 0:
            return 0.0
        return self.total_decode_tokens / self.makespan_s

    @property
    def queries_per_s(self) -> float:
        if self.makespan_s <= 0:
            return 0.0
        return self.num_completed / self.makespan_s

    @property
    def decode_throughput_tokens_per_s(self) -> float:
        """Tokens per second over the time the engine spent in decode steps.

        For the static special case (all arrivals at t=0, identical queries,
        full batch) this equals the closed-form decode throughput of
        ``CentSystem.run_inference``.
        """
        if self.decode_time_s <= 0:
            return 0.0
        return self.decode_step_tokens / self.decode_time_s

    # ------------------------------------------------------------------ goodput

    @property
    def goodput_queries_per_s(self) -> float:
        """SLA-compliant completed queries per second (all, without an SLA)."""
        if self.makespan_s <= 0:
            return 0.0
        if self.sla_latency_s is None:
            return self.queries_per_s
        return self.completed_within_sla / self.makespan_s

    @property
    def goodput_tokens_per_s(self) -> float:
        """Generated tokens of SLA-compliant queries per second."""
        if self.makespan_s <= 0:
            return 0.0
        if self.sla_latency_s is None:
            return self.throughput_tokens_per_s
        return self.sla_decode_tokens / self.makespan_s

    @property
    def sla_violation_fraction(self) -> float:
        if self.sla_latency_s is None or self.num_completed == 0:
            return 0.0
        return 1.0 - self.completed_within_sla / self.num_completed

    @property
    def rejection_fraction(self) -> float:
        if self.num_requests == 0:
            return 0.0
        return self.num_rejected / self.num_requests

    # ------------------------------------------------------------------ preemption

    @property
    def preemptions_per_completed(self) -> float:
        """Mean evictions per completed request (thrash indicator)."""
        if self.num_completed == 0:
            return 0.0
        return self.num_preemptions / self.num_completed

    # ------------------------------------------------------------------ prefix cache

    @property
    def prefix_hit_rate(self) -> float:
        """Fraction of prefix-tagged admissions that reused a resident
        chain (zero when the trace carries no prefixes)."""
        if self.num_prefix_lookups == 0:
            return 0.0
        return self.num_prefix_hits / self.num_prefix_lookups

    # ------------------------------------------------------------------ backlog

    @property
    def peak_queue_depth(self) -> int:
        """Largest number of arrived-but-not-running requests observed."""
        return max((queued for _, queued, _ in self.queue_depth_timeline),
                   default=0)

    @property
    def mean_queue_depth(self) -> float:
        """Time-weighted mean backlog over the run.

        Each sample holds until the next one (the last until the makespan),
        matching the event loop's piecewise-constant view of the queue.
        """
        timeline = self.queue_depth_timeline
        if not timeline:
            return 0.0
        end = max(self.makespan_s, timeline[-1][0])
        start = timeline[0][0]
        span = end - start
        if span <= 0:
            return float(timeline[-1][1])
        weighted = 0.0
        for (t, queued, _), (t_next, _, _) in zip(
                timeline, list(timeline[1:]) + [(end, 0, 0)], strict=True):
            weighted += queued * (t_next - t)
        return weighted / span

    # ------------------------------------------------------------------ telemetry

    @property
    def metrics(self) -> MetricsSnapshot:
        """This run's scattered counters behind one namespace.

        One :class:`~repro.telemetry.MetricsSnapshot` (``serving.*`` /
        ``kv.*`` names) so dashboards and the BENCH harness read every run
        the same way regardless of which subsystem produced the number.
        """
        registry = MetricsRegistry()
        registry.set_counter("serving.requests", self.num_requests)
        registry.set_counter("serving.completed", self.num_completed)
        registry.set_counter("serving.rejected", self.num_rejected)
        registry.set_counter("serving.preemptions", self.num_preemptions)
        registry.set_counter("serving.partial_evictions",
                             self.num_partial_evictions)
        registry.set_counter("serving.swap_outs", self.num_swap_outs)
        registry.set_counter("serving.swap_ins", self.num_swap_ins)
        registry.set_counter("serving.recompute_tokens", self.recompute_tokens)
        registry.set_counter("serving.migrated_in", self.num_migrated_in)
        registry.set_counter("serving.prompt_tokens", self.total_prompt_tokens)
        registry.set_counter("serving.decode_tokens", self.total_decode_tokens)
        registry.set_gauge("serving.makespan_s", self.makespan_s)
        registry.set_gauge("serving.throughput_tokens_per_s",
                           self.throughput_tokens_per_s)
        registry.set_gauge("serving.goodput_tokens_per_s",
                           self.goodput_tokens_per_s)
        registry.set_gauge("serving.preemption_stall_s",
                           self.preemption_stall_time_s)
        registry.set_gauge("serving.swap_time_s", self.swap_time_s)
        registry.set_gauge("serving.peak_queue_depth",
                           float(self.peak_queue_depth))
        registry.set_counter("kv.prefix_lookups", self.num_prefix_lookups)
        registry.set_counter("kv.prefix_hits", self.num_prefix_hits)
        registry.set_counter("kv.prefix_hit_tokens", self.prefix_hit_tokens)
        registry.set_counter("kv.cow_blocks", self.num_cow_blocks)
        registry.set_gauge("serving.prefix_hit_rate", self.prefix_hit_rate)
        registry.set_counter("kv.migrated_bytes", self.migrated_kv_bytes)
        registry.set_gauge("kv.peak_memory_bytes",
                           float(self.peak_memory_bytes))
        if self.memory_capacity_bytes:
            registry.set_gauge(
                "kv.pool_occupancy",
                self.peak_memory_bytes / self.memory_capacity_bytes)
        return registry.snapshot(self.makespan_s, record=False)


@dataclass(frozen=True)
class ClusterResult:
    """Measured outcome of one multi-tenant run on a shared device pool.

    Produced by ``repro.cluster``: one :class:`ServingResult` per tenant
    (each against that tenant's own SLA), plus the pool-level aggregates a
    capacity planner compares placement and routing policies by — aggregate
    SLA goodput, fairness across tenants, and device-pool utilisation.

    Horizon semantics: each tenant's :class:`ServingResult` rates are
    measured over *that tenant's own completion horizon* (so a
    single-tenant cluster reproduces ``ServingEngine.run`` exactly, and a
    short-lived tenant's rate reflects the service it saw), while the
    ``aggregate_*`` properties divide by the *cluster makespan*.  Summing
    per-tenant rates therefore over-counts relative to the aggregates;
    compare tenants through :attr:`tenant_goodput_fractions`, which is
    horizon-free.
    """

    placement_policy: str
    routing_policy: str
    pool_devices: int
    devices_used: int
    makespan_s: float
    #: Per-tenant measured serving statistics, keyed by tenant name.
    tenant_results: Dict[str, ServingResult] = field(default_factory=dict)
    #: Devices the placement granted each tenant (shared replicas count fully
    #: for every tenant sharing them).
    tenant_devices: Dict[str, int] = field(default_factory=dict)
    #: Decode-token demand of each tenant's full trace (including requests
    #: later rejected), the denominator of the fairness normalisation.
    tenant_offered_decode_tokens: Dict[str, int] = field(default_factory=dict)
    #: Sum over replicas of (busy seconds x devices); busy = prefill + decode.
    busy_device_seconds: float = 0.0
    #: Epoch length of a closed-loop run (``repro.cluster.control``); ``None``
    #: for the open-loop single-shot path, whose fields below stay empty.
    epoch_s: Optional[float] = None
    #: Re-placements the control loop actually applied.
    num_rebalances: int = 0
    #: Total time newly (re)built replicas spent reloading weights over the
    #: CXL fabric before serving (summed over rebalance events; concurrent
    #: reloads within one event count once at the slowest replica).
    migration_stall_s: float = 0.0
    #: Per-epoch pool-level rows ``(epoch_start_s, goodput_tokens_per_s,
    #: mean_queue_depth)``: SLA-compliant decode tokens finishing in the
    #: epoch over the epoch length, and the time-weighted mean measured
    #: backlog across all replicas.
    epoch_timeline: Tuple[Tuple[float, float, float], ...] = ()
    #: ``(time_s, stall_s)`` per applied re-placement, in epoch order.
    rebalance_log: Tuple[Tuple[float, float], ...] = ()
    #: In-flight requests live-migrated (KV through host memory) when their
    #: replica was dismantled; ``migration="restart"`` leaves all four zero.
    num_migrated_requests: int = 0
    #: KV bytes live migrations streamed through host memory.
    migrated_kv_bytes: int = 0
    #: CXL time spent streaming migrated KV out of dismantled replicas and
    #: into their destinations (per-request swap pricing, summed).
    kv_migration_time_s: float = 0.0
    #: Prefill + decode progress tokens live migration preserved that a
    #: restart-on-migrate would have recomputed from scratch.
    restored_progress_tokens: int = 0
    #: One :class:`~repro.telemetry.MetricsSnapshot` per control epoch when
    #: the run was traced (``telemetry=`` on :meth:`ClusterEngine.run`);
    #: empty for untraced and open-loop runs.
    metrics_timeline: Tuple[MetricsSnapshot, ...] = ()
    #: Alerts the :class:`~repro.telemetry.slo.SloMonitor` raised while the
    #: run was traced; empty (and no rules evaluated) for untraced and
    #: open-loop runs.
    alert_log: AlertLog = AlertLog()

    def __post_init__(self) -> None:
        if self.pool_devices <= 0:
            raise ValueError("the pool needs at least one device")
        if self.devices_used > self.pool_devices:
            raise ValueError("cannot use more devices than the pool holds")
        if self.makespan_s < 0 or self.busy_device_seconds < 0:
            raise ValueError("times must be non-negative")
        if self.epoch_s is not None and self.epoch_s <= 0:
            raise ValueError("epoch_s must be positive when set")
        if self.num_rebalances < 0 or self.migration_stall_s < 0:
            raise ValueError("rebalance accounting must be non-negative")
        if (self.num_migrated_requests < 0 or self.migrated_kv_bytes < 0
                or self.kv_migration_time_s < 0
                or self.restored_progress_tokens < 0):
            raise ValueError("migration accounting must be non-negative")
        missing = set(self.tenant_results) - set(self.tenant_offered_decode_tokens)
        if missing:
            raise ValueError(
                f"tenants {sorted(missing)} have results but no offered-token "
                "demand; the fairness normalisation needs both"
            )

    # ------------------------------------------------------------------ aggregates

    @property
    def num_tenants(self) -> int:
        return len(self.tenant_results)

    @property
    def aggregate_throughput_tokens_per_s(self) -> float:
        """Generated tokens of all tenants per wall-clock second of the run."""
        if self.makespan_s <= 0:
            return 0.0
        total = sum(r.total_decode_tokens for r in self.tenant_results.values())
        return total / self.makespan_s

    @property
    def aggregate_goodput_tokens_per_s(self) -> float:
        """SLA-compliant generated tokens (per tenant SLA) per second."""
        if self.makespan_s <= 0:
            return 0.0
        total = sum(r.sla_decode_tokens for r in self.tenant_results.values())
        return total / self.makespan_s

    # ------------------------------------------------------------------ fairness

    @property
    def tenant_goodput_fractions(self) -> Dict[str, float]:
        """Per tenant: SLA-compliant decode tokens over offered decode tokens.

        The natural normalised-service metric for asymmetric demand: a value
        of 1.0 means every offered token was delivered within the tenant's
        SLA, regardless of how large the tenant's traffic is.
        """
        fractions = {}
        for name, result in self.tenant_results.items():
            offered = self.tenant_offered_decode_tokens[name]
            fractions[name] = result.sla_decode_tokens / offered if offered else 0.0
        return fractions

    @property
    def max_min_goodput_ratio(self) -> float:
        """Min over max of the tenants' normalised goodput (1.0 = perfectly fair).

        A run where *no* tenant got any goodput is total collapse, not
        fairness, and scores 0.0 so it cannot tie with a genuinely fair
        policy when ranking.
        """
        fractions = list(self.tenant_goodput_fractions.values())
        if not fractions:
            return 1.0
        worst, best = min(fractions), max(fractions)
        if best <= 0:
            return 0.0
        return worst / best

    @property
    def jain_fairness_index(self) -> float:
        """Jain's index over the tenants' normalised goodput, in [0, 1].

        0.0 when every tenant's goodput is zero (total collapse), like
        :attr:`max_min_goodput_ratio`.
        """
        fractions = list(self.tenant_goodput_fractions.values())
        if not fractions:
            return 1.0
        total = sum(fractions)
        squares = sum(f * f for f in fractions)
        if squares <= 0:
            return 0.0
        return total * total / (len(fractions) * squares)

    # ------------------------------------------------------------------ utilisation

    @property
    def pool_utilization(self) -> float:
        """Busy device-seconds over available device-seconds of the run."""
        if self.makespan_s <= 0:
            return 0.0
        return self.busy_device_seconds / (self.makespan_s * self.pool_devices)

    # ------------------------------------------------------------------ preemption

    @property
    def total_preemptions(self) -> int:
        """Pool-wide evictions under paged admission, across all tenants."""
        return sum(r.num_preemptions for r in self.tenant_results.values())

    @property
    def total_swap_time_s(self) -> float:
        """Pool-wide CXL time spent swapping KV caches out and back."""
        return sum(r.swap_time_s for r in self.tenant_results.values())

    @property
    def total_preemption_stall_s(self) -> float:
        """Pool-wide time requests spent evicted, summed over requests."""
        return sum(r.preemption_stall_time_s for r in self.tenant_results.values())

    @property
    def total_partial_evictions(self) -> int:
        """Pool-wide block-granular evictions, across all tenants."""
        return sum(r.num_partial_evictions for r in self.tenant_results.values())

    # ------------------------------------------------------------------ telemetry

    @property
    def metrics(self) -> MetricsSnapshot:
        """Pool-level counters behind one namespace (``cluster.*`` plus the
        tenants' summed ``serving.*``), mirroring
        :attr:`ServingResult.metrics`."""
        tenants = self.tenant_results.values()
        registry = MetricsRegistry()
        registry.set_counter("serving.requests",
                             sum(r.num_requests for r in tenants))
        registry.set_counter("serving.completed",
                             sum(r.num_completed for r in tenants))
        registry.set_counter("serving.rejected",
                             sum(r.num_rejected for r in tenants))
        registry.set_counter("serving.preemptions", self.total_preemptions)
        registry.set_counter("serving.partial_evictions",
                             self.total_partial_evictions)
        registry.set_gauge("serving.swap_time_s", self.total_swap_time_s)
        registry.set_gauge("serving.preemption_stall_s",
                           self.total_preemption_stall_s)
        registry.set_counter("cluster.rebalances", self.num_rebalances)
        registry.set_counter("cluster.migrated_requests",
                             self.num_migrated_requests)
        registry.set_counter("kv.migrated_bytes", self.migrated_kv_bytes)
        registry.set_gauge("cluster.migration_stall_s", self.migration_stall_s)
        registry.set_gauge("cluster.kv_migration_time_s",
                           self.kv_migration_time_s)
        registry.set_gauge("cluster.goodput_tokens_per_s",
                           self.aggregate_goodput_tokens_per_s)
        registry.set_gauge("cluster.throughput_tokens_per_s",
                           self.aggregate_throughput_tokens_per_s)
        registry.set_gauge("cluster.pool_utilization", self.pool_utilization)
        registry.set_gauge("cluster.fairness_jain", self.jain_fairness_index)
        return registry.snapshot(self.makespan_s, record=False)
