"""Result containers of the CENT inference simulation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["LatencyBreakdown", "InferenceResult"]


@dataclass(frozen=True)
class LatencyBreakdown:
    """Latency components of one transformer block (or one token), in ns."""

    pim_ns: float = 0.0
    pnm_ns: float = 0.0
    cxl_ns: float = 0.0
    host_ns: float = 0.0

    def __post_init__(self) -> None:
        for name in ("pim_ns", "pnm_ns", "cxl_ns", "host_ns"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def total_ns(self) -> float:
        return self.pim_ns + self.pnm_ns + self.cxl_ns + self.host_ns

    def scaled(self, factor: float) -> "LatencyBreakdown":
        return LatencyBreakdown(
            pim_ns=self.pim_ns * factor,
            pnm_ns=self.pnm_ns * factor,
            cxl_ns=self.cxl_ns * factor,
            host_ns=self.host_ns * factor,
        )

    def plus(self, other: "LatencyBreakdown") -> "LatencyBreakdown":
        return LatencyBreakdown(
            pim_ns=self.pim_ns + other.pim_ns,
            pnm_ns=self.pnm_ns + other.pnm_ns,
            cxl_ns=self.cxl_ns + other.cxl_ns,
            host_ns=self.host_ns + other.host_ns,
        )

    def fractions(self) -> Dict[str, float]:
        """Relative share of each component (used by Figure 14c)."""
        total = self.total_ns
        if total == 0:
            return {"pim": 0.0, "pnm": 0.0, "cxl": 0.0, "host": 0.0}
        return {
            "pim": self.pim_ns / total,
            "pnm": self.pnm_ns / total,
            "cxl": self.cxl_ns / total,
            "host": self.host_ns / total,
        }


@dataclass
class InferenceResult:
    """End-to-end outcome of serving one batch of identical queries."""

    model_name: str
    plan_name: str
    prompt_tokens: int
    decode_tokens: int
    queries_in_flight: int
    prefill_latency_s: float
    decode_latency_s: float
    prefill_throughput_tokens_per_s: float
    decode_throughput_tokens_per_s: float
    token_latency_breakdown: LatencyBreakdown = field(default_factory=LatencyBreakdown)
    devices_used: int = 0
    average_power_w: float = 0.0
    energy_per_token_j: float = 0.0

    def __post_init__(self) -> None:
        if self.prompt_tokens < 0 or self.decode_tokens < 0:
            raise ValueError("token counts must be non-negative")
        if self.queries_in_flight <= 0:
            raise ValueError("at least one query must be in flight")

    # ------------------------------------------------------------------ latency

    @property
    def query_latency_s(self) -> float:
        """End-to-end latency of one query (prefill + decoding)."""
        return self.prefill_latency_s + self.decode_latency_s

    @property
    def token_latency_s(self) -> float:
        """Average decoding latency per output token of one query."""
        if self.decode_tokens == 0:
            return 0.0
        return self.decode_latency_s / self.decode_tokens

    # ------------------------------------------------------------------ throughput

    @property
    def end_to_end_throughput_tokens_per_s(self) -> float:
        """Output tokens per second across all in-flight queries, counting the
        whole query duration (prefill + decode)."""
        if self.query_latency_s == 0:
            return 0.0
        total_output_tokens = self.decode_tokens * self.queries_in_flight
        return total_output_tokens / self.query_latency_s

    # ------------------------------------------------------------------ efficiency

    @property
    def tokens_per_joule(self) -> float:
        if self.energy_per_token_j <= 0:
            return 0.0
        return 1.0 / self.energy_per_token_j

    def tokens_per_dollar(self, dollars_per_hour: float) -> float:
        """Cost efficiency given a total cost of ownership rate."""
        if dollars_per_hour <= 0:
            raise ValueError("cost rate must be positive")
        tokens_per_hour = self.end_to_end_throughput_tokens_per_s * 3600.0
        return tokens_per_hour / dollars_per_hour
