"""Performance model: compiled block programs to latency and activity.

The model compiles one transformer block per (model, channel assignment,
context length), executes every operation's per-channel instruction stream on
a :class:`~repro.pim.channel.PIMChannel` timing substrate, adds the PNM
accelerator / RISC-V latencies and the CXL communication of the chosen
parallelisation plan, and caches the result.  Inference-level aggregation
(prefill / decoding phases, pipelining, throughput) lives in
``repro.core.inference``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.compiler.operations import PnmTask, PnmUnit
from repro.compiler.transformer import compile_transformer_block
from repro.core.config import CentConfig
from repro.core.results import LatencyBreakdown
from repro.cxl.primitives import broadcast, gather, multicast, send_receive
from repro.dram.commands import CommandType
from repro.mapping.parallelism import ParallelismPlan
from repro.models.config import ModelConfig
from repro.pim.channel import PIMChannel
from repro.pnm.accelerators import PnmLatencyModel
from repro.pnm.riscv import RiscvCluster

__all__ = ["BlockCost", "PerformanceModel"]


@dataclass
class BlockCost:
    """Latency and activity of one transformer block for one token."""

    breakdown: LatencyBreakdown
    command_counts_per_channel: Dict[CommandType, int] = field(default_factory=dict)
    fc_channels: int = 1
    attention_channels: int = 1
    dram_bytes_read: int = 0
    flops: int = 0

    def total_command_counts(self) -> Dict[CommandType, int]:
        """Command counts scaled to all channels executing the block.

        The per-channel stream is representative of every channel assigned to
        the block, so total activity is the per-channel count times the
        channel count (using the FC channel count, which carries almost all
        of the traffic).
        """
        return {kind: count * self.fc_channels
                for kind, count in self.command_counts_per_channel.items()}


class PerformanceModel:
    """Maps (model, plan, context) to block latency, with bounded caching.

    Block simulations are cached in an LRU keyed by (model, context, channel
    assignment).  The capacity comes from ``config.block_cache_entries`` (or
    the explicit ``cache_capacity`` override) so long serving traces that
    sweep many context lengths cannot grow memory without bound.
    """

    def __init__(self, config: CentConfig, cache_capacity: int | None = None) -> None:
        self.config = config
        if cache_capacity is None:
            cache_capacity = config.block_cache_entries
        if cache_capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.cache_capacity = cache_capacity
        self._cache: "OrderedDict[Tuple, BlockCost]" = OrderedDict()
        # One model instance backs every engine of a CentSystem; replicas
        # advancing on worker threads (cluster ``parallel_replicas``) hit
        # this cache concurrently.  Simulation runs outside the lock — a
        # racing duplicate computes the same deterministic value.
        self._cache_lock = threading.Lock()
        self._pnm_latency = PnmLatencyModel(
            clock_ghz=config.pnm_clock_ghz, instances=config.pnm_units
        )
        self._riscv = RiscvCluster(
            num_cores=config.riscv_cores, clock_ghz=config.pnm_clock_ghz
        )

    # ------------------------------------------------------------------ block level

    def block_cost(
        self,
        model: ModelConfig,
        plan: ParallelismPlan,
        context_length: int,
    ) -> BlockCost:
        """Latency/activity of one transformer block under ``plan``."""
        fc_channels = plan.fc_channels_per_block(model)
        attention_channels = plan.attention_channels_per_block(model)
        key = (model.name, context_length, fc_channels, attention_channels)
        with self._cache_lock:
            base = self._cache.get(key)
            if base is not None:
                self._cache.move_to_end(key)
        if base is None:
            simulated = self._simulate_block(
                model, context_length, fc_channels, attention_channels
            )
            with self._cache_lock:
                base = self._cache.get(key)
                if base is None:
                    base = self._cache[key] = simulated
                    while len(self._cache) > self.cache_capacity:
                        self._cache.popitem(last=False)
        cxl_ns = self._cxl_latency_ns(model, plan)
        breakdown = LatencyBreakdown(
            pim_ns=base.breakdown.pim_ns,
            pnm_ns=base.breakdown.pnm_ns,
            cxl_ns=cxl_ns,
            host_ns=0.0,
        )
        return BlockCost(
            breakdown=breakdown,
            command_counts_per_channel=base.command_counts_per_channel,
            fc_channels=fc_channels,
            attention_channels=attention_channels,
            dram_bytes_read=base.dram_bytes_read,
            flops=base.flops,
        )

    def token_breakdown(
        self,
        model: ModelConfig,
        plan: ParallelismPlan,
        context_length: int,
    ) -> LatencyBreakdown:
        """Latency of one full token (all blocks plus host work)."""
        block = self.block_cost(model, plan, context_length)
        per_token = block.breakdown.scaled(model.num_layers)
        return LatencyBreakdown(
            pim_ns=per_token.pim_ns,
            pnm_ns=per_token.pnm_ns,
            cxl_ns=per_token.cxl_ns,
            host_ns=self.config.host_ns_per_token,
        )

    # ------------------------------------------------------------------ internals

    def _simulate_block(
        self,
        model: ModelConfig,
        context_length: int,
        fc_channels: int,
        attention_channels: int,
    ) -> BlockCost:
        block = compile_transformer_block(
            model,
            context_length,
            num_channels=fc_channels,
            attention_channels=attention_channels,
            geometry=self.config.geometry,
        )
        pim_ns = 0.0
        command_counts: Dict[CommandType, int] = {}
        slot_bytes = self.config.geometry.access_granularity_bytes
        for operation in block.operations:
            if len(operation.program) == 0:
                continue
            channel = PIMChannel(
                timing=self.config.timing, geometry=self.config.geometry
            )
            channel.execute_program(operation.program)
            channel.close_row()
            pim_ns += channel.busy_until_ns
            # Staging traffic over the device-internal bus: WR_GB carries the
            # same vector to every channel's global buffer, so it is a
            # broadcast paid once per device; per-channel results and KV
            # writes (RD_MAC, WR_SBK, ...) are distinct and serialise across
            # the concurrently active channels of the device.
            broadcast_bytes = channel.stats.global_buffer_writes * slot_bytes
            distinct_bytes = (channel.stats.shared_buffer_transfers * slot_bytes
                              * self.config.channels_per_device)
            pim_ns += (broadcast_bytes + distinct_bytes) / self.config.device_bus_gbps
            for kind, count in channel.dram.stats.counts.items():
                command_counts[kind] = command_counts.get(kind, 0) + count
        pnm_ns = sum(self._pnm_task_latency(task) for task in block.pnm_tasks)
        return BlockCost(
            breakdown=LatencyBreakdown(pim_ns=pim_ns, pnm_ns=pnm_ns),
            command_counts_per_channel=command_counts,
            fc_channels=fc_channels,
            attention_channels=attention_channels,
            dram_bytes_read=block.total_dram_bytes,
            flops=block.total_flops,
        )

    def _pnm_task_latency(self, task: PnmTask) -> float:
        if task.unit is PnmUnit.RISCV:
            return self._riscv.latency_ns(task.routine, task.num_elements)
        return self._pnm_latency.latency_for_elements(task.num_elements)

    def _cxl_latency_ns(self, model: ModelConfig, plan: ParallelismPlan) -> float:
        total = 0.0
        for primitive, num_bytes, fan in plan.cxl_transfers_per_block(model):
            if num_bytes <= 0:
                continue
            if primitive == "send_receive":
                total += send_receive(num_bytes, self.config.link).latency_ns
            elif primitive == "broadcast":
                total += broadcast(num_bytes, fan, self.config.link).latency_ns
            elif primitive == "multicast":
                total += multicast(num_bytes, fan, self.config.link).latency_ns
            elif primitive == "gather":
                total += gather(num_bytes, fan, self.config.link).latency_ns
            else:
                raise ValueError(f"unknown CXL primitive {primitive!r}")
        return total
