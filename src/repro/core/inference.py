"""End-to-end inference simulation on a CENT system.

The simulator aggregates per-block costs into the two phases of LLM
inference:

* **Prefill** — the prompt's tokens are processed one after another to fill
  the KV caches (paper §5.5); with pipeline parallelism the tokens of the
  in-flight queries stream through the stages back to back.
* **Decoding** — output tokens are generated sequentially; the context (and
  therefore the attention cost) grows with every token.

Latency is integrated over the growing context by sampling a configurable
number of context lengths (the artifact's ``SEQ_GAP`` mechanism) and
averaging, which is accurate because the per-token cost is affine in the
context length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.config import CentConfig
from repro.core.performance import BlockCost, PerformanceModel
from repro.core.results import InferenceResult, LatencyBreakdown
from repro.mapping.parallelism import ParallelismPlan
from repro.mapping.placement import validate_capacity
from repro.models.config import ModelConfig

__all__ = ["InferenceSimulator", "PhaseCost"]


@dataclass
class PhaseCost:
    """Aggregate cost of one phase (prefill or decoding)."""

    per_query_latency_s: float
    throughput_tokens_per_s: float
    mean_block_cost: BlockCost
    mean_token_breakdown: LatencyBreakdown


class InferenceSimulator:
    """Simulates serving a batch of identical queries under one plan."""

    def __init__(self, config: CentConfig, performance: PerformanceModel | None = None) -> None:
        self.config = config
        self.performance = performance or PerformanceModel(config)

    # ------------------------------------------------------------------ phases

    def _context_samples(self, start: int, end: int) -> List[int]:
        """Sampled context lengths in [start, end], always including both ends."""
        start = max(start, 1)
        end = max(end, start)
        count = min(self.config.context_samples, end - start + 1)
        if count <= 1:
            return [end]
        step = (end - start) / (count - 1)
        samples = sorted({int(round(start + i * step)) for i in range(count)})
        return samples

    def _phase_cost(
        self,
        model: ModelConfig,
        plan: ParallelismPlan,
        context_start: int,
        context_end: int,
        num_tokens: int,
        include_host: bool,
    ) -> PhaseCost:
        samples = self._context_samples(context_start, context_end)
        costs = [self.performance.block_cost(model, plan, ctx) for ctx in samples]
        mean_block_ns = sum(c.breakdown.total_ns for c in costs) / len(costs)
        mean_breakdown = LatencyBreakdown()
        for cost in costs:
            mean_breakdown = mean_breakdown.plus(cost.breakdown.scaled(1.0 / len(costs)))

        blocks_per_stage = plan.blocks_per_stage(model)
        stage_latency_ns = blocks_per_stage * mean_block_ns
        host_ns = self.config.host_ns_per_token if include_host else 0.0
        token_latency_ns = model.num_layers * mean_block_ns + host_ns

        per_query_latency_s = num_tokens * token_latency_ns * 1e-9
        throughput = plan.dp_replicas / (stage_latency_ns * 1e-9)

        token_breakdown = LatencyBreakdown(
            pim_ns=mean_breakdown.pim_ns * model.num_layers,
            pnm_ns=mean_breakdown.pnm_ns * model.num_layers,
            cxl_ns=mean_breakdown.cxl_ns * model.num_layers,
            host_ns=host_ns,
        )
        # The representative block cost of the phase, used for power modelling.
        mid_cost = costs[len(costs) // 2]
        return PhaseCost(
            per_query_latency_s=per_query_latency_s,
            throughput_tokens_per_s=throughput,
            mean_block_cost=mid_cost,
            mean_token_breakdown=token_breakdown,
        )

    # ------------------------------------------------------------------ end to end

    def simulate(
        self,
        model: ModelConfig,
        plan: ParallelismPlan,
        prompt_tokens: int,
        decode_tokens: int,
    ) -> InferenceResult:
        """Simulate serving ``queries_in_flight`` identical queries."""
        if prompt_tokens <= 0 or decode_tokens <= 0:
            raise ValueError("prompt and decode token counts must be positive")
        total_context = prompt_tokens + decode_tokens
        if total_context > model.max_context:
            raise ValueError(
                f"prompt ({prompt_tokens}) + decode ({decode_tokens}) exceeds "
                f"{model.name}'s context limit of {model.max_context}"
            )
        validate_capacity(model, plan, total_context,
                          geometry=self.config.geometry,
                          kv_occupancy=self.config.kv_occupancy)

        prefill = self._phase_cost(
            model, plan, context_start=1, context_end=prompt_tokens,
            num_tokens=prompt_tokens, include_host=False,
        )
        decode = self._phase_cost(
            model, plan, context_start=prompt_tokens + 1, context_end=total_context,
            num_tokens=decode_tokens, include_host=True,
        )
        return InferenceResult(
            model_name=model.name,
            plan_name=plan.name,
            prompt_tokens=prompt_tokens,
            decode_tokens=decode_tokens,
            queries_in_flight=plan.queries_in_flight,
            prefill_latency_s=prefill.per_query_latency_s,
            decode_latency_s=decode.per_query_latency_s,
            prefill_throughput_tokens_per_s=prefill.throughput_tokens_per_s,
            decode_throughput_tokens_per_s=decode.throughput_tokens_per_s,
            token_latency_breakdown=decode.mean_token_breakdown,
            devices_used=plan.devices_used(model),
        )

    def decode_phase(
        self,
        model: ModelConfig,
        plan: ParallelismPlan,
        prompt_tokens: int,
        decode_tokens: int,
    ) -> PhaseCost:
        """Decode-phase cost only (used by the power model and QoS studies)."""
        total_context = prompt_tokens + decode_tokens
        return self._phase_cost(
            model, plan, context_start=prompt_tokens + 1, context_end=total_context,
            num_tokens=decode_tokens, include_host=True,
        )
