"""Per-iteration cost interface for continuous-batching serving.

``InferenceSimulator`` prices whole inferences of identical queries; the
serving engine instead needs the cost of *one* engine iteration over a mixed
batch — requests at different context lengths, some prefilling, some
decoding.  ``IterationCostModel`` extracts that interface from the
performance model:

* per-block latency comes from the same compiled-program simulation as the
  batch path, but is evaluated on a coarse **context grid** and linearly
  interpolated in between (per-block cost is affine in the context length,
  see ``repro.core.inference``), so a trace touching thousands of distinct
  contexts only triggers a handful of block simulations;
* grid evaluations go through the shared :class:`PerformanceModel`, whose
  LRU cache bounds memory across engine iterations and is reused by the
  static batch path of the same :class:`~repro.core.system.CentSystem`.

Timing semantics match the batch simulator: a pipeline-parallel replica
emits one token per stage beat (``blocks_per_stage * block_latency``), so a
full-batch decode iteration — one token for every in-flight query — takes
one token latency (host work is overlapped across queries, as in the batch
throughput model), and prefill streams prompt tokens through the pipeline at
one token per stage beat per replica.
"""

from __future__ import annotations

import threading
from typing import Dict, Sequence

import numpy as np

from repro.core.performance import PerformanceModel
from repro.mapping.parallelism import ParallelismPlan
from repro.models.config import ModelConfig

__all__ = ["IterationCostModel"]


class IterationCostModel:
    """Prices one continuous-batching iteration under a fixed (model, plan)."""

    def __init__(
        self,
        performance: PerformanceModel,
        model: ModelConfig,
        plan: ParallelismPlan,
        context_step: int = 256,
    ) -> None:
        if context_step <= 0:
            raise ValueError("context step must be positive")
        self.performance = performance
        self.model = model
        self.plan = plan
        self.context_step = context_step
        # Interpolation endpoints seen this run; tiny (one float per grid
        # point) and keyed only by context because model and plan are fixed.
        self._grid_ns: Dict[int, float] = {}
        # Model and plan are frozen for the lifetime of the cost model, so
        # the per-stage block count (and with it the layer total) is a
        # constant of the instance rather than a per-call lookup.
        self._blocks_per_stage = plan.blocks_per_stage(model)
        self._effective_layers = plan.pp_stages * self._blocks_per_stage
        # Dense per-context latency table backing the batch entry points:
        # one float64 per context in [0, max_context], NaN until priced.
        # Values are filled by the same grid interpolation as
        # ``block_latency_ns`` so table reads are bit-identical to the
        # scalar path.
        self._table_ns = np.full(model.max_context + 1, np.nan)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ block level

    def _grid_latency_ns(self, context: int) -> float:
        if context not in self._grid_ns:
            cost = self.performance.block_cost(self.model, self.plan, context)
            self._grid_ns[context] = cost.breakdown.total_ns
        return self._grid_ns[context]

    def block_latency_ns(self, context_length: int) -> float:
        """Per-block latency at ``context_length``, grid-interpolated.

        Contexts are clamped to the model's supported range; the last grid
        cell is shortened to end exactly at ``max_context`` so interpolation
        never prices a context the model cannot hold.
        """
        context = min(max(int(context_length), 1), self.model.max_context)
        lower = max((context // self.context_step) * self.context_step, 1)
        if context == lower:
            return self._grid_latency_ns(lower)
        upper = min(lower + self.context_step, self.model.max_context)
        low_ns = self._grid_latency_ns(lower)
        high_ns = self._grid_latency_ns(upper)
        fraction = (context - lower) / (upper - lower)
        return low_ns + (high_ns - low_ns) * fraction

    # ------------------------------------------------------------------ batch level

    def _fill_table(self, contexts: np.ndarray) -> None:
        """Price the given (unique, clipped) contexts into the dense table.

        Simulates exactly the grid points the scalar path would touch: the
        lower endpoint always, the upper endpoint only for contexts that do
        not sit on the grid — so warming the table never triggers block
        simulations ``block_latency_ns`` itself would have skipped.
        """
        step = self.context_step
        lower = np.maximum((contexts // step) * step, 1)
        off_grid = contexts != lower
        upper = np.minimum(lower + step, self.model.max_context)
        with self._lock:
            for point in np.unique(
                np.concatenate([lower, upper[off_grid]])
            ).tolist():
                self._grid_latency_ns(int(point))
            grid = self._grid_ns
            low = np.array([grid[p] for p in lower.tolist()])
            high = low.copy()
            high[off_grid] = [grid[p] for p in upper[off_grid].tolist()]
            fraction = np.zeros(len(contexts))
            fraction[off_grid] = (
                (contexts[off_grid] - lower[off_grid])
                / (upper[off_grid] - lower[off_grid])
            )
            self._table_ns[contexts] = low + (high - low) * fraction

    def _table_latencies(self, contexts: np.ndarray) -> np.ndarray:
        """Per-block latencies for an int array of *clipped* contexts."""
        latencies = self._table_ns[contexts]
        missing = np.isnan(latencies)
        if missing.any():
            self._fill_table(np.unique(contexts[missing]))
            latencies = self._table_ns[contexts]
        return latencies

    def block_latency_batch_ns(self, context_lengths: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`block_latency_ns` over an integer array."""
        contexts = np.minimum(
            np.maximum(np.asarray(context_lengths, dtype=np.int64), 1),
            self.model.max_context,
        )
        return self._table_latencies(contexts)

    def decode_iteration_batch_s(self, context_lengths: np.ndarray) -> float:
        """Vectorized :meth:`decode_iteration_s`, bit-exact with the scalar.

        The scalar path folds the per-request latencies left to right with
        the builtin ``sum``; ``cumsum`` performs the same sequential fold,
        so the mean (and with it the returned duration) matches bit for bit.
        """
        contexts = np.asarray(context_lengths, dtype=np.int64)
        n = contexts.shape[0]
        if n == 0:
            return 0.0
        latencies = self.block_latency_batch_ns(contexts)
        total = float(latencies.cumsum()[-1])
        return self._effective_layers * (total / n) * 1e-9

    def decode_span_s(self, context_lengths: np.ndarray, steps: int) -> np.ndarray:
        """Durations of ``steps`` consecutive decode iterations of one batch.

        Iteration ``i`` prices every request at ``context + i`` (each decode
        grows every context by exactly one token and the batch composition
        is fixed across the span — the fast-forward window's precondition).
        Row ``i`` of the result equals ``decode_iteration_s`` on those
        contexts bit for bit.
        """
        contexts = np.asarray(context_lengths, dtype=np.int64)
        n = contexts.shape[0]
        if n == 0 or steps <= 0:
            return np.zeros(max(steps, 0))
        span = np.minimum(
            np.maximum(
                contexts[None, :] + np.arange(steps, dtype=np.int64)[:, None], 1
            ),
            self.model.max_context,
        )
        latencies = self._table_latencies(span)
        totals = latencies.cumsum(axis=1)[:, -1]
        return self._effective_layers * (totals / n) * 1e-9

    def prefill_chunk_batch_s(
        self,
        num_tokens: np.ndarray,
        context_lengths: np.ndarray,
    ) -> float:
        """Sequentially-summed :meth:`prefill_chunk_s` over parallel arrays.

        Returns the left-to-right fold the engine's chunk loop would
        accumulate (``0.0 + chunk_0 + chunk_1 + ...``), bit-exact with the
        scalar path.
        """
        tokens = np.asarray(num_tokens, dtype=np.int64)
        if tokens.size == 0:
            return 0.0
        contexts = np.asarray(context_lengths, dtype=np.int64)
        latencies = self.block_latency_batch_ns(contexts)
        per_chunk = tokens * (self._blocks_per_stage * latencies * 1e-9)
        per_chunk = np.where(tokens > 0, per_chunk, 0.0)
        return float(per_chunk.cumsum()[-1])

    # ------------------------------------------------------------------ iteration level

    @property
    def effective_layers(self) -> int:
        """Blocks a token traverses, rounded to whole pipeline stages."""
        return self._effective_layers

    def stage_latency_s(self, context_length: int) -> float:
        """Duration of one pipeline-stage beat at ``context_length``."""
        return self._blocks_per_stage * self.block_latency_ns(context_length) * 1e-9

    def decode_iteration_s(self, context_lengths: Sequence[int]) -> float:
        """Wall-clock time to advance every running request by one token.

        The in-flight requests progress through the pipeline concurrently
        (staggered across stages), so the iteration takes one token latency
        at the batch's mean context, independent of how many of the
        ``pp_stages * dp_replicas`` slots are occupied; per-token host work
        is overlapped across queries exactly as in the batch throughput
        model.
        """
        contexts = list(context_lengths)
        if not contexts:
            return 0.0
        # Explicit left-to-right fold: the batch entry points reproduce this
        # accumulation order bit-exactly (float-fold rule).
        total_block_ns = 0.0
        for context in contexts:
            total_block_ns += self.block_latency_ns(context)
        mean_block_ns = total_block_ns / len(contexts)
        return self.effective_layers * mean_block_ns * 1e-9

    def prefill_chunk_s(self, num_tokens: int, context_length: int) -> float:
        """Wall-clock time to stream ``num_tokens`` of one request's prompt.

        Prompt tokens enter the pipeline back to back (paper §5.5), one per
        stage beat.  A single request streams through one replica's pipeline,
        so data parallelism does not shorten its prefill (the engine
        serialises concurrent prefill chunks, which is conservative for DP
        plans where replicas could prefill different requests in parallel).
        """
        if num_tokens <= 0:
            return 0.0
        return num_tokens * self.stage_latency_s(context_length)
