"""Per-iteration cost interface for continuous-batching serving.

``InferenceSimulator`` prices whole inferences of identical queries; the
serving engine instead needs the cost of *one* engine iteration over a mixed
batch — requests at different context lengths, some prefilling, some
decoding.  ``IterationCostModel`` extracts that interface from the
performance model:

* per-block latency comes from the same compiled-program simulation as the
  batch path, but is evaluated on a coarse **context grid** and linearly
  interpolated in between (per-block cost is affine in the context length,
  see ``repro.core.inference``), so a trace touching thousands of distinct
  contexts only triggers a handful of block simulations;
* grid evaluations go through the shared :class:`PerformanceModel`, whose
  LRU cache bounds memory across engine iterations and is reused by the
  static batch path of the same :class:`~repro.core.system.CentSystem`.

Timing semantics match the batch simulator: a pipeline-parallel replica
emits one token per stage beat (``blocks_per_stage * block_latency``), so a
full-batch decode iteration — one token for every in-flight query — takes
one token latency (host work is overlapped across queries, as in the batch
throughput model), and prefill streams prompt tokens through the pipeline at
one token per stage beat per replica.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.core.performance import PerformanceModel
from repro.mapping.parallelism import ParallelismPlan
from repro.models.config import ModelConfig

__all__ = ["IterationCostModel"]


class IterationCostModel:
    """Prices one continuous-batching iteration under a fixed (model, plan)."""

    def __init__(
        self,
        performance: PerformanceModel,
        model: ModelConfig,
        plan: ParallelismPlan,
        context_step: int = 256,
    ) -> None:
        if context_step <= 0:
            raise ValueError("context step must be positive")
        self.performance = performance
        self.model = model
        self.plan = plan
        self.context_step = context_step
        # Interpolation endpoints seen this run; tiny (one float per grid
        # point) and keyed only by context because model and plan are fixed.
        self._grid_ns: Dict[int, float] = {}

    # ------------------------------------------------------------------ block level

    def _grid_latency_ns(self, context: int) -> float:
        if context not in self._grid_ns:
            cost = self.performance.block_cost(self.model, self.plan, context)
            self._grid_ns[context] = cost.breakdown.total_ns
        return self._grid_ns[context]

    def block_latency_ns(self, context_length: int) -> float:
        """Per-block latency at ``context_length``, grid-interpolated.

        Contexts are clamped to the model's supported range; the last grid
        cell is shortened to end exactly at ``max_context`` so interpolation
        never prices a context the model cannot hold.
        """
        context = min(max(int(context_length), 1), self.model.max_context)
        lower = max((context // self.context_step) * self.context_step, 1)
        if context == lower:
            return self._grid_latency_ns(lower)
        upper = min(lower + self.context_step, self.model.max_context)
        low_ns = self._grid_latency_ns(lower)
        high_ns = self._grid_latency_ns(upper)
        fraction = (context - lower) / (upper - lower)
        return low_ns + (high_ns - low_ns) * fraction

    # ------------------------------------------------------------------ iteration level

    @property
    def effective_layers(self) -> int:
        """Blocks a token traverses, rounded to whole pipeline stages."""
        return self.plan.pp_stages * self.plan.blocks_per_stage(self.model)

    def stage_latency_s(self, context_length: int) -> float:
        """Duration of one pipeline-stage beat at ``context_length``."""
        blocks = self.plan.blocks_per_stage(self.model)
        return blocks * self.block_latency_ns(context_length) * 1e-9

    def decode_iteration_s(self, context_lengths: Sequence[int]) -> float:
        """Wall-clock time to advance every running request by one token.

        The in-flight requests progress through the pipeline concurrently
        (staggered across stages), so the iteration takes one token latency
        at the batch's mean context, independent of how many of the
        ``pp_stages * dp_replicas`` slots are occupied; per-token host work
        is overlapped across queries exactly as in the batch throughput
        model.
        """
        contexts = list(context_lengths)
        if not contexts:
            return 0.0
        mean_block_ns = sum(self.block_latency_ns(c) for c in contexts) / len(contexts)
        return self.effective_layers * mean_block_ns * 1e-9

    def prefill_chunk_s(self, num_tokens: int, context_length: int) -> float:
        """Wall-clock time to stream ``num_tokens`` of one request's prompt.

        Prompt tokens enter the pipeline back to back (paper §5.5), one per
        stage beat.  A single request streams through one replica's pipeline,
        so data parallelism does not shorten its prefill (the engine
        serialises concurrent prefill chunks, which is conservative for DP
        plans where replicas could prefill different requests in parallel).
        """
        if num_tokens <= 0:
            return 0.0
        return num_tokens * self.stage_latency_s(context_length)
