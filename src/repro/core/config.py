"""System-level configuration of a CENT deployment."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.cxl.link import CxlLinkParameters, CXL_3_0_LINK
from repro.dram.geometry import ChannelGeometry, GDDR6_PIM_GEOMETRY
from repro.dram.timing import TimingParameters, GDDR6_PIM_TIMINGS

__all__ = ["CentConfig"]


@dataclass(frozen=True)
class CentConfig:
    """Configuration of one CENT system (paper Table 4 defaults).

    Attributes
    ----------
    num_devices:
        CXL devices attached to the switch (32 in the main evaluation).
    channels_per_device:
        GDDR6-PIM channels per device (16 chips x 2 channels).
    timing / geometry / link:
        Substrate parameters; defaults follow Table 4.
    pnm_clock_ghz:
        CXL controller clock after the 7 nm projection.
    riscv_cores / pnm_units:
        PNM resource counts per device.
    host_ns_per_token:
        Host-side work per generated token (output embedding launch, top-k
        sampling, instruction dispatch), overlapped across queries.
    device_bus_gbps:
        Bandwidth (GB/s) of the device-internal bus between the shared buffer
        and the PIM channels' global buffers.  All concurrently active
        channels of a device share it, which throttles the ``WR_GB`` /
        ``WR_SBK`` / ``RD_SBK`` staging traffic of the compiled programs.
    kv_occupancy:
        Fraction of the worst-case KV-cache footprint reserved per in-flight
        query during capacity validation.  1.0 reserves the full context;
        lower values model vLLM-style on-demand allocation with queries
        staggered across their generation progress (used for the 32K-context
        study).
    context_samples:
        Number of context-length sample points used when integrating latency
        over a growing KV cache (the artifact's ``SEQ_GAP`` knob).
    block_cache_entries:
        LRU capacity of the performance model's block-cost cache; bounds the
        memory of long serving runs that sweep many context lengths.
    """

    num_devices: int = 32
    channels_per_device: int = 32
    timing: TimingParameters = field(default=GDDR6_PIM_TIMINGS)
    geometry: ChannelGeometry = field(default=GDDR6_PIM_GEOMETRY)
    link: CxlLinkParameters = field(default=CXL_3_0_LINK)
    pnm_clock_ghz: float = 2.0
    riscv_cores: int = 8
    pnm_units: int = 32
    host_ns_per_token: float = 200_000.0
    device_bus_gbps: float = 64.0
    kv_occupancy: float = 1.0
    context_samples: int = 5
    block_cache_entries: int = 1024

    def __post_init__(self) -> None:
        if self.num_devices <= 0 or self.channels_per_device <= 0:
            raise ValueError("device and channel counts must be positive")
        if self.pnm_clock_ghz <= 0:
            raise ValueError("PNM clock must be positive")
        if self.riscv_cores <= 0 or self.pnm_units <= 0:
            raise ValueError("PNM resource counts must be positive")
        if self.host_ns_per_token < 0:
            raise ValueError("host time must be non-negative")
        if self.device_bus_gbps <= 0:
            raise ValueError("device bus bandwidth must be positive")
        if not 0 < self.kv_occupancy <= 1:
            raise ValueError(
                "kv_occupancy must be in (0, 1] (the fraction of the "
                "worst-case KV footprint reserved per in-flight query), "
                f"got {self.kv_occupancy!r}"
            )
        if self.context_samples < 2:
            raise ValueError("at least two context samples are needed")
        if self.block_cache_entries <= 0:
            raise ValueError("the block-cost cache needs at least one entry")

    # ------------------------------------------------------------------ derived

    @property
    def total_channels(self) -> int:
        return self.num_devices * self.channels_per_device

    @property
    def memory_capacity_bytes(self) -> int:
        return self.total_channels * self.geometry.channel_capacity_bytes

    @property
    def peak_internal_bandwidth_tbps(self) -> float:
        """Aggregate internal bandwidth in TB/s (512 TB/s for 32 devices)."""
        per_channel = (self.geometry.num_banks
                       * self.geometry.access_granularity_bytes
                       / self.timing.t_ccd_s)
        return self.total_channels * per_channel / 1e3

    @property
    def peak_pim_tflops(self) -> float:
        """Aggregate near-bank MAC throughput in TFLOPS (512 for 32 devices)."""
        per_channel = (self.geometry.num_banks
                       * 2 * self.geometry.elements_per_access
                       / self.timing.t_ccd_s)
        return self.total_channels * per_channel / 1e3

    @property
    def peak_pnm_tflops(self) -> float:
        """Aggregate PNM accelerator throughput in TFLOPS (96 for 32 devices).

        32 accumulators + 32 reduction trees + 32 exponent units x 16 lanes
        at the controller clock.
        """
        lanes = 16
        units = 3 * self.pnm_units
        per_device = units * lanes * self.pnm_clock_ghz
        return self.num_devices * per_device / 1e3

    def scaled(self, num_devices: int) -> "CentConfig":
        """A copy of this configuration with a different device count."""
        return dataclasses.replace(self, num_devices=num_devices)
