"""High-level facade of the CENT system.

``CentSystem`` ties a :class:`~repro.core.config.CentConfig` to one model:
it validates capacity, chooses (or accepts) a parallelisation plan, runs the
inference simulation, and annotates the result with the activity-based power
and energy estimates.  This is the main entry point of the library::

    from repro import CentSystem, CentConfig, LLAMA2_70B

    system = CentSystem(CentConfig(num_devices=32), LLAMA2_70B)
    result = system.run_inference(prompt_tokens=512, decode_tokens=3584)
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import CentConfig
from repro.core.inference import InferenceSimulator
from repro.core.performance import PerformanceModel
from repro.core.results import InferenceResult, LatencyBreakdown
from repro.mapping.parallelism import ParallelismPlan
from repro.mapping.planner import plan_for_latency, plan_for_throughput
from repro.models.config import ModelConfig

__all__ = ["CentSystem"]


class CentSystem:
    """A CENT deployment: CXL devices, a model, and a parallelisation plan."""

    def __init__(self, config: CentConfig, model: ModelConfig) -> None:
        self.config = config
        self.model = model
        self.performance = PerformanceModel(config)
        self.simulator = InferenceSimulator(config, self.performance)

    # ------------------------------------------------------------------ planning

    def throughput_plan(self, context_length: Optional[int] = None) -> ParallelismPlan:
        """Pipeline-parallel (plus data-parallel) plan maximising throughput."""
        return plan_for_throughput(
            self.model,
            self.config.num_devices,
            channels_per_device=self.config.channels_per_device,
            context_length=context_length,
        )

    def latency_plan(self, context_length: Optional[int] = None) -> ParallelismPlan:
        """Tensor-parallel plan minimising single-query latency."""
        return plan_for_latency(
            self.model,
            self.config.num_devices,
            channels_per_device=self.config.channels_per_device,
            context_length=context_length,
        )

    # ------------------------------------------------------------------ inference

    def run_inference(
        self,
        prompt_tokens: int,
        decode_tokens: int,
        plan: Optional[ParallelismPlan] = None,
        with_power: bool = True,
    ) -> InferenceResult:
        """Simulate serving a batch of identical queries.

        When ``plan`` is omitted the throughput-optimised plan is used, which
        matches the paper's main (throughput-critical) configuration.
        """
        if plan is None:
            plan = self.throughput_plan(context_length=prompt_tokens + decode_tokens)
        result = self.simulator.simulate(self.model, plan, prompt_tokens, decode_tokens)
        if with_power:
            self._annotate_power(result, plan, prompt_tokens, decode_tokens)
        return result

    def token_breakdown(
        self,
        plan: ParallelismPlan,
        context_length: int,
    ) -> LatencyBreakdown:
        """Per-token latency breakdown (Figure 14c)."""
        return self.performance.token_breakdown(self.model, plan, context_length)

    # ------------------------------------------------------------------ serving

    def serve(self, trace, plan: Optional[ParallelismPlan] = None,
              *, sla_latency_s: Optional[float] = None, **engine_kwargs):
        """Serve a timed query trace with event-driven continuous batching.

        Convenience wrapper over :class:`repro.serving.ServingEngine`; the
        engine shares this system's performance model (and its bounded
        block-cost cache), so repeated serving runs reuse block simulations.
        Returns a :class:`~repro.core.results.ServingResult`.
        """
        # Imported here: repro.serving builds on repro.core.system.
        from repro.serving.engine import ServingEngine

        engine = ServingEngine(self, plan, **engine_kwargs)
        return engine.run(trace, sla_latency_s=sla_latency_s)

    def serve_cluster(
        self,
        tenants,
        *,
        placement_policy: str = "proportional",
        routing_policy: str = "least_outstanding",
        rebalance: str = "off",
        epoch_s=None,
        migration=None,
        control=None,
        **cluster_kwargs,
    ):
        """Serve several tenants' traces on this system's device pool.

        Partitions (or time-shares) ``config.num_devices`` across the
        tenant specs with :class:`repro.cluster.ClusterEngine`; tenants
        whose spec carries no model serve this system's model.  Returns a
        :class:`~repro.core.results.ClusterResult` with one
        :class:`~repro.core.results.ServingResult` per tenant plus
        pool-level goodput, fairness and utilisation.

        ``rebalance="epoch"`` (or an explicit
        :class:`~repro.cluster.control.ControlConfig` via ``control``) runs
        the closed loop: epoch-segmented serving with backlog-feedback
        routing and observed-demand re-placement; the default ``"off"`` is
        the open-loop single-shot path.  ``migration`` selects what happens
        to a dismantled replica's in-flight requests on re-placement:
        ``"live"`` (default) swaps their KV through host memory so they
        resume at their original progress, ``"restart"`` re-runs them.
        """
        # Imported here: repro.cluster builds on repro.core.system.
        from repro.cluster.engine import ClusterEngine

        engine = ClusterEngine(
            self.config,
            tenants,
            default_model=self.model,
            placement_policy=placement_policy,
            routing_policy=routing_policy,
            **cluster_kwargs,
        )
        return engine.run(rebalance=rebalance, epoch_s=epoch_s,
                          migration=migration, control=control)

    # ------------------------------------------------------------------ capacity

    @property
    def memory_capacity_bytes(self) -> int:
        return self.config.memory_capacity_bytes

    @property
    def peak_internal_bandwidth_tbps(self) -> float:
        return self.config.peak_internal_bandwidth_tbps

    @property
    def peak_pim_tflops(self) -> float:
        return self.config.peak_pim_tflops

    # ------------------------------------------------------------------ power

    def _annotate_power(
        self,
        result: InferenceResult,
        plan: ParallelismPlan,
        prompt_tokens: int,
        decode_tokens: int,
    ) -> None:
        # Imported here to keep repro.power free of core dependencies at
        # module-import time for users who only need the power models.
        from repro.power.cent_power import CentPowerModel

        power_model = CentPowerModel(self.config)
        decode = self.simulator.decode_phase(self.model, plan, prompt_tokens, decode_tokens)
        report = power_model.system_power(
            model=self.model,
            plan=plan,
            block_cost=decode.mean_block_cost,
        )
        result.average_power_w = report.total_w
        if result.decode_throughput_tokens_per_s > 0:
            result.energy_per_token_j = report.total_w / result.decode_throughput_tokens_per_s
