"""Functional simulation: verifying the PIM-PNM dataflow numerics.

The paper verifies the generated instruction traces with a functional
simulator before feeding them to the performance simulator.  This module
plays the same role:

* :class:`FunctionalGemv` executes a matrix-vector product through the
  near-bank PU and global-buffer models, following the same row-partitioned,
  tile-by-tile dataflow the compiler emits, so the BF16 numerics of the MAC
  tree are exercised.
* :class:`ReferenceTransformerBlock` is a straightforward NumPy reference of
  a Llama2-style decoder block (RMSNorm, grouped-query attention with rotary
  embedding, gated FFN).
* :class:`FunctionalTransformerBlock` computes the same block using the
  functional hardware units — PU MACs for every GEMV, the PNM exponent /
  reduction accelerators for Softmax, and the RISC-V routines for the square
  root, inversion, RoPE packing and residual additions — and is expected to
  match the reference within BF16 tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.models.config import FfnKind, ModelConfig
from repro.numerics.bf16 import bf16_quantize
from repro.numerics.lut import silu as silu_reference
from repro.pim.global_buffer import GlobalBuffer
from repro.pim.pu import MAC_LANES, ProcessingUnit
from repro.pnm.accelerators import PnmAcceleratorBank
from repro.pnm.riscv import RiscvCluster

__all__ = ["FunctionalGemv", "ReferenceTransformerBlock", "FunctionalTransformerBlock",
           "make_block_weights"]


class FunctionalGemv:
    """Executes ``y = W x`` through the near-bank PU dataflow.

    The matrix rows are partitioned across ``num_banks`` PUs; the vector is
    staged in the global buffer in 16-element slots and broadcast to the PUs,
    which accumulate one output element per assigned row.
    """

    def __init__(self, num_banks: int = 16) -> None:
        if num_banks <= 0:
            raise ValueError("num_banks must be positive")
        self.num_banks = num_banks
        self.pus = [ProcessingUnit(bank_index=i) for i in range(num_banks)]
        self.global_buffer = GlobalBuffer()

    def execute(self, matrix: np.ndarray, vector: np.ndarray) -> np.ndarray:
        matrix = np.asarray(matrix, dtype=np.float32)
        vector = np.asarray(vector, dtype=np.float32)
        if matrix.ndim != 2 or vector.ndim != 1 or matrix.shape[1] != vector.shape[0]:
            raise ValueError("matrix columns must match vector length")
        out_dim, in_dim = matrix.shape
        padded_in = -(-in_dim // MAC_LANES) * MAC_LANES
        padded_vector = np.zeros(padded_in, dtype=np.float32)
        padded_vector[:in_dim] = vector
        padded_matrix = np.zeros((out_dim, padded_in), dtype=np.float32)
        padded_matrix[:, :in_dim] = matrix

        gb_elements = self.global_buffer.num_slots * self.global_buffer.elements_per_slot
        result = np.zeros(out_dim, dtype=np.float32)
        for bank, pu in enumerate(self.pus):
            rows = range(bank, out_dim, self.num_banks)
            for row in rows:
                reg_id = 0
                pu.write_bias(0.0, reg_id)
                # Tile the vector through the global buffer as the compiler does.
                for tile_start in range(0, padded_in, gb_elements):
                    tile = padded_vector[tile_start:tile_start + gb_elements]
                    self.global_buffer.write_vector(0, tile)
                    for slot_start in range(0, len(tile), MAC_LANES):
                        slot_index = slot_start // MAC_LANES
                        broadcast = self.global_buffer.read_slot(slot_index)
                        bank_operand = padded_matrix[
                            row, tile_start + slot_start:tile_start + slot_start + MAC_LANES
                        ]
                        pu.mac(bank_operand, broadcast, reg_id)
                result[row] = pu.read_register(reg_id)
        return bf16_quantize(result)


# --------------------------------------------------------------------------- weights

def make_block_weights(model: ModelConfig, seed: int = 0, scale: float = 0.02) -> Dict[str, np.ndarray]:
    """Synthetic BF16 weights with the exact shapes of one transformer block."""
    rng = np.random.default_rng(seed)

    def tensor(*shape: int) -> np.ndarray:
        return bf16_quantize(rng.normal(0.0, scale, size=shape).astype(np.float32))

    weights = {
        "wq": tensor(model.d_model, model.d_model),
        "wk": tensor(model.kv_dim, model.d_model),
        "wv": tensor(model.kv_dim, model.d_model),
        "wo": tensor(model.d_model, model.d_model),
        "rms1": bf16_quantize(np.ones(model.d_model, dtype=np.float32)),
        "rms2": bf16_quantize(np.ones(model.d_model, dtype=np.float32)),
    }
    if model.ffn_kind is FfnKind.GATED:
        weights["w1"] = tensor(model.d_ff, model.d_model)
        weights["w3"] = tensor(model.d_ff, model.d_model)
        weights["w2"] = tensor(model.d_model, model.d_ff)
    else:
        weights["fc1"] = tensor(model.d_ff, model.d_model)
        weights["fc2"] = tensor(model.d_model, model.d_ff)
    return weights


def _rope_angles(head_dim: int, position: int) -> np.ndarray:
    half = head_dim // 2
    inv_freq = 1.0 / (10000.0 ** (np.arange(half, dtype=np.float64) / half))
    return (position * inv_freq).astype(np.float32)


def _apply_rope(vector: np.ndarray, num_heads: int, head_dim: int, position: int) -> np.ndarray:
    """Rotate a concatenated multi-head vector by the RoPE angles."""
    angles = _rope_angles(head_dim, position)
    cos = np.cos(angles)
    sin = np.sin(angles)
    rotated = np.empty_like(vector)
    for head in range(num_heads):
        head_slice = vector[head * head_dim:(head + 1) * head_dim]
        even = head_slice[0::2]
        odd = head_slice[1::2]
        rotated[head * head_dim:(head + 1) * head_dim:2] = even * cos - odd * sin
        rotated[head * head_dim + 1:(head + 1) * head_dim:2] = even * sin + odd * cos
    return rotated.astype(np.float32)


# --------------------------------------------------------------------------- reference

@dataclass
class ReferenceTransformerBlock:
    """NumPy reference of one Llama2-style decoder block (single token)."""

    model: ModelConfig
    weights: Dict[str, np.ndarray]
    key_cache: list = field(default_factory=list)
    value_cache: list = field(default_factory=list)

    def _rmsnorm(self, x: np.ndarray, gamma: np.ndarray) -> np.ndarray:
        mean_square = np.mean(x.astype(np.float64) ** 2)
        return (x / np.sqrt(mean_square + 1e-6) * gamma).astype(np.float32)

    def forward(self, x: np.ndarray, position: int) -> np.ndarray:
        model = self.model
        w = self.weights
        normed = self._rmsnorm(x, w["rms1"])
        q = w["wq"] @ normed
        k = w["wk"] @ normed
        v = w["wv"] @ normed
        q = _apply_rope(q, model.num_heads, model.head_dim, position)
        k = _apply_rope(k, model.num_kv_heads, model.head_dim, position)
        self.key_cache.append(k)
        self.value_cache.append(v)
        keys = np.stack(self.key_cache)      # (T, kv_dim)
        values = np.stack(self.value_cache)  # (T, kv_dim)

        outputs = np.zeros(model.d_model, dtype=np.float32)
        scale = 1.0 / np.sqrt(model.head_dim)
        for head in range(model.num_heads):
            kv_head = head // model.gqa_group_size
            q_h = q[head * model.head_dim:(head + 1) * model.head_dim]
            k_h = keys[:, kv_head * model.head_dim:(kv_head + 1) * model.head_dim]
            v_h = values[:, kv_head * model.head_dim:(kv_head + 1) * model.head_dim]
            scores = (k_h @ q_h) * scale
            scores = scores - np.max(scores)
            probs = np.exp(scores)
            probs = probs / np.sum(probs)
            outputs[head * model.head_dim:(head + 1) * model.head_dim] = probs @ v_h
        attention = w["wo"] @ outputs
        x = x + attention

        normed = self._rmsnorm(x, w["rms2"])
        if model.ffn_kind is FfnKind.GATED:
            gate = silu_reference(w["w1"] @ normed)
            up = w["w3"] @ normed
            ffn = w["w2"] @ (gate * up)
        else:
            hidden = np.maximum(w["fc1"] @ normed, 0.0)
            ffn = w["fc2"] @ hidden
        return (x + ffn).astype(np.float32)


# --------------------------------------------------------------------------- functional

@dataclass
class FunctionalTransformerBlock:
    """The same block computed through the functional hardware units."""

    model: ModelConfig
    weights: Dict[str, np.ndarray]
    num_banks: int = 16
    key_cache: list = field(default_factory=list)
    value_cache: list = field(default_factory=list)

    def __post_init__(self) -> None:
        self._gemv = FunctionalGemv(num_banks=self.num_banks)
        self._pnm = PnmAcceleratorBank()
        self._riscv = RiscvCluster()

    # PIM-side primitives ----------------------------------------------------

    def _gemv_pim(self, matrix: np.ndarray, vector: np.ndarray) -> np.ndarray:
        return self._gemv.execute(matrix, bf16_quantize(vector))

    def _rmsnorm(self, x: np.ndarray, gamma: np.ndarray) -> np.ndarray:
        # Dot product on the PIM channel, sqrt/inverse on a RISC-V core,
        # scaling as element-wise multiplications.
        x = bf16_quantize(x)
        sum_squares = self._pnm.reduce_sum(x * x)
        mean_square = sum_squares / x.size
        inv_norm = self._riscv.run("sqrt_inv", np.array([mean_square + 1e-6], dtype=np.float32))[0]
        return bf16_quantize(x * np.float32(inv_norm) * gamma)

    def _softmax(self, scores: np.ndarray) -> np.ndarray:
        scores = bf16_quantize(scores)
        maximum = self._riscv.run("softmax_max", scores)[0]
        exponents = self._pnm.exponent(scores - maximum)
        total = self._pnm.reduce_sum(exponents)
        inverse = self._riscv.run("inverse", np.array([total], dtype=np.float32))[0]
        return bf16_quantize(exponents * np.float32(inverse))

    # ------------------------------------------------------------------ forward

    def forward(self, x: np.ndarray, position: int) -> np.ndarray:
        model = self.model
        w = self.weights
        x = bf16_quantize(np.asarray(x, dtype=np.float32))

        normed = self._rmsnorm(x, w["rms1"])
        q = self._gemv_pim(w["wq"], normed)
        k = self._gemv_pim(w["wk"], normed)
        v = self._gemv_pim(w["wv"], normed)
        q = bf16_quantize(_apply_rope(q, model.num_heads, model.head_dim, position))
        k = bf16_quantize(_apply_rope(k, model.num_kv_heads, model.head_dim, position))
        self.key_cache.append(k)
        self.value_cache.append(v)
        keys = np.stack(self.key_cache)
        values = np.stack(self.value_cache)

        outputs = np.zeros(model.d_model, dtype=np.float32)
        scale = np.float32(1.0 / np.sqrt(model.head_dim))
        for head in range(model.num_heads):
            kv_head = head // model.gqa_group_size
            q_h = q[head * model.head_dim:(head + 1) * model.head_dim]
            k_h = keys[:, kv_head * model.head_dim:(kv_head + 1) * model.head_dim]
            v_h = values[:, kv_head * model.head_dim:(kv_head + 1) * model.head_dim]
            scores = self._gemv_pim(k_h, q_h) * scale
            probs = self._softmax(scores)
            outputs[head * model.head_dim:(head + 1) * model.head_dim] = \
                self._gemv_pim(v_h.T, probs)
        attention = self._gemv_pim(w["wo"], bf16_quantize(outputs))
        x = self._residual(x, attention)

        normed = self._rmsnorm(x, w["rms2"])
        if model.ffn_kind is FfnKind.GATED:
            gate_input = self._gemv_pim(w["w1"], normed)
            gate = bf16_quantize(silu_reference(gate_input))
            up = self._gemv_pim(w["w3"], normed)
            ffn = self._gemv_pim(w["w2"], bf16_quantize(gate * up))
        else:
            hidden = bf16_quantize(np.maximum(self._gemv_pim(w["fc1"], normed), 0.0))
            ffn = self._gemv_pim(w["fc2"], hidden)
        return self._residual(x, ffn)

    def _residual(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        concatenated = np.concatenate([x, y]).astype(np.float32)
        return self._riscv.run("residual_add", concatenated)
