"""The CENT system model: configuration, performance, inference, verification.

``CentSystem`` assembles the substrates (PIM channels, PNM units, the CXL
network) according to a :class:`~repro.core.config.CentConfig`, maps a model
onto them with a parallelisation plan, and simulates end-to-end inference:
per-block latency comes from executing compiled instruction streams on the
GDDR6-PIM timing substrate, PNM and CXL components come from their respective
models, and the results aggregate into prefill/decode/end-to-end throughput,
latency and activity counts for the power and cost models.
"""

from repro.core.config import CentConfig
from repro.core.results import (
    InferenceResult,
    LatencyBreakdown,
    LatencyStats,
    ServingResult,
    percentile,
)
from repro.core.performance import PerformanceModel, BlockCost
from repro.core.iteration import IterationCostModel
from repro.core.system import CentSystem
from repro.core.functional import (
    ReferenceTransformerBlock,
    FunctionalTransformerBlock,
    FunctionalGemv,
)

__all__ = [
    "CentConfig",
    "InferenceResult",
    "LatencyBreakdown",
    "LatencyStats",
    "ServingResult",
    "percentile",
    "PerformanceModel",
    "BlockCost",
    "IterationCostModel",
    "CentSystem",
    "ReferenceTransformerBlock",
    "FunctionalTransformerBlock",
    "FunctionalGemv",
]
