"""Decoder-only LLM configurations.

A :class:`ModelConfig` captures the architectural parameters the simulator
needs: hidden size, head structure (including grouped-query attention),
feed-forward shape (gated SwiGLU for Llama2, plain two-matrix FFN for
OPT/GPT3), layer count and context limit.  Parameter counts and per-token
KV-cache sizes are derived, not hard-coded, so tests can check them against
the published model sizes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "AttentionKind",
    "FfnKind",
    "ModelConfig",
    "LLAMA2_7B",
    "LLAMA2_13B",
    "LLAMA2_70B",
    "OPT_66B",
    "GPT3_175B",
    "MODEL_REGISTRY",
]


class AttentionKind(enum.Enum):
    """Multi-head vs grouped-query attention."""

    MULTI_HEAD = "multi_head"
    GROUPED_QUERY = "grouped_query"


class FfnKind(enum.Enum):
    """Feed-forward network structure."""

    GATED = "gated"        # SwiGLU: W1, W3 in parallel, SiLU, then W2
    STANDARD = "standard"  # two matrices with an activation in between


@dataclass(frozen=True)
class ModelConfig:
    """Architecture of one decoder-only LLM."""

    name: str
    num_layers: int
    d_model: int
    num_heads: int
    num_kv_heads: int
    d_ff: int
    vocab_size: int
    max_context: int
    ffn_kind: FfnKind = FfnKind.GATED
    activation: str = "silu"
    positional_encoding: str = "rotary"

    def __post_init__(self) -> None:
        if self.num_layers <= 0 or self.d_model <= 0 or self.d_ff <= 0:
            raise ValueError("layer count and dimensions must be positive")
        if self.num_heads <= 0 or self.num_kv_heads <= 0:
            raise ValueError("head counts must be positive")
        if self.d_model % self.num_heads != 0:
            raise ValueError("d_model must be divisible by num_heads")
        if self.num_heads % self.num_kv_heads != 0:
            raise ValueError("num_heads must be divisible by num_kv_heads (GQA groups)")
        if self.vocab_size <= 0 or self.max_context <= 0:
            raise ValueError("vocab size and context length must be positive")

    # ------------------------------------------------------------------ structure

    @property
    def head_dim(self) -> int:
        return self.d_model // self.num_heads

    @property
    def attention_kind(self) -> AttentionKind:
        return (AttentionKind.GROUPED_QUERY
                if self.num_kv_heads < self.num_heads
                else AttentionKind.MULTI_HEAD)

    @property
    def gqa_group_size(self) -> int:
        """Query heads sharing one KV head."""
        return self.num_heads // self.num_kv_heads

    @property
    def kv_dim(self) -> int:
        """Width of the key/value projections."""
        return self.num_kv_heads * self.head_dim

    # ------------------------------------------------------------------ parameter counts

    @property
    def attention_params_per_layer(self) -> int:
        """Wq, Wk, Wv, Wo parameter count for one layer."""
        q_and_o = 2 * self.d_model * self.d_model
        k_and_v = 2 * self.d_model * self.kv_dim
        return q_and_o + k_and_v

    @property
    def ffn_params_per_layer(self) -> int:
        matrices = 3 if self.ffn_kind is FfnKind.GATED else 2
        return matrices * self.d_model * self.d_ff

    @property
    def norm_params_per_layer(self) -> int:
        """Two RMSNorm/LayerNorm weight vectors per block."""
        return 2 * self.d_model

    @property
    def params_per_layer(self) -> int:
        return (self.attention_params_per_layer
                + self.ffn_params_per_layer
                + self.norm_params_per_layer)

    @property
    def embedding_params(self) -> int:
        """Input plus output embedding tables."""
        return 2 * self.vocab_size * self.d_model

    @property
    def total_params(self) -> int:
        return self.num_layers * self.params_per_layer + self.embedding_params

    # ------------------------------------------------------------------ KV cache

    @property
    def kv_cache_elements_per_token_per_layer(self) -> int:
        """BF16 elements appended to the key and value caches per token."""
        return 2 * self.kv_dim

    def kv_cache_bytes_per_token(self, bytes_per_element: int = 2) -> int:
        """KV-cache bytes per token across all layers."""
        return (self.num_layers
                * self.kv_cache_elements_per_token_per_layer
                * bytes_per_element)

    # ------------------------------------------------------------------ FLOPs (decode, per token)

    def decode_flops_per_token(self, context_length: int) -> int:
        """Arithmetic operations to decode one token at the given context.

        GEMV against all weight matrices plus the attention score/output
        GEMVs against the KV cache; the 2x factor counts multiply and add.
        """
        if context_length <= 0:
            raise ValueError("context length must be positive")
        weights = self.params_per_layer - self.norm_params_per_layer
        attention_kv = 2 * context_length * self.num_heads * self.head_dim
        per_layer = 2 * (weights + attention_kv)
        output_embedding = 2 * self.vocab_size * self.d_model
        return self.num_layers * per_layer + output_embedding


LLAMA2_7B = ModelConfig(
    name="Llama2-7B", num_layers=32, d_model=4096, num_heads=32, num_kv_heads=32,
    d_ff=11008, vocab_size=32000, max_context=4096,
)

LLAMA2_13B = ModelConfig(
    name="Llama2-13B", num_layers=40, d_model=5120, num_heads=40, num_kv_heads=40,
    d_ff=13824, vocab_size=32000, max_context=4096,
)

LLAMA2_70B = ModelConfig(
    name="Llama2-70B", num_layers=80, d_model=8192, num_heads=64, num_kv_heads=8,
    d_ff=28672, vocab_size=32000, max_context=4096,
)

OPT_66B = ModelConfig(
    name="OPT-66B", num_layers=64, d_model=9216, num_heads=72, num_kv_heads=72,
    d_ff=36864, vocab_size=50272, max_context=2048,
    ffn_kind=FfnKind.STANDARD, activation="gelu", positional_encoding="absolute",
)

GPT3_175B = ModelConfig(
    name="GPT3-175B", num_layers=96, d_model=12288, num_heads=96, num_kv_heads=96,
    d_ff=49152, vocab_size=50257, max_context=2048,
    ffn_kind=FfnKind.STANDARD, activation="gelu", positional_encoding="absolute",
)

#: Lookup by name, used by examples and benchmarks.
MODEL_REGISTRY = {
    config.name: config
    for config in (LLAMA2_7B, LLAMA2_13B, LLAMA2_70B, OPT_66B, GPT3_175B)
}
