"""Memory sizing of model parameters and KV caches.

Both CENT and the GPU baseline store parameters and KV caches in BF16
(2 bytes/element).  The memory profile answers the capacity questions the
mapping layer and the GPU batching model need: how many bytes one transformer
block occupies, how much KV cache one query of a given context length needs,
and the largest batch that fits a given memory budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.config import ModelConfig

__all__ = ["ModelMemoryProfile", "BYTES_PER_PARAM_BF16"]

#: BF16 storage per parameter / activation element.
BYTES_PER_PARAM_BF16 = 2


@dataclass(frozen=True)
class ModelMemoryProfile:
    """Derived memory requirements of one model."""

    model: ModelConfig
    bytes_per_element: int = BYTES_PER_PARAM_BF16

    def __post_init__(self) -> None:
        if self.bytes_per_element <= 0:
            raise ValueError("bytes per element must be positive")

    # ------------------------------------------------------------------ parameters

    @property
    def parameter_bytes(self) -> int:
        return self.model.total_params * self.bytes_per_element

    @property
    def block_parameter_bytes(self) -> int:
        """Weights of a single transformer block."""
        return self.model.params_per_layer * self.bytes_per_element

    @property
    def embedding_bytes(self) -> int:
        return self.model.embedding_params * self.bytes_per_element

    # ------------------------------------------------------------------ KV cache

    def kv_cache_bytes_per_token(self) -> int:
        return self.model.kv_cache_bytes_per_token(self.bytes_per_element)

    def kv_cache_bytes_per_query(self, context_length: int) -> int:
        if context_length <= 0:
            raise ValueError("context length must be positive")
        return context_length * self.kv_cache_bytes_per_token()

    def kv_cache_bytes_per_block_per_query(self, context_length: int) -> int:
        """One transformer block's share of a query's KV cache, rounded up.

        Ceiling division: flooring would undercount whenever the per-query
        total does not divide evenly across layers, and capacity checks
        built on a per-block undercount admit mappings that do not fit.
        """
        total = self.kv_cache_bytes_per_query(context_length)
        return -(-total // self.model.num_layers)

    # ------------------------------------------------------------------ totals

    def total_bytes(self, batch_size: int, context_length: int) -> int:
        """Parameters plus KV caches for a batch at a given context length."""
        if batch_size <= 0:
            raise ValueError("batch size must be positive")
        return (self.parameter_bytes
                + batch_size * self.kv_cache_bytes_per_query(context_length))

    def block_bytes(self, batch_size: int, context_length: int) -> int:
        """One transformer block's weights plus its share of the KV caches."""
        return (self.block_parameter_bytes
                + batch_size * self.kv_cache_bytes_per_block_per_query(context_length))

    def max_batch_size(self, memory_budget_bytes: int, context_length: int) -> int:
        """Largest batch whose parameters + KV caches fit the budget."""
        if memory_budget_bytes <= self.parameter_bytes:
            return 0
        available = memory_budget_bytes - self.parameter_bytes
        return available // self.kv_cache_bytes_per_query(context_length)
