"""LLM model configurations and memory sizing.

The evaluation uses Llama2 7B/13B/70B (main results), OPT-66B (CXL-PNM
comparison) and GPT3-175B (AttAcc/NeuPIM comparison).  BERT and ResNet-152
proxies exist only for the GPU-utilisation motivation figure.
"""

from repro.models.config import (
    AttentionKind,
    FfnKind,
    ModelConfig,
    LLAMA2_7B,
    LLAMA2_13B,
    LLAMA2_70B,
    OPT_66B,
    GPT3_175B,
    MODEL_REGISTRY,
)
from repro.models.memory import ModelMemoryProfile, BYTES_PER_PARAM_BF16

__all__ = [
    "AttentionKind",
    "FfnKind",
    "ModelConfig",
    "LLAMA2_7B",
    "LLAMA2_13B",
    "LLAMA2_70B",
    "OPT_66B",
    "GPT3_175B",
    "MODEL_REGISTRY",
    "ModelMemoryProfile",
    "BYTES_PER_PARAM_BF16",
]
