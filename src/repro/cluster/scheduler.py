"""Routing arriving requests onto the placed replicas.

``ClusterScheduler`` walks a merged arrival stream (in arrival order, as a
front-end router would see it) and decides, per request, which of the
tenant's replicas serves it — or rejects it at the tenant's admission cap.
Three policies:

* ``round_robin`` — cycle through the tenant's replicas; the stateless
  baseline;
* ``least_outstanding`` — send the request to the replica with the least
  outstanding (predicted-unfinished) work at its arrival instant;
* ``sla_deadline`` — prefer replicas whose predicted completion meets the
  request's deadline (arrival + the tenant's SLO), falling back to the
  earliest predicted completion when none can.

The router's view of replica load is a backlog model — each replica drains
routed work at its estimated token rate — because a front-end cannot observe
the engine's internal batch state.  On the open-loop :meth:`route` path that
model runs uncorrected for the whole trace, and routing mistakes show up in
the measured per-tenant latencies.  The closed-loop path
(``repro.cluster.control``) instead routes one epoch at a time through
:meth:`route_window`, carrying :class:`RouterState` across windows and
re-anchoring the model at every epoch boundary to each replica's *measured*
backlog and token rate (:class:`ReplicaFeedback`, distilled from the
engine's ``queue_depth_timeline`` and per-epoch goodput) — so
``least_outstanding`` and ``sla_deadline`` track reality under bursty
arrivals instead of compounding the initial estimate's error.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster.placement import ClusterPlacement, ReplicaSpec
from repro.cluster.tenant import TenantSpec
from repro.workloads.queries import Query

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.telemetry.recorder import ScopedRecorder

__all__ = [
    "ROUTING_POLICIES",
    "TenantAccounting",
    "RoutingPlan",
    "RouterState",
    "ReplicaFeedback",
    "ClusterScheduler",
]

ROUTING_POLICIES = ("round_robin", "least_outstanding", "sla_deadline")

#: Estimated service seconds of one query on one replica.
ServiceEstimator = Callable[[ReplicaSpec, Query], float]


@dataclass
class TenantAccounting:
    """Fairness bookkeeping of one tenant across the routing pass."""

    offered: int = 0
    routed: int = 0
    rejected: int = 0
    routed_tokens: int = 0

    @property
    def admitted_fraction(self) -> float:
        return self.routed / self.offered if self.offered else 0.0


@dataclass
class RoutingPlan:
    """Outcome of one routing pass over the merged arrival stream."""

    policy: str
    #: Per replica id: the routed (tenant name, query) pairs in arrival order.
    assignments: Dict[int, List[Tuple[str, Query]]] = field(default_factory=dict)
    #: Per tenant: queries refused at the admission cap.
    rejected: Dict[str, List[Query]] = field(default_factory=dict)
    accounting: Dict[str, TenantAccounting] = field(default_factory=dict)

    def trace_for(self, replica_id: int) -> List[Query]:
        return [query for _, query in self.assignments.get(replica_id, [])]


@dataclass
class RouterState:
    """Router model carried across routing windows of one closed-loop run.

    ``ready_s`` is the predicted instant each replica's routed backlog
    drains; ``outstanding`` the per-tenant min-heaps of predicted finish
    times behind the admission caps; ``robin_pos`` each tenant's round-robin
    cursor.  :meth:`ClusterScheduler.route` builds a fresh one per call, so
    the open-loop path is unchanged by the state being externalised.
    """

    ready_s: Dict[int, float] = field(default_factory=dict)
    outstanding: Dict[str, List[float]] = field(default_factory=dict)
    robin_pos: Dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class ReplicaFeedback:
    """Measured state of one replica at an epoch boundary.

    Distilled by the control loop from the engine's measured signals: the
    tail of the per-iteration ``queue_depth_timeline`` (``queued`` /
    ``running``), the work still owed (``outstanding_tokens``), and the
    token rate the replica actually sustained over the last epoch
    (``observed_tokens_per_s``; ``estimated_tokens_per_s`` is the a-priori
    capability fallback for replicas that have not run yet).
    """

    queued: int = 0
    running: int = 0
    outstanding_tokens: float = 0.0
    observed_tokens_per_s: float = 0.0
    estimated_tokens_per_s: float = 0.0
    #: Extra seconds before the replica can serve at all (a replica rebuilt
    #: by a re-placement is still reloading weights at the window start).
    extra_delay_s: float = 0.0

    def drain_s(self) -> float:
        """Predicted seconds to drain the measured backlog."""
        rate = self.observed_tokens_per_s or self.estimated_tokens_per_s
        if self.outstanding_tokens <= 0:
            return self.extra_delay_s
        if rate <= 0:
            # No progress and no estimate: the backlog is effectively stuck;
            # an arbitrarily large drain keeps the replica at the bottom of
            # every least-loaded ranking without poisoning the arithmetic.
            return float("inf")
        return self.extra_delay_s + self.outstanding_tokens / rate


class ClusterScheduler:
    """Routes each tenant's requests across that tenant's replicas."""

    def __init__(self, policy: str = "least_outstanding") -> None:
        if policy not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown routing policy {policy!r}; expected one of "
                f"{ROUTING_POLICIES}"
            )
        self.policy = policy

    def route(
        self,
        tenants: Sequence[TenantSpec],
        placement: ClusterPlacement,
        service_estimator: ServiceEstimator,
        *,
        recorder: Optional["ScopedRecorder"] = None,
    ) -> RoutingPlan:
        """Assign every request of every tenant to one replica (or reject).

        The open-loop single-pass path: the whole merged arrival stream is
        routed against the uncorrected backlog model.
        """
        stream = sorted(
            ((query, tenant.name) for tenant in tenants for query in tenant.trace),
            key=lambda item: item[0].arrival_time_s,
        )
        return self.route_window(tenants, placement, service_estimator,
                                 stream=stream, state=RouterState(),
                                 recorder=recorder)

    def route_window(
        self,
        tenants: Sequence[TenantSpec],
        placement: ClusterPlacement,
        service_estimator: ServiceEstimator,
        *,
        stream: Sequence[Tuple[Query, str]],
        state: RouterState,
        feedback: Optional[Dict[int, ReplicaFeedback]] = None,
        window_start_s: float = 0.0,
        recorder: Optional["ScopedRecorder"] = None,
    ) -> RoutingPlan:
        """Route one window of the arrival stream, carrying router state.

        ``stream`` is the window's ``(query, tenant name)`` pairs in arrival
        order; ``state`` carries the backlog model, admission heaps and
        round-robin cursors from previous windows.  When ``feedback`` is
        given, each covered replica's predicted drain time is re-anchored to
        its *measured* backlog before routing — the closed-loop correction —
        instead of whatever the open-loop model had accumulated.  A
        ``recorder`` (``repro.telemetry.ScopedRecorder``) gets one
        ``cluster.route_window`` summary event per non-empty window.
        """
        plan = RoutingPlan(policy=self.policy)
        for replica in placement.replicas:
            plan.assignments[replica.replica_id] = []
            state.ready_s.setdefault(replica.replica_id, 0.0)
        offered = {t.name: 0 for t in tenants}
        for _, name in stream:
            offered[name] += 1
        for tenant in tenants:
            plan.rejected[tenant.name] = []
            plan.accounting[tenant.name] = TenantAccounting(offered=offered[tenant.name])
            state.outstanding.setdefault(tenant.name, [])
            state.robin_pos.setdefault(tenant.name, 0)

        if feedback:
            for replica_id, observed in feedback.items():
                if replica_id in state.ready_s:
                    state.ready_s[replica_id] = (
                        window_start_s + observed.drain_s())

        by_name = {t.name: t for t in tenants}
        candidates: Dict[str, List[ReplicaSpec]] = {}
        for tenant in tenants:
            replicas = [r for r in placement.replicas
                        if tenant.name in r.tenant_names]
            if not replicas:
                raise ValueError(
                    f"no replica serves tenant {tenant.name!r}: its allotment "
                    "was trimmed to nothing (capability probes found no "
                    "feasible count) or the placement dropped it; refusing to "
                    "route its requests silently"
                )
            candidates[tenant.name] = replicas

        for query, name in stream:
            tenant = by_name[name]
            arrival = query.arrival_time_s
            heap = state.outstanding[name]
            while heap and heap[0] <= arrival:
                heapq.heappop(heap)
            if tenant.max_outstanding is not None and len(heap) >= tenant.max_outstanding:
                plan.rejected[name].append(query)
                plan.accounting[name].rejected += 1
                continue

            replica = self._choose(tenant, query, candidates[name], state,
                                   service_estimator)
            finish = (max(state.ready_s[replica.replica_id], arrival)
                      + service_estimator(replica, query))
            state.ready_s[replica.replica_id] = finish
            heapq.heappush(heap, finish)
            plan.assignments[replica.replica_id].append((name, query))
            plan.accounting[name].routed += 1
            plan.accounting[name].routed_tokens += query.total_context
        if recorder is not None and stream:
            accounts = plan.accounting.values()
            recorder.event(
                "cluster.route_window", window_start_s,
                policy=self.policy,
                offered=sum(a.offered for a in accounts),
                routed=sum(a.routed for a in accounts),
                rejected=sum(a.rejected for a in accounts),
                routed_tokens=sum(a.routed_tokens for a in accounts))
        return plan

    # ------------------------------------------------------------------ policies

    def _choose(
        self,
        tenant: TenantSpec,
        query: Query,
        replicas: List[ReplicaSpec],
        state: RouterState,
        service_estimator: ServiceEstimator,
    ) -> ReplicaSpec:
        if len(replicas) == 1:
            return replicas[0]
        if self.policy == "round_robin":
            position = state.robin_pos[tenant.name]
            state.robin_pos[tenant.name] = position + 1
            return replicas[position % len(replicas)]
        arrival = query.arrival_time_s
        ready_s = state.ready_s

        def backlog(replica: ReplicaSpec) -> float:
            return max(0.0, ready_s[replica.replica_id] - arrival)

        if self.policy == "least_outstanding":
            return min(replicas, key=lambda r: (backlog(r), r.replica_id))

        # sla_deadline: among replicas predicted to meet the deadline pick
        # the least loaded; otherwise minimise the predicted completion.
        deadline = arrival + tenant.latency_slo_s
        finish = {
            r.replica_id: max(ready_s[r.replica_id], arrival) + service_estimator(r, query)
            for r in replicas
        }
        meeting = [r for r in replicas if finish[r.replica_id] <= deadline]
        if meeting:
            return min(meeting, key=lambda r: (backlog(r), r.replica_id))
        return min(replicas, key=lambda r: (finish[r.replica_id], r.replica_id))
