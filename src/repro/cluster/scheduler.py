"""Routing arriving requests onto the placed replicas.

``ClusterScheduler`` walks the merged arrival stream of every tenant once
(in arrival order, as a front-end router would see it) and decides, per
request, which of the tenant's replicas serves it — or rejects it at the
tenant's admission cap.  Three policies:

* ``round_robin`` — cycle through the tenant's replicas; the stateless
  baseline;
* ``least_outstanding`` — send the request to the replica with the least
  outstanding (predicted-unfinished) work at its arrival instant;
* ``sla_deadline`` — prefer replicas whose predicted completion meets the
  request's deadline (arrival + the tenant's SLO), falling back to the
  earliest predicted completion when none can.

The router's view of replica load is a deliberately simple backlog model —
each replica drains routed work at its estimated token rate — because a
front-end cannot observe the engine's internal batch state; the engines
then replay the routed traces exactly, so routing mistakes show up in the
measured per-tenant latencies.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from repro.cluster.placement import ClusterPlacement, ReplicaSpec
from repro.cluster.tenant import TenantSpec
from repro.workloads.queries import Query

__all__ = ["ROUTING_POLICIES", "TenantAccounting", "RoutingPlan", "ClusterScheduler"]

ROUTING_POLICIES = ("round_robin", "least_outstanding", "sla_deadline")

#: Estimated service seconds of one query on one replica.
ServiceEstimator = Callable[[ReplicaSpec, Query], float]


@dataclass
class TenantAccounting:
    """Fairness bookkeeping of one tenant across the routing pass."""

    offered: int = 0
    routed: int = 0
    rejected: int = 0
    routed_tokens: int = 0

    @property
    def admitted_fraction(self) -> float:
        return self.routed / self.offered if self.offered else 0.0


@dataclass
class RoutingPlan:
    """Outcome of one routing pass over the merged arrival stream."""

    policy: str
    #: Per replica id: the routed (tenant name, query) pairs in arrival order.
    assignments: Dict[int, List[Tuple[str, Query]]] = field(default_factory=dict)
    #: Per tenant: queries refused at the admission cap.
    rejected: Dict[str, List[Query]] = field(default_factory=dict)
    accounting: Dict[str, TenantAccounting] = field(default_factory=dict)

    def trace_for(self, replica_id: int) -> List[Query]:
        return [query for _, query in self.assignments.get(replica_id, [])]


class ClusterScheduler:
    """Routes each tenant's requests across that tenant's replicas."""

    def __init__(self, policy: str = "least_outstanding") -> None:
        if policy not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown routing policy {policy!r}; expected one of "
                f"{ROUTING_POLICIES}"
            )
        self.policy = policy

    def route(
        self,
        tenants: Sequence[TenantSpec],
        placement: ClusterPlacement,
        service_estimator: ServiceEstimator,
    ) -> RoutingPlan:
        """Assign every request of every tenant to one replica (or reject)."""
        plan = RoutingPlan(policy=self.policy)
        for replica in placement.replicas:
            plan.assignments[replica.replica_id] = []
        for tenant in tenants:
            plan.rejected[tenant.name] = []
            plan.accounting[tenant.name] = TenantAccounting(offered=len(tenant.trace))

        by_name = {t.name: t for t in tenants}
        candidates = {t.name: placement.replicas_for(t.name) for t in tenants}
        robin = {name: itertools.cycle(reps) for name, reps in candidates.items()}
        # Predicted time each replica's routed backlog drains.
        ready_s: Dict[int, float] = {r.replica_id: 0.0 for r in placement.replicas}
        # Per tenant: min-heap of predicted finish times of routed requests.
        outstanding: Dict[str, List[float]] = {t.name: [] for t in tenants}

        stream = sorted(
            ((query, tenant.name) for tenant in tenants for query in tenant.trace),
            key=lambda item: item[0].arrival_time_s,
        )
        for query, name in stream:
            tenant = by_name[name]
            arrival = query.arrival_time_s
            heap = outstanding[name]
            while heap and heap[0] <= arrival:
                heapq.heappop(heap)
            if tenant.max_outstanding is not None and len(heap) >= tenant.max_outstanding:
                plan.rejected[name].append(query)
                plan.accounting[name].rejected += 1
                continue

            replica = self._choose(tenant, query, candidates[name], robin[name],
                                   ready_s, service_estimator)
            finish = (max(ready_s[replica.replica_id], arrival)
                      + service_estimator(replica, query))
            ready_s[replica.replica_id] = finish
            heapq.heappush(heap, finish)
            plan.assignments[replica.replica_id].append((name, query))
            plan.accounting[name].routed += 1
            plan.accounting[name].routed_tokens += query.total_context
        return plan

    # ------------------------------------------------------------------ policies

    def _choose(
        self,
        tenant: TenantSpec,
        query: Query,
        replicas: List[ReplicaSpec],
        robin,
        ready_s: Dict[int, float],
        service_estimator: ServiceEstimator,
    ) -> ReplicaSpec:
        if len(replicas) == 1:
            return replicas[0]
        if self.policy == "round_robin":
            return next(robin)
        arrival = query.arrival_time_s

        def backlog(replica: ReplicaSpec) -> float:
            return max(0.0, ready_s[replica.replica_id] - arrival)

        if self.policy == "least_outstanding":
            return min(replicas, key=lambda r: (backlog(r), r.replica_id))

        # sla_deadline: among replicas predicted to meet the deadline pick
        # the least loaded; otherwise minimise the predicted completion.
        deadline = arrival + tenant.latency_slo_s
        finish = {
            r.replica_id: max(ready_s[r.replica_id], arrival) + service_estimator(r, query)
            for r in replicas
        }
        meeting = [r for r in replicas if finish[r.replica_id] <= deadline]
        if meeting:
            return min(meeting, key=lambda r: (backlog(r), r.replica_id))
        return min(replicas, key=lambda r: (finish[r.replica_id], r.replica_id))
