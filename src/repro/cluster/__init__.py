"""Multi-tenant cluster serving: shard one CXL-PIM pool across tenants.

The paper sizes the pool for a single model; a production deployment runs
several models and traffic classes on it at once.  This package adds that
layer without touching the serving engine's iteration loop:

* :class:`TenantSpec` / :class:`SlaClass` — one consumer of the pool: a
  model, a timed trace, an SLA class and a priority;
* :class:`ClusterPlacer` — partitions (or time-shares) the pool's devices
  into per-tenant replicas under ``static`` / ``proportional`` /
  ``sla_aware`` policies, reusing the mapping layer's plans and capacity
  validation per replica;
* :class:`ClusterScheduler` — routes arriving requests to replicas
  (``round_robin`` / ``least_outstanding`` / ``sla_deadline``) with
  per-tenant admission and fairness accounting;
* :class:`ClusterEngine` — drives one unmodified
  :class:`~repro.serving.ServingEngine` per replica and folds the outcomes
  into a :class:`~repro.core.results.ClusterResult`.

Quickstart (see ``examples/multi_tenant_serving.py``)::

    from repro import CentConfig, CentSystem, LLAMA2_7B, SlaClass, TenantSpec
    from repro.workloads import poisson_arrivals, sharegpt_like_queries, with_arrivals

    chat = TenantSpec("chat", sla_class=SlaClass.INTERACTIVE,
                      trace=with_arrivals(sharegpt_like_queries(120),
                                          poisson_arrivals(120, rate_qps=2.0)))
    batch = TenantSpec("batch", sla_class=SlaClass.BATCH,
                       trace=with_arrivals(sharegpt_like_queries(30, seed=7),
                                           poisson_arrivals(30, rate_qps=0.3)))
    system = CentSystem(CentConfig(num_devices=16), LLAMA2_7B)
    result = system.serve_cluster([chat, batch], placement_policy="sla_aware")
    print(result.aggregate_goodput_tokens_per_s, result.max_min_goodput_ratio)
"""

from repro.cluster.control import (
    MIGRATION_MODES,
    REBALANCE_MODES,
    ClusterControlLoop,
    ControlConfig,
    RebalanceDecision,
    RebalancePolicy,
    weight_reload_time_s,
)
from repro.cluster.engine import ClusterEngine
from repro.cluster.placement import (
    PLACEMENT_POLICIES,
    ClusterPlacement,
    ClusterPlacer,
    ReplicaSpec,
    min_feasible_devices,
)
from repro.cluster.scheduler import (
    ROUTING_POLICIES,
    ClusterScheduler,
    ReplicaFeedback,
    RouterState,
    RoutingPlan,
    TenantAccounting,
)
from repro.cluster.tenant import DEFAULT_SLA_LATENCY_S, SlaClass, TenantSpec
from repro.core.results import ClusterResult

__all__ = [
    "TenantSpec",
    "SlaClass",
    "DEFAULT_SLA_LATENCY_S",
    "ClusterPlacer",
    "ClusterPlacement",
    "ReplicaSpec",
    "min_feasible_devices",
    "PLACEMENT_POLICIES",
    "ClusterScheduler",
    "RoutingPlan",
    "RouterState",
    "ReplicaFeedback",
    "TenantAccounting",
    "ROUTING_POLICIES",
    "ClusterEngine",
    "ClusterResult",
    "MIGRATION_MODES",
    "REBALANCE_MODES",
    "ControlConfig",
    "RebalanceDecision",
    "RebalancePolicy",
    "ClusterControlLoop",
    "weight_reload_time_s",
]
