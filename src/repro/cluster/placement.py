"""Partitioning one CXL-PIM device pool into per-tenant serving replicas.

``ClusterPlacer`` carves the pool's devices into replicas, one serving
engine each, reusing the existing mapping layer: every replica gets a
contiguous device range, and the plan each replica runs is the same
throughput plan (with its per-block device map and capacity validation from
``repro.mapping``) a standalone deployment of that size would choose.

Three policies cover the interesting regimes of asymmetric sharing:

* ``static`` — demand-blind equal split: every tenant gets its model's
  feasibility floor plus an equal share of the spare devices (for
  same-model tenants this is an even split; heterogeneous models skew it
  by their floors), the baseline a naive operator would configure;
* ``proportional`` — devices proportional to each tenant's offered token
  demand, the classic work-conserving heuristic;
* ``sla_aware`` — proportional demand additionally weighted by priority and
  SLO tightness, so interactive tenants get headroom ahead of batch ones.

Every policy first reserves each tenant's *feasibility floor* (the smallest
device count on which its model places at all) and then apportions the
remaining devices by policy weight with largest-remainder rounding, so no
device of the pool is wasted and no tenant is starved below feasibility.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster.tenant import TenantSpec
from repro.mapping.planner import plan_for_throughput
from repro.models.config import ModelConfig

__all__ = [
    "PLACEMENT_POLICIES",
    "ReplicaSpec",
    "ClusterPlacement",
    "ClusterPlacer",
    "min_feasible_devices",
]

PLACEMENT_POLICIES = ("static", "proportional", "sla_aware")


#: Upper bound of the feasibility-floor search; models needing more devices
#: than this are treated as unplaceable regardless of the pool size.
_FLOOR_SEARCH_LIMIT = 1024


@functools.lru_cache(maxsize=256)
def _feasibility_floor(
    model: ModelConfig,
    channels_per_device: int,
    context_length: Optional[int],
) -> Optional[int]:
    for devices in range(1, _FLOOR_SEARCH_LIMIT + 1):
        try:
            plan_for_throughput(model, devices,
                                channels_per_device=channels_per_device,
                                context_length=context_length)
            return devices
        except MemoryError:
            continue
    return None


def min_feasible_devices(
    model: ModelConfig,
    pool_devices: int,
    channels_per_device: int = 32,
    context_length: Optional[int] = None,
) -> int:
    """Smallest device count on which ``model`` places (throughput plan).

    Feasibility is monotone in the device count (more devices means fewer
    blocks, hence more channels and capacity, per device), so the first
    count that validates is the floor.  The search is memoised on the
    pool-independent inputs (all frozen dataclasses), so sweeps over
    policies or pool sizes pay the plan search once per tenant model.
    """
    floor = _feasibility_floor(model, channels_per_device, context_length)
    if floor is None or floor > pool_devices:
        raise MemoryError(
            f"{model.name} does not fit even on all {pool_devices} devices of the pool"
        )
    return floor


@dataclass(frozen=True)
class ReplicaSpec:
    """One serving replica: a device range and the tenants it serves."""

    replica_id: int
    tenant_names: Tuple[str, ...]
    model: ModelConfig
    num_devices: int
    first_device: int

    def __post_init__(self) -> None:
        if self.num_devices <= 0:
            raise ValueError("a replica needs at least one device")
        if not self.tenant_names:
            raise ValueError("a replica must serve at least one tenant")

    @property
    def device_range(self) -> Tuple[int, int]:
        """Half-open ``[first, last)`` device interval of this replica."""
        return (self.first_device, self.first_device + self.num_devices)


@dataclass(frozen=True)
class ClusterPlacement:
    """The pool partition a :class:`ClusterPlacer` produced."""

    policy: str
    pool_devices: int
    replicas: Tuple[ReplicaSpec, ...]
    tenant_devices: Dict[str, int]

    @property
    def devices_used(self) -> int:
        return sum(r.num_devices for r in self.replicas)

    def replicas_for(self, tenant_name: str) -> List[ReplicaSpec]:
        chosen = [r for r in self.replicas if tenant_name in r.tenant_names]
        if not chosen:
            raise KeyError(f"no replica serves tenant {tenant_name!r}")
        return chosen


class ClusterPlacer:
    """Partitions (or time-shares) the pool's devices across tenants.

    Parameters
    ----------
    policy:
        One of :data:`PLACEMENT_POLICIES`.
    channels_per_device:
        PIM channels per device, forwarded to the planner.
    max_replica_devices:
        When set, a tenant's allotment is split into several replicas of at
        most this many devices (each still at or above the model's
        feasibility floor; allotment devices that fit neither bound stay
        idle), giving the scheduler real routing choices.  ``None``
        (default) builds one replica per allotment, leaving intra-replica
        parallelism to the plan's own data-parallel replicas.
    share_replicas:
        When true, tenants serving the *same model* are co-located onto one
        merged allotment and time-share its replicas through continuous
        batching, instead of hard-partitioning devices between them.
    capability:
        Optional estimator ``capability(tenants, devices) -> rate`` of how
        much traffic the tenant group could sustain on ``devices`` devices.
        Serving capability is **not monotone** in the device count (the
        throughput planner may pick a slower many-replica plan on awkward
        counts), so when an estimator is given each allotment is trimmed to
        its best-performing feasible count and the rest of the grant stays
        idle — the same "idle devices beat a bad mapping" choice the
        paper's planner makes within a plan.  ``None`` uses every granted
        device.
    """

    def __init__(
        self,
        policy: str = "proportional",
        *,
        channels_per_device: int = 32,
        max_replica_devices: Optional[int] = None,
        share_replicas: bool = False,
        capability: Optional[Callable[[Tuple[TenantSpec, ...], int], float]] = None,
    ) -> None:
        if policy not in PLACEMENT_POLICIES:
            raise ValueError(
                f"unknown placement policy {policy!r}; expected one of "
                f"{PLACEMENT_POLICIES}"
            )
        if max_replica_devices is not None and max_replica_devices <= 0:
            raise ValueError("max_replica_devices must be positive")
        self.policy = policy
        self.channels_per_device = channels_per_device
        self.max_replica_devices = max_replica_devices
        self.share_replicas = share_replicas
        self.capability = capability

    # ------------------------------------------------------------------ weights

    def _weight(self, tenant: TenantSpec, tightest_slo_s: float) -> float:
        if self.policy == "static":
            return 1.0
        demand = float(tenant.offered_tokens)
        if self.policy == "proportional":
            return demand
        # sla_aware: demand scaled by priority, discounted by how much
        # looser the tenant's SLO is than the mix's tightest one (the
        # tightest tenant keeps its full demand weight); the square root
        # keeps the skew from starving batch tenants outright.
        urgency = math.sqrt(tightest_slo_s / tenant.latency_slo_s)
        return demand * tenant.priority * urgency

    # ------------------------------------------------------------------ placing

    def place(
        self,
        tenants: Sequence[TenantSpec],
        pool_devices: int,
        *,
        weights: Optional[Dict[str, float]] = None,
    ) -> ClusterPlacement:
        """Partition ``pool_devices`` across ``tenants``.

        ``weights`` overrides the policy's own apportionment weights with
        explicit per-tenant values — the closed-loop controller re-places on
        *observed* demand (measured backlog plus the last epoch's arrivals)
        this way, while the policies remain defined on the offered trace.
        Feasibility floors still apply; only the spare devices follow the
        weights.
        """
        tenants = list(tenants)
        if not tenants:
            raise ValueError("at least one tenant is required")
        if pool_devices <= 0:
            raise ValueError("the pool needs at least one device")
        for tenant in tenants:
            if tenant.model is None:
                raise ValueError(f"tenant {tenant.name!r} has no model resolved")

        floors = {
            t.name: min_feasible_devices(t.model, pool_devices,
                                         channels_per_device=self.channels_per_device,
                                         context_length=t.max_context)
            for t in tenants
        }
        reserved = sum(floors.values())
        if reserved > pool_devices:
            raise MemoryError(
                f"the tenant models need at least {reserved} devices combined "
                f"but the pool has {pool_devices}"
            )

        if weights is None:
            tightest = min(t.latency_slo_s for t in tenants)
            weights = {t.name: self._weight(t, tightest) for t in tenants}
        else:
            missing = {t.name for t in tenants} - set(weights)
            if missing:
                raise ValueError(f"weights missing for tenants {sorted(missing)}")
            if any(w < 0 or not math.isfinite(w) for w in weights.values()):
                raise ValueError("weights must be finite and non-negative")
            weights = {t.name: weights[t.name] for t in tenants}
        total_weight = sum(weights.values())
        if total_weight <= 0:
            # Degenerate all-zero demand: fall back to an even split of the
            # spare rather than dividing by zero.
            weights = {t.name: 1.0 for t in tenants}
            total_weight = float(len(tenants))
        spare = pool_devices - reserved

        # Largest-remainder apportionment of the spare devices.
        shares = {name: spare * w / total_weight for name, w in weights.items()}
        alloc = {name: floors[name] + int(shares[name]) for name in shares}
        leftover = pool_devices - sum(alloc.values())
        by_remainder = sorted(shares, key=lambda n: (shares[n] - int(shares[n]), n),
                              reverse=True)
        for name in by_remainder[:leftover]:
            alloc[name] += 1

        # Group tenants that time-share replicas (same model, if enabled).
        groups: List[Tuple[Tuple[TenantSpec, ...], int]] = []
        if self.share_replicas:
            # Keyed by the (frozen) ModelConfig itself, not its name: two
            # what-if variants sharing a name must not be merged onto one
            # replica serving the wrong weights.
            by_model: Dict[ModelConfig, List[TenantSpec]] = {}
            for tenant in tenants:
                by_model.setdefault(tenant.model, []).append(tenant)
            for members in by_model.values():
                groups.append((tuple(members), sum(alloc[t.name] for t in members)))
        else:
            groups = [((tenant,), alloc[tenant.name]) for tenant in tenants]

        replicas: List[ReplicaSpec] = []
        next_device = 0
        for members, devices in groups:
            model = members[0].model
            floor = max(floors[t.name] for t in members)
            names = tuple(t.name for t in members)
            devices = self._effective_devices(members, devices, floor)
            sizes = self._replica_sizes(devices, floor)
            deployed = sum(sizes)
            for t in members:
                alloc[t.name] = (deployed if self.share_replicas
                                 else min(alloc[t.name], deployed))
            for size in sizes:
                replicas.append(ReplicaSpec(
                    replica_id=len(replicas),
                    tenant_names=names,
                    model=model,
                    num_devices=size,
                    first_device=next_device,
                ))
                next_device += size

        return ClusterPlacement(
            policy=self.policy,
            pool_devices=pool_devices,
            replicas=tuple(replicas),
            tenant_devices=dict(alloc),
        )

    def _effective_devices(
        self, members: Tuple[TenantSpec, ...], devices: int, floor: int
    ) -> int:
        """Trim one allotment to its best-performing feasible device count.

        Without a capability estimator the full grant is used; with one,
        the count maximising estimated sustainable rate wins (ties go to
        the larger count, which buys KV headroom for free).  The score of a
        count is evaluated on the replicas it would actually deploy as
        (one per ``_replica_sizes`` entry), not on a hypothetical single
        engine of that size.
        """
        if self.capability is None or devices <= floor:
            return devices

        def rate(candidate: int) -> float:
            return sum(self.capability(members, size)
                       for size in self._replica_sizes(candidate, floor))

        return max(range(floor, devices + 1), key=lambda d: (rate(d), d))

    def _replica_sizes(self, devices: int, floor: int) -> List[int]:
        """Split one allotment into replica device counts.

        Every size honours both bounds — at least the feasibility ``floor``
        and at most ``max_replica_devices`` — by leaving devices idle when
        they conflict (a cap below the floor is raised to the floor:
        feasibility always wins).  The sizes may therefore sum to less than
        the allotment.
        """
        if self.max_replica_devices is None:
            return [devices]
        cap = max(self.max_replica_devices, floor)
        count = max(1, min(math.ceil(devices / cap), devices // floor))
        used = min(devices, count * cap)
        base, extra = divmod(used, count)
        return [base + (1 if i < extra else 0) for i in range(count)]
