"""Multi-tenant cluster serving on one shared CXL-PIM device pool.

``ClusterEngine`` composes the three cluster pieces — placement, routing,
and the existing per-replica :class:`~repro.serving.ServingEngine` — into
one run:

1. a :class:`~repro.cluster.placement.ClusterPlacer` partitions (or
   time-shares) the pool's devices into replicas;
2. every replica becomes an independent :class:`~repro.core.system.CentSystem`
   deployment of its device slice, served by an unmodified ``ServingEngine``
   (the cluster layer never forks the iteration loop);
3. a :class:`~repro.cluster.scheduler.ClusterScheduler` routes each arriving
   request to one of its tenant's replicas, applying per-tenant admission;
4. each replica replays its routed trace, and the per-request outcomes are
   re-attributed to tenants and folded into one
   :class:`~repro.core.results.ClusterResult` (one
   :class:`~repro.core.results.ServingResult` per tenant, each judged
   against that tenant's own SLA, plus pool-level goodput, fairness and
   utilisation).

A single-tenant cluster degenerates to exactly one replica spanning the
whole pool, so its per-tenant result reproduces ``ServingEngine.run`` on
the same deployment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.placement import ClusterPlacement, ClusterPlacer, ReplicaSpec
from repro.cluster.scheduler import ClusterScheduler, RoutingPlan
from repro.cluster.tenant import TenantSpec, resolve_models
from repro.core.config import CentConfig
from repro.core.results import ClusterResult, ServingResult
from repro.core.system import CentSystem
from repro.models.config import ModelConfig
from repro.serving.engine import EngineRun, ServingEngine, evict_to_bound
from repro.serving.metrics import (
    aggregate_serving_result,
    merge_queue_depth_timelines,
)
from repro.serving.request import RequestState, ServingRequest
from repro.telemetry.recorder import TraceRecorder
from repro.workloads.queries import Query

__all__ = ["ClusterEngine"]


@dataclass
class _Replica:
    """A placed replica bound to its serving engine (and its system)."""

    spec: ReplicaSpec
    engine: ServingEngine
    #: Estimated sustained token rate, for the router's backlog model.
    tokens_per_s: float = 0.0


class ClusterEngine:
    """Serves several tenants' traces on one shared device pool.

    Parameters
    ----------
    config:
        Pool-level configuration; ``config.num_devices`` is the pool size,
        every other field is inherited by each replica's slice.
    tenants:
        The tenant specs to serve.  Tenants without a model use
        ``default_model``.
    placement_policy / routing_policy:
        See :data:`~repro.cluster.placement.PLACEMENT_POLICIES` and
        :data:`~repro.cluster.scheduler.ROUTING_POLICIES`.
    max_replica_devices / share_replicas:
        Forwarded to :class:`~repro.cluster.placement.ClusterPlacer`.
    engine_kwargs:
        Extra keyword arguments for every per-replica ``ServingEngine``
        (e.g. ``prefill_chunk_tokens``, ``context_step``).
    """

    def __init__(
        self,
        config: CentConfig,
        tenants: Sequence[TenantSpec],
        *,
        default_model: Optional[ModelConfig] = None,
        placement_policy: str = "proportional",
        routing_policy: str = "least_outstanding",
        max_replica_devices: Optional[int] = None,
        share_replicas: bool = False,
        **engine_kwargs,
    ) -> None:
        self.config = config
        self.tenants = resolve_models(tenants, default_model)
        self.engine_kwargs = engine_kwargs
        # FIFO-bounded like ServingEngine._setup_cache: the capability trim
        # probes one candidate count per device, and an unbounded engine
        # cache would retain a warmed CentSystem per probe for the engine's
        # lifetime.  Estimates are cheap floats and get a wider bound.
        self._capability_cache: Dict[Tuple[Tuple[str, ...], int], float] = {}
        self._capability_cache_entries = 256
        self._engine_cache: Dict[Tuple[Tuple[str, ...], int], ServingEngine] = {}
        # The capability trim probes up to one engine per candidate device
        # count per tenant group, so the bound scales with the pool: a
        # fixed small bound would evict the winning probe's engine before
        # the replicas fetch it, redoing the warm-up the cache exists for.
        self._engine_cache_entries = max(32, 2 * config.num_devices)
        self._max_replica_devices = max_replica_devices
        self._share_replicas = share_replicas
        self.placer = self._make_placer(placement_policy)
        self.scheduler = ClusterScheduler(routing_policy)

    def _make_placer(self, placement_policy: str) -> ClusterPlacer:
        return ClusterPlacer(
            placement_policy,
            channels_per_device=self.config.channels_per_device,
            max_replica_devices=self._max_replica_devices,
            share_replicas=self._share_replicas,
            capability=self._capability,
        )

    def _engine_for(
        self, names: Tuple[str, ...], devices: int, model: ModelConfig
    ) -> ServingEngine:
        """One serving engine per (tenant group, device count), memoised.

        The capability probe for the winning count and the replica that
        ultimately serves it share this engine, so the probe's ``_setup``
        work (plan search, validation, cost-model warm-up) is done once;
        replicas of identical shape share it too (the engine keeps no
        per-run state beyond its caches).
        """
        key = (names, devices)
        if key not in self._engine_cache:
            evict_to_bound(self._engine_cache, self._engine_cache_entries)
            system = CentSystem(self.config.scaled(devices), model)
            self._engine_cache[key] = ServingEngine(system, **self.engine_kwargs)
        return self._engine_cache[key]

    def _capability(self, members: Tuple[TenantSpec, ...], devices: int) -> float:
        """Estimated sustainable rate (queries/s) of ``members`` on ``devices``.

        The placer's trim step probes several candidate counts, so results
        are memoised; infeasible counts score zero.
        """
        key = (tuple(t.name for t in members), devices)
        if key not in self._capability_cache:
            evict_to_bound(self._capability_cache, self._capability_cache_entries)
            engine = self._engine_for(key[0], devices, members[0].model)
            trace = [q for tenant in members for q in tenant.trace]
            try:
                self._capability_cache[key] = engine.estimated_capacity_qps(trace)
            except MemoryError:
                self._capability_cache[key] = 0.0
        return self._capability_cache[key]

    # ------------------------------------------------------------------ build

    def _build_replicas(self, placement: ClusterPlacement) -> List[_Replica]:
        replicas = []
        for spec in placement.replicas:
            engine = self._engine_for(spec.tenant_names, spec.num_devices, spec.model)
            replicas.append(_Replica(spec=spec, engine=engine))
        return replicas

    def _group_tokens_per_s(self, names: Tuple[str, ...], devices: int) -> float:
        """Estimated sustained token rate of one replica of ``names``.

        Converts the memoised :meth:`_capability` estimate (queries/s on
        the replica's candidate trace — all queries of the tenants it
        serves) into a token rate; the placer's trim probe for the same
        (tenants, devices) key already paid for it.  The router's backlog
        model and the closed-loop rebalancer's gain projection share this
        one definition.
        """
        by_name = {t.name: t for t in self.tenants}
        members = tuple(by_name[name] for name in names)
        qps = self._capability(members, devices)
        tokens = sum(t.offered_tokens for t in members)
        queries = sum(len(t.trace) for t in members)
        return max(qps * tokens / queries, 1e-9)

    def _estimate_rates(self, replicas: List[_Replica]) -> None:
        """Estimate each replica's sustained token rate for the router."""
        for replica in replicas:
            replica.tokens_per_s = self._group_tokens_per_s(
                replica.spec.tenant_names, replica.spec.num_devices)

    # ------------------------------------------------------------------ run

    def run(
        self,
        placement_policy: Optional[str] = None,
        *,
        rebalance: str = "off",
        epoch_s: Optional[float] = None,
        migration: Optional[str] = None,
        control: Optional["ControlConfig"] = None,
        telemetry: Optional[TraceRecorder] = None,
        slo_monitor: Optional["SloMonitor"] = None,
    ) -> ClusterResult:
        """Place, route and serve every tenant; return the cluster outcome.

        ``placement_policy`` overrides the constructor's policy for this
        run only.  Policy sweeps should reuse one engine this way: the
        capability probes (the expensive part of placement, cost-model
        warm-up included) are policy-independent and stay cached across
        runs.

        ``rebalance="off"`` (default) is the open-loop single-shot path and
        is bit-exact with the pre-closed-loop engine.  ``rebalance="epoch"``
        — or an explicit ``control`` config — hands the run to the
        epoch-driven :class:`~repro.cluster.control.ClusterControlLoop`:
        backlog-feedback routing plus (unless the config disables it)
        observed-demand re-placement at epoch boundaries; ``epoch_s``
        overrides the control interval and ``migration`` selects what
        happens to a dismantled replica's in-flight requests (``"live"``,
        the default, swaps their KV through host memory so they resume at
        their original progress; ``"restart"`` re-runs them from scratch).

        ``telemetry`` (a :class:`repro.telemetry.TraceRecorder`) records the
        run's full event stream: every replica's engine writes into its own
        scope (``replica-<id>``), the router and control loop into a
        ``control`` scope.  Recording never changes the simulated outcome —
        both paths stay bit-exact with ``telemetry=None``.

        ``slo_monitor`` (a :class:`repro.telemetry.SloMonitor`) overrides
        the stock SLO rule set a traced closed-loop run arms by default;
        the monitor observes each epoch's metrics snapshot and its
        :class:`~repro.telemetry.slo.AlertLog` lands on the result.  Pure
        observation either way — alerts never change the run.
        """
        from repro.cluster.control import REBALANCE_MODES, ClusterControlLoop, ControlConfig

        if rebalance not in REBALANCE_MODES:
            raise ValueError(
                f"unknown rebalance mode {rebalance!r}; choose from "
                f"{REBALANCE_MODES}"
            )
        if control is not None and epoch_s is not None:
            raise ValueError(
                "pass either epoch_s or an explicit control config, not both "
                "(the config carries its own epoch_s)"
            )
        if control is not None and migration is not None:
            raise ValueError(
                "pass either migration or an explicit control config, not "
                "both (the config carries its own migration mode)"
            )
        if migration is not None and rebalance == "off" and control is None:
            raise ValueError(
                "migration only applies to closed-loop runs; set "
                "rebalance='epoch' (or pass a control config)"
            )
        if slo_monitor is not None and control is None and rebalance == "off":
            raise ValueError(
                "slo_monitor needs the per-epoch metrics timeline; set "
                "rebalance='epoch' (or pass a control config)"
            )
        if control is not None or rebalance != "off":
            if control is None:
                kwargs = {"rebalance": rebalance}
                if epoch_s is not None:
                    kwargs["epoch_s"] = epoch_s
                if migration is not None:
                    kwargs["migration"] = migration
                control = ControlConfig(**kwargs)
            return ClusterControlLoop(
                self, control, telemetry=telemetry,
                slo_monitor=slo_monitor).run(placement_policy)

        placer = (self.placer if placement_policy is None
                  else self._make_placer(placement_policy))
        placement = placer.place(self.tenants, self.config.num_devices)
        replicas = self._build_replicas(placement)
        self._estimate_rates(replicas)

        by_id = {r.spec.replica_id: r for r in replicas}

        def service_estimator(spec: ReplicaSpec, query: Query) -> float:
            return query.total_context / by_id[spec.replica_id].tokens_per_s

        router_rec = (telemetry.scope("control")
                      if telemetry is not None else None)
        routing = self.scheduler.route(self.tenants, placement,
                                       service_estimator, recorder=router_rec)

        runs: Dict[int, EngineRun] = {}
        for replica in replicas:
            trace = routing.trace_for(replica.spec.replica_id)
            if trace:
                runs[replica.spec.replica_id] = replica.engine.simulate(
                    trace, sla_latency_s=self._replica_sla_s(replica.spec),
                    telemetry=(telemetry.scope(
                        f"replica-{replica.spec.replica_id}")
                        if telemetry is not None else None))

        return self._aggregate(placement, routing, runs, by_id)

    def _replica_sla_s(self, spec: ReplicaSpec) -> Optional[float]:
        """The strictest member tenant's latency SLO, for the engine's
        ``sla_deadline`` preemption policy (None when no member has one).

        A time-shared replica serves tenants with different SLOs; deadline
        slack judged against the tightest bound protects the most urgent
        traffic, which is the policy's intent.
        """
        by_name = {t.name: t for t in self.tenants}
        slos = [by_name[name].latency_slo_s for name in spec.tenant_names]
        slos = [s for s in slos if s is not None]
        return min(slos) if slos else None

    # ------------------------------------------------------------------ results

    def _aggregate(
        self,
        placement: ClusterPlacement,
        routing: RoutingPlan,
        runs: Dict[int, EngineRun],
        by_id: Dict[int, _Replica],
    ) -> ClusterResult:
        # Re-attribute each replica's per-request outcomes to tenants.
        tenant_requests: Dict[str, List[ServingRequest]] = {t.name: [] for t in self.tenants}
        tenant_replicas: Dict[str, List[int]] = {t.name: [] for t in self.tenants}
        for replica_id, run in runs.items():
            owners = [name for name, _ in routing.assignments[replica_id]]
            for owner, request in zip(owners, run.requests, strict=True):
                tenant_requests[owner].append(request)
            for owner in sorted(set(owners)):
                tenant_replicas[owner].append(replica_id)

        # Requests refused at the cluster's admission cap never reached an
        # engine; they join the tenant's result as rejected.
        for tenant in self.tenants:
            for query in routing.rejected[tenant.name]:
                refused = ServingRequest(len(tenant_requests[tenant.name]), query)
                refused.state = RequestState.REJECTED
                tenant_requests[tenant.name].append(refused)

        makespan = max((run.makespan_s for run in runs.values()), default=0.0)
        busy_device_seconds = sum(
            (run.prefill_time_s + run.decode_time_s) * by_id[rid].spec.num_devices
            for rid, run in runs.items()
        )

        tenant_results: Dict[str, ServingResult] = {}
        for tenant in self.tenants:
            used = [runs[rid] for rid in tenant_replicas[tenant.name]]
            plan_names = sorted({run.plan.name for run in used})
            tenant_results[tenant.name] = aggregate_serving_result(
                tenant_requests[tenant.name],
                model_name=tenant.model.name,
                plan_name=" + ".join(plan_names) if plan_names else "unplaced",
                # The tenant's own completion horizon: the engine clock only
                # advances while requests run, so for a single tenant this
                # equals the standalone engine's makespan exactly.
                makespan_s=max((r.finish_time_s for r in tenant_requests[tenant.name]
                                if r.finish_time_s is not None), default=0.0),
                # Replica telemetry, summed over the replicas the tenant
                # used (peaks included, so peak and capacity stay a
                # coherent pair); replicas time-shared with other tenants
                # count fully.
                prefill_time_s=sum(run.prefill_time_s for run in used),
                decode_time_s=sum(run.decode_time_s for run in used),
                decode_step_tokens=sum(run.decode_step_tokens for run in used),
                peak_memory_bytes=sum(run.peak_memory_bytes for run in used),
                memory_capacity_bytes=sum(run.memory_capacity_bytes for run in used),
                sla_latency_s=tenant.latency_slo_s,
                # Replica backlog samples, summed across concurrent
                # replicas: the measured queue signal the router's backlog
                # model can be closed against.
                queue_depth_timeline=merge_queue_depth_timelines(
                    [run.queue_depth_timeline for run in used]
                ),
            )

        return ClusterResult(
            placement_policy=placement.policy,
            routing_policy=routing.policy,
            pool_devices=placement.pool_devices,
            devices_used=placement.devices_used,
            makespan_s=makespan,
            tenant_results=tenant_results,
            tenant_devices=dict(placement.tenant_devices),
            tenant_offered_decode_tokens={
                t.name: t.offered_decode_tokens for t in self.tenants
            },
            busy_device_seconds=busy_device_seconds,
        )
