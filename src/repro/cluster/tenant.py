"""Tenant specifications for multi-model serving on one device pool.

A *tenant* is one consumer of the shared CXL-PIM pool: a model, the timed
query trace it must serve, and the service class it bought.  The placement
and scheduling policies in :mod:`repro.cluster` read nothing but this spec,
so tenant mixes for studies are plain data.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.models.config import ModelConfig
from repro.workloads.queries import Query

__all__ = ["SlaClass", "TenantSpec", "DEFAULT_SLA_LATENCY_S"]


class SlaClass(enum.Enum):
    """Traffic class of a tenant, ordered from tightest to loosest SLA."""

    INTERACTIVE = "interactive"   # chat-style, user is waiting
    STANDARD = "standard"         # ordinary API traffic
    BATCH = "batch"               # offline summarisation / evaluation jobs


#: Default per-query latency bound of each traffic class (seconds).
DEFAULT_SLA_LATENCY_S = {
    SlaClass.INTERACTIVE: 30.0,
    SlaClass.STANDARD: 60.0,
    SlaClass.BATCH: 600.0,
}


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of the shared pool.

    Parameters
    ----------
    name:
        Unique tenant identifier (used as the key of per-tenant results).
    model:
        The model this tenant serves.  ``None`` lets the cluster layer fill
        in a default (``CentSystem.serve_cluster`` uses the system's model).
    trace:
        Timed queries (see :func:`~repro.workloads.queries.with_arrivals`);
        stored as a tuple so specs stay hashable-by-value and immutable.
    sla_class:
        Traffic class; sets the default latency SLO.
    sla_latency_s:
        Explicit per-query latency bound overriding the class default.
    priority:
        Relative weight used by SLA-aware placement; higher is more
        important.
    max_outstanding:
        Per-tenant admission cap: at most this many of the tenant's
        requests may be outstanding (routed but predicted unfinished) at
        once; excess arrivals are rejected at the cluster boundary.
    """

    name: str
    model: Optional[ModelConfig] = None
    trace: Tuple[Query, ...] = field(default_factory=tuple)
    sla_class: SlaClass = SlaClass.STANDARD
    sla_latency_s: Optional[float] = None
    priority: float = 1.0
    max_outstanding: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        object.__setattr__(self, "trace", tuple(self.trace))
        if not self.trace:
            raise ValueError(f"tenant {self.name!r} needs a non-empty trace")
        if self.sla_latency_s is not None and self.sla_latency_s <= 0:
            raise ValueError("the SLA latency bound must be positive")
        if self.priority <= 0:
            raise ValueError("priority must be positive")
        if self.max_outstanding is not None and self.max_outstanding <= 0:
            raise ValueError("max_outstanding must be positive")

    def with_model(self, model: ModelConfig) -> "TenantSpec":
        """A copy of this spec with ``model`` filled in."""
        import dataclasses

        return dataclasses.replace(self, model=model)

    # ------------------------------------------------------------------ SLA

    @property
    def latency_slo_s(self) -> float:
        """Effective per-query latency bound of this tenant."""
        if self.sla_latency_s is not None:
            return self.sla_latency_s
        return DEFAULT_SLA_LATENCY_S[self.sla_class]

    # ------------------------------------------------------------------ demand

    @property
    def offered_prompt_tokens(self) -> int:
        return sum(q.prompt_tokens for q in self.trace)

    @property
    def offered_decode_tokens(self) -> int:
        return sum(q.decode_tokens for q in self.trace)

    @property
    def offered_tokens(self) -> int:
        """Total token demand (prompt + decode) of the tenant's trace."""
        return self.offered_prompt_tokens + self.offered_decode_tokens

    @property
    def max_context(self) -> int:
        return max(q.total_context for q in self.trace)


def resolve_models(
    tenants: Sequence[TenantSpec], default_model: Optional[ModelConfig]
) -> Tuple[TenantSpec, ...]:
    """Fill missing tenant models with ``default_model``; validate names."""
    names = [t.name for t in tenants]
    if len(set(names)) != len(names):
        raise ValueError(f"tenant names must be unique, got {names}")
    resolved = []
    for tenant in tenants:
        if tenant.model is None:
            if default_model is None:
                raise ValueError(
                    f"tenant {tenant.name!r} has no model and no default was given"
                )
            tenant = tenant.with_model(default_model)
        resolved.append(tenant)
    return tuple(resolved)
