"""Closed-loop cluster control: epoch re-placement and backlog feedback.

The PR-2 cluster layer is open loop twice over: tenants' device shares are
fixed for the whole run, and the router's ``least_outstanding`` /
``sla_deadline`` policies rank replicas by a backlog *model* that never sees
what the engines actually did.  This module closes both loops around the
measured signals the serving engine already records:

* **Backlog-feedback routing** — the run is segmented into fixed epochs
  (every replica's :class:`~repro.serving.engine.EngineState` is advanced to
  the epoch boundary, not to completion), and at each boundary the router's
  drain-time model is re-anchored to the replica's *measured* backlog (the
  tail of ``queue_depth_timeline``, the tokens still owed) and *measured*
  token rate (per-epoch goodput), via
  :class:`~repro.cluster.scheduler.ReplicaFeedback`.

* **Epoch re-placement** — a :class:`RebalancePolicy` re-apportions the
  pool at epoch boundaries from observed demand (measured backlog plus the
  epoch's arrivals), with hysteresis: a proposal is applied only when its
  projected goodput gain over the lookahead horizon beats the migration
  stall — priced as the time the rebuilt replicas spend reloading model
  weights through the CXL link model
  (:func:`~repro.kvstore.preemption.kv_swap_time_s`) — by the configured
  margin.  Replicas whose shape survives a re-placement keep their engine
  state; dismantled replicas hand their unfinished requests to the new
  replica set.

* **Live KV migration** — with ``migration="live"`` (the default) a
  dismantled replica's in-flight requests keep their progress: each one's
  materialised KV is swapped out to host memory
  (:meth:`~repro.serving.engine.ServingEngine.migrate_out`, priced on the
  CXL link like any paged-KV swap) and swapped into the destination
  replica (:meth:`~repro.serving.engine.ServingEngine.migrate_in`), where
  it resumes decoding at its original token — TTFT, latency and SLA
  classification stay anchored to the original arrival.
  ``migration="restart"`` is the pre-live behaviour: partial progress is
  lost, like a recompute preemption, and the request re-enters the new
  replica from scratch (arrival time still original).  Requests that have
  made no progress yet restart under both modes — they have no KV to move.

``rebalance="off"`` (the default everywhere) bypasses this module entirely
and runs the single-shot PR-2 path, bit-exactly; ``migration="restart"``
reproduces the pre-live-migration closed loop bit-exactly.
"""

from __future__ import annotations

import os
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.cluster.placement import ClusterPlacement, ReplicaSpec
from repro.cluster.scheduler import ReplicaFeedback, RouterState, RoutingPlan
from repro.core.results import ClusterResult, ServingResult
from repro.kvstore.preemption import kv_swap_time_s
from repro.models.memory import ModelMemoryProfile
from repro.serving.engine import EngineState, ServingEngine
from repro.serving.metrics import (
    aggregate_serving_result,
    merge_queue_depth_timelines,
    window_decode_tokens,
    window_mean_queue_depth,
)
from repro.serving.request import RequestState, ServingRequest
from repro.telemetry.metrics import _percentile
from repro.telemetry.recorder import ScopedRecorder, TraceRecorder
from repro.telemetry.slo import AlertLog, SloMonitor, default_rules
from repro.workloads.queries import Query

__all__ = [
    "MIGRATION_MODES",
    "REBALANCE_MODES",
    "ControlConfig",
    "RebalanceDecision",
    "RebalancePolicy",
    "ClusterControlLoop",
    "weight_reload_time_s",
]

#: Supported re-placement modes of the closed loop.
REBALANCE_MODES = ("off", "epoch")

#: What happens to a dismantled replica's in-flight requests.
MIGRATION_MODES = ("restart", "live")


def weight_reload_time_s(spec: ReplicaSpec, link) -> float:
    """Migration stall of (re)building one replica: reloading its weights.

    The model's parameters stream from host memory over the CXL fabric,
    sharded across the replica's devices exactly like a KV swap across
    pipeline stages (per-device x4 links in parallel, bounded by the host
    x16 link), so the same pricing applies.
    """
    parameter_bytes = ModelMemoryProfile(spec.model).parameter_bytes
    return kv_swap_time_s(parameter_bytes, link, pp_stages=spec.num_devices)


@dataclass(frozen=True)
class ControlConfig:
    """Knobs of the closed-loop controller.

    Parameters
    ----------
    epoch_s:
        Control interval: replicas pause, feedback re-anchors the router,
        and the rebalancer may act, every this many simulated seconds.
    rebalance:
        ``"epoch"`` re-places at epoch boundaries; ``"off"`` keeps the
        initial placement (feedback routing still applies when enabled).
    migration:
        ``"live"`` (default) swaps a dismantled replica's in-flight KV
        through host memory onto the new replica set, so requests resume
        at their original progress; ``"restart"`` re-runs them from
        scratch (the pre-live behaviour, kept bit-exact for regression
        comparisons).
    routing_feedback:
        Feed measured backlog/rate back into the router at every epoch
        boundary.  ``False`` keeps the open-loop backlog model (ablation).
    hysteresis:
        A re-placement is applied only when its projected token gain
        exceeds ``(1 + hysteresis)`` times the migration cost.
    min_epochs_between:
        Epochs that must pass after a rebalance before the next proposal is
        even considered (cooldown against thrash).
    lookahead_epochs:
        Horizon (in epochs) the projected gain of a proposal is priced
        over: observed demand is assumed to persist roughly this long.
    feedback_alpha:
        EWMA weight of the newest measured replica token rate.
    max_epochs:
        Safety bound; a run still undrained after this many epochs is
        finished in one final unbounded segment (no further control).
    parallel_replicas:
        Advance independent replicas concurrently within each epoch
        (replicas share nothing between control points).  Replicas that
        share one cached engine advance sequentially on a single worker;
        results are bit-identical either way, so this is purely a speed
        knob.
    """

    epoch_s: float = 20.0
    rebalance: str = "epoch"
    migration: str = "live"
    routing_feedback: bool = True
    hysteresis: float = 0.25
    min_epochs_between: int = 1
    lookahead_epochs: int = 2
    feedback_alpha: float = 0.5
    max_epochs: int = 10_000
    parallel_replicas: bool = True

    def __post_init__(self) -> None:
        if self.epoch_s <= 0:
            raise ValueError("epoch_s must be positive")
        if self.rebalance not in REBALANCE_MODES:
            raise ValueError(
                f"unknown rebalance mode {self.rebalance!r}; "
                f"choose from {REBALANCE_MODES}"
            )
        if self.migration not in MIGRATION_MODES:
            raise ValueError(
                f"unknown migration mode {self.migration!r}; "
                f"choose from {MIGRATION_MODES}"
            )
        if self.hysteresis < 0:
            raise ValueError("hysteresis must be non-negative")
        if self.min_epochs_between < 0:
            raise ValueError("min_epochs_between must be non-negative")
        if self.lookahead_epochs <= 0:
            raise ValueError("lookahead_epochs must be positive")
        if not 0 < self.feedback_alpha <= 1:
            raise ValueError("feedback_alpha must be in (0, 1]")
        if self.max_epochs <= 0:
            raise ValueError("max_epochs must be positive")


@dataclass(frozen=True)
class RebalanceDecision:
    """One applied (or applicable) re-placement and its projected economics."""

    placement: ClusterPlacement
    #: Projected extra served tokens over the lookahead horizon.
    projected_gain_tokens: float
    #: Projected tokens foregone while the rebuilt replicas reload weights.
    migration_cost_tokens: float
    #: Weight-reload stall of the event (slowest rebuilt replica).
    stall_s: float
    #: Replica ids of the proposal that must be built from scratch.
    rebuilt_replica_ids: Tuple[int, ...]


def _replica_signature(spec: ReplicaSpec) -> Tuple:
    """Shape key under which a replica's engine state survives re-placement."""
    return (spec.tenant_names, spec.model, spec.num_devices)


class RebalancePolicy:
    """Observed-demand re-placement with hysteresis and priced migration.

    ``capability_tokens_per_s(names, devices)`` estimates a replica's
    sustainable token rate (the cluster engine's memoised capability probe)
    and is the common currency of the gain/cost projection.
    """

    def __init__(self, config: ControlConfig, *, placer, capability_tokens_per_s,
                 link) -> None:
        self.config = config
        self.placer = placer
        self.capability = capability_tokens_per_s
        self.link = link

    # ------------------------------------------------------------------ pricing

    def _served_rate(
        self,
        placement: ClusterPlacement,
        demand_tokens_per_s: Dict[str, float],
    ) -> float:
        """Tokens/s this placement can deliver against the observed demand.

        Per replica group (same tenants): the group's demand is served up to
        the summed capability of its replicas; the pool total is the sum
        over groups.
        """
        group_cap: Dict[Tuple[str, ...], float] = {}
        for spec in placement.replicas:
            rate = self.capability(spec.tenant_names, spec.num_devices)
            group_cap[spec.tenant_names] = group_cap.get(spec.tenant_names, 0.0) + rate
        served = 0.0
        for names, cap in group_cap.items():
            demand = sum(demand_tokens_per_s.get(name, 0.0) for name in names)
            served += min(demand, cap)
        return served

    # ------------------------------------------------------------------ decide

    def decide(
        self,
        tenants: Sequence,
        pool_devices: int,
        current: ClusterPlacement,
        demand_tokens_per_s: Dict[str, float],
    ) -> Optional[RebalanceDecision]:
        """The re-placement to apply now, or ``None`` to hold.

        Proposes the placer's apportionment under *observed* demand weights,
        prices the migration, and applies hysteresis: hold unless the
        projected gain over the lookahead horizon beats the stall cost by
        the configured margin.
        """
        weights = {t.name: max(demand_tokens_per_s.get(t.name, 0.0), 0.0)
                   for t in tenants}
        proposal = self.placer.place(tenants, pool_devices, weights=weights)
        if proposal.tenant_devices == current.tenant_devices:
            return None

        available = {}
        for spec in current.replicas:
            available[_replica_signature(spec)] = \
                available.get(_replica_signature(spec), 0) + 1
        rebuilt: List[ReplicaSpec] = []
        for spec in proposal.replicas:
            signature = _replica_signature(spec)
            if available.get(signature, 0) > 0:
                available[signature] -= 1
            else:
                rebuilt.append(spec)
        if not rebuilt:
            # Pure renumbering: every replica shape survives, nothing moves.
            return None

        old_rate = self._served_rate(current, demand_tokens_per_s)
        new_rate = self._served_rate(proposal, demand_tokens_per_s)
        gain_rate = new_rate - old_rate
        if gain_rate <= 0:
            return None

        stall_s = max(weight_reload_time_s(spec, self.link) for spec in rebuilt)
        horizon_s = self.config.lookahead_epochs * self.config.epoch_s
        gain_tokens = gain_rate * horizon_s
        # Conservative: while the rebuilt replicas reload, price the whole
        # proposal's delivery as foregone (carried replicas keep serving, so
        # the true loss is smaller; overpricing is the safe direction for a
        # stall we cannot undo).
        cost_tokens = stall_s * new_rate
        if gain_tokens <= (1.0 + self.config.hysteresis) * cost_tokens:
            return None
        return RebalanceDecision(
            placement=proposal,
            projected_gain_tokens=gain_tokens,
            migration_cost_tokens=cost_tokens,
            stall_s=stall_s,
            rebuilt_replica_ids=tuple(s.replica_id for s in rebuilt),
        )


@dataclass
class _MigrationStats:
    """Pool-level live-migration economics, accumulated across rebalances."""

    num_requests: int = 0
    kv_bytes: int = 0
    kv_time_s: float = 0.0
    restored_tokens: int = 0


@dataclass(eq=False)
class _ReplicaRuntime:
    """One live (or archived) replica: spec, engine, resumable state.

    ``eq=False``: runtimes are identities, not values — an archived replica
    and its same-shaped successor must never compare equal (and the
    generated deep comparison would walk every request of both states).
    """

    spec: ReplicaSpec
    engine: ServingEngine
    state: EngineState
    #: ``(tenant name, trace index)`` per fed request, indexed by request id.
    feed: List[Tuple[str, int]] = field(default_factory=list)
    #: Telemetry scope this replica's engine records into (``None`` = off).
    scope: Optional[ScopedRecorder] = None
    #: Router-facing sustained token rate (EWMA of measured, seeded from the
    #: capability estimate).
    tokens_per_s: float = 1e-9
    #: The replica cannot serve before this instant (weight-reload stall).
    stall_until_s: float = 0.0
    #: decode_step_tokens at the previous epoch boundary (rate measurement).
    last_decode_tokens: int = 0

    def outstanding_tokens(self) -> float:
        """Tokens still owed to unfinished fed requests (measured backlog)."""
        return float(sum(
            r.prefill_remaining + max(r.query.decode_tokens - r.tokens_generated, 0)
            for r in self.state.unfinished))


class ClusterControlLoop:
    """Epoch-driven closed-loop executor over a :class:`ClusterEngine`.

    Owns the run: initial placement, per-epoch routing (with feedback),
    segmented engine advancement, re-placement, migration, and the final
    :class:`~repro.core.results.ClusterResult` aggregation.  Constructed by
    ``ClusterEngine.run(rebalance=...)``; not normally instantiated
    directly.
    """

    def __init__(self, cluster, config: ControlConfig, *,
                 telemetry: Optional[TraceRecorder] = None,
                 slo_monitor: Optional[SloMonitor] = None) -> None:
        # ``cluster`` is a repro.cluster.engine.ClusterEngine; not type-hinted
        # to keep the import acyclic (engine imports this module).
        self.cluster = cluster
        self.config = config
        self.telemetry = telemetry
        # SLO rules read the per-epoch snapshots, so a monitor only makes
        # sense on a traced run; arm the stock rules by default there (the
        # TTFT rule targets the tightest tenant SLO in the pool).
        if slo_monitor is None and telemetry is not None:
            slo_monitor = SloMonitor(default_rules(
                ttft_slo_s=min((t.latency_slo_s for t in cluster.tenants),
                               default=None)))
        self.slo_monitor = slo_monitor
        #: Control-plane scope; :meth:`run` creates it when tracing is on.
        self._control_rec: Optional[ScopedRecorder] = None
        #: Serial per scope base name: a rebuilt replica reuses its
        #: predecessor's id, so its scope needs a distinguishing suffix.
        self._scope_serial: Dict[str, int] = {}

    # ------------------------------------------------------------------ plumbing

    def _replica_scope(self, spec: ReplicaSpec) -> Optional[ScopedRecorder]:
        """A fresh, uniquely-named telemetry scope for one (re)built replica."""
        telemetry = self.telemetry
        if telemetry is None:
            return None
        base = f"replica-{spec.replica_id}"
        serial = self._scope_serial.get(base, 0)
        self._scope_serial[base] = serial + 1
        return telemetry.scope(base if serial == 0 else f"{base}.r{serial}")

    def _new_runtime(self, spec: ReplicaSpec, *, start_s: float = 0.0,
                     stall_s: float = 0.0) -> _ReplicaRuntime:
        cluster = self.cluster
        engine = cluster._engine_for(spec.tenant_names, spec.num_devices, spec.model)
        by_name = {t.name: t for t in cluster.tenants}
        planning = [q for name in spec.tenant_names
                    for q in by_name[name].trace]
        scope = self._replica_scope(spec)
        state = engine.begin(
            [], sla_latency_s=cluster._replica_sla_s(spec),
            planning_trace=planning, telemetry=scope)
        state.clock = start_s + stall_s
        if scope is not None:
            scope.now_s = state.clock
        return _ReplicaRuntime(
            spec=spec,
            engine=engine,
            state=state,
            scope=scope,
            tokens_per_s=cluster._group_tokens_per_s(
                spec.tenant_names, spec.num_devices),
            stall_until_s=start_s + stall_s,
        )

    def _feed(self, runtime: _ReplicaRuntime, owner: str, index: int,
              query: Query) -> None:
        runtime.engine.extend(runtime.state, [query])
        runtime.feed.append((owner, index))

    def _advance_all(self, live: Dict[int, "_ReplicaRuntime"],
                     until_s: Optional[float] = None) -> None:
        """Advance every live replica to ``until_s`` (or fully drained).

        Replicas share nothing between control points, so distinct engines
        advance concurrently under ``parallel_replicas``.  Replicas that
        share one cached :class:`ServingEngine` (same tenant-set/device
        shape) stay on a single worker: the engine's lazily-filled cost
        tables are the only mutable structure two states have in common,
        and the shared :class:`PerformanceModel` cache below them is
        lock-protected, so concurrent groups fill identical values and
        every replica's trajectory is bit-identical to the sequential
        order.
        """
        runtimes = list(live.values())
        groups: Dict[int, List[_ReplicaRuntime]] = {}
        if self.config.parallel_replicas and len(runtimes) > 1:
            for runtime in runtimes:
                groups.setdefault(id(runtime.engine), []).append(runtime)
        if len(groups) <= 1:
            for runtime in runtimes:
                runtime.engine.advance(runtime.state, until_s=until_s)
            return

        def drain(group: List[_ReplicaRuntime]) -> None:
            for runtime in group:
                runtime.engine.advance(runtime.state, until_s=until_s)

        workers = min(len(groups), os.cpu_count() or 1)
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(drain, group)
                       for group in groups.values()]
            for future in futures:
                future.result()

    # ------------------------------------------------------------------ run

    def run(self, placement_policy: Optional[str] = None) -> ClusterResult:
        cluster = self.cluster
        config = self.config
        tenants = cluster.tenants
        pool_devices = cluster.config.num_devices
        placer = (cluster.placer if placement_policy is None
                  else cluster._make_placer(placement_policy))
        rebalancer = RebalancePolicy(
            config,
            placer=placer,
            capability_tokens_per_s=cluster._group_tokens_per_s,
            link=cluster.config.link,
        )

        telemetry = self.telemetry
        control_rec = (telemetry.scope("control")
                       if telemetry is not None else None)
        self._control_rec = control_rec

        placement = placer.place(tenants, pool_devices)
        live: Dict[int, _ReplicaRuntime] = {
            spec.replica_id: self._new_runtime(spec)
            for spec in placement.replicas
        }
        archived: List[_ReplicaRuntime] = []
        router = RouterState()
        sla_by_name = {t.name: t.latency_slo_s for t in tenants}

        # The merged offered stream, in arrival order (ties: tenant order
        # then trace order, so runs are deterministic).
        items: List[Tuple[Query, str, int]] = sorted(
            ((query, tenant.name, index)
             for tenant in tenants
             for index, query in enumerate(tenant.trace)),
            key=lambda item: (item[0].arrival_time_s, item[1], item[2]),
        )
        position = 0
        #: Final attempt serving each (tenant, index): (runtime, request id).
        final_attempt: Dict[Tuple[str, int], Tuple[_ReplicaRuntime, int]] = {}
        cap_rejected: Dict[str, List[Query]] = {t.name: [] for t in tenants}

        feedback: Optional[Dict[int, ReplicaFeedback]] = None
        epoch = 0
        #: EWMA of the offered arrival rate (queries/s per epoch window) —
        #: the observe-only demand forecast surfaced as the
        #: ``cluster.predicted_rate_qps`` gauge.
        predicted_qps = 0.0
        last_rebalance_epoch = -config.min_epochs_between - 1
        num_rebalances = 0
        migration_stall_s = 0.0
        migration_stats = _MigrationStats()
        rebalance_log: List[Tuple[float, float]] = []
        epoch_rows: List[Tuple[float, float, float]] = []

        def runtimes() -> List[_ReplicaRuntime]:
            return archived + list(live.values())

        while position < len(items) or any(not rt.state.drained
                                           for rt in live.values()):
            if epoch >= config.max_epochs:
                # Safety valve: route everything still unrouted in one final
                # window and drain without further control, so no offered
                # request silently vanishes from the accounting.
                tail = items[position:]
                position = len(items)
                plan = cluster.scheduler.route_window(
                    tenants, placement, self._service_estimator(live),
                    stream=[(query, name) for query, name, _ in tail],
                    state=router,
                    feedback=feedback if config.routing_feedback else None,
                    window_start_s=epoch * config.epoch_s,
                    recorder=control_rec,
                )
                self._apply_plan(plan, [(q, n) for q, n, _ in tail],
                                 [i for _, _, i in tail], live,
                                 final_attempt, cap_rejected)
                self._advance_all(live)
                break
            if (position < len(items)
                    and all(rt.state.drained for rt in live.values())):
                # Fast-forward an idle gap: no replica has work, so skip
                # straight to the epoch holding the next arrival instead of
                # grinding through empty control intervals.
                next_epoch = int(items[position][0].arrival_time_s
                                 // config.epoch_s)
                epoch = max(epoch, min(next_epoch, config.max_epochs - 1))
            start_s = epoch * config.epoch_s
            end_s = start_s + config.epoch_s

            # ------------------------------------------------ route the window
            window: List[Tuple[Query, str]] = []
            window_indices: List[int] = []
            arrived_tokens = {t.name: 0.0 for t in tenants}
            while position < len(items) and items[position][0].arrival_time_s < end_s:
                query, name, index = items[position]
                window.append((query, name))
                window_indices.append(index)
                arrived_tokens[name] += query.total_context
                position += 1
            plan = cluster.scheduler.route_window(
                tenants, placement, self._service_estimator(live),
                stream=window, state=router,
                feedback=feedback if config.routing_feedback else None,
                window_start_s=start_s,
                recorder=control_rec,
            )
            self._apply_plan(plan, window, window_indices, live,
                             final_attempt, cap_rejected)

            # --------------------------------------------- advance one epoch
            self._advance_all(live, until_s=end_s)

            # ------------------------------------------- measure the boundary
            epoch_goodput = 0.0
            epoch_backlog = 0.0
            backlog_tokens = {t.name: 0.0 for t in tenants}
            # Live replicas only: an earlier-archived replica is frozen (its
            # clock predates this window, so it can finish nothing here) and
            # its stranded last backlog sample was migrated to the live set —
            # counting it again would hold a phantom backlog forever.
            for runtime in live.values():
                epoch_goodput += self._window_goodput(
                    runtime, start_s, end_s, sla_by_name)
                epoch_backlog += window_mean_queue_depth(
                    runtime.state.queue_depth_timeline, start_s, end_s)
            for runtime in live.values():
                delta = runtime.state.decode_step_tokens - runtime.last_decode_tokens
                runtime.last_decode_tokens = runtime.state.decode_step_tokens
                if delta > 0:
                    measured = delta / config.epoch_s
                    runtime.tokens_per_s = (
                        config.feedback_alpha * measured
                        + (1.0 - config.feedback_alpha) * runtime.tokens_per_s)
                for request, (owner_name, _) in zip(runtime.state.requests,
                                                    runtime.feed,
                                                    strict=True):
                    if request.state in (RequestState.FINISHED,
                                         RequestState.REJECTED):
                        continue
                    backlog_tokens[owner_name] += (
                        request.prefill_remaining
                        + max(request.query.decode_tokens
                              - request.tokens_generated, 0))
            epoch_rows.append((start_s, epoch_goodput / config.epoch_s,
                               epoch_backlog))
            if control_rec is not None:
                control_rec.span(
                    "cluster.epoch", start_s, end_s, epoch=epoch,
                    goodput_tokens_per_s=epoch_goodput / config.epoch_s,
                    backlog=epoch_backlog)

            # ------------------------------------------------- maybe re-place
            work_left = (position < len(items)
                         or any(not rt.state.drained for rt in live.values()))
            if (config.rebalance == "epoch" and work_left
                    and epoch - last_rebalance_epoch > config.min_epochs_between):
                demand = {
                    name: (backlog_tokens[name] + arrived_tokens[name])
                    / config.epoch_s
                    for name in backlog_tokens
                }
                decision = rebalancer.decide(tenants, pool_devices,
                                             placement, demand)
                if decision is not None:
                    if control_rec is not None:
                        control_rec.event(
                            "cluster.rebalance", end_s, epoch=epoch,
                            projected_gain_tokens=decision.projected_gain_tokens,
                            migration_cost_tokens=decision.migration_cost_tokens,
                            stall_s=decision.stall_s,
                            rebuilt=decision.rebuilt_replica_ids)
                    placement = decision.placement
                    live = self._apply_rebalance(
                        decision, live, archived, router, final_attempt,
                        now_s=end_s, stats=migration_stats)
                    last_rebalance_epoch = epoch
                    num_rebalances += 1
                    migration_stall_s += decision.stall_s
                    rebalance_log.append((end_s, decision.stall_s))

            # -------------------------------------- feedback for next window
            feedback = {}
            for replica_id, runtime in live.items():
                tail = (runtime.state.queue_depth_timeline[-1]
                        if runtime.state.queue_depth_timeline else (0.0, 0, 0))
                feedback[replica_id] = ReplicaFeedback(
                    queued=tail[1],
                    running=tail[2],
                    outstanding_tokens=runtime.outstanding_tokens(),
                    # tokens_per_s is the EWMA blend of measured epochs over
                    # the capability seed, so it serves as both signals.
                    observed_tokens_per_s=runtime.tokens_per_s,
                    estimated_tokens_per_s=runtime.tokens_per_s,
                    extra_delay_s=max(0.0, runtime.stall_until_s - end_s),
                )
                if control_rec is not None:
                    observed = feedback[replica_id]
                    control_rec.event(
                        "cluster.feedback", end_s,
                        replica=runtime.scope.name,
                        queued=observed.queued, running=observed.running,
                        outstanding_tokens=observed.outstanding_tokens,
                        tokens_per_s=runtime.tokens_per_s)
            predicted_qps = (
                config.feedback_alpha * (len(window) / config.epoch_s)
                + (1.0 - config.feedback_alpha) * predicted_qps)
            if telemetry is not None:
                self._record_epoch_metrics(
                    telemetry, live, archived, end_s,
                    epoch_goodput / config.epoch_s, epoch_backlog,
                    num_rebalances, migration_stall_s, migration_stats,
                    predicted_qps)
            epoch += 1

        return self._aggregate(placement, runtimes(), final_attempt,
                               cap_rejected, num_rebalances,
                               migration_stall_s, rebalance_log, epoch_rows,
                               migration_stats)

    # ------------------------------------------------------------------ pieces

    def _record_epoch_metrics(
        self,
        telemetry: TraceRecorder,
        live: Dict[int, _ReplicaRuntime],
        archived: List[_ReplicaRuntime],
        end_s: float,
        goodput_tokens_per_s: float,
        backlog: float,
        num_rebalances: int,
        migration_stall_s: float,
        stats: _MigrationStats,
        predicted_rate_qps: float,
    ) -> None:
        """Fold this epoch's measured signals into the metrics registry and
        snapshot it — one :class:`MetricsSnapshot` per epoch on the result's
        ``metrics_timeline``, fed to the SLO monitor as it lands."""
        metrics = telemetry.metrics
        metrics.set_gauge("cluster.goodput_tokens_per_s", goodput_tokens_per_s)
        metrics.set_gauge("cluster.backlog", backlog)
        metrics.set_gauge("cluster.predicted_rate_qps", predicted_rate_qps)
        metrics.set_gauge("cluster.migration_stall_s", migration_stall_s)
        metrics.set_counter("cluster.rebalances", num_rebalances)
        metrics.set_counter("cluster.migrated_requests", stats.num_requests)
        metrics.set_counter("kv.migrated_bytes", stats.kv_bytes)
        pools = [rt.state.allocator.pool for rt in live.values()
                 if rt.state.allocator is not None]
        if pools:
            metrics.set_gauge(
                "kv.pool_occupancy",
                sum(pool.utilization for pool in pools) / len(pools))
        everyone = list(live.values()) + archived
        metrics.set_counter(
            "serving.preemptions",
            sum(len(rt.scope.preemption_view()) for rt in everyone
                if rt.scope is not None))
        metrics.set_counter(
            "serving.finished",
            sum(1 for rt in everyone for r in rt.state.requests
                if r.state is RequestState.FINISHED))
        ttfts = sorted(
            request.ttft_s
            for rt in everyone for request in rt.state.requests
            if request.first_token_time_s is not None)
        if ttfts:
            metrics.set_gauge("serving.ttft_p99_s",
                              _percentile(ttfts, 0.99))
        snapshot = metrics.snapshot(end_s)
        if self.slo_monitor is not None:
            self.slo_monitor.observe(snapshot)

    def _service_estimator(self, live: Dict[int, _ReplicaRuntime]):
        def estimate(spec: ReplicaSpec, query: Query) -> float:
            return query.total_context / live[spec.replica_id].tokens_per_s
        return estimate

    def _apply_plan(
        self,
        plan: RoutingPlan,
        window: List[Tuple[Query, str]],
        window_indices: List[int],
        live: Dict[int, _ReplicaRuntime],
        final_attempt: Dict[Tuple[str, int], Tuple[_ReplicaRuntime, int]],
        cap_rejected: Dict[str, List[Query]],
    ) -> None:
        """Feed the window's routed queries into their replicas' states."""
        # Recover each routed query's trace index.  Routing preserves query
        # identity, but a trace may alias one Query object several times
        # (aliased copies are indistinguishable, arrival included), so each
        # identity maps to a *queue* of indices consumed per occurrence.
        index_queues: Dict[int, Deque[int]] = {}
        for (query, _), index in zip(window, window_indices, strict=True):
            index_queues.setdefault(id(query), deque()).append(index)
        for replica_id, assigned in plan.assignments.items():
            runtime = live[replica_id]
            for owner, query in assigned:
                index = index_queues[id(query)].popleft()
                request_id = len(runtime.state.requests)
                self._feed(runtime, owner, index, query)
                final_attempt[(owner, index)] = (runtime, request_id)
        for name, queries in plan.rejected.items():
            cap_rejected[name].extend(queries)

    def _apply_rebalance(
        self,
        decision: RebalanceDecision,
        live: Dict[int, _ReplicaRuntime],
        archived: List[_ReplicaRuntime],
        router: RouterState,
        final_attempt: Dict[Tuple[str, int], Tuple[_ReplicaRuntime, int]],
        *,
        now_s: float,
        stats: _MigrationStats,
    ) -> Dict[int, _ReplicaRuntime]:
        """Install ``decision.placement``: carry matching replicas' states,
        build the rest (paying the reload stall), migrate stranded work."""
        pool: Dict[Tuple, List[Tuple[int, _ReplicaRuntime]]] = {}
        for replica_id, runtime in live.items():
            pool.setdefault(_replica_signature(runtime.spec), []).append(
                (replica_id, runtime))

        new_live: Dict[int, _ReplicaRuntime] = {}
        ready_s: Dict[int, float] = {}
        for spec in decision.placement.replicas:
            matches = pool.get(_replica_signature(spec))
            if matches:
                old_id, runtime = matches.pop(0)
                runtime.spec = spec
                new_live[spec.replica_id] = runtime
                ready_s[spec.replica_id] = router.ready_s.get(old_id, now_s)
            else:
                new_live[spec.replica_id] = self._new_runtime(
                    spec, start_s=now_s, stall_s=decision.stall_s)
                ready_s[spec.replica_id] = now_s + decision.stall_s
        router.ready_s = ready_s
        router.robin_pos = {name: 0 for name in router.robin_pos}

        # Unfinished work on dismantled replicas moves to the new set.
        # ``migration="live"``: requests with materialised KV swap it
        # through host memory and resume at their original progress;
        # everything else (and every request under ``"restart"``) re-enters
        # from scratch.  Arrival times are kept either way, so the
        # disruption lands in the measured latencies.
        live_migration = self.config.migration == "live"
        link = self.cluster.config.link
        control_rec = self._control_rec
        for signature_matches in pool.values():
            for _, runtime in signature_matches:
                archived.append(runtime)
                for request in runtime.state.unfinished:
                    owner, index = runtime.feed[request.request_id]
                    target = self._migration_target(new_live, owner)
                    request_id = len(target.state.requests)
                    if (live_migration and request.context_length > 0
                            and request.restore_remaining == 0):
                        moved = runtime.engine.migrate_out(
                            runtime.state, request, now_s=now_s)
                        landed = target.engine.migrate_in(
                            target.state, moved, now_s=now_s)
                        target.feed.append((owner, index))
                        if control_rec is not None:
                            control_rec.event(
                                "cluster.migrate", now_s, request.request_id,
                                mode="live",
                                source_scope=runtime.scope.name,
                                source_request=request.request_id,
                                dest_scope=target.scope.name,
                                dest_request=request_id,
                                accepted=(landed.state
                                          is not RequestState.REJECTED),
                                kv_bytes=moved.swap_bytes)
                        if landed.state is not RequestState.REJECTED:
                            stats.num_requests += 1
                            stats.kv_bytes += moved.swap_bytes
                            stats.restored_tokens += moved.kv_tokens
                            stats.kv_time_s += moved.swap_out_s
                            if not moved.swap_in_priced:
                                # Swap-in priced eagerly with the
                                # destination's formula (resume charges the
                                # same value).  A request migrated *again*
                                # before it ever resumed already priced its
                                # single eventual swap-in on the first hop,
                                # so that hop adds nothing here.
                                stats.kv_time_s += kv_swap_time_s(
                                    moved.swap_bytes, link,
                                    pp_stages=target.state.plan.pp_stages)
                            remaining = (request.prefill_remaining
                                         + max(request.query.decode_tokens
                                               - request.tokens_generated, 0))
                            router.ready_s[target.spec.replica_id] += (
                                remaining / target.tokens_per_s)
                    else:
                        self._feed(target, owner, index, request.query)
                        if control_rec is not None:
                            control_rec.event(
                                "cluster.migrate", now_s, request.request_id,
                                mode="restart",
                                source_scope=runtime.scope.name,
                                source_request=request.request_id,
                                dest_scope=target.scope.name,
                                dest_request=request_id)
                        router.ready_s[target.spec.replica_id] += (
                            request.query.total_context / target.tokens_per_s)
                    final_attempt[(owner, index)] = (target, request_id)
        return new_live

    @staticmethod
    def _migration_target(live: Dict[int, _ReplicaRuntime],
                          owner: str) -> _ReplicaRuntime:
        """The least-loaded new replica serving ``owner`` (migrations bypass
        the admission cap: the request was already admitted once)."""
        candidates = [rt for rt in live.values()
                      if owner in rt.spec.tenant_names]
        if not candidates:
            raise ValueError(
                f"re-placement left tenant {owner!r} with no replica to "
                "migrate its in-flight requests to"
            )
        return min(candidates,
                   key=lambda rt: (rt.outstanding_tokens(),
                                   rt.spec.replica_id))

    def _window_goodput(
        self,
        runtime: _ReplicaRuntime,
        start_s: float,
        end_s: float,
        sla_by_name: Dict[str, float],
    ) -> float:
        """SLA-compliant decode tokens of ``runtime`` finishing in the window."""
        total = 0.0
        for request, (owner, _) in zip(runtime.state.requests, runtime.feed,
                                       strict=True):
            total += window_decode_tokens(
                [request], start_s, end_s, sla_latency_s=sla_by_name[owner])
        return total

    # ------------------------------------------------------------------ results

    def _aggregate(
        self,
        placement: ClusterPlacement,
        all_runtimes: List[_ReplicaRuntime],
        final_attempt: Dict[Tuple[str, int], Tuple[_ReplicaRuntime, int]],
        cap_rejected: Dict[str, List[Query]],
        num_rebalances: int,
        migration_stall_s: float,
        rebalance_log: List[Tuple[float, float]],
        epoch_rows: List[Tuple[float, float, float]],
        migration_stats: _MigrationStats,
    ) -> ClusterResult:
        cluster = self.cluster
        tenants = cluster.tenants
        runs = {id(rt): rt.engine.snapshot(rt.state) for rt in all_runtimes}

        tenant_requests: Dict[str, List[ServingRequest]] = {t.name: [] for t in tenants}
        tenant_runtimes: Dict[str, List[_ReplicaRuntime]] = {t.name: [] for t in tenants}
        seen_runtimes: Dict[str, set] = {t.name: set() for t in tenants}
        for (owner, index) in sorted(final_attempt):
            runtime, request_id = final_attempt[(owner, index)]
            tenant_requests[owner].append(runtime.state.requests[request_id])
            if id(runtime) not in seen_runtimes[owner]:
                seen_runtimes[owner].add(id(runtime))
                tenant_runtimes[owner].append(runtime)

        for tenant in tenants:
            for query in cap_rejected[tenant.name]:
                refused = ServingRequest(len(tenant_requests[tenant.name]), query)
                refused.state = RequestState.REJECTED
                tenant_requests[tenant.name].append(refused)

        makespan = max((runs[id(rt)].makespan_s for rt in all_runtimes),
                       default=0.0)
        busy_device_seconds = sum(
            (runs[id(rt)].prefill_time_s + runs[id(rt)].decode_time_s)
            * rt.spec.num_devices
            for rt in all_runtimes
        )

        tenant_results: Dict[str, ServingResult] = {}
        for tenant in tenants:
            used = [runs[id(rt)] for rt in tenant_runtimes[tenant.name]]
            plan_names = sorted({run.plan.name for run in used})
            tenant_results[tenant.name] = aggregate_serving_result(
                tenant_requests[tenant.name],
                model_name=tenant.model.name,
                plan_name=" + ".join(plan_names) if plan_names else "unplaced",
                makespan_s=max((r.finish_time_s
                                for r in tenant_requests[tenant.name]
                                if r.finish_time_s is not None), default=0.0),
                prefill_time_s=sum(run.prefill_time_s for run in used),
                decode_time_s=sum(run.decode_time_s for run in used),
                decode_step_tokens=sum(run.decode_step_tokens for run in used),
                peak_memory_bytes=sum(run.peak_memory_bytes for run in used),
                memory_capacity_bytes=sum(run.memory_capacity_bytes for run in used),
                sla_latency_s=tenant.latency_slo_s,
                queue_depth_timeline=merge_queue_depth_timelines(
                    [run.queue_depth_timeline for run in used]
                ),
            )

        return ClusterResult(
            placement_policy=placement.policy,
            routing_policy=cluster.scheduler.policy,
            pool_devices=placement.pool_devices,
            devices_used=placement.devices_used,
            makespan_s=makespan,
            tenant_results=tenant_results,
            tenant_devices=dict(placement.tenant_devices),
            tenant_offered_decode_tokens={
                t.name: t.offered_decode_tokens for t in tenants
            },
            busy_device_seconds=busy_device_seconds,
            epoch_s=self.config.epoch_s,
            num_rebalances=num_rebalances,
            migration_stall_s=migration_stall_s,
            epoch_timeline=tuple(epoch_rows),
            rebalance_log=tuple(rebalance_log),
            num_migrated_requests=migration_stats.num_requests,
            migrated_kv_bytes=migration_stats.kv_bytes,
            kv_migration_time_s=migration_stats.kv_time_s,
            restored_progress_tokens=migration_stats.restored_tokens,
            metrics_timeline=(self.telemetry.metrics.timeline_tuple()
                              if self.telemetry is not None else ()),
            alert_log=(self.slo_monitor.alert_log
                       if self.slo_monitor is not None else AlertLog()),
        )
