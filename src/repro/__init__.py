"""CENT: a CXL-enabled, GPU-free PIM system simulator for LLM inference.

This package reproduces the system described in the ASPLOS 2025 paper
"PIM Is All You Need: A CXL-Enabled GPU-Free System for Large Language Model
Inference".  It provides:

* a GDDR6-PIM timing substrate (``repro.dram``, ``repro.pim``),
* processing-near-memory units and a shared buffer (``repro.pnm``),
* a CXL 3.0 network model with collective primitives (``repro.cxl``),
* the CENT ISA and a compiler from LLM operations to instruction traces
  (``repro.isa``, ``repro.compiler``),
* model configurations and parallelisation mappings (``repro.models``,
  ``repro.mapping``),
* the end-to-end CENT system and performance model (``repro.core``),
* power, energy and total-cost-of-ownership models (``repro.power``,
  ``repro.cost``),
* GPU and PIM/PNM baselines (``repro.baselines``),
* an event-driven serving engine with request arrival processes,
  KV-capacity-aware admission and vLLM-style continuous batching
  (``repro.serving``, ``repro.workloads``),
* a paged KV-cache manager with block-granular allocation and
  preemption-aware serving — LRU/priority/SLA-deadline victim selection
  with CXL-priced swap or recompute restore (``repro.kvstore``, enabled
  through ``ServingEngine(..., admission="paged")``),
* multi-tenant cluster serving that shards one device pool across models
  and traffic classes with placement, routing and admission policies
  (``repro.cluster``), and
* the evaluation harness regenerating the paper's tables and figures
  (``repro.evaluation``), including serving-mode QoS and multi-tenant
  studies, and
* a unified telemetry layer — request-lifecycle tracing, a metrics
  registry, and Chrome/Perfetto trace export across the serving stack
  (``repro.telemetry``; pass ``telemetry=TraceRecorder()`` to
  ``ServingEngine.simulate`` or ``ClusterEngine.run``, then inspect the
  trace with ``python -m repro.telemetry``).

Quickstart (static batch, the paper's evaluation shape)::

    from repro import CentSystem, CentConfig, LLAMA2_7B

    system = CentSystem(CentConfig(num_devices=8), LLAMA2_7B)
    result = system.run_inference(prompt_tokens=512, decode_tokens=512)
    print(result.decode_throughput_tokens_per_s)

Quickstart (trace-driven serving; see ``examples/online_serving.py``)::

    from repro import ServingEngine
    from repro.workloads import poisson_arrivals, sharegpt_like_queries, with_arrivals

    trace = with_arrivals(sharegpt_like_queries(200),
                          poisson_arrivals(200, rate_qps=0.5))
    result = ServingEngine(system).run(trace, sla_latency_s=60.0)
    print(result.ttft.p99_s, result.tbt.p50_s, result.goodput_tokens_per_s)

Quickstart (multi-tenant cluster; see ``examples/multi_tenant_serving.py``)::

    from repro import SlaClass, TenantSpec

    chat = TenantSpec("chat", sla_class=SlaClass.INTERACTIVE, trace=trace)
    batch = TenantSpec("batch", sla_class=SlaClass.BATCH, trace=trace)
    cluster = system.serve_cluster([chat, batch], placement_policy="sla_aware")
    print(cluster.aggregate_goodput_tokens_per_s, cluster.max_min_goodput_ratio)
"""

from repro.models.config import (
    LLAMA2_7B,
    LLAMA2_13B,
    LLAMA2_70B,
    OPT_66B,
    GPT3_175B,
    ModelConfig,
)
from repro.core.config import CentConfig
from repro.core.system import CentSystem
from repro.core.results import (
    ClusterResult,
    InferenceResult,
    LatencyBreakdown,
    LatencyStats,
    ServingResult,
)
from repro.serving.engine import ServingEngine
from repro.kvstore import BlockPool, KvAllocator, PreemptionPolicy
from repro.cluster.tenant import SlaClass, TenantSpec
from repro.cluster.engine import ClusterEngine
from repro.mapping.parallelism import (
    DataParallel,
    HybridParallel,
    ParallelismPlan,
    PipelineParallel,
    TensorParallel,
)
from repro.baselines.gpu import GPUSystem, GPUConfig, A100_80GB
from repro.telemetry import TraceRecorder, write_jsonl, write_perfetto

__all__ = [
    "ModelConfig",
    "LLAMA2_7B",
    "LLAMA2_13B",
    "LLAMA2_70B",
    "OPT_66B",
    "GPT3_175B",
    "CentConfig",
    "CentSystem",
    "InferenceResult",
    "LatencyBreakdown",
    "LatencyStats",
    "ServingResult",
    "ServingEngine",
    "BlockPool",
    "KvAllocator",
    "PreemptionPolicy",
    "ClusterResult",
    "ClusterEngine",
    "TenantSpec",
    "SlaClass",
    "ParallelismPlan",
    "PipelineParallel",
    "TensorParallel",
    "HybridParallel",
    "DataParallel",
    "GPUSystem",
    "GPUConfig",
    "A100_80GB",
    "TraceRecorder",
    "write_jsonl",
    "write_perfetto",
]

__version__ = "1.0.0"
