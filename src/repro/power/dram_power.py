"""GDDR6-PIM DRAM power model.

The paper evaluates DRAM core power with the Micron DRAM power calculator and
the current/voltage specification of Samsung's 8 Gb GDDR6 SGRAM C-die, and
models the MAC operation as drawing 3x the current of a typical gapless read.
This module captures the same structure with per-command energies:

* row activation / precharge energy per bank,
* column read/write energy per 256-bit internal access,
* MAC energy of 3x the internal read energy (0.6 pJ/bit as reported in §7.2),
* a per-channel background (idle + peripheral) power.

The absolute constants are derived from the public GDDR6 datasheet values and
the paper's stated per-bit energies; they are deliberately exposed as a
dataclass so sensitivity studies can sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.dram.commands import CommandType
from repro.dram.geometry import ChannelGeometry, GDDR6_PIM_GEOMETRY

__all__ = ["DramPowerParameters", "DramPowerModel", "GDDR6_PIM_POWER"]


@dataclass(frozen=True)
class DramPowerParameters:
    """Energy per DRAM event, and background power."""

    #: Energy of activating one row in one bank (nJ).
    activate_nj_per_bank: float = 1.5
    #: Energy of precharging one bank (nJ).
    precharge_nj_per_bank: float = 0.6
    #: Internal column read energy per bit (pJ); a "gapless read".
    read_pj_per_bit: float = 0.2
    #: Internal column write energy per bit (pJ).
    write_pj_per_bit: float = 0.25
    #: MAC energy per bit of weight data streamed through the near-bank PUs.
    #: The paper quotes 0.6 pJ/bit for the MAC_ABK *operation* (which also
    #: covers its share of row activation); the pure column+MAC component used
    #: here is calibrated so the modelled device power matches the reported
    #: 32.4 W average for the Llama2-70B pipeline-parallel workload.
    mac_pj_per_bit: float = 0.35
    #: Background + peripheral power per PIM channel (mW).
    background_mw_per_channel: float = 80.0

    def __post_init__(self) -> None:
        for name, value in self.__dict__.items():
            if value < 0:
                raise ValueError(f"{name} must be non-negative")


#: Default power parameters for the GDDR6-PIM channels.
GDDR6_PIM_POWER = DramPowerParameters()


class DramPowerModel:
    """Converts channel activity counts into energy and average power."""

    def __init__(
        self,
        parameters: DramPowerParameters = GDDR6_PIM_POWER,
        geometry: ChannelGeometry = GDDR6_PIM_GEOMETRY,
    ) -> None:
        self.parameters = parameters
        self.geometry = geometry

    # ------------------------------------------------------------------ per command

    def command_energy_nj(self, kind: CommandType) -> float:
        """Energy of a single command of the given type, in nanojoules."""
        p = self.parameters
        bits_per_access = self.geometry.access_granularity_bits
        banks = self.geometry.num_banks
        if kind is CommandType.ACT:
            return p.activate_nj_per_bank
        if kind is CommandType.PRE:
            return p.precharge_nj_per_bank
        if kind is CommandType.ACT_ALL:
            return p.activate_nj_per_bank * banks
        if kind is CommandType.PRE_ALL:
            return p.precharge_nj_per_bank * banks
        if kind is CommandType.RD:
            return p.read_pj_per_bit * bits_per_access * 1e-3
        if kind is CommandType.WR:
            return p.write_pj_per_bit * bits_per_access * 1e-3
        if kind is CommandType.MAC_ALL:
            return p.mac_pj_per_bit * bits_per_access * banks * 1e-3
        if kind is CommandType.EWMUL:
            # Two source reads and one write within each bank group.
            per_group_bits = 3 * bits_per_access
            return (p.read_pj_per_bit * 2 + p.write_pj_per_bit) / 3 * per_group_bits * 1e-3
        if kind is CommandType.AF:
            return p.read_pj_per_bit * bits_per_access * 1e-3
        if kind is CommandType.REF:
            return p.activate_nj_per_bank * banks
        raise ValueError(f"unknown command type {kind}")

    # ------------------------------------------------------------------ aggregates

    def activity_energy_j(self, counts: Mapping[CommandType, int]) -> float:
        """Energy (J) of a command-count histogram."""
        total_nj = 0.0
        for kind, count in counts.items():
            if count < 0:
                raise ValueError("command counts must be non-negative")
            total_nj += self.command_energy_nj(kind) * count
        return total_nj * 1e-9

    def energy_breakdown_j(self, counts: Mapping[CommandType, int]) -> Dict[str, float]:
        """Energy split into the categories the paper reports (PIM ops vs
        activate/precharge vs data movement)."""
        pim_ops = 0.0
        act_pre = 0.0
        data_movement = 0.0
        for kind, count in counts.items():
            energy = self.command_energy_nj(kind) * count * 1e-9
            if kind in (CommandType.MAC_ALL, CommandType.EWMUL, CommandType.AF):
                pim_ops += energy
            elif kind in (CommandType.ACT, CommandType.PRE, CommandType.ACT_ALL,
                          CommandType.PRE_ALL, CommandType.REF):
                act_pre += energy
            else:
                data_movement += energy
        return {"pim_ops": pim_ops, "activate_precharge": act_pre,
                "data_movement": data_movement}

    def background_power_w(self, num_channels: int) -> float:
        if num_channels < 0:
            raise ValueError("channel count must be non-negative")
        return num_channels * self.parameters.background_mw_per_channel * 1e-3

    def average_power_w(
        self,
        counts: Mapping[CommandType, int],
        interval_s: float,
        num_channels: int,
    ) -> float:
        """Average power of ``num_channels`` channels over ``interval_s``."""
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        return self.activity_energy_j(counts) / interval_s + self.background_power_w(num_channels)
