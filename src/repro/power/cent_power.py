"""Activity-based power model of a CENT deployment (paper §7.2).

Device power has three parts:

* DRAM dynamic energy from the per-command activity of the performance model
  (MAC and EW_MUL operations, activates/precharges, reads/writes),
* DRAM background power per channel, and
* the CXL controller (custom logic, memory controllers, RISC-V cores).

A device hosting several pipeline stages runs all of them concurrently, so
its activity is the per-block activity times the blocks it hosts, spread over
one stage latency.  System power adds the host CPU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.config import CentConfig
from repro.core.performance import BlockCost
from repro.mapping.parallelism import ParallelismPlan
from repro.models.config import ModelConfig
from repro.power.cxl_controller import CxlControllerPower, CXL_CONTROLLER_28NM
from repro.power.dram_power import DramPowerModel, GDDR6_PIM_POWER

__all__ = ["DevicePowerReport", "SystemPowerReport", "CentPowerModel"]

#: Average power of the host CPU (Xeon Gold 6430) attributed to inference.
HOST_CPU_POWER_W = 125.0


@dataclass(frozen=True)
class DevicePowerReport:
    """Average power of one CXL device."""

    dram_dynamic_w: float
    dram_background_w: float
    controller_w: float
    breakdown: Dict[str, float]

    @property
    def total_w(self) -> float:
        return self.dram_dynamic_w + self.dram_background_w + self.controller_w


@dataclass(frozen=True)
class SystemPowerReport:
    """Average power of the whole CENT system."""

    device_w: float
    devices_used: int
    host_w: float

    @property
    def devices_total_w(self) -> float:
        return self.device_w * self.devices_used

    @property
    def total_w(self) -> float:
        return self.devices_total_w + self.host_w


class CentPowerModel:
    """Computes device and system power from block-level activity."""

    def __init__(
        self,
        config: CentConfig,
        dram_power: DramPowerModel | None = None,
        controller: CxlControllerPower = CXL_CONTROLLER_28NM,
        host_power_w: float = HOST_CPU_POWER_W,
    ) -> None:
        self.config = config
        self.dram_power = dram_power or DramPowerModel(GDDR6_PIM_POWER, config.geometry)
        self.controller = controller
        self.host_power_w = host_power_w

    # ------------------------------------------------------------------ device

    def device_power(
        self,
        model: ModelConfig,
        plan: ParallelismPlan,
        block_cost: BlockCost,
    ) -> DevicePowerReport:
        """Average power of one active device under the given workload."""
        blocks_per_device = plan.blocks_per_device(model)
        stage_latency_s = plan.blocks_per_stage(model) * block_cost.breakdown.total_ns * 1e-9
        if stage_latency_s <= 0:
            raise ValueError("block cost must have positive latency")

        if plan.is_tensor_parallel:
            # One block at a time runs across all devices; each device executes
            # its shard of the activity.
            counts = {kind: count * self.config.channels_per_device
                      for kind, count in block_cost.command_counts_per_channel.items()}
            interval_s = block_cost.breakdown.total_ns * 1e-9
        else:
            # All pipeline stages of the device run concurrently.
            counts = {kind: count * block_cost.fc_channels * blocks_per_device
                      for kind, count in block_cost.command_counts_per_channel.items()}
            interval_s = stage_latency_s

        dynamic_w = self.dram_power.activity_energy_j(counts) / interval_s
        background_w = self.dram_power.background_power_w(self.config.channels_per_device)
        controller_w = self.controller.static_power_w()
        breakdown = {
            key: value / interval_s
            for key, value in self.dram_power.energy_breakdown_j(counts).items()
        }
        return DevicePowerReport(
            dram_dynamic_w=dynamic_w,
            dram_background_w=background_w,
            controller_w=controller_w,
            breakdown=breakdown,
        )

    # ------------------------------------------------------------------ system

    def system_power(
        self,
        model: ModelConfig,
        plan: ParallelismPlan,
        block_cost: BlockCost,
        include_host: bool = True,
    ) -> SystemPowerReport:
        device = self.device_power(model, plan, block_cost)
        devices_used = plan.devices_used(model)
        host_w = self.host_power_w if include_host else 0.0
        return SystemPowerReport(
            device_w=device.total_w,
            devices_used=devices_used,
            host_w=host_w,
        )
