"""GPU power and clock-throttling model (paper Figure 15b).

The paper measures A100 board power with ``nvidia-smi`` in 100 ms intervals:
during vLLM initialisation the SM clock sits at its 1410 MHz maximum because
utilisation is low; in the prefill stage high SM utilisation makes the power
manager throttle the clock to stay inside the 300 W TDP; in the decoding
stage the lower utilisation lets the clock rise again while memory bandwidth
keeps the board near the TDP.  This model reproduces those three regimes and
provides the per-phase average power used in the energy comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = ["GpuPowerSample", "GpuPowerModel", "A100_POWER"]


@dataclass(frozen=True)
class GpuPowerSample:
    """One sampled point of the board-power / clock trace."""

    time_s: float
    phase: str
    sm_clock_mhz: float
    board_power_w: float


@dataclass(frozen=True)
class GpuPowerModel:
    """Phase-level power behaviour of one data-centre GPU."""

    name: str = "A100-80GB"
    tdp_w: float = 300.0
    max_sm_clock_mhz: float = 1410.0
    #: Clock the power manager settles at during compute-saturated prefill.
    prefill_sm_clock_mhz: float = 1095.0
    #: Clock during the memory-bound decoding stage.
    decode_sm_clock_mhz: float = 1330.0
    idle_power_w: float = 85.0
    init_power_w: float = 120.0
    #: Fraction of TDP drawn on average during each phase.
    prefill_power_fraction: float = 0.99
    decode_power_fraction: float = 0.95

    def phase_power_w(self, phase: str) -> float:
        """Average board power of one GPU in the given phase."""
        if phase == "prefill":
            return self.tdp_w * self.prefill_power_fraction
        if phase == "decode":
            return self.tdp_w * self.decode_power_fraction
        if phase == "init":
            return self.init_power_w
        if phase == "idle":
            return self.idle_power_w
        raise ValueError(f"unknown phase {phase!r}")

    def phase_clock_mhz(self, phase: str) -> float:
        if phase == "prefill":
            return self.prefill_sm_clock_mhz
        if phase == "decode":
            return self.decode_sm_clock_mhz
        if phase in ("init", "idle"):
            return self.max_sm_clock_mhz
        raise ValueError(f"unknown phase {phase!r}")

    def trace(
        self,
        init_s: float,
        prefill_s: float,
        decode_s: float,
        sample_interval_s: float = 0.1,
    ) -> List[GpuPowerSample]:
        """A sampled power/clock trace over the three phases (Figure 15b)."""
        if min(init_s, prefill_s, decode_s) < 0 or sample_interval_s <= 0:
            raise ValueError("durations must be non-negative and the interval positive")
        samples: List[GpuPowerSample] = []
        time = 0.0
        for phase, duration in (("init", init_s), ("prefill", prefill_s),
                                ("decode", decode_s)):
            steps = max(int(round(duration / sample_interval_s)), 1) if duration > 0 else 0
            for _ in range(steps):
                samples.append(GpuPowerSample(
                    time_s=time,
                    phase=phase,
                    sm_clock_mhz=self.phase_clock_mhz(phase),
                    board_power_w=self.phase_power_w(phase),
                ))
                time += sample_interval_s
        return samples

    def average_power_w(self, prefill_s: float, decode_s: float, num_gpus: int = 1) -> float:
        """Time-weighted average power of ``num_gpus`` GPUs over a query."""
        if num_gpus <= 0:
            raise ValueError("num_gpus must be positive")
        total = prefill_s + decode_s
        if total <= 0:
            raise ValueError("phase durations must sum to a positive time")
        energy = (self.phase_power_w("prefill") * prefill_s
                  + self.phase_power_w("decode") * decode_s)
        return num_gpus * energy / total


#: Default A100 80GB power model.
A100_POWER = GpuPowerModel()
