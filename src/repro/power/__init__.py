"""Power and energy models.

CENT's power is activity based: the DRAM power calculator converts the
per-command activity counters of the performance model into energy (with the
MAC command drawing 3x the current of a gapless read, as measured for AiM),
the CXL controller adds the synthesised custom-logic, memory-controller and
RISC-V power, and the GPU model reproduces the TDP-throttling behaviour the
paper measures with ``nvidia-smi``.
"""

from repro.power.dram_power import DramPowerParameters, DramPowerModel, GDDR6_PIM_POWER
from repro.power.cxl_controller import CxlControllerPower, CXL_CONTROLLER_28NM
from repro.power.cent_power import CentPowerModel, DevicePowerReport, SystemPowerReport
from repro.power.gpu_power import GpuPowerModel, GpuPowerSample, A100_POWER
from repro.power.energy import tokens_per_joule, energy_per_token

__all__ = [
    "DramPowerParameters",
    "DramPowerModel",
    "GDDR6_PIM_POWER",
    "CxlControllerPower",
    "CXL_CONTROLLER_28NM",
    "CentPowerModel",
    "DevicePowerReport",
    "SystemPowerReport",
    "GpuPowerModel",
    "GpuPowerSample",
    "A100_POWER",
    "tokens_per_joule",
    "energy_per_token",
]
