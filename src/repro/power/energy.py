"""Energy-efficiency metrics (tokens per Joule, Figure 15c)."""

from __future__ import annotations

__all__ = ["energy_per_token", "tokens_per_joule"]


def energy_per_token(average_power_w: float, throughput_tokens_per_s: float) -> float:
    """Joules consumed per generated token."""
    if average_power_w < 0:
        raise ValueError("power must be non-negative")
    if throughput_tokens_per_s <= 0:
        raise ValueError("throughput must be positive")
    return average_power_w / throughput_tokens_per_s


def tokens_per_joule(average_power_w: float, throughput_tokens_per_s: float) -> float:
    """Tokens generated per Joule of system energy."""
    energy = energy_per_token(average_power_w, throughput_tokens_per_s)
    if energy == 0:
        return float("inf")
    return 1.0 / energy
