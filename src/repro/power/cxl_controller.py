"""CXL controller area and power (paper Table 5).

The controller's custom logic (instruction buffer, shared buffer, PNM
accelerators, RISC-V cores and glue) is synthesised at 28 nm; the memory
controllers and the PCIe/PHY blocks are taken from published measurements.
Area scales from 28 nm to 7 nm with the Stillmaker-Baas scaling equations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["CxlControllerPower", "CXL_CONTROLLER_28NM"]

#: Area scaling factor from 28 nm to 7 nm (Stillmaker & Baas 2017).
AREA_SCALE_28_TO_7 = 0.107

#: Components of the custom logic in 28 nm: (area mm^2, power W), Table 5.
TABLE5_COMPONENTS: Dict[str, tuple] = {
    "sram_instruction_buffer": (3.33, 0.61),
    "shared_buffer": (0.11, 0.03),
    "accelerators": (1.34, 0.18),
    "riscv_cores": (2.94, 0.19),
    "others": (0.12, 0.05),
}


@dataclass(frozen=True)
class CxlControllerPower:
    """Area/power of one CXL controller."""

    components_28nm: Dict[str, tuple] = field(default_factory=lambda: dict(TABLE5_COMPONENTS))
    #: Power of one GDDR6 memory controller serving two channels (W).
    memory_controller_w: float = 0.3146
    #: Number of memory controllers per device (16 controllers, 32 channels).
    num_memory_controllers: int = 16
    #: Power of one BOOM-2wide RISC-V core under load (W).
    riscv_core_w: float = 0.25
    num_riscv_cores: int = 8
    #: Area of the memory controllers, PCIe controller and PHY blocks at 7 nm
    #: (mm^2), measured from GPU die shots and scaled; analog PHY blocks scale
    #: poorly, which is why they dominate the 19 mm^2 controller die.
    io_blocks_area_7nm_mm2: float = 18.16

    # ------------------------------------------------------------------ area

    @property
    def custom_logic_area_28nm_mm2(self) -> float:
        return sum(area for area, _ in self.components_28nm.values())

    @property
    def custom_logic_area_7nm_mm2(self) -> float:
        return self.custom_logic_area_28nm_mm2 * AREA_SCALE_28_TO_7

    @property
    def total_area_7nm_mm2(self) -> float:
        """Total controller die area at 7 nm (~19 mm^2 in the paper)."""
        return self.custom_logic_area_7nm_mm2 + self.io_blocks_area_7nm_mm2

    # ------------------------------------------------------------------ power

    @property
    def custom_logic_power_w(self) -> float:
        """Total custom-logic power of Table 5 (1.06 W at 28 nm)."""
        return sum(power for _, power in self.components_28nm.values())

    def static_power_w(self, riscv_utilization: float = 0.1) -> float:
        """Controller power excluding DRAM: custom logic, memory controllers
        and the RISC-V cluster at the given utilisation."""
        if not 0 <= riscv_utilization <= 1:
            raise ValueError("riscv_utilization must be within [0, 1]")
        riscv = self.riscv_core_w * self.num_riscv_cores * riscv_utilization
        controllers = self.memory_controller_w * self.num_memory_controllers
        return self.custom_logic_power_w + controllers + riscv


#: Default controller model used by the CENT power model and Table 5 bench.
CXL_CONTROLLER_28NM = CxlControllerPower()
