"""Event-driven serving engine with vLLM-style continuous batching.

``ServingEngine`` replays a trace of timed :class:`~repro.workloads.queries.Query`
requests against a :class:`~repro.core.system.CentSystem`:

* requests arrive according to their ``arrival_time_s`` (an open-loop
  arrival process, e.g. :func:`~repro.workloads.queries.poisson_arrivals`);
* admission is **KV-capacity aware**, with two modes.  The default
  ``admission="reserve"`` admits a request only when its *full-context* KV
  cache fits the memory left over from the model weights (via
  :class:`~repro.models.memory.ModelMemoryProfile`) and a batch slot (a
  pipeline-stage position) is free, so the in-flight context never exceeds
  the system's ``memory_capacity_bytes``.  ``admission="paged"`` instead
  carves the KV budget into fixed-size token blocks
  (:class:`~repro.kvstore.BlockPool`) and admits on the request's *current*
  context: blocks are allocated for the prompt at admission and grown one
  token per decode step, and when the pool runs dry a
  :class:`~repro.kvstore.PreemptionPolicy` evicts a victim whose KV is
  either swapped out over the CXL fabric and back
  (``preemption_restore="swap"``) or dropped and re-prefilled
  (``"recompute"``); with ``preemption_partial_blocks=N`` the eviction is
  **block-granular** — only the victim's N coldest prefix blocks are
  staged to host memory, the rest stay resident, and the restore stall
  shrinks to the staged blocks' transfer;
* requests can be **live-migrated** between engines mid-flight
  (:meth:`ServingEngine.migrate_out` / :meth:`ServingEngine.migrate_in`):
  the KV streams through host memory priced like a swap, and the request
  resumes on the destination at its original progress — the mechanism the
  closed-loop cluster controller (``repro.cluster.control``) uses when a
  re-placement dismantles a replica with work in flight;
* batching is **continuous**: newly admitted requests prefill in bounded
  chunks, every decode step advances all running requests at once, and
  finished requests free their slot immediately — no waiting for the
  slowest request of a static batch.  By default prefill has strict
  priority over decoding (vLLM's default scheduler: decode stalls until the
  prefill backlog drains, which the measured time-between-tokens captures);
  with ``interleave_prefill=True`` each iteration piggybacks one prefill
  chunk onto the decode step instead (vLLM's chunked-prefill mode), so a
  decode stall is bounded by ``prefill_chunk_tokens`` at the price of
  stretching every co-scheduled decode iteration;
* iteration costs come from :class:`~repro.core.iteration.IterationCostModel`,
  which prices a mixed-context batch step from the same compiled-program
  block simulations as the static batch path (shared performance-model
  cache), without re-simulating whole inferences.

The paper-shaped static batch — identical queries, all arriving at ``t=0``,
one per pipeline slot — is the degenerate case: every request prefills, then
the batch decodes in lockstep, and the measured decode throughput matches
``CentSystem.run_inference``.

Quickstart::

    from repro import CentConfig, CentSystem, LLAMA2_70B
    from repro.serving import ServingEngine
    from repro.workloads import poisson_arrivals, sharegpt_like_queries, with_arrivals

    system = CentSystem(CentConfig(num_devices=32), LLAMA2_70B)
    trace = with_arrivals(sharegpt_like_queries(200), poisson_arrivals(200, rate_qps=0.5))
    result = ServingEngine(system).run(trace, sla_latency_s=120.0)
    print(result.ttft.p99_s, result.tbt.p50_s, result.goodput_tokens_per_s)

Overload the same deployment and let paged admission absorb it::

    paged = ServingEngine(system, admission="paged", preemption_policy="lru",
                          preemption_restore="swap")
    overloaded = paged.run(trace, sla_latency_s=120.0)
    print(overloaded.num_preemptions, overloaded.goodput_tokens_per_s)
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from itertools import repeat
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.iteration import IterationCostModel
from repro.core.results import ServingResult
from repro.core.system import CentSystem
from repro.kvstore.allocator import KvAllocator
from repro.kvstore.block_pool import BlockPool
from repro.kvstore.preemption import PreemptionPolicy, kv_swap_time_s
from repro.mapping.parallelism import ParallelismPlan
from repro.mapping.placement import validate_capacity
from repro.models.memory import ModelMemoryProfile
from repro.serving.metrics import aggregate_serving_result
from repro.serving.request import RequestColumns, RequestState, ServingRequest
from repro.telemetry.recorder import ScopedRecorder, TraceRecorder
from repro.workloads.queries import Query

__all__ = ["ADMISSION_MODES", "EngineMeasurements", "EngineRun", "EngineState",
           "KvMigration", "ServingEngine", "evict_to_bound"]

#: Supported admission modes: full-context reservation vs paged blocks.
ADMISSION_MODES = ("reserve", "paged")


def evict_to_bound(cache: Dict, bound: int) -> None:
    """Drop oldest-inserted entries until ``cache`` has room under ``bound``.

    The FIFO counterpart of the performance model's LRU: setup-style caches
    (here and in ``repro.cluster``) are built once per configuration and
    re-hit with the same key, so insertion order is recency enough.
    """
    while len(cache) >= bound:
        cache.pop(next(iter(cache)))


@dataclass
class EngineMeasurements:
    """Measurement channels shared by :class:`EngineRun` / :class:`EngineState`.

    One definition of the queue-depth timeline and the preemption log for
    both the live state and the snapshot it exports (they previously
    duplicated the field pair).  The storage switches with tracing:

    * **Tracing off** (``recorder is None``): plain lists, bit-exact with
      every pre-telemetry release — ``queue_samples`` holds the
      ``(time_s, queued, running)`` samples, ``evictions`` the
      ``(time_s, request_id)`` eviction log.
    * **Tracing on**: the same facts live once in the attached
      :class:`~repro.telemetry.recorder.ScopedRecorder` — the queue signal
      is recorded straight into ``recorder.queue_signal`` and the
      preemption log is a derived view over its ``serving.preempt``
      events.  The ``queue_depth_timeline`` / ``preemption_log``
      properties read identically either way.
    """

    #: Event sink when tracing is on; ``None`` (the default) disables
    #: telemetry with zero per-iteration overhead.
    recorder: Optional["ScopedRecorder"] = field(
        default=None, kw_only=True, repr=False, compare=False)
    #: Per-iteration ``(time_s, queued, running)`` samples; ``queued``
    #: counts arrived-but-not-running requests (waiting plus preempted).
    queue_samples: List[Tuple[float, int, int]] = field(
        default_factory=list, kw_only=True)
    #: ``(time_s, request_id)`` per eviction, in victim order (paged mode).
    evictions: List[Tuple[float, int]] = field(
        default_factory=list, kw_only=True)

    @property
    def queue_depth_timeline(self) -> List[Tuple[float, int, int]]:
        recorder = self.recorder
        return self.queue_samples if recorder is None else recorder.queue_signal

    @property
    def preemption_log(self) -> List[Tuple[float, int]]:
        recorder = self.recorder
        return self.evictions if recorder is None else recorder.preemption_view()


@dataclass
class EngineRun(EngineMeasurements):
    """Raw outcome of one event-driven run, before aggregation.

    :meth:`ServingEngine.simulate` returns this instead of a folded
    :class:`~repro.core.results.ServingResult` so callers that need
    per-request outcomes — the multi-tenant cluster layer attributes each
    request back to its tenant — can aggregate subsets themselves with
    :func:`~repro.serving.metrics.aggregate_serving_result`.  ``requests``
    preserves trace order (``requests[i]`` is the i-th query of the trace).
    """

    plan: ParallelismPlan
    requests: List[ServingRequest]
    makespan_s: float
    prefill_time_s: float
    decode_time_s: float
    decode_step_tokens: int
    peak_memory_bytes: int
    memory_capacity_bytes: int


@dataclass
class EngineState(EngineMeasurements):
    """Resumable event-loop state of one serving run.

    Produced by :meth:`ServingEngine.begin`, advanced (possibly in several
    time-bounded segments) by :meth:`ServingEngine.advance`, and fed new
    arrivals between segments by :meth:`ServingEngine.extend`.  The closed-
    loop cluster controller (``repro.cluster.control``) uses this to pause
    every replica at epoch boundaries, read the measured backlog, and resume
    — or migrate the unfinished work — in the next epoch.

    The plain :meth:`ServingEngine.simulate` path is ``begin`` followed by a
    single unbounded ``advance`` and is bit-exact with the pre-segmentation
    engine: segmentation only changes *when* the loop returns control, never
    what an iteration computes.
    """

    plan: ParallelismPlan
    cost: IterationCostModel
    slots: int
    kv_budget: int
    weight_bytes: int
    paged: bool
    #: Largest context the plan was searched/validated for; ``extend`` may
    #: only add queries at or below it (begin's ``planning_trace`` bounds it).
    planned_context: int
    sla_latency_s: Optional[float]
    allocator: Optional[KvAllocator]
    policy: Optional[PreemptionPolicy]
    bytes_per_token: int
    kv_scale: float
    #: Every request ever fed to this state, in feed order
    #: (``requests[i].request_id == i``).
    requests: List[ServingRequest] = field(default_factory=list)
    #: Struct-of-arrays store behind the requests' hot fields; the
    #: vectorized advance paths gather and scatter whole batches here.
    columns: RequestColumns = field(default_factory=RequestColumns)
    #: Times ``extend`` had to fall back to a full re-sort of ``pending``
    #: (out-of-order feed); stays zero for arrival-ordered segment feeds.
    pending_resorts: int = 0
    pending: Deque[ServingRequest] = field(default_factory=deque)
    waiting: Deque[ServingRequest] = field(default_factory=deque)
    preempted: Deque[ServingRequest] = field(default_factory=deque)
    running: List[ServingRequest] = field(default_factory=list)
    clock: float = 0.0
    reserved_bytes: int = 0
    peak_memory: int = 0
    prefill_time_s: float = 0.0
    decode_time_s: float = 0.0
    decode_step_tokens: int = 0

    @property
    def drained(self) -> bool:
        """True when no fed request still needs engine time."""
        return not (self.pending or self.waiting or self.preempted or self.running)

    @property
    def unfinished(self) -> List[ServingRequest]:
        """Requests still owed work, in feed order (migration candidates).

        Excludes requests already handed to another engine by a live
        migration: the receiving engine owns them now.
        """
        done = (RequestState.FINISHED, RequestState.REJECTED,
                RequestState.MIGRATED)
        return [r for r in self.requests if r.state not in done]


@dataclass(frozen=True)
class KvMigration:
    """One in-flight request's state, staged in host memory mid-migration.

    Produced by :meth:`ServingEngine.migrate_out` on the dismantled engine
    and consumed by :meth:`ServingEngine.migrate_in` on the destination.
    Carries the request's progress (so it resumes decoding where it left
    off), its measured history (arrival-anchored TTFT/latency and TBT
    samples survive the move), and its cost counters (the destination's
    result keeps the whole journey's preemption/swap/stall accounting).
    """

    query: Query
    tokens_generated: int
    prefill_remaining: int
    #: Materialised KV tokens travelling through host memory.
    kv_tokens: int
    #: Bytes of KV the destination swaps in (``kv_tokens`` worth).
    swap_bytes: int
    #: CXL time the source spent streaming not-yet-staged KV out; zero when
    #: the request was already swap-staged in host memory at migration.
    swap_out_s: float
    #: Absolute time the whole host copy is in place — the migration
    #: instant plus ``swap_out_s``, or later when an eviction's swap-out
    #: was still draining; the destination's swap-in serialises behind it.
    host_ready_s: float
    #: True when the chain's single destination swap-in was already priced
    #: by an earlier hop (the request re-migrated before it ever resumed).
    swap_in_priced: bool
    # ---- measured history carried across the move ----
    admitted_time_s: Optional[float]
    first_token_time_s: Optional[float]
    last_token_time_s: Optional[float]
    tbt_samples_s: Tuple[float, ...]
    # ---- cost counters carried across the move ----
    preempted_count: int
    num_swap_outs: int
    num_swap_ins: int
    swap_time_s: float
    recompute_tokens: int
    stall_s: float
    prefill_stall_s: float
    partial_evictions: int
    migrated_count: int
    migrated_kv_bytes: int
    #: Prefix-cache history travels too (the destination's result keeps
    #: the whole journey's hit accounting); the chain itself stays on the
    #: source pool — the destination receives the full context's KV and
    #: holds it privately.
    prefix_lookups: int = 0
    prefix_hits: int = 0
    prefix_hit_tokens: int = 0
    cow_blocks: int = 0


class ServingEngine:
    """Discrete-event continuous-batching scheduler over a CENT system.

    Parameters
    ----------
    system:
        The deployment to serve on; its :class:`PerformanceModel` (and its
        bounded block-cost cache) is shared with the engine.
    plan:
        Parallelisation plan.  Defaults to the system's throughput plan for
        the trace's longest context, matching ``run_inference``.
    max_batch_size:
        Optional cap on concurrently running requests; defaults to the
        plan's ``queries_in_flight`` (one request per pipeline slot).
    prefill_chunk_tokens:
        Prompt tokens processed per engine iteration across all prefilling
        requests (FCFS within the chunk).  Under the default
        prefill-priority scheduling it sets the granularity at which
        concurrent prefills interleave; with ``interleave_prefill=True`` it
        also bounds how long one iteration's prefill work can stall the
        co-scheduled decode step.
    interleave_prefill:
        ``False`` (default): prefill-priority scheduling — decode waits for
        the prefill backlog, and the static special case exactly reproduces
        the batch path.  ``True``: chunked-prefill scheduling — each
        iteration runs one prefill chunk *and* one decode step.
    context_step:
        Grid granularity (tokens) of the iteration cost model's block-cost
        interpolation.
    memory_capacity_bytes:
        Override of the system's memory capacity, for what-if studies and
        for tests that force admission pressure.
    admission:
        ``"reserve"`` (default) — the bit-exact legacy path: admit on the
        full-context KV reservation.  ``"paged"`` — admit on the current
        context with block-granular growth and preemption on pool
        exhaustion (see ``repro.kvstore``).
    kv_block_tokens:
        Tokens per KV block in paged mode (vLLM's ``block_size``).
    preemption_policy:
        Victim selection in paged mode: ``"lru"``, ``"priority"`` or
        ``"sla_deadline"``.
    preemption_restore:
        How a victim's KV comes back: ``"swap"`` (CXL-priced staging to
        host memory and back) or ``"recompute"`` (drop and re-prefill).
    preemption_partial_blocks:
        Block-granular swap: evict only this many of a victim's coldest
        prefix blocks per preemption (the victim stays partially resident
        and re-admits just the staged blocks), instead of its whole
        allocation.  ``None`` (default) keeps the legacy full eviction;
        requires ``preemption_restore="swap"``.
    prefix_sharing:
        Shared-prefix KV reuse in paged mode (``True`` by default).  A
        query tagged with ``prefix_id``/``prefix_tokens`` whose prefix
        chain is resident admits with only its suffix's blocks (plus one
        copy-on-write duplicate of a partial chain tail) and skips the
        shared prefix's prefill; a miss prefills normally and promotes its
        prefix blocks into a chain for later arrivals.  Preempted
        requests keep their chain pinned across the park, eviction ranks
        idle chains jointly with requests (coldest blocks pool-wide go
        first), and unreferenced chains are reclaimed under admission
        pressure.  A trace without prefix tags — and any
        ``prefix_sharing=False`` run — is served bit-exactly as before;
        reserve mode ignores prefix tags entirely.
    vectorize:
        ``True`` (default): price mixed batches with the cost model's
        vectorized entry points and fast-forward uneventful all-decode
        stretches in closed form.  ``False`` forces the scalar
        per-request, per-iteration loop.  Both paths are bit-exact with
        each other (the vectorized folds reproduce the scalar float
        arithmetic operation for operation); the knob exists for A/B
        speed measurement and as an escape hatch.
    """

    def __init__(
        self,
        system: CentSystem,
        plan: Optional[ParallelismPlan] = None,
        *,
        max_batch_size: Optional[int] = None,
        prefill_chunk_tokens: int = 512,
        interleave_prefill: bool = False,
        context_step: int = 256,
        memory_capacity_bytes: Optional[int] = None,
        admission: str = "reserve",
        kv_block_tokens: int = 16,
        preemption_policy: str = "lru",
        preemption_restore: str = "swap",
        preemption_partial_blocks: Optional[int] = None,
        prefix_sharing: bool = True,
        vectorize: bool = True,
    ) -> None:
        if max_batch_size is not None and max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if prefill_chunk_tokens <= 0:
            raise ValueError("prefill_chunk_tokens must be positive")
        if context_step <= 0:
            raise ValueError("context_step must be positive")
        if admission not in ADMISSION_MODES:
            raise ValueError(
                f"unknown admission mode {admission!r}; choose from {ADMISSION_MODES}"
            )
        if kv_block_tokens <= 0:
            raise ValueError("kv_block_tokens must be positive")
        # Fail fast on bad policy/restore/partial knobs with the policy's
        # own validation (one definition of the valid sets and messages).
        PreemptionPolicy(preemption_policy, restore=preemption_restore,
                         partial_blocks=preemption_partial_blocks)
        self.system = system
        self.model = system.model
        self.plan = plan
        self.max_batch_size = max_batch_size
        self.prefill_chunk_tokens = prefill_chunk_tokens
        self.interleave_prefill = interleave_prefill
        self.context_step = context_step
        self.memory_capacity_bytes = (
            memory_capacity_bytes if memory_capacity_bytes is not None
            else system.memory_capacity_bytes
        )
        if self.memory_capacity_bytes <= 0:
            raise ValueError("memory capacity must be positive")
        self.admission = admission
        self.kv_block_tokens = kv_block_tokens
        self.preemption_policy = preemption_policy
        self.preemption_restore = preemption_restore
        self.preemption_partial_blocks = preemption_partial_blocks
        self.prefix_sharing = prefix_sharing
        self.vectorize = vectorize
        self._profile = ModelMemoryProfile(self.model)
        # _setup results keyed by the servable context length (the only
        # trace-dependent input) plus the engine knobs that feed _setup:
        # repeated runs and capacity estimates over same-shaped traces reuse
        # plan validation and the warmed-up iteration cost model instead of
        # redoing both, while mutating e.g. ``max_batch_size`` between runs
        # still takes effect.  FIFO-bounded like the block-cost cache below
        # it, so sweeps over many trace shapes cannot grow it forever.
        self._setup_cache: Dict[tuple, Tuple[ParallelismPlan, IterationCostModel, int]] = {}
        self._setup_cache_entries = 8

    # ------------------------------------------------------------------ planning

    def _servable_context(self, trace: Sequence[Query], dp_replicas: int = 1) -> int:
        """Largest context among the queries the engine could ever admit.

        Requests beyond the model's context limit — or whose KV cache alone
        exceeds the post-weight memory budget — are rejected at admission,
        so they must not drive planning or plan validation either.
        ``dp_replicas`` matches admission's weight accounting when the plan
        is already known; with a yet-unknown plan the single-replica budget
        is the upper bound of what any plan could admit.
        """
        kv_budget = (self.memory_capacity_bytes
                     - self._profile.parameter_bytes * dp_replicas)
        totals = np.fromiter((q.total_context for q in trace),
                             dtype=np.int64, count=len(trace))
        servable = totals[self._servable_mask(totals, kv_budget)]
        return int(servable.max()) if servable.size else self.model.max_context

    def _is_servable(self, query: Query, kv_budget: int) -> bool:
        """Whether admission could ever accept ``query`` under ``kv_budget``."""
        if query.total_context > self.model.max_context:
            return False
        if kv_budget <= 0:
            # Weights alone overflow; run() raises the precise error.
            return True
        if self.admission == "paged":
            pool = self._make_pool(kv_budget)
            return pool.blocks_for(query.total_context) <= pool.num_blocks
        return self._kv_reservation_bytes(query.total_context) <= kv_budget

    def _servable_mask(self, total_contexts: np.ndarray, kv_budget: int) -> np.ndarray:
        """Vectorized :meth:`_is_servable` over an array of total contexts.

        One block pool (paged) or one reservation formula (reserve) prices
        the whole batch, instead of a per-query pool construction.
        """
        mask = total_contexts <= self.model.max_context
        if kv_budget <= 0:
            # Weights alone overflow; run() raises the precise error.
            return mask
        if self.admission == "paged":
            pool = self._make_pool(kv_budget)
            blocks = -(-total_contexts // pool.block_tokens)
            return mask & (blocks <= pool.num_blocks)
        # Same operation order as _kv_reservation_bytes: the exact integer
        # byte count first, then one float scale and truncation.
        per_query = total_contexts * self._profile.kv_cache_bytes_per_token()
        reservations = np.trunc(per_query * self.system.config.kv_occupancy)
        return mask & (reservations <= kv_budget)

    def _setup(self, trace: Sequence[Query]):
        """Shared run/estimate setup: (plan, iteration cost model, slots).

        Cached per (servable context length, engine knobs), so ``run``
        after ``estimated_capacity_qps`` (or repeated runs in a sweep)
        skips the plan search, capacity validation and cost-model warm-up,
        while reconfiguring the engine between runs still takes effect.
        """
        if not trace:
            raise ValueError("the trace must contain at least one query")
        if self.plan is None:
            context = self._servable_context(trace)
        else:
            context = self._servable_context(trace, dp_replicas=self.plan.dp_replicas)
        key = (context, self.plan, self.max_batch_size, self.context_step,
               self.memory_capacity_bytes)
        if key in self._setup_cache:
            return self._setup_cache[key]
        if self.plan is None:
            plan = self.system.throughput_plan(context_length=context)
        else:
            plan = self.plan
        slots = plan.queries_in_flight
        if self.max_batch_size is not None:
            slots = min(slots, self.max_batch_size)
        if self.plan is not None:
            # Mirror the static path: an explicit plan must place the model
            # (weights plus the in-flight KV caches) on the devices.  A
            # max_batch_size below the plan's slot count proportionally
            # shrinks the KV footprint the devices must hold.
            occupancy = (self.system.config.kv_occupancy
                         * slots / plan.queries_in_flight)
            validate_capacity(self.model, plan, context,
                              geometry=self.system.config.geometry,
                              kv_occupancy=occupancy)
        cost = IterationCostModel(
            self.system.performance, self.model, plan, context_step=self.context_step
        )
        entry = (plan, cost, slots)
        evict_to_bound(self._setup_cache, self._setup_cache_entries)
        self._setup_cache[key] = entry
        return entry

    def _kv_reservation_bytes(self, context_length: int) -> int:
        """KV bytes one admitted request reserves for its full context.

        Scaled by ``kv_occupancy`` exactly like the static path's capacity
        validation, so serving and closed-form feasibility agree on the same
        config; planning (:meth:`_servable_context`) and admission share this
        single definition.
        """
        return int(self._profile.kv_cache_bytes_per_query(context_length)
                   * self.system.config.kv_occupancy)

    def _kv_budget_bytes(self, plan: ParallelismPlan) -> int:
        weight_bytes = self._profile.parameter_bytes * plan.dp_replicas
        budget = self.memory_capacity_bytes - weight_bytes
        if budget <= 0:
            raise MemoryError(
                f"{self.model.name} weights ({weight_bytes / 2**30:.1f} GiB x "
                f"{plan.dp_replicas} replicas) exceed the "
                f"{self.memory_capacity_bytes / 2**30:.1f} GiB capacity"
            )
        return budget

    def _make_pool(self, kv_budget: int) -> BlockPool:
        """The paged-mode block pool over the post-weight KV budget."""
        return BlockPool(
            kv_budget,
            self._profile.kv_cache_bytes_per_token(),
            block_tokens=self.kv_block_tokens,
            occupancy=self.system.config.kv_occupancy,
        )

    # ------------------------------------------------------------------ serving

    def run(
        self,
        trace: Sequence[Query],
        *,
        sla_latency_s: Optional[float] = None,
        telemetry: Optional[TraceRecorder] = None,
    ) -> ServingResult:
        """Serve ``trace`` to completion and return measured statistics."""
        if sla_latency_s is not None and sla_latency_s <= 0:
            raise ValueError("the SLA latency bound must be positive")
        run = self.simulate(trace, sla_latency_s=sla_latency_s,
                            telemetry=telemetry)
        return aggregate_serving_result(
            run.requests,
            model_name=self.model.name,
            plan_name=run.plan.name,
            makespan_s=run.makespan_s,
            prefill_time_s=run.prefill_time_s,
            decode_time_s=run.decode_time_s,
            decode_step_tokens=run.decode_step_tokens,
            peak_memory_bytes=run.peak_memory_bytes,
            memory_capacity_bytes=run.memory_capacity_bytes,
            sla_latency_s=sla_latency_s,
            queue_depth_timeline=run.queue_depth_timeline,
        )

    def simulate(
        self,
        trace: Sequence[Query],
        *,
        sla_latency_s: Optional[float] = None,
        telemetry: Optional[TraceRecorder] = None,
    ) -> EngineRun:
        """Run the event loop over ``trace`` and return per-request outcomes.

        The building block of :meth:`run` (which folds the outcome into a
        :class:`ServingResult`) and of ``repro.cluster`` (which serves one
        trace per replica and re-attributes requests to tenants).
        ``sla_latency_s`` only informs the ``sla_deadline`` preemption
        policy's notion of slack; it never gates admission.
        ``telemetry`` attaches a :class:`~repro.telemetry.TraceRecorder`
        (or one of its scopes) that the run emits lifecycle events into.

        Equivalent to :meth:`begin` plus one unbounded :meth:`advance`;
        callers that need epoch segmentation use those directly.
        """
        return self.advance(self.begin(trace, sla_latency_s=sla_latency_s,
                                       telemetry=telemetry))

    # ---------------------------------------------------------- segmented runs

    def begin(
        self,
        trace: Sequence[Query],
        *,
        sla_latency_s: Optional[float] = None,
        planning_trace: Optional[Sequence[Query]] = None,
        telemetry: Optional["TraceRecorder | ScopedRecorder"] = None,
    ) -> EngineState:
        """Set up a resumable run and enqueue ``trace`` (which may be empty).

        ``planning_trace`` decouples plan search/validation from the initial
        arrivals: the closed-loop cluster controller plans each replica
        against every query its tenants *might* route to it, then feeds the
        actually-routed arrivals epoch by epoch through :meth:`extend`.
        When omitted, the plan comes from ``trace`` itself (the
        :meth:`simulate` path).

        ``telemetry`` enables tracing for this state: pass a whole
        :class:`~repro.telemetry.TraceRecorder` (the run records into a
        fresh ``engine`` scope) or a specific
        :class:`~repro.telemetry.ScopedRecorder` (the cluster controller
        names one scope per replica).  The recorder belongs to the *state*,
        never the engine, so cluster-shared engines stay reentrant.
        """
        queries = list(trace)
        planning = list(planning_trace) if planning_trace is not None else queries
        plan, cost, slots = self._setup(planning)
        kv_budget = self._kv_budget_bytes(plan)
        weight_bytes = self.memory_capacity_bytes - kv_budget
        paged = self.admission == "paged"

        recorder: Optional[ScopedRecorder] = None
        if telemetry is not None:
            recorder = (telemetry if isinstance(telemetry, ScopedRecorder)
                        else telemetry.scope("engine"))

        allocator: Optional[KvAllocator] = None
        policy: Optional[PreemptionPolicy] = None
        if paged:
            allocator = KvAllocator(self._make_pool(kv_budget),
                                    recorder=recorder)
            if recorder is not None:
                # Static pool geometry, once per run: post-hoc consumers
                # (the attribution layer's occupancy timeline) turn the
                # kv.* events' free_blocks into fractions with it.
                recorder.event("kv.pool", recorder.now_s,
                               total_blocks=allocator.pool.num_blocks,
                               block_bytes=allocator.pool.block_bytes)
            policy = PreemptionPolicy(
                self.preemption_policy,
                restore=self.preemption_restore,
                sla_latency_s=sla_latency_s,
                partial_blocks=self.preemption_partial_blocks,
            )

        state = EngineState(
            plan=plan,
            cost=cost,
            slots=slots,
            kv_budget=kv_budget,
            weight_bytes=weight_bytes,
            paged=paged,
            planned_context=self._planned_context(planning),
            sla_latency_s=sla_latency_s,
            allocator=allocator,
            policy=policy,
            bytes_per_token=self._profile.kv_cache_bytes_per_token(),
            # The paged pool is sized to the effective capacity the reserve
            # path's occupancy-discounted reservations assume (budget /
            # kv_occupancy in block bytes); reported memory applies the same
            # discount, so peak_memory_bytes stays within the physical
            # capacity in both admission modes.
            kv_scale=self.system.config.kv_occupancy if paged else 1.0,
            # Weights are resident for the whole run (feasibility checked
            # above), even if every request ends up rejected.
            peak_memory=weight_bytes,
            recorder=recorder,
        )
        self.extend(state, queries)
        return state

    def _planned_context(self, planning: Sequence[Query]) -> int:
        """The context length the state's plan was chosen and validated for."""
        if self.plan is None:
            return self._servable_context(planning)
        return self._servable_context(planning, dp_replicas=self.plan.dp_replicas)

    def extend(
        self, state: EngineState, queries: Sequence[Query]
    ) -> List[ServingRequest]:
        """Feed new arrivals into a (possibly mid-run) state.

        Returns the created requests in feed order.  Queries the engine can
        never serve are marked ``REJECTED`` exactly as at :meth:`begin`; a
        servable query longer than the state's planned context is a caller
        error (its cost would extrapolate past the validated plan), raised
        rather than silently mispriced.
        """
        new = [ServingRequest(len(state.requests) + i, q, columns=state.columns)
               for i, q in enumerate(queries)]
        state.requests.extend(new)
        if not new:
            return new
        servable = self._servable_mask(
            np.fromiter((q.total_context for q in queries),
                        dtype=np.int64, count=len(new)),
            state.kv_budget,
        )
        batch = sorted(zip(new, servable.tolist(), strict=True),
                       key=lambda pair: pair[0].arrival_time_s)
        accepted: List[ServingRequest] = []
        rec = state.recorder
        for request, ok in batch:
            # A request whose KV cache alone can never fit (or whose context
            # exceeds the model) is refused outright rather than queued.
            if not ok:
                request.state = RequestState.REJECTED
                if rec is not None:
                    rec.event("request.rejected", request.arrival_time_s,
                              request.request_id)
                continue
            if rec is not None:
                rec.event("request.queued", request.arrival_time_s,
                          request.request_id, **request.trace_args())
            if request.query.total_context > state.planned_context:
                raise ValueError(
                    f"query context {request.query.total_context} exceeds the "
                    f"planned context {state.planned_context}; pass a "
                    "planning_trace covering every query this state may serve"
                )
            if not state.paged:
                request.kv_reserved_bytes = \
                    self._kv_reservation_bytes(request.query.total_context)
            accepted.append(request)
        # ``pending`` is kept arrival-sorted as an invariant (it is consumed
        # from the left and extended with sorted batches), so only the batch
        # boundary needs checking: later segments usually append strictly
        # later arrivals, and the O(n log n) re-sort runs — and is counted —
        # only for a genuinely out-of-order feed.
        pending = state.pending
        if accepted:
            in_order = (not pending
                        or accepted[0].arrival_time_s >= pending[-1].arrival_time_s)
            pending.extend(accepted)
            if not in_order:
                state.pending = deque(
                    sorted(pending, key=lambda r: r.arrival_time_s))
                state.pending_resorts += 1
        return new

    def snapshot(self, state: EngineState) -> EngineRun:
        """The cumulative :class:`EngineRun` view of ``state`` so far."""
        return EngineRun(
            plan=state.plan,
            requests=state.requests,
            makespan_s=state.clock,
            prefill_time_s=state.prefill_time_s,
            decode_time_s=state.decode_time_s,
            decode_step_tokens=state.decode_step_tokens,
            peak_memory_bytes=state.peak_memory,
            memory_capacity_bytes=self.memory_capacity_bytes,
            recorder=state.recorder,
            queue_samples=state.queue_samples,
            evictions=state.evictions,
        )

    def advance(self, state: EngineState, until_s: Optional[float] = None) -> EngineRun:
        """Run the event loop until drained (or until the clock passes
        ``until_s``) and return the cumulative outcome so far.

        With ``until_s`` the loop stops *before* starting an iteration at or
        beyond the bound (an iteration underway may overshoot it: engine
        iterations are atomic), leaving a state that :meth:`extend` and a
        later ``advance`` continue seamlessly.  ``until_s=None`` drains the
        state completely and reproduces the unsegmented engine bit-exactly.
        """
        plan, cost, slots = state.plan, state.cost, state.slots
        kv_budget = state.kv_budget
        weight_bytes = state.weight_bytes
        paged = state.paged
        allocator = state.allocator
        policy = state.policy
        pending = state.pending
        waiting = state.waiting
        preempted = state.preempted
        running = state.running
        bytes_per_token = state.bytes_per_token
        kv_scale = state.kv_scale
        # With tracing on the timeline resolves to the recorder's queue
        # signal; either way the loop below appends to a plain list.
        rec = state.recorder
        queue_depth_timeline = state.queue_depth_timeline
        evictions = state.evictions
        clock = state.clock
        cols = state.columns
        vectorize = self.vectorize
        prefill_chunk_tokens = self.prefill_chunk_tokens
        interleave_prefill = self.interleave_prefill
        prefix_sharing = self.prefix_sharing and paged
        # Row indices of ``running`` in the columnar store, rebuilt lazily:
        # every site that mutates ``running`` flips the dirty flag.
        rows_cache: Optional[np.ndarray] = None
        rows_dirty = True

        # ------------------------------------------------ paged-mode helpers

        def log_preemption(victim: ServingRequest, kind: str,
                           **details) -> None:
            """Record one eviction exactly once: a plain ``evictions`` entry
            when tracing is off, a typed ``serving.preempt`` event (from
            which ``preemption_log`` is derived) when it is on."""
            if rec is None:
                evictions.append((clock, victim.request_id))
            else:
                rec.event(
                    "serving.preempt", clock, victim.request_id,
                    kind=kind, **details)

        def preempt(victim: ServingRequest) -> None:
            """Evict ``victim``: free its blocks, set up its restore path."""
            nonlocal rows_dirty
            rows_dirty = True
            if victim.restore_remaining > 0:
                # Re-evicted mid-rebuild: the aborted rebuild was stall
                # time, and the unexecuted tail of the earlier recompute
                # charge never ran — refund it before re-charging below.
                aborted_s = clock - victim.restore_started_s
                victim.stall_s += aborted_s
                if victim.first_token_time_s is None:
                    victim.prefill_stall_s += aborted_s
                victim.recompute_tokens -= victim.restore_remaining
                victim.restore_remaining = 0
                victim.restore_total = 0
            tokens_with_kv = victim.kv_tokens
            context = victim.context_length
            # A shared-prefix reader keeps its chain pinned across the park
            # (keep_prefix): its shared blocks never leave the device, so
            # they neither travel on a swap nor rebuild on a recompute.
            shared_tokens = (allocator.shared_tokens(victim.request_id)
                             if prefix_sharing else 0)
            allocator.release(victim.request_id, keep_prefix=True)
            victim.kv_tokens = 0
            victim.preempted_count += 1
            victim.preempt_time_s = clock
            victim.state = RequestState.PREEMPTED
            victim.restore_ready_s = 0.0
            victim.restore_via = policy.restore
            if policy.restore == "swap":
                # Only materialised KV travels; the prompt's still-unwritten
                # tail of a prefilling victim does not, nor do the chain's
                # device-resident shared blocks.
                victim.resume_kv_tokens = tokens_with_kv
                victim.swap_bytes = max(context - shared_tokens, 0) * bytes_per_token
                out_s = kv_swap_time_s(victim.swap_bytes, self.system.config.link,
                                       pp_stages=plan.pp_stages)
                victim.num_swap_outs += 1
                victim.swap_time_s += out_s
                victim.swap_done_s = clock + out_s
            elif victim.prefill_remaining > 0:
                # Recompute a half-prefilled victim: rebuild the lost prefix
                # through the restore path, then let the prompt's tail
                # continue; the rebuild span counts as stall exactly like a
                # decoding victim's.
                prefix = victim.query.prompt_tokens - victim.prefill_remaining
                rebuild = max(prefix - shared_tokens, 0)
                victim.recompute_tokens += rebuild
                victim.restore_remaining = rebuild
                victim.restore_total = rebuild
                victim.resume_kv_tokens = victim.query.prompt_tokens
            else:
                # Recompute a decoding victim by re-prefilling its context.
                rebuild = max(context - shared_tokens, 0)
                victim.recompute_tokens += rebuild
                victim.restore_remaining = rebuild
                victim.restore_total = rebuild
                victim.resume_kv_tokens = context
            running.remove(victim)
            preempted.append(victim)
            log_preemption(victim, "full", restore=policy.restore,
                           kv_tokens=tokens_with_kv, context=context)

        def stage_out(victim: ServingRequest, num_blocks: int, *,
                      park: bool) -> None:
            """Block-granular eviction: stage the victim's coldest prefix
            blocks to host memory, keeping the rest device-resident.

            ``park=True`` takes a runner out of the batch (its restore is a
            small swap-in of just the staged blocks instead of
            re-allocating — and re-transferring — the whole context).
            ``park=False`` deepens the eviction of an *already parked*
            victim when no runner is left to evict: the extra bite joins
            the same parked episode — its restore grows by the staged
            blocks and its stall clock keeps running from the original
            eviction — instead of deadlocking the survivor's growth.
            """
            nonlocal rows_dirty
            staged = allocator.evict_blocks(victim.request_id, num_blocks)
            victim.swapped_kv_blocks += staged
            victim.partial_evictions += 1
            victim.preempted_count += 1
            bytes_out = staged * allocator.pool.block_bytes
            out_s = kv_swap_time_s(bytes_out, self.system.config.link,
                                   pp_stages=plan.pp_stages)
            victim.num_swap_outs += 1
            victim.swap_time_s += out_s
            if park:
                victim.preempt_time_s = clock
                victim.state = RequestState.PREEMPTED
                victim.restore_ready_s = 0.0
                victim.restore_via = "swap"
                # The allocation survives: resume re-admits the staged
                # blocks and the KV token count is unchanged.
                victim.resume_kv_tokens = victim.kv_tokens
                victim.swap_bytes = bytes_out
                victim.swap_done_s = clock + out_s
                running.remove(victim)
                rows_dirty = True
                preempted.append(victim)
            else:
                victim.swap_bytes += bytes_out
                # The fresh transfer queues behind any still-draining one.
                victim.swap_done_s = max(victim.swap_done_s, clock) + out_s
            log_preemption(victim, "partial", staged_blocks=staged,
                           park=park)

        def resume(request: ServingRequest) -> None:
            """Bring a preempted request back; blocks are already allocated."""
            via = request.restore_via
            request.kv_tokens = request.resume_kv_tokens
            before_first = request.first_token_time_s is None
            parked_s = clock - request.preempt_time_s
            request.stall_s += parked_s
            if before_first:
                request.prefill_stall_s += parked_s
            if request.restore_via == "swap":
                in_s = kv_swap_time_s(request.swap_bytes, self.system.config.link,
                                      pp_stages=plan.pp_stages)
                request.num_swap_ins += 1
                request.swap_time_s += in_s
                # Swap-in serialises behind any still-draining swap-out.
                request.restore_ready_s = max(clock, request.swap_done_s) + in_s
                request.stall_s += request.restore_ready_s - clock
                if before_first:
                    request.prefill_stall_s += request.restore_ready_s - clock
            request.restore_via = ""
            request.migration_pending = False
            if request.restore_remaining > 0:
                # Recompute restore: the re-prefill ahead still keeps the
                # request off decode, so its span counts as stall too
                # (accrued when the rebuild completes).
                request.restore_started_s = clock
            rebuilding = request.prefill_remaining > 0 or request.restore_remaining > 0
            request.state = RequestState.PREFILL if rebuilding else RequestState.DECODE
            if rec is not None:
                rec.event("request.resume", clock, request.request_id,
                          via=via, ready_s=request.restore_ready_s,
                          rebuild_tokens=request.restore_remaining)

        def grow_or_preempt(candidates: List[ServingRequest]) -> List[ServingRequest]:
            """Grow each decodable request's KV to its context, evicting on
            pool exhaustion; returns the requests that may decode now."""
            batch: List[ServingRequest] = []
            for request in candidates:
                if request.state is RequestState.PREEMPTED:
                    continue  # evicted by an earlier candidate's growth
                target = max(request.context_length, request.kv_tokens)
                grown = allocator.grow(request.request_id, target)
                partial = policy.partial_blocks
                while not grown:
                    victims = [r for r in running
                               if r is not request and r.restore_ready_s <= clock]
                    kind, victim = policy.select_eviction(
                        victims,
                        allocator.evictable_prefixes() if prefix_sharing else (),
                        clock)
                    if kind == "chain":
                        # The coldest blocks pool-wide belong to an idle
                        # (refcount-zero) shared prefix: reclaim it before
                        # preempting any live request.
                        allocator.evict_prefix(victim.key)
                    elif victim is not None:
                        # Block-granular swap: stage only the victim's
                        # coldest prefix blocks when it holds more than
                        # that; a victim at or below the partial size is
                        # evicted whole.
                        if (partial is not None
                                and allocator.holds_resident_blocks(
                                    victim.request_id) > partial):
                            stage_out(victim, partial, park=True)
                        else:
                            preempt(victim)
                        if victim in batch:
                            batch.remove(victim)
                    elif partial is not None:
                        # No runner left to evict; free blocks from a
                        # parked, still partially-resident victim instead
                        # of deadlocking the survivor's growth.
                        parked = [r for r in preempted
                                  if allocator.holds_resident_blocks(
                                      r.request_id) > 0]
                        victim = policy.select_victim(parked, clock)
                        if victim is None:
                            break
                        stage_out(victim, partial, park=False)
                    else:
                        break
                    grown = allocator.grow(request.request_id, target)
                if grown:
                    request.kv_tokens = target
                    batch.append(request)
            return batch

        def admit_head() -> bool:
            """Allocate the waiting head's prompt blocks, prefix-aware.

            A resident chain for the head's prefix hash admits it with only
            the suffix's blocks and pre-completes the shared prefix's
            prefill (at least one prompt token always remains, so the
            first-token path is untouched); a miss allocates the full
            prompt and marks the request to promote its prefix blocks into
            a chain once its prefill completes.
            """
            head = waiting[0]
            query = head.query
            key = query.prefix_key if prefix_sharing else None
            if key is None:
                return allocator.allocate(head.request_id, query.prompt_tokens)
            if not allocator.allocate(head.request_id, query.prompt_tokens,
                                      prefix=key, now_s=clock):
                return False
            head.prefix_lookups += 1
            if allocator.shared_key(head.request_id) is not None:
                head.prefix_hits += 1
                skip = min(query.prefix_tokens, query.prompt_tokens - 1)
                head.prefix_hit_tokens += skip
                head.prefill_remaining -= skip
                if query.prefix_tokens % allocator.pool.block_tokens:
                    head.cow_blocks += 1
            else:
                head.prefix_pending = True
            return True

        # ------------------------------------------------------- event loop

        reserved_bytes = state.reserved_bytes
        peak_memory = state.peak_memory
        prefill_time_s = state.prefill_time_s
        decode_time_s = state.decode_time_s
        decode_step_tokens = state.decode_step_tokens

        while pending or waiting or preempted or running:
            if until_s is not None and clock >= until_s:
                break
            while pending and pending[0].arrival_time_s <= clock:
                waiting.append(pending.popleft())

            if rec is not None:
                # Passive emitters (the KV allocator) stamp their events
                # with the engine clock; refresh it once per loop top.
                rec.now_s = clock

            n_running_top = len(running)
            if paged:
                # Preempted requests resume first (eviction-order-first) so
                # fresh admissions cannot starve a victim's restore.  A
                # partially-resident victim re-admits just its staged
                # blocks; everyone else re-allocates from scratch.  Both
                # grants are all-or-nothing, so a failed resume under
                # pressure leaves no partially-granted blocks behind — and
                # an unresumable head is skipped, not waited on: a parked
                # victim's residency (or a large migrated-in allocation)
                # must never wedge the queue while a smaller one fits.
                index = 0
                while index < len(preempted) and len(running) < slots:
                    request = preempted[index]
                    if request.swapped_kv_blocks:
                        resumable = allocator.readmit(request.request_id)
                    else:
                        resumable = allocator.allocate(
                            request.request_id, request.resume_kv_tokens,
                            now_s=clock)
                    if not resumable:
                        index += 1
                        continue
                    request.swapped_kv_blocks = 0
                    del preempted[index]
                    resume(request)
                    running.append(request)
                # Paged admission: blocks for the *current* need (the
                # prompt), not the full future context — and only the
                # suffix's share of it on a prefix-cache hit.
                while (not preempted and waiting and len(running) < slots
                       and admit_head()):
                    request = waiting.popleft()
                    request.kv_tokens = request.query.prompt_tokens
                    request.state = RequestState.PREFILL
                    request.admitted_time_s = clock
                    if rec is not None:
                        rec.event("request.admitted", clock,
                                  request.request_id,
                                  kv_tokens=request.kv_tokens)
                    running.append(request)
                peak_memory = max(
                    peak_memory,
                    weight_bytes + int(allocator.allocated_bytes * kv_scale))
            else:
                # Migrated-in requests resume first, re-booking their
                # full-context reservation (migration is the only way a
                # request reaches the preempted queue in reserve mode).
                # As in the paged loop above, an unfit head is skipped so a
                # large migrated allocation cannot wedge the queue while a
                # smaller one fits.
                index = 0
                while index < len(preempted) and len(running) < slots:
                    request = preempted[index]
                    if reserved_bytes + request.kv_reserved_bytes > kv_budget:
                        index += 1
                        continue
                    del preempted[index]
                    resume(request)
                    reserved_bytes += request.kv_reserved_bytes
                    running.append(request)
                # FCFS admission while a slot and the KV budget allow.
                while (not preempted and waiting and len(running) < slots
                       and reserved_bytes + waiting[0].kv_reserved_bytes <= kv_budget):
                    request = waiting.popleft()
                    request.state = RequestState.PREFILL
                    request.admitted_time_s = clock
                    reserved_bytes += request.kv_reserved_bytes
                    if rec is not None:
                        rec.event("request.admitted", clock,
                                  request.request_id,
                                  kv_reserved_bytes=request.kv_reserved_bytes)
                    running.append(request)
                peak_memory = max(peak_memory, weight_bytes + reserved_bytes)
            if len(running) != n_running_top:
                # Admission only appends, so a length change is the exact
                # signal that the cached row gather went stale.
                rows_dirty = True

            sample = (clock, len(waiting) + len(preempted), len(running))
            # An unsegmented run never repeats a sample (the clock strictly
            # advances between loop tops); resuming a segment would, so the
            # guard keeps segmented timelines identical to unsegmented ones.
            if not queue_depth_timeline or queue_depth_timeline[-1] != sample:
                queue_depth_timeline.append(sample)

            if not running:
                if not pending:
                    # Nothing running, nothing arriving, and the queued
                    # backlog could not be (re)admitted this instant.
                    # Mid-segment the next extend may unblock it; with the
                    # input drained it never will.
                    if until_s is not None:
                        break
                    raise RuntimeError(
                        "serving engine stalled with queued requests but no "
                        "admissible work; this is a bug"
                    )
                # Idle: jump to the next arrival (or stop at the segment
                # bound; a later extend may add earlier work).
                if until_s is not None and pending[0].arrival_time_s >= until_s:
                    break
                clock = max(clock, pending[0].arrival_time_s)
                continue

            # ---------------------------------------------- build one iteration
            # Default (prefill-priority, vLLM's stock scheduler): an
            # iteration runs either a bounded chunk of prefill work or one
            # decode step for the whole running batch; decode stalls until
            # the prefill backlog drains, and the stall surfaces in the
            # measured time-between-tokens.  The static special case
            # (everything prefilled, then lockstep decoding) thereby
            # reproduces the closed-form batch decode throughput.  With
            # ``interleave_prefill`` (chunked-prefill mode) the iteration
            # runs the prefill chunk *and* the decode step together, so the
            # stall is bounded by the chunk at the price of stretching the
            # co-scheduled decode iteration.  Recompute restores share the
            # prefill chunk budget: rebuilding a victim's KV is prompt work.
            prefill_work: List[tuple] = []
            all_decode_ready = False
            rows: Optional[np.ndarray] = None
            if vectorize:
                # One gather per column replaces the per-request property
                # walk of the scalar construction below; the resulting
                # prefill_work/decode_batch lists are identical.
                if rows_dirty:
                    rows_cache = np.fromiter((r._row for r in running),
                                             dtype=np.intp,
                                             count=len(running))
                    rows_dirty = False
                rows = rows_cache
                pre = cols.prefill_remaining[rows]
                res = cols.restore_remaining[rows]
                ready = cols.restore_ready_s[rows] <= clock
                decode_ready = ready & (pre == 0) & (res == 0)
                all_decode_ready = bool(decode_ready.all())
                if all_decode_ready:
                    decode_batch = list(running)
                else:
                    needy = np.flatnonzero(ready & ((pre > 0) | (res > 0)))
                    chunk_budget = prefill_chunk_tokens
                    if needy.size:
                        pre_list = pre.tolist()
                        res_list = res.tolist()
                        for index in needy.tolist():
                            if chunk_budget <= 0:
                                break
                            remaining = (res_list[index]
                                         if res_list[index] > 0
                                         else pre_list[index])
                            tokens = min(remaining, chunk_budget)
                            prefill_work.append((running[index], tokens))
                            chunk_budget -= tokens
                    if prefill_work and not interleave_prefill:
                        decode_batch = []
                    else:
                        decode_batch = [
                            running[i]
                            for i in np.flatnonzero(decode_ready).tolist()
                        ]
            else:
                chunk_budget = prefill_chunk_tokens
                for request in running:
                    if chunk_budget <= 0:
                        break
                    if request.restore_ready_s > clock:
                        continue  # swap-in still in flight
                    # A rebuild (lost prefix or whole context) streams before
                    # any still-pending prompt tail.
                    remaining = (request.restore_remaining
                                 if request.restore_remaining > 0
                                 else request.prefill_remaining)
                    if remaining <= 0:
                        continue
                    tokens = min(remaining, chunk_budget)
                    prefill_work.append((request, tokens))
                    chunk_budget -= tokens
                if prefill_work and not interleave_prefill:
                    decode_batch: List[ServingRequest] = []
                else:
                    decode_batch = [r for r in running
                                    if r.prefill_remaining == 0
                                    and r.restore_remaining == 0
                                    and r.restore_ready_s <= clock]

            # ------------------------------------- event-horizon fast-forward
            # When every running request is decode-ready the engine is in
            # its dominant large-trace regime: iterations that do nothing
            # but grow each context by one token.  Advance as many of them
            # as provably hold no event — a completion, a block exhaustion,
            # an admission-changing arrival, or the segment bound — in one
            # closed-form step whose float arithmetic replays the scalar
            # loop operation for operation (see decode_span_s).
            if all_decode_ready:
                gen = cols.tokens_generated[rows]
                ctx0 = cols.prompt_tokens[rows] + gen
                remaining_tokens = cols.decode_tokens[rows] - gen
                # No request may complete mid-window (its slot would free),
                # so the first completion bounds it; the span-matrix cap
                # only splits a longer window, which prices identically.
                horizon = int(remaining_tokens.min())
                k = min(horizon, 4096)
                kv0 = held = None
                if paged:
                    kv0 = cols.kv_tokens[rows]
                    block_tokens = allocator.pool.block_tokens
                    held = -(-kv0 // block_tokens)
                    free_blocks = allocator.pool.free_blocks

                    def block_demand(steps: int) -> int:
                        """Blocks the whole batch must acquire to decode
                        ``steps`` iterations (growth targets are monotone,
                        so only the final target matters)."""
                        target = np.maximum(ctx0 + (steps - 1), kv0)
                        need = -(-target // block_tokens) - held
                        return int(np.maximum(need, 0).sum())

                    if block_demand(k) > free_blocks:
                        # Largest step count the free pool still covers;
                        # zero sends this iteration to the scalar path,
                        # whose growth loop evicts a victim.
                        low = 1 if block_demand(1) <= free_blocks else 0
                        high = k
                        while low and high - low > 1:
                            mid = (low + high) // 2
                            if block_demand(mid) <= free_blocks:
                                low = mid
                            else:
                                high = mid
                        k = low
                if k > 0:
                    # An iteration runs only while its loop-top clock stays
                    # under the segment bound — and under the next arrival
                    # when admission could accept it.  With a full batch, a
                    # non-empty waiting/preempted queue, or (FCFS) a blocked
                    # head, admission stays blocked for the whole window
                    # (reservations are constant and free blocks only
                    # shrink), so arrivals merely cross into the backlog.
                    bound = until_s
                    admission_open = (len(running) < slots
                                      and not waiting and not preempted)
                    if admission_open and pending:
                        arrival = pending[0].arrival_time_s
                        bound = (arrival if bound is None
                                 else min(bound, arrival))
                    if bound is not None and k > 1:
                        # Estimate how many iterations fit under the bound
                        # from the first iteration's span and shrink the
                        # span matrix before pricing it; an off estimate
                        # merely splits the window across loop trips, which
                        # prices identically (the fold resumes from the
                        # same float clock).
                        span0 = float(cost.decode_span_s(ctx0, 1)[0])
                        if span0 > 0.0:
                            k_cap = int((bound - clock) / span0) + 2
                            if k_cap < k:
                                k = max(k_cap, 1)
                    span = cost.decode_span_s(ctx0, k)
                    # clocks[j] is the clock after j window iterations; the
                    # fold seeds the running clock so each entry equals the
                    # scalar loop's sequence of += operations exactly.
                    clocks = np.empty(k + 1)
                    clocks[0] = clock
                    clocks[1:] = span
                    clocks = clocks.cumsum()
                    k_eff = k
                    if bound is not None:
                        k_eff = min(k_eff, int(np.searchsorted(
                            clocks[:k], bound, side="left")))
                else:
                    k_eff = 0
                if k_eff > 0:
                    clock_end = float(clocks[k_eff])
                    if paged:
                        targets = np.maximum(ctx0 + (k_eff - 1), kv0)
                        needs = -(-targets // block_tokens) - held
                        if not allocator.grow_many(
                                [r.request_id for r in running],
                                targets.tolist(), needs.tolist()):
                            raise RuntimeError(
                                "fast-forward window overdrew the block "
                                "pool; this is a bug")
                        cols.kv_tokens[rows] = targets
                        peak_memory = max(
                            peak_memory,
                            weight_bytes
                            + int(allocator.allocated_bytes * kv_scale))
                    if k_eff > 1:
                        # Queue-depth samples of the in-window loop tops;
                        # crossed arrivals count as queued exactly as the
                        # scalar tops would have counted them (they join
                        # ``waiting`` at the next real loop top).
                        last_top = clocks[k_eff - 1]
                        crossed: List[float] = []
                        for request in pending:
                            if request.arrival_time_s <= last_top:
                                crossed.append(request.arrival_time_s)
                            else:
                                break
                        queued_base = len(waiting) + len(preempted)
                        n_running = len(running)
                        tops = clocks[1:k_eff]
                        if crossed:
                            queued = (queued_base + np.searchsorted(
                                np.asarray(crossed), tops,
                                side="right")).tolist()
                        else:
                            queued = [queued_base] * (k_eff - 1)
                        if float(span[:k_eff - 1].min()) > 0.0:
                            # Strictly increasing tops: no two consecutive
                            # samples can repeat, and the first differs
                            # from the pre-window sample by its later
                            # clock, so the dedup guard cannot fire —
                            # extend at C speed.
                            queue_depth_timeline.extend(
                                zip(tops.tolist(), queued,
                                    repeat(n_running), strict=False))
                        else:  # zero-span iteration: keep the exact guard
                            for index, top in enumerate(tops.tolist()):
                                sample = (top, queued[index], n_running)
                                if (not queue_depth_timeline
                                        or queue_depth_timeline[-1] != sample):
                                    queue_depth_timeline.append(sample)
                    # Every request's first in-window gap runs from its own
                    # last token; the later gaps are the shared clock deltas.
                    first_gap = (clocks[1]
                                 - cols.last_token_time_s[rows]).tolist()
                    shared_tail = (clocks[2:k_eff + 1]
                                   - clocks[1:k_eff]).tolist()
                    for request, gap in zip(running, first_gap, strict=True):
                        samples = request.tbt_samples_s
                        samples.append(gap)
                        samples.extend(shared_tail)
                    cols.tokens_generated[rows] = gen + k_eff
                    cols.last_token_time_s[rows] = clock_end
                    decode_fold = np.empty(k_eff + 1)
                    decode_fold[0] = decode_time_s
                    decode_fold[1:] = span[:k_eff]
                    decode_time_s = float(decode_fold.cumsum()[-1])
                    decode_step_tokens += len(running) * k_eff
                    if rec is not None:
                        # One span for the whole window, never per-token
                        # events: the scalar loop merges the identical
                        # iterations one step at a time into the same span.
                        rec.window_step(
                            "decode",
                            (tuple(r.request_id for r in running), ()),
                            clock, clock_end, k_eff, 0)
                        rec.now_s = clock_end
                    clock = clock_end
                    if k_eff == horizon:
                        done_list = (remaining_tokens == k_eff).tolist()
                        for index, request in enumerate(running):
                            if not done_list[index]:
                                continue
                            request.state = RequestState.FINISHED
                            request.finish_time_s = clock
                            if rec is not None:
                                rec.event("request.finished", clock,
                                          request.request_id,
                                          tokens=request.tokens_generated)
                            if paged:
                                allocator.release(request.request_id,
                                                  now_s=clock)
                                request.kv_tokens = 0
                            else:
                                reserved_bytes -= request.kv_reserved_bytes
                        running[:] = [r for i, r in enumerate(running)
                                      if not done_list[i]]
                        rows_dirty = True
                    continue
                # k == 0: the very next decode step needs an eviction; let
                # the scalar growth loop below handle it.

            if paged and decode_batch:
                decode_batch = grow_or_preempt(decode_batch)
                peak_memory = max(
                    peak_memory,
                    weight_bytes + int(allocator.allocated_bytes * kv_scale))
                # A growth-triggered eviction may have hit a co-scheduled
                # prefilling request (chunked-prefill mode): its chunk no
                # longer runs this iteration.
                prefill_work = [(r, t) for r, t in prefill_work
                                if r.state is not RequestState.PREEMPTED]

            if not prefill_work and not decode_batch:
                # Everyone runnable is waiting on a swap-in; jump to the
                # first restore completion (or the next arrival, whichever
                # is sooner) instead of spinning.
                horizon = [r.restore_ready_s for r in running
                           if r.restore_ready_s > clock]
                if pending:
                    horizon.append(pending[0].arrival_time_s)
                if not horizon:
                    if until_s is not None:
                        # Mid-segment this is not a stall: the next segment's
                        # extend may bring the arrival that unblocks us.
                        break
                    raise RuntimeError(
                        "serving engine stalled with running requests but no "
                        "schedulable work; this is a bug"
                    )
                if until_s is not None and min(horizon) >= until_s:
                    break
                clock = min(horizon)
                continue

            chunk_sizes: List[int] = []
            chunk_midpoints: List[int] = []
            for request, tokens in prefill_work:
                if request.restore_remaining > 0:
                    done = request.restore_total - request.restore_remaining
                else:
                    done = request.query.prompt_tokens - request.prefill_remaining
                chunk_sizes.append(tokens)
                chunk_midpoints.append(max(done + tokens // 2, 1))
            # The batch entry points replay the scalar folds bit for bit;
            # below a handful of items the scalar loop is simply faster.
            if vectorize and len(prefill_work) >= 8:
                prefill_s = cost.prefill_chunk_batch_s(
                    np.asarray(chunk_sizes, dtype=np.int64),
                    np.asarray(chunk_midpoints, dtype=np.int64))
            else:
                prefill_s = 0.0
                for tokens, midpoint in zip(chunk_sizes, chunk_midpoints, strict=True):
                    prefill_s += cost.prefill_chunk_s(tokens, midpoint)
            batch_rows: Optional[np.ndarray] = None
            if vectorize and len(decode_batch) >= 8:
                batch_rows = np.fromiter((r._row for r in decode_batch),
                                         dtype=np.intp,
                                         count=len(decode_batch))
                decode_s = cost.decode_iteration_batch_s(
                    cols.prompt_tokens[batch_rows]
                    - cols.prefill_remaining[batch_rows]
                    + cols.tokens_generated[batch_rows])
            else:
                decode_s = cost.decode_iteration_s(
                    [r.context_length for r in decode_batch]
                )
            iteration_start_s = clock
            clock += prefill_s + decode_s
            prefill_time_s += prefill_s
            if decode_batch:
                decode_time_s += decode_s
                decode_step_tokens += len(decode_batch)
            if rec is not None:
                decode_ids = tuple(r.request_id for r in decode_batch)
                prefill_ids = tuple(r.request_id for r, _ in prefill_work)
                kind = ("mixed" if decode_ids and prefill_ids
                        else "decode" if decode_ids else "prefill")
                rec.window_step(kind, (decode_ids, prefill_ids),
                                iteration_start_s, clock, 1,
                                sum(chunk_sizes) if prefill_ids else 0)
                rec.now_s = clock

            # ---------------------------------------------- apply the iteration
            prefill_completed: List[ServingRequest] = []
            for request, tokens in prefill_work:
                if request.restore_remaining > 0:
                    # KV rebuilt, nothing emitted: the request already owns
                    # its generated tokens and rejoins decode next iteration.
                    request.restore_remaining -= tokens
                    if request.restore_remaining == 0:
                        if request.prefill_remaining == 0:
                            request.state = RequestState.DECODE
                        # Eviction-to-rebuilt: the rebuild span joins the
                        # off-device time already accrued at resume (a
                        # prefill victim's prompt tail then continues as
                        # ordinary, non-stall prefill work).
                        rebuild_s = clock - request.restore_started_s
                        request.stall_s += rebuild_s
                        if request.first_token_time_s is None:
                            request.prefill_stall_s += rebuild_s
                    continue
                request.prefill_remaining -= tokens
                if request.prefill_remaining == 0:
                    # The chunk completing the prefill emits the first token.
                    request.state = RequestState.DECODE
                    request.first_token_time_s = clock
                    request.last_token_time_s = clock
                    request.tokens_generated = 1
                    if rec is not None:
                        rec.event("request.first_token", clock,
                                  request.request_id)
                    if request.prefix_pending:
                        # Cache-miss promotion: the prefix KV this request
                        # just prefilled becomes the shared chain later
                        # arrivals attach to (best-effort — skipped when
                        # another request won the race or the pool cannot
                        # spare the tail snapshot block).
                        request.prefix_pending = False
                        allocator.register_prefix(
                            request.query.prefix_key,
                            request.query.prefix_tokens,
                            request.request_id, now_s=clock)
                    prefill_completed.append(request)
            if batch_rows is not None:
                cols.tokens_generated[batch_rows] += 1
                # Time between tokens, including any prefill stalls since
                # each request's previous token.
                gaps = (clock - cols.last_token_time_s[batch_rows]).tolist()
                for request, gap in zip(decode_batch, gaps, strict=True):
                    request.tbt_samples_s.append(gap)
                cols.last_token_time_s[batch_rows] = clock
            else:
                for request in decode_batch:
                    request.tokens_generated += 1
                    # Time between tokens, including any prefill stalls since
                    # this request's previous token.
                    request.tbt_samples_s.append(clock - request.last_token_time_s)
                    request.last_token_time_s = clock

            # Only a request whose token count changed this iteration can
            # newly satisfy the finish condition, so the decode batch plus
            # the just-completed prefills cover every candidate.
            if batch_rows is not None:
                finished = [decode_batch[i] for i in np.flatnonzero(
                    cols.tokens_generated[batch_rows]
                    >= cols.decode_tokens[batch_rows]).tolist()]
            else:
                finished = [r for r in decode_batch
                            if r.tokens_generated >= r.query.decode_tokens]
            for request in prefill_completed:
                if request.tokens_generated >= request.query.decode_tokens:
                    finished.append(request)
            for request in finished:
                request.state = RequestState.FINISHED
                request.finish_time_s = clock
                if rec is not None:
                    rec.event("request.finished", clock, request.request_id,
                              tokens=request.tokens_generated)
                if paged:
                    allocator.release(request.request_id, now_s=clock)
                    request.kv_tokens = 0
                else:
                    reserved_bytes -= request.kv_reserved_bytes
            if finished:
                # In place: the state (and the helper closures) share this list.
                running[:] = [r for r in running
                              if r.state is not RequestState.FINISHED]
                rows_dirty = True

        state.clock = clock
        state.reserved_bytes = reserved_bytes
        state.peak_memory = peak_memory
        state.prefill_time_s = prefill_time_s
        state.decode_time_s = decode_time_s
        state.decode_step_tokens = decode_step_tokens
        return self.snapshot(state)

    # ------------------------------------------------------------- migration

    def migrate_out(self, state: EngineState, request: ServingRequest,
                    *, now_s: float) -> KvMigration:
        """Hand ``request`` off to another engine, staging its KV in host
        memory.

        Used by the closed-loop cluster controller when a re-placement
        dismantles a replica with work in flight: the request's
        materialised KV streams out over the CXL fabric (KV a swap eviction
        already staged pays no fresh transfer), its blocks or reservation
        are freed, and the returned :class:`KvMigration` carries everything
        :meth:`migrate_in` needs to resume it elsewhere at its original
        progress.  A recompute-evicted request has no KV to move (restart
        it instead); a finished, rejected or already-migrated request
        cannot move at all.
        """
        if request.state in (RequestState.FINISHED, RequestState.REJECTED,
                             RequestState.MIGRATED):
            raise ValueError(
                f"request {request.request_id} is {request.state.value}; "
                "only in-flight requests can migrate"
            )
        if request.restore_remaining > 0:
            raise ValueError(
                f"request {request.request_id} awaits a recompute rebuild; "
                "its KV is gone — restart it on the destination instead"
            )
        context = request.context_length
        total_bytes = context * state.bytes_per_token
        # KV already swap-staged in host memory travels for free; only the
        # device-resident remainder pays a fresh swap-out on this fabric.
        staged_bytes = (request.swap_bytes
                        if request.state is RequestState.PREEMPTED else 0)
        fresh_bytes = max(total_bytes - staged_bytes, 0)
        out_s = (kv_swap_time_s(fresh_bytes, self.system.config.link,
                                pp_stages=state.plan.pp_stages)
                 if fresh_bytes else 0.0)
        # The host copy is whole once the fresh transfer finishes AND any
        # still-draining eviction swap-out has landed.
        host_ready_s = now_s + out_s
        if request.state is RequestState.PREEMPTED:
            host_ready_s = max(host_ready_s, request.swap_done_s)
        moved = KvMigration(
            query=request.query,
            tokens_generated=request.tokens_generated,
            prefill_remaining=request.prefill_remaining,
            kv_tokens=context,
            swap_bytes=total_bytes,
            swap_out_s=out_s,
            host_ready_s=host_ready_s,
            swap_in_priced=request.migration_pending,
            admitted_time_s=request.admitted_time_s,
            first_token_time_s=request.first_token_time_s,
            last_token_time_s=request.last_token_time_s,
            tbt_samples_s=tuple(request.tbt_samples_s),
            preempted_count=request.preempted_count,
            num_swap_outs=request.num_swap_outs + (1 if fresh_bytes else 0),
            num_swap_ins=request.num_swap_ins,
            swap_time_s=request.swap_time_s + out_s,
            recompute_tokens=request.recompute_tokens,
            # A request migrated while parked has been stalled since its
            # eviction; close that span here (the destination's resume
            # counts only from the migration instant onward).
            stall_s=request.stall_s + (
                max(now_s - request.preempt_time_s, 0.0)
                if request.state is RequestState.PREEMPTED else 0.0),
            prefill_stall_s=request.prefill_stall_s + (
                max(now_s - request.preempt_time_s, 0.0)
                if (request.state is RequestState.PREEMPTED
                    and request.first_token_time_s is None) else 0.0),
            partial_evictions=request.partial_evictions,
            migrated_count=request.migrated_count,
            migrated_kv_bytes=request.migrated_kv_bytes,
            prefix_lookups=request.prefix_lookups,
            prefix_hits=request.prefix_hits,
            prefix_hit_tokens=request.prefix_hit_tokens,
            cow_blocks=request.cow_blocks,
        )
        rec = state.recorder
        if rec is not None:
            rec.event("request.migrate_out", now_s, request.request_id,
                      kv_bytes=total_bytes, swap_out_s=out_s,
                      host_ready_s=host_ready_s,
                      tokens_generated=request.tokens_generated)
            rec.now_s = now_s
        # Strip the request from the (frozen) source state: free its blocks
        # or reservation and drop it from whichever queue still holds it.
        # A full release also detaches any shared-prefix chain reference
        # (the chain stays cached on the source pool).
        if state.paged:
            state.allocator.release(request.request_id, now_s=now_s)
        elif request in state.running:
            state.reserved_bytes -= request.kv_reserved_bytes
        for queue in (state.pending, state.waiting, state.preempted):
            if request in queue:
                queue.remove(request)
        if request in state.running:
            state.running.remove(request)
        request.kv_tokens = 0
        request.swapped_kv_blocks = 0
        request.restore_via = ""
        request.migration_pending = False
        request.state = RequestState.MIGRATED
        return moved

    def migrate_in(self, state: EngineState, moved: KvMigration,
                   *, now_s: float) -> ServingRequest:
        """Admit a migrated request with its progress and history intact.

        The request joins the destination like a swap-evicted victim whose
        KV sits in host memory: it queues as ``PREEMPTED`` and resumes —
        ahead of fresh admissions — once the destination can hold its KV
        (block re-allocation in paged mode, a full-context reservation in
        reserve mode), paying a swap-in priced on *this* engine's fabric
        serialised behind the source's still-draining swap-out.  TTFT,
        latency and SLA classification stay anchored to the original
        arrival time, which travels inside ``moved.query``.
        """
        request = ServingRequest(len(state.requests), moved.query,
                                 columns=state.columns)
        state.requests.append(request)
        request.tokens_generated = moved.tokens_generated
        request.prefill_remaining = moved.prefill_remaining
        request.admitted_time_s = moved.admitted_time_s
        request.first_token_time_s = moved.first_token_time_s
        request.last_token_time_s = moved.last_token_time_s
        request.tbt_samples_s = list(moved.tbt_samples_s)
        request.preempted_count = moved.preempted_count
        request.num_swap_outs = moved.num_swap_outs
        request.num_swap_ins = moved.num_swap_ins
        request.swap_time_s = moved.swap_time_s
        request.recompute_tokens = moved.recompute_tokens
        request.stall_s = moved.stall_s
        request.prefill_stall_s = moved.prefill_stall_s
        request.partial_evictions = moved.partial_evictions
        request.migrated_count = moved.migrated_count + 1
        request.migrated_kv_bytes = moved.migrated_kv_bytes + moved.swap_bytes
        request.prefix_lookups = moved.prefix_lookups
        request.prefix_hits = moved.prefix_hits
        request.prefix_hit_tokens = moved.prefix_hit_tokens
        request.cow_blocks = moved.cow_blocks
        rec = state.recorder
        if not self._is_servable(moved.query, state.kv_budget):
            request.state = RequestState.REJECTED
            if rec is not None:
                rec.event("request.migrate_in", now_s, request.request_id,
                          accepted=False)
            return request
        if moved.query.total_context > state.planned_context:
            raise ValueError(
                f"query context {moved.query.total_context} exceeds the "
                f"planned context {state.planned_context}; pass a "
                "planning_trace covering every query this state may serve"
            )
        request.state = RequestState.PREEMPTED
        request.restore_via = "swap"
        request.migration_pending = True
        request.preempt_time_s = now_s
        request.swap_bytes = moved.swap_bytes
        request.swap_done_s = moved.host_ready_s
        # Blocks on resume: the whole prompt for a mid-prefill request
        # (mirroring paged admission), the materialised context otherwise.
        request.resume_kv_tokens = (moved.query.prompt_tokens
                                    if moved.prefill_remaining > 0
                                    else moved.kv_tokens)
        if not state.paged:
            request.kv_reserved_bytes = \
                self._kv_reservation_bytes(moved.query.total_context)
        state.preempted.append(request)
        if rec is not None:
            rec.event("request.migrate_in", now_s, request.request_id,
                      accepted=True, kv_bytes=moved.swap_bytes,
                      tokens_generated=moved.tokens_generated,
                      host_ready_s=moved.host_ready_s)
        return request

    # ------------------------------------------------------------------ sizing

    def estimated_capacity_qps(self, trace: Sequence[Query]) -> float:
        """Rough sustainable arrival rate (queries/s) for ``trace``'s shape.

        Models the engine's actual steady state: prefills serialise (one
        request's prompt streams exclusively, and by default decoding stalls
        while it does), whereas decode iterations advance the whole batch at
        once, so a query's decode share is ``decode_tokens`` iterations
        divided across the occupied slots.  Useful for choosing an arrival
        rate that loads, but does not drown, the system.  The memory-side
        slot cap is admission-aware: ``reserve`` books each query's
        full-context KV up front, while ``paged`` holds only the *current*
        context, so its sustainable concurrency is how many mid-decode
        contexts the block pool fits — sizing paged replicas by the reserve
        booking (the pre-fix behaviour) under-estimated them and starved
        the cluster placer's capability probe.
        """
        queries = list(trace)
        plan, cost, slots = self._setup(queries)
        # Estimate from the queries admission could actually accept, with the
        # same predicate (and weight-feasibility error) run() applies.
        kv_budget = self._kv_budget_bytes(plan)
        mask = self._servable_mask(
            np.fromiter((q.total_context for q in queries),
                        dtype=np.int64, count=len(queries)),
            kv_budget)
        servable = [q for q, ok in zip(queries, mask.tolist(), strict=True) if ok]
        if servable:
            queries = servable
        mean_prompt = sum(q.prompt_tokens for q in queries) / len(queries)
        mean_decode = sum(q.decode_tokens for q in queries) / len(queries)
        mid_context = int(mean_prompt + mean_decode / 2)
        # On memory-bound configs the KV budget, not the plan, caps how many
        # requests decode concurrently — per the admission mode actually
        # gating the run.
        if self.admission == "paged":
            pool = self._make_pool(kv_budget)
            blocks_per_query = pool.blocks_for(max(mid_context, 1))
            if blocks_per_query > 0:
                slots = max(1, min(slots, pool.num_blocks // blocks_per_query))
        else:
            reservation = self._kv_reservation_bytes(int(mean_prompt + mean_decode))
            if reservation > 0:
                slots = max(1, min(slots, kv_budget // reservation))
        prefill_s = cost.prefill_chunk_s(int(mean_prompt), max(int(mean_prompt) // 2, 1))
        decode_share_s = mean_decode * cost.decode_iteration_s([mid_context]) / slots
        return 1.0 / (prefill_s + decode_share_s)
