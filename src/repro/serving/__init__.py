"""Event-driven serving: request lifecycles, continuous batching, metrics.

This package turns the closed-form batch simulator into a trace-driven
serving system:

* :class:`ServingEngine` — discrete-event loop with request arrivals,
  KV-capacity-aware admission and vLLM-style continuous batching
  (prefill/decode interleaving); :meth:`ServingEngine.simulate` exposes the
  raw per-request outcome (:class:`EngineRun`) that ``repro.cluster``
  re-aggregates per tenant;
* :class:`ServingRequest` / :class:`RequestState` — per-request lifecycle
  and measured timestamps (TTFT, TBT samples, query latency);
* :func:`aggregate_serving_result` — folds a finished run into the
  :class:`~repro.core.results.ServingResult` percentile report.

The arrival processes live in ``repro.workloads.queries`` and the per-
iteration pricing in ``repro.core.iteration``.
"""

from repro.core.results import LatencyStats, ServingResult, percentile
from repro.serving.engine import (
    ADMISSION_MODES,
    EngineMeasurements,
    EngineRun,
    EngineState,
    KvMigration,
    ServingEngine,
)
from repro.serving.metrics import (
    aggregate_serving_result,
    merge_queue_depth_timelines,
    window_decode_tokens,
    window_mean_queue_depth,
)
from repro.serving.request import RequestState, ServingRequest

__all__ = [
    "ADMISSION_MODES",
    "EngineMeasurements",
    "EngineRun",
    "EngineState",
    "KvMigration",
    "ServingEngine",
    "ServingRequest",
    "RequestState",
    "ServingResult",
    "LatencyStats",
    "percentile",
    "aggregate_serving_result",
    "merge_queue_depth_timelines",
    "window_decode_tokens",
    "window_mean_queue_depth",
]
