"""Aggregation of per-request measurements into a :class:`ServingResult`.

The percentile machinery (``percentile``, :class:`LatencyStats`) lives in
``repro.core.results`` next to the result containers; this module re-exports
it and adds the trace-level aggregation the engine runs after the event loop
drains.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.results import LatencyStats, ServingResult, percentile
from repro.serving.request import RequestState, ServingRequest

__all__ = ["LatencyStats", "percentile", "aggregate_serving_result"]


def aggregate_serving_result(
    requests: Sequence[ServingRequest],
    *,
    model_name: str,
    plan_name: str,
    makespan_s: float,
    prefill_time_s: float,
    decode_time_s: float,
    decode_step_tokens: int,
    peak_memory_bytes: int,
    memory_capacity_bytes: int,
    sla_latency_s: Optional[float] = None,
) -> ServingResult:
    """Fold the finished request set into a :class:`ServingResult`."""
    completed = [r for r in requests if r.state is RequestState.FINISHED]
    rejected = [r for r in requests if r.state is RequestState.REJECTED]

    ttfts = [r.ttft_s for r in completed if r.ttft_s is not None]
    latencies = [r.latency_s for r in completed if r.latency_s is not None]
    decodes = [r.latency_s - r.ttft_s for r in completed
               if r.latency_s is not None and r.ttft_s is not None]
    tbts = [sample for r in completed for sample in r.tbt_samples_s]

    within_sla = completed
    if sla_latency_s is not None:
        within_sla = [r for r in completed
                      if r.latency_s is not None and r.latency_s <= sla_latency_s]

    return ServingResult(
        model_name=model_name,
        plan_name=plan_name,
        num_requests=len(requests),
        num_completed=len(completed),
        num_rejected=len(rejected),
        makespan_s=makespan_s,
        ttft=LatencyStats.from_samples(ttfts),
        tbt=LatencyStats.from_samples(tbts),
        query_latency=LatencyStats.from_samples(latencies),
        decode_latency=LatencyStats.from_samples(decodes),
        total_prompt_tokens=sum(r.query.prompt_tokens for r in completed),
        total_decode_tokens=sum(r.query.decode_tokens for r in completed),
        prefill_time_s=prefill_time_s,
        decode_time_s=decode_time_s,
        decode_step_tokens=decode_step_tokens,
        peak_memory_bytes=peak_memory_bytes,
        memory_capacity_bytes=memory_capacity_bytes,
        sla_latency_s=sla_latency_s,
        completed_within_sla=len(within_sla),
        sla_decode_tokens=sum(r.query.decode_tokens for r in within_sla),
    )
