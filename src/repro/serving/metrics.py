"""Aggregation of per-request measurements into a :class:`ServingResult`.

The percentile machinery (``percentile``, :class:`LatencyStats`) lives in
``repro.core.results`` next to the result containers; this module re-exports
it and adds the trace-level aggregation the engine runs after the event loop
drains.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.core.results import LatencyStats, ServingResult, percentile
from repro.serving.request import RequestState, ServingRequest

__all__ = [
    "LatencyStats",
    "percentile",
    "aggregate_serving_result",
    "merge_queue_depth_timelines",
]


def merge_queue_depth_timelines(
    timelines: Sequence[Sequence[Tuple[float, int, int]]],
) -> list:
    """Sum concurrent per-replica backlog signals into one timeline.

    Each input is a piecewise-constant ``(time_s, queued, running)`` signal;
    the merged signal carries, at every sample time, the *sum* of each
    replica's most recent value — simply interleaving the samples would
    report one replica's backlog where the caller expects the pool's.  A
    single input comes back unchanged, so the single-replica tenant keeps
    engine parity.
    """
    timelines = [list(t) for t in timelines if t]
    if not timelines:
        return []
    if len(timelines) == 1:
        return timelines[0]
    events = sorted(
        (sample[0], index, sample)
        for index, timeline in enumerate(timelines)
        for sample in timeline
    )
    latest: dict = {}
    merged = []
    i = 0
    while i < len(events):
        now = events[i][0]
        while i < len(events) and events[i][0] == now:
            _, index, (_, queued, running) = events[i]
            latest[index] = (queued, running)
            i += 1
        merged.append((now,
                       sum(q for q, _ in latest.values()),
                       sum(r for _, r in latest.values())))
    return merged


def aggregate_serving_result(
    requests: Sequence[ServingRequest],
    *,
    model_name: str,
    plan_name: str,
    makespan_s: float,
    prefill_time_s: float,
    decode_time_s: float,
    decode_step_tokens: int,
    peak_memory_bytes: int,
    memory_capacity_bytes: int,
    sla_latency_s: Optional[float] = None,
    queue_depth_timeline: Sequence[Tuple[float, int, int]] = (),
) -> ServingResult:
    """Fold the finished request set into a :class:`ServingResult`.

    Preemption, swap and stall counters are summed straight off the
    requests, so callers that re-attribute a run's requests to subsets
    (the multi-tenant cluster layer) get exact per-subset accounting for
    free; only the queue-depth timeline is engine-level and passed in.
    """
    completed = [r for r in requests if r.state is RequestState.FINISHED]
    rejected = [r for r in requests if r.state is RequestState.REJECTED]

    ttfts = [r.ttft_s for r in completed if r.ttft_s is not None]
    latencies = [r.latency_s for r in completed if r.latency_s is not None]
    decodes = [r.latency_s - r.ttft_s for r in completed
               if r.latency_s is not None and r.ttft_s is not None]
    tbts = [sample for r in completed for sample in r.tbt_samples_s]

    within_sla = completed
    if sla_latency_s is not None:
        within_sla = [r for r in completed
                      if r.latency_s is not None and r.latency_s <= sla_latency_s]

    return ServingResult(
        model_name=model_name,
        plan_name=plan_name,
        num_requests=len(requests),
        num_completed=len(completed),
        num_rejected=len(rejected),
        makespan_s=makespan_s,
        ttft=LatencyStats.from_samples(ttfts),
        tbt=LatencyStats.from_samples(tbts),
        query_latency=LatencyStats.from_samples(latencies),
        decode_latency=LatencyStats.from_samples(decodes),
        total_prompt_tokens=sum(r.query.prompt_tokens for r in completed),
        total_decode_tokens=sum(r.query.decode_tokens for r in completed),
        prefill_time_s=prefill_time_s,
        decode_time_s=decode_time_s,
        decode_step_tokens=decode_step_tokens,
        peak_memory_bytes=peak_memory_bytes,
        memory_capacity_bytes=memory_capacity_bytes,
        sla_latency_s=sla_latency_s,
        completed_within_sla=len(within_sla),
        sla_decode_tokens=sum(r.query.decode_tokens for r in within_sla),
        num_preemptions=sum(r.preempted_count for r in requests),
        num_swap_outs=sum(r.num_swap_outs for r in requests),
        num_swap_ins=sum(r.num_swap_ins for r in requests),
        swap_time_s=sum(r.swap_time_s for r in requests),
        recompute_tokens=sum(r.recompute_tokens for r in requests),
        preemption_stall_time_s=sum(r.stall_s for r in requests),
        queue_depth_timeline=tuple(
            (float(t), int(q), int(n)) for t, q, n in queue_depth_timeline
        ),
    )
