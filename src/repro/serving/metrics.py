"""Aggregation of per-request measurements into a :class:`ServingResult`.

The percentile machinery (``percentile``, :class:`LatencyStats`) lives in
``repro.core.results`` next to the result containers; this module re-exports
it and adds the trace-level aggregation the engine runs after the event loop
drains.
"""

from __future__ import annotations

from itertools import chain
from typing import Optional, Sequence, Tuple

from repro.core.results import LatencyStats, ServingResult, percentile
from repro.serving.request import RequestState, ServingRequest

__all__ = [
    "LatencyStats",
    "percentile",
    "aggregate_serving_result",
    "merge_queue_depth_timelines",
    "window_decode_tokens",
    "window_mean_queue_depth",
]


def window_decode_tokens(
    requests: Sequence[ServingRequest],
    start_s: float,
    end_s: float,
    *,
    sla_latency_s: Optional[float] = None,
) -> int:
    """Decode tokens of requests that finished within ``[start_s, end_s)``.

    With ``sla_latency_s`` only SLA-compliant finishes count, making this the
    per-epoch goodput numerator the closed-loop cluster controller feeds back
    to its router and rebalancer; without one it is plain epoch throughput.
    """
    if end_s < start_s:
        raise ValueError(f"window end {end_s} precedes start {start_s}")
    total = 0
    for request in requests:
        finish = request.finish_time_s
        if finish is None or not start_s <= finish < end_s:
            continue
        if (sla_latency_s is not None and request.latency_s is not None
                and request.latency_s > sla_latency_s):
            continue
        total += request.query.decode_tokens
    return total


def window_mean_queue_depth(
    timeline: Sequence[Tuple[float, int, int]],
    start_s: float,
    end_s: float,
) -> float:
    """Time-weighted mean backlog of a queue-depth signal over one window.

    The timeline is piecewise-constant (each ``(time_s, queued, running)``
    sample holds until the next), so the sample in force at ``start_s`` is
    the last one at or before it; a window before the first sample (or an
    empty timeline) reads as zero backlog.
    """
    if end_s < start_s:
        raise ValueError(f"window end {end_s} precedes start {start_s}")
    span = end_s - start_s
    if span <= 0:
        return 0.0
    weighted = 0.0
    current = 0  # queued count in force at the window cursor
    cursor = start_s
    for time_s, queued, _ in timeline:
        if time_s <= start_s:
            current = queued
            continue
        if time_s >= end_s:
            break
        weighted += current * (time_s - cursor)
        cursor = time_s
        current = queued
    weighted += current * (end_s - cursor)
    return weighted / span


def merge_queue_depth_timelines(
    timelines: Sequence[Sequence[Tuple[float, int, int]]],
) -> list:
    """Sum concurrent per-replica backlog signals into one timeline.

    Each input is a piecewise-constant ``(time_s, queued, running)`` signal;
    the merged signal carries, at every sample time, the *sum* of each
    replica's most recent value — simply interleaving the samples would
    report one replica's backlog where the caller expects the pool's.  A
    single input comes back unchanged, so the single-replica tenant keeps
    engine parity.
    """
    timelines = [list(t) for t in timelines if t]
    if not timelines:
        return []
    if len(timelines) == 1:
        return timelines[0]
    events = sorted(
        (sample[0], index, sample)
        for index, timeline in enumerate(timelines)
        for sample in timeline
    )
    latest: dict = {}
    merged = []
    i = 0
    while i < len(events):
        now = events[i][0]
        while i < len(events) and events[i][0] == now:
            _, index, (_, queued, running) = events[i]
            latest[index] = (queued, running)
            i += 1
        merged.append((now,
                       sum(q for q, _ in latest.values()),
                       sum(r for _, r in latest.values())))
    return merged


def aggregate_serving_result(
    requests: Sequence[ServingRequest],
    *,
    model_name: str,
    plan_name: str,
    makespan_s: float,
    prefill_time_s: float,
    decode_time_s: float,
    decode_step_tokens: int,
    peak_memory_bytes: int,
    memory_capacity_bytes: int,
    sla_latency_s: Optional[float] = None,
    queue_depth_timeline: Sequence[Tuple[float, int, int]] = (),
) -> ServingResult:
    """Fold the finished request set into a :class:`ServingResult`.

    Preemption, swap and stall counters are summed straight off the
    requests, so callers that re-attribute a run's requests to subsets
    (the multi-tenant cluster layer) get exact per-subset accounting for
    free; only the queue-depth timeline is engine-level and passed in.
    """
    completed = [r for r in requests if r.state is RequestState.FINISHED]
    rejected = [r for r in requests if r.state is RequestState.REJECTED]

    ttfts = [r.ttft_s for r in completed if r.ttft_s is not None]
    latencies = [r.latency_s for r in completed if r.latency_s is not None]
    decodes = [r.latency_s - r.ttft_s for r in completed
               if r.latency_s is not None and r.ttft_s is not None]
    # One C-level concatenation; the tbt lists dominate sample volume on
    # long-generation traces (one sample per generated token).
    tbts = list(chain.from_iterable(r.tbt_samples_s for r in completed))

    within_sla = completed
    if sla_latency_s is not None:
        within_sla = [r for r in completed
                      if r.latency_s is not None and r.latency_s <= sla_latency_s]

    return ServingResult(
        model_name=model_name,
        plan_name=plan_name,
        num_requests=len(requests),
        num_completed=len(completed),
        num_rejected=len(rejected),
        makespan_s=makespan_s,
        ttft=LatencyStats.from_samples(ttfts),
        tbt=LatencyStats.from_samples(tbts),
        query_latency=LatencyStats.from_samples(latencies),
        decode_latency=LatencyStats.from_samples(decodes),
        total_prompt_tokens=sum(r.query.prompt_tokens for r in completed),
        total_decode_tokens=sum(r.query.decode_tokens for r in completed),
        prefill_time_s=prefill_time_s,
        decode_time_s=decode_time_s,
        decode_step_tokens=decode_step_tokens,
        peak_memory_bytes=peak_memory_bytes,
        memory_capacity_bytes=memory_capacity_bytes,
        sla_latency_s=sla_latency_s,
        completed_within_sla=len(within_sla),
        sla_decode_tokens=sum(r.query.decode_tokens for r in within_sla),
        num_preemptions=sum(r.preempted_count for r in requests),
        num_swap_outs=sum(r.num_swap_outs for r in requests),
        num_swap_ins=sum(r.num_swap_ins for r in requests),
        swap_time_s=sum(r.swap_time_s for r in requests),
        recompute_tokens=sum(r.recompute_tokens for r in requests),
        preemption_stall_time_s=sum(r.stall_s for r in requests),
        num_partial_evictions=sum(r.partial_evictions for r in requests),
        num_migrated_in=sum(r.migrated_count for r in requests),
        migrated_kv_bytes=sum(r.migrated_kv_bytes for r in requests),
        num_prefix_lookups=sum(r.prefix_lookups for r in requests),
        num_prefix_hits=sum(r.prefix_hits for r in requests),
        prefix_hit_tokens=sum(r.prefix_hit_tokens for r in requests),
        num_cow_blocks=sum(r.cow_blocks for r in requests),
        queue_depth_timeline=tuple(
            (float(t), int(q), int(n)) for t, q, n in queue_depth_timeline
        ),
    )
