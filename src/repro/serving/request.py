"""Per-request state tracked by the serving engine."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.workloads.queries import Query

__all__ = ["RequestState", "ServingRequest"]


class RequestState(enum.Enum):
    """Lifecycle of one request inside the serving engine."""

    QUEUED = "queued"        # arrived, waiting for admission
    PREFILL = "prefill"      # admitted, prompt tokens streaming in
    DECODE = "decode"        # generating output tokens
    FINISHED = "finished"    # all output tokens generated
    REJECTED = "rejected"    # can never fit the system; refused on arrival


@dataclass
class ServingRequest:
    """One query's measured journey through the engine."""

    request_id: int
    query: Query
    state: RequestState = RequestState.QUEUED
    admitted_time_s: Optional[float] = None
    first_token_time_s: Optional[float] = None
    last_token_time_s: Optional[float] = None
    finish_time_s: Optional[float] = None
    prefill_remaining: int = field(init=False)
    tokens_generated: int = 0
    kv_reserved_bytes: int = 0
    tbt_samples_s: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.prefill_remaining = self.query.prompt_tokens

    # ------------------------------------------------------------------ progress

    @property
    def arrival_time_s(self) -> float:
        return self.query.arrival_time_s

    @property
    def context_length(self) -> int:
        """Tokens currently held in the request's KV cache."""
        prefilled = self.query.prompt_tokens - self.prefill_remaining
        return prefilled + self.tokens_generated

    @property
    def is_running(self) -> bool:
        return self.state in (RequestState.PREFILL, RequestState.DECODE)

    # ------------------------------------------------------------------ metrics

    @property
    def ttft_s(self) -> Optional[float]:
        """Time from arrival to the first generated token."""
        if self.first_token_time_s is None:
            return None
        return self.first_token_time_s - self.arrival_time_s

    @property
    def queueing_delay_s(self) -> Optional[float]:
        if self.admitted_time_s is None:
            return None
        return self.admitted_time_s - self.arrival_time_s

    @property
    def latency_s(self) -> Optional[float]:
        """End-to-end query latency (arrival to last token)."""
        if self.finish_time_s is None:
            return None
        return self.finish_time_s - self.arrival_time_s
