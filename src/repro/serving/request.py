"""Per-request state tracked by the serving engine."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.workloads.queries import Query

__all__ = ["RequestState", "ServingRequest"]


class RequestState(enum.Enum):
    """Lifecycle of one request inside the serving engine."""

    QUEUED = "queued"        # arrived, waiting for admission
    PREFILL = "prefill"      # admitted, prompt tokens streaming in
    DECODE = "decode"        # generating output tokens
    PREEMPTED = "preempted"  # evicted from the paged KV pool, awaiting resume
    FINISHED = "finished"    # all output tokens generated
    REJECTED = "rejected"    # can never fit the system; refused on arrival
    MIGRATED = "migrated"    # live-migrated to another engine, which owns it now


@dataclass
class ServingRequest:
    """One query's measured journey through the engine.

    The fields below ``tbt_samples_s`` exist for the paged-admission mode
    (``repro.kvstore``): they track the request's on-device KV allocation,
    its restore progress after a preemption, and the preemption/swap
    counters the aggregation folds into the
    :class:`~repro.core.results.ServingResult`.  Under the legacy
    ``admission="reserve"`` path they keep their zero defaults.
    """

    request_id: int
    query: Query
    state: RequestState = RequestState.QUEUED
    admitted_time_s: Optional[float] = None
    first_token_time_s: Optional[float] = None
    last_token_time_s: Optional[float] = None
    finish_time_s: Optional[float] = None
    prefill_remaining: int = field(init=False)
    tokens_generated: int = 0
    kv_reserved_bytes: int = 0
    tbt_samples_s: List[float] = field(default_factory=list)
    #: Tokens currently backed by allocated KV blocks (paged mode only).
    kv_tokens: int = 0
    #: Tokens of KV still to re-prefill after a recompute-mode preemption.
    restore_remaining: int = 0
    #: Size of the current rebuild (a decode victim's whole context, a
    #: prefill victim's lost prefix); prices the rebuild chunks' midpoints.
    restore_total: int = 0
    #: Tokens the next resume must re-allocate blocks for.
    resume_kv_tokens: int = 0
    #: Engine time at which this request's swap-in completes; the request
    #: holds its slot and blocks but cannot decode before then.
    restore_ready_s: float = 0.0
    #: When the in-flight swap-out finishes draining (swap-in serialises
    #: behind it if the request resumes immediately).
    swap_done_s: float = 0.0
    #: KV bytes the last swap-out staged to the host (swap restore only).
    swap_bytes: int = 0
    #: When the request was last preempted (stall accounting).
    preempt_time_s: Optional[float] = None
    #: When the request last re-acquired a slot with a KV rebuild still
    #: ahead of it (recompute restore); the rebuild span counts as stall.
    restore_started_s: float = 0.0
    #: How the current eviction's KV comes back: ``"swap"`` or
    #: ``"recompute"`` while evicted, ``""`` otherwise.  Live migrations
    #: always restore by swap, whatever the destination's policy.
    restore_via: str = ""
    #: Blocks of this request's KV staged in host memory by a partial
    #: (block-granular) eviction; resume re-admits exactly these while the
    #: rest of the allocation stayed device-resident.
    swapped_kv_blocks: int = 0
    #: True between a live migration landing and its first resume on the
    #: destination: the chain's single swap-in is already accounted for.
    migration_pending: bool = False
    # ---- counters surfaced through aggregate_serving_result ----
    preempted_count: int = 0
    num_swap_outs: int = 0
    num_swap_ins: int = 0
    swap_time_s: float = 0.0
    recompute_tokens: int = 0
    stall_s: float = 0.0
    #: Block-granular evictions among ``preempted_count``.
    partial_evictions: int = 0
    #: Times this request was live-migrated between engines, and the KV
    #: bytes those moves streamed through host memory.
    migrated_count: int = 0
    migrated_kv_bytes: int = 0

    def __post_init__(self) -> None:
        self.prefill_remaining = self.query.prompt_tokens

    # ------------------------------------------------------------------ progress

    @property
    def arrival_time_s(self) -> float:
        return self.query.arrival_time_s

    @property
    def context_length(self) -> int:
        """Tokens currently held in the request's KV cache."""
        prefilled = self.query.prompt_tokens - self.prefill_remaining
        return prefilled + self.tokens_generated

    @property
    def is_running(self) -> bool:
        return self.state in (RequestState.PREFILL, RequestState.DECODE)

    # ------------------------------------------------------------------ metrics

    @property
    def ttft_s(self) -> Optional[float]:
        """Time from arrival to the first generated token."""
        if self.first_token_time_s is None:
            return None
        return self.first_token_time_s - self.arrival_time_s

    @property
    def queueing_delay_s(self) -> Optional[float]:
        if self.admitted_time_s is None:
            return None
        return self.admitted_time_s - self.arrival_time_s

    @property
    def latency_s(self) -> Optional[float]:
        """End-to-end query latency (arrival to last token)."""
        if self.finish_time_s is None:
            return None
        return self.finish_time_s - self.arrival_time_s
