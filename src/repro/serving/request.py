"""Per-request state tracked by the serving engine.

The hot per-iteration fields (progress counters, timing marks, lifecycle
state) live in a struct-of-arrays store, :class:`RequestColumns`, so the
engine's vectorized paths can price and advance whole batches with numpy
gathers instead of per-object attribute walks.  :class:`ServingRequest` is a
*view* over one row of that store: scalar code (the kvstore, preemption
policies, live migration, tests) keeps reading and writing the same named
attributes it always did, while ``state.columns`` exposes the parallel
arrays underneath.

A ``ServingRequest`` constructed without an explicit store (tests, rejected
placeholders) gets a private single-row store, so standalone instances
behave exactly like engine-owned ones.
"""

from __future__ import annotations

import enum
import math
from typing import List, Optional

import numpy as np

from repro.workloads.queries import Query

__all__ = ["RequestColumns", "RequestState", "ServingRequest"]


class RequestState(enum.Enum):
    """Lifecycle of one request inside the serving engine."""

    QUEUED = "queued"        # arrived, waiting for admission
    PREFILL = "prefill"      # admitted, prompt tokens streaming in
    DECODE = "decode"        # generating output tokens
    PREEMPTED = "preempted"  # evicted from the paged KV pool, awaiting resume
    FINISHED = "finished"    # all output tokens generated
    REJECTED = "rejected"    # can never fit the system; refused on arrival
    MIGRATED = "migrated"    # live-migrated to another engine, which owns it now


#: Stable state <-> int8 coding for the columnar store.
_STATE_BY_CODE = tuple(RequestState)
_CODE_BY_STATE = {state: code for code, state in enumerate(_STATE_BY_CODE)}


class RequestColumns:
    """Struct-of-arrays backing store for a set of serving requests.

    Integer progress counters and float timing marks are kept in parallel
    numpy arrays indexed by the request's ``row``; ``math.nan`` encodes the
    ``None`` of the optional timestamps.  Arrays double on demand and are
    never compacted, so a row index stays valid for the request's lifetime.
    """

    _INT_COLUMNS = (
        "prompt_tokens",
        "decode_tokens",
        "prefill_remaining",
        "tokens_generated",
        "kv_tokens",
        "restore_remaining",
    )
    _FLOAT_COLUMNS = (
        "arrival_time_s",
        "admitted_time_s",
        "first_token_time_s",
        "last_token_time_s",
        "finish_time_s",
        "restore_ready_s",
    )

    __slots__ = _INT_COLUMNS + _FLOAT_COLUMNS + ("state_code", "size", "_capacity")

    def __init__(self, capacity: int = 16) -> None:
        capacity = max(int(capacity), 1)
        for name in self._INT_COLUMNS:
            setattr(self, name, np.zeros(capacity, dtype=np.int64))
        for name in self._FLOAT_COLUMNS:
            setattr(self, name, np.zeros(capacity))
        self.state_code = np.zeros(capacity, dtype=np.int8)
        self.size = 0
        self._capacity = capacity

    def _grow(self, need: int) -> None:
        capacity = self._capacity
        while capacity < need:
            capacity *= 2
        for name in self._INT_COLUMNS + self._FLOAT_COLUMNS + ("state_code",):
            old = getattr(self, name)
            new = np.zeros(capacity, dtype=old.dtype)
            new[: self.size] = old[: self.size]
            setattr(self, name, new)
        self._capacity = capacity

    def append(self, query: Query) -> int:
        """Add a fresh (QUEUED) row for ``query`` and return its index."""
        row = self.size
        if row + 1 > self._capacity:
            self._grow(row + 1)
        self.size = row + 1
        self.prompt_tokens[row] = query.prompt_tokens
        self.decode_tokens[row] = query.decode_tokens
        self.prefill_remaining[row] = query.prompt_tokens
        self.tokens_generated[row] = 0
        self.kv_tokens[row] = 0
        self.restore_remaining[row] = 0
        self.arrival_time_s[row] = query.arrival_time_s
        self.admitted_time_s[row] = math.nan
        self.first_token_time_s[row] = math.nan
        self.last_token_time_s[row] = math.nan
        self.finish_time_s[row] = math.nan
        self.restore_ready_s[row] = 0.0
        self.state_code[row] = 0  # RequestState.QUEUED
        return row

def _int_column(name: str):
    def getter(self: "ServingRequest") -> int:
        return int(getattr(self._columns, name)[self._row])

    def setter(self: "ServingRequest", value: int) -> None:
        getattr(self._columns, name)[self._row] = value

    return property(getter, setter)


def _float_column(name: str):
    def getter(self: "ServingRequest") -> float:
        return float(getattr(self._columns, name)[self._row])

    def setter(self: "ServingRequest", value: float) -> None:
        getattr(self._columns, name)[self._row] = value

    return property(getter, setter)


def _optional_float_column(name: str):
    def getter(self: "ServingRequest") -> Optional[float]:
        value = getattr(self._columns, name)[self._row]
        return None if value != value else float(value)  # NaN encodes None

    def setter(self: "ServingRequest", value: Optional[float]) -> None:
        getattr(self._columns, name)[self._row] = (
            math.nan if value is None else value
        )

    return property(getter, setter)


class ServingRequest:
    """One query's measured journey through the engine.

    The fields below ``tbt_samples_s`` exist for the paged-admission mode
    (``repro.kvstore``): they track the request's on-device KV allocation,
    its restore progress after a preemption, and the preemption/swap
    counters the aggregation folds into the
    :class:`~repro.core.results.ServingResult`.  Under the legacy
    ``admission="reserve"`` path they keep their zero defaults.
    """

    __slots__ = (
        "request_id",
        "query",
        "_columns",
        "_row",
        "kv_reserved_bytes",
        "tbt_samples_s",
        #: Size of the current rebuild (a decode victim's whole context, a
        #: prefill victim's lost prefix); prices the rebuild chunks' midpoints.
        "restore_total",
        #: Tokens the next resume must re-allocate blocks for.
        "resume_kv_tokens",
        #: When the in-flight swap-out finishes draining (swap-in serialises
        #: behind it if the request resumes immediately).
        "swap_done_s",
        #: KV bytes the last swap-out staged to the host (swap restore only).
        "swap_bytes",
        #: When the request was last preempted (stall accounting).
        "preempt_time_s",
        #: When the request last re-acquired a slot with a KV rebuild still
        #: ahead of it (recompute restore); the rebuild span counts as stall.
        "restore_started_s",
        #: How the current eviction's KV comes back: ``"swap"`` or
        #: ``"recompute"`` while evicted, ``""`` otherwise.  Live migrations
        #: always restore by swap, whatever the destination's policy.
        "restore_via",
        #: Blocks of this request's KV staged in host memory by a partial
        #: (block-granular) eviction; resume re-admits exactly these while
        #: the rest of the allocation stayed device-resident.
        "swapped_kv_blocks",
        #: True between a live migration landing and its first resume on the
        #: destination: the chain's single swap-in is already accounted for.
        "migration_pending",
        # ---- counters surfaced through aggregate_serving_result ----
        "preempted_count",
        "num_swap_outs",
        "num_swap_ins",
        "swap_time_s",
        "recompute_tokens",
        "stall_s",
        #: Share of ``stall_s`` accrued before the first token was emitted
        #: (a preempted prefill victim's off-device and rebuild time); the
        #: attribution layer splits the stall across the prefill/decode
        #: phases with it.
        "prefill_stall_s",
        #: Block-granular evictions among ``preempted_count``.
        "partial_evictions",
        #: Times this request was live-migrated between engines, and the KV
        #: bytes those moves streamed through host memory.
        "migrated_count",
        "migrated_kv_bytes",
        #: Shared-prefix cache outcome at admission: a prefix-tagged request
        #: records one lookup; a hit also records the prefix tokens whose
        #: prefill it skipped and the copy-on-write block (if any) it took
        #: of the chain's partial tail.
        "prefix_lookups",
        "prefix_hits",
        "prefix_hit_tokens",
        "cow_blocks",
        #: True between a cache-miss admission and prefill completion, when
        #: the engine promotes this request's prefix blocks into a chain.
        "prefix_pending",
    )

    def __init__(
        self,
        request_id: int,
        query: Query,
        state: RequestState = RequestState.QUEUED,
        *,
        columns: Optional[RequestColumns] = None,
        row: Optional[int] = None,
    ) -> None:
        self.request_id = request_id
        self.query = query
        if columns is None:
            columns = RequestColumns(capacity=1)
            row = columns.append(query)
        elif row is None:
            row = columns.append(query)
        self._columns = columns
        self._row = row
        if state is not RequestState.QUEUED:
            self.state = state
        self.kv_reserved_bytes = 0
        self.tbt_samples_s: List[float] = []
        self.restore_total = 0
        self.resume_kv_tokens = 0
        self.swap_done_s = 0.0
        self.swap_bytes = 0
        self.preempt_time_s: Optional[float] = None
        self.restore_started_s = 0.0
        self.restore_via = ""
        self.swapped_kv_blocks = 0
        self.migration_pending = False
        self.preempted_count = 0
        self.num_swap_outs = 0
        self.num_swap_ins = 0
        self.swap_time_s = 0.0
        self.recompute_tokens = 0
        self.stall_s = 0.0
        self.prefill_stall_s = 0.0
        self.partial_evictions = 0
        self.migrated_count = 0
        self.migrated_kv_bytes = 0
        self.prefix_lookups = 0
        self.prefix_hits = 0
        self.prefix_hit_tokens = 0
        self.cow_blocks = 0
        self.prefix_pending = False

    # ------------------------------------------------------------------ columnar views

    @property
    def row(self) -> int:
        """Index of this request in its :class:`RequestColumns` store."""
        return self._row

    prefill_remaining = _int_column("prefill_remaining")
    tokens_generated = _int_column("tokens_generated")
    #: Tokens currently backed by allocated KV blocks (paged mode only).
    kv_tokens = _int_column("kv_tokens")
    #: Tokens of KV still to re-prefill after a recompute-mode preemption.
    restore_remaining = _int_column("restore_remaining")
    admitted_time_s = _optional_float_column("admitted_time_s")
    first_token_time_s = _optional_float_column("first_token_time_s")
    last_token_time_s = _optional_float_column("last_token_time_s")
    finish_time_s = _optional_float_column("finish_time_s")
    #: Engine time at which this request's swap-in completes; the request
    #: holds its slot and blocks but cannot decode before then.
    restore_ready_s = _float_column("restore_ready_s")

    @property
    def state(self) -> RequestState:
        return _STATE_BY_CODE[self._columns.state_code[self._row]]

    @state.setter
    def state(self, value: RequestState) -> None:
        self._columns.state_code[self._row] = _CODE_BY_STATE[value]

    # ------------------------------------------------------------------ progress

    @property
    def arrival_time_s(self) -> float:
        return self.query.arrival_time_s

    @property
    def context_length(self) -> int:
        """Tokens currently held in the request's KV cache."""
        columns, row = self._columns, self._row
        return int(
            self.query.prompt_tokens
            - columns.prefill_remaining[row]
            + columns.tokens_generated[row]
        )

    @property
    def is_running(self) -> bool:
        return self.state in (RequestState.PREFILL, RequestState.DECODE)

    # ------------------------------------------------------------------ telemetry

    def trace_args(self) -> dict:
        """Static args attached to this request's ``request.queued`` trace
        event (the sizes every lifecycle consumer wants next to the id)."""
        return {"prompt_tokens": self.query.prompt_tokens,
                "decode_tokens": self.query.decode_tokens}

    # ------------------------------------------------------------------ metrics

    @property
    def ttft_s(self) -> Optional[float]:
        """Time from arrival to the first generated token."""
        if self.first_token_time_s is None:
            return None
        return self.first_token_time_s - self.arrival_time_s

    @property
    def queueing_delay_s(self) -> Optional[float]:
        if self.admitted_time_s is None:
            return None
        return self.admitted_time_s - self.arrival_time_s

    @property
    def latency_s(self) -> Optional[float]:
        """End-to-end query latency (arrival to last token)."""
        if self.finish_time_s is None:
            return None
        return self.finish_time_s - self.arrival_time_s

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServingRequest(request_id={self.request_id}, "
            f"state={self.state.name}, context={self.context_length})"
        )
