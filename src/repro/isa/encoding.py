"""Textual trace encoding of CENT programs.

Each instruction is serialised as its assembly mnemonic followed by
``field=value`` pairs, one instruction per line.  The format round-trips
exactly (``decode(encode(p)) == p`` field-by-field) and is the interchange
format written by the compiler and read by the benchmark harness, standing in
for the binary trace files of the paper's artifact.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Type

from repro.isa.instructions import (
    Accumulation,
    ActivationFunction,
    BroadcastCxl,
    CopyBankToGlobalBuffer,
    CopyGlobalBufferToBank,
    ElementwiseMul,
    Exponent,
    Instruction,
    MacAllBank,
    Opcode,
    ReadMacRegister,
    ReadSingleBank,
    RecvCxl,
    Reduction,
    RiscvOp,
    SendCxl,
    WriteAllBanks,
    WriteBias,
    WriteGlobalBuffer,
    WriteSingleBank,
)
from repro.isa.program import Program

__all__ = ["encode_instruction", "decode_instruction", "encode_program", "decode_program"]

_OPCODE_TO_CLASS: Dict[Opcode, Type[Instruction]] = {
    Opcode.MAC_ABK: MacAllBank,
    Opcode.EW_MUL: ElementwiseMul,
    Opcode.AF: ActivationFunction,
    Opcode.EXP: Exponent,
    Opcode.RED: Reduction,
    Opcode.ACC: Accumulation,
    Opcode.RISCV: RiscvOp,
    Opcode.SEND_CXL: SendCxl,
    Opcode.RECV_CXL: RecvCxl,
    Opcode.BCAST_CXL: BroadcastCxl,
    Opcode.WR_SBK: WriteSingleBank,
    Opcode.RD_SBK: ReadSingleBank,
    Opcode.WR_ABK: WriteAllBanks,
    Opcode.COPY_BKGB: CopyBankToGlobalBuffer,
    Opcode.COPY_GBBK: CopyGlobalBufferToBank,
    Opcode.WR_BIAS: WriteBias,
    Opcode.RD_MAC: ReadMacRegister,
    Opcode.WR_GB: WriteGlobalBuffer,
}


def encode_instruction(instruction: Instruction) -> str:
    """Serialise one instruction to a single trace line."""
    fields = []
    for f in dataclasses.fields(instruction):
        value = getattr(instruction, f.name)
        fields.append(f"{f.name}={value}")
    return " ".join([instruction.opcode.value] + fields)


def decode_instruction(line: str) -> Instruction:
    """Parse one trace line back into an instruction."""
    parts = line.split()
    if not parts:
        raise ValueError("cannot decode an empty trace line")
    try:
        opcode = Opcode(parts[0])
    except ValueError as exc:
        raise ValueError(f"unknown opcode {parts[0]!r}") from exc
    cls = _OPCODE_TO_CLASS[opcode]
    kwargs = {}
    valid_fields = {f.name: f for f in dataclasses.fields(cls)}
    for token in parts[1:]:
        if "=" not in token:
            raise ValueError(f"malformed field token {token!r} in line {line!r}")
        name, raw = token.split("=", 1)
        if name not in valid_fields:
            raise ValueError(f"field {name!r} is not valid for opcode {opcode.value}")
        field_type = valid_fields[name].type
        if field_type in ("int", int):
            kwargs[name] = int(raw)
        else:
            kwargs[name] = raw
    return cls(**kwargs)


def encode_program(program: Program) -> str:
    """Serialise a program to trace text; the first line holds the label."""
    lines = [f"# program: {program.label}"]
    lines.extend(encode_instruction(inst) for inst in program)
    return "\n".join(lines) + "\n"


def decode_program(text: str) -> Program:
    """Parse trace text produced by :func:`encode_program`."""
    label = "program"
    instructions = []
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("#"):
            if "program:" in stripped:
                label = stripped.split("program:", 1)[1].strip()
            continue
        instructions.append(decode_instruction(stripped))
    return Program(label=label, instructions=instructions)
