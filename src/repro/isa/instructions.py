"""CENT instruction dataclasses.

Field names follow the assembly syntax of Tables 2 and 3:

* ``ch_mask`` — bitmask of PIM channels the PIM decoder broadcasts micro-ops
  to (``CHmask``).
* ``op_size`` — number of micro-ops generated from the instruction, each
  targeting the next shared-buffer slot / DRAM column (``OPsize``).
* ``row`` / ``column`` — DRAM row and starting column (``RO``, ``CO``).
* ``reg_id`` — accumulation register inside the near-bank PU (``Regid``).
* ``af_id`` — activation-function table selector (``AFid``).
* ``rd`` / ``rs`` — destination / source shared-buffer slot addresses.
* ``device_id`` / ``device_count`` — CXL destination device id (``DVid``) or
  broadcast fan-out (``DVcount``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import ClassVar

__all__ = [
    "Opcode",
    "Instruction",
    "MacAllBank",
    "ElementwiseMul",
    "ActivationFunction",
    "Exponent",
    "Reduction",
    "Accumulation",
    "RiscvOp",
    "SendCxl",
    "RecvCxl",
    "BroadcastCxl",
    "WriteSingleBank",
    "ReadSingleBank",
    "WriteAllBanks",
    "CopyBankToGlobalBuffer",
    "CopyGlobalBufferToBank",
    "WriteBias",
    "ReadMacRegister",
    "WriteGlobalBuffer",
]


class Opcode(enum.Enum):
    """Assembly mnemonics of the CENT ISA."""

    MAC_ABK = "MAC_ABK"
    EW_MUL = "EW_MUL"
    AF = "AF"
    EXP = "EXP"
    RED = "RED"
    ACC = "ACC"
    RISCV = "RISCV"
    SEND_CXL = "SEND_CXL"
    RECV_CXL = "RECV_CXL"
    BCAST_CXL = "BCAST_CXL"
    WR_SBK = "WR_SBK"
    RD_SBK = "RD_SBK"
    WR_ABK = "WR_ABK"
    COPY_BKGB = "COPY_BKGB"
    COPY_GBBK = "COPY_GBBK"
    WR_BIAS = "WR_BIAS"
    RD_MAC = "RD_MAC"
    WR_GB = "WR_GB"

    @property
    def is_arithmetic(self) -> bool:
        return self in (Opcode.MAC_ABK, Opcode.EW_MUL, Opcode.AF,
                        Opcode.EXP, Opcode.RED, Opcode.ACC, Opcode.RISCV)

    @property
    def is_pim(self) -> bool:
        """Instructions executed by the near-bank PUs / PIM channels."""
        return self in (Opcode.MAC_ABK, Opcode.EW_MUL, Opcode.AF,
                        Opcode.WR_SBK, Opcode.RD_SBK, Opcode.WR_ABK,
                        Opcode.COPY_BKGB, Opcode.COPY_GBBK,
                        Opcode.WR_BIAS, Opcode.RD_MAC, Opcode.WR_GB)

    @property
    def is_pnm(self) -> bool:
        """Instructions executed by the PNM accelerators / RISC-V cores."""
        return self in (Opcode.EXP, Opcode.RED, Opcode.ACC, Opcode.RISCV)

    @property
    def is_cxl(self) -> bool:
        """Inter-device communication instructions."""
        return self in (Opcode.SEND_CXL, Opcode.RECV_CXL, Opcode.BCAST_CXL)


@dataclass
class Instruction:
    """Base class of all CENT instructions."""

    opcode: ClassVar[Opcode]

    @property
    def micro_op_count(self) -> int:
        """Number of micro-ops the decoder expands this instruction into."""
        return getattr(self, "op_size", 1)


# --------------------------------------------------------------------------- PIM arithmetic

@dataclass
class MacAllBank(Instruction):
    """``MAC_ABK CHmask OPsize RO CO Regid`` — one MAC sweep across all banks
    of the selected channels, ``op_size`` consecutive columns starting at
    (``row``, ``column``), accumulating into register ``reg_id``."""

    opcode: ClassVar[Opcode] = Opcode.MAC_ABK
    ch_mask: int = 1
    op_size: int = 1
    row: int = 0
    column: int = 0
    reg_id: int = 0

    def __post_init__(self) -> None:
        _require_positive("op_size", self.op_size)
        _require_mask("ch_mask", self.ch_mask)
        if not 0 <= self.reg_id < 32:
            raise ValueError(f"reg_id must be in [0, 32), got {self.reg_id}")


@dataclass
class ElementwiseMul(Instruction):
    """``EW_MUL CHmask OPsize RO CO`` — element-wise multiply of two banks in
    each bank group, result stored in a third bank of the group."""

    opcode: ClassVar[Opcode] = Opcode.EW_MUL
    ch_mask: int = 1
    op_size: int = 1
    row: int = 0
    column: int = 0

    def __post_init__(self) -> None:
        _require_positive("op_size", self.op_size)
        _require_mask("ch_mask", self.ch_mask)


@dataclass
class ActivationFunction(Instruction):
    """``AF CHmask AFid Regid`` — lookup-table activation applied to the value
    in accumulation register ``reg_id``."""

    opcode: ClassVar[Opcode] = Opcode.AF
    ch_mask: int = 1
    af_id: int = 0
    reg_id: int = 0

    def __post_init__(self) -> None:
        _require_mask("ch_mask", self.ch_mask)
        if self.af_id < 0:
            raise ValueError("af_id must be non-negative")


# --------------------------------------------------------------------------- PNM arithmetic

@dataclass
class Exponent(Instruction):
    """``EXP OPsize Rd Rs`` — exponent of 16 BF16 lanes per shared-buffer slot."""

    opcode: ClassVar[Opcode] = Opcode.EXP
    op_size: int = 1
    rd: int = 0
    rs: int = 0

    def __post_init__(self) -> None:
        _require_positive("op_size", self.op_size)


@dataclass
class Reduction(Instruction):
    """``RED OPsize Rd Rs`` — reduce 16 BF16 lanes of each slot to one value."""

    opcode: ClassVar[Opcode] = Opcode.RED
    op_size: int = 1
    rd: int = 0
    rs: int = 0

    def __post_init__(self) -> None:
        _require_positive("op_size", self.op_size)


@dataclass
class Accumulation(Instruction):
    """``ACC OPsize Rd Rs`` — lane-wise accumulation of two slots."""

    opcode: ClassVar[Opcode] = Opcode.ACC
    op_size: int = 1
    rd: int = 0
    rs: int = 0

    def __post_init__(self) -> None:
        _require_positive("op_size", self.op_size)


@dataclass
class RiscvOp(Instruction):
    """``RISCV OPsize PC Rd Rs`` — run a RISC-V routine starting at ``pc``.

    ``routine`` names the functional behaviour (for the functional simulator)
    such as ``"sqrt_inv"``, ``"softmax_scale"``, ``"rope_pack"``,
    ``"rope_unpack"`` or ``"residual_add"``.
    """

    opcode: ClassVar[Opcode] = Opcode.RISCV
    op_size: int = 1
    pc: int = 0
    rd: int = 0
    rs: int = 0
    routine: str = "generic"

    def __post_init__(self) -> None:
        _require_positive("op_size", self.op_size)


# --------------------------------------------------------------------------- CXL data movement

@dataclass
class SendCxl(Instruction):
    """``SEND_CXL DVid Rs Rd`` — non-blocking send of one shared-buffer slot
    range to device ``device_id``."""

    opcode: ClassVar[Opcode] = Opcode.SEND_CXL
    device_id: int = 0
    rs: int = 0
    rd: int = 0
    num_slots: int = 1

    def __post_init__(self) -> None:
        _require_positive("num_slots", self.num_slots)
        if self.device_id < 0:
            raise ValueError("device_id must be non-negative")


@dataclass
class RecvCxl(Instruction):
    """``RECV_CXL`` — blocking receive; no device id (sender order is
    inconsequential)."""

    opcode: ClassVar[Opcode] = Opcode.RECV_CXL
    num_slots: int = 1

    def __post_init__(self) -> None:
        _require_positive("num_slots", self.num_slots)


@dataclass
class BroadcastCxl(Instruction):
    """``BCAST_CXL DVcount Rs Rd`` — broadcast to ``device_count`` subsequent
    devices via the reserved H-slot code of the PBR flit."""

    opcode: ClassVar[Opcode] = Opcode.BCAST_CXL
    device_count: int = 1
    rs: int = 0
    rd: int = 0
    num_slots: int = 1

    def __post_init__(self) -> None:
        _require_positive("device_count", self.device_count)
        _require_positive("num_slots", self.num_slots)


# --------------------------------------------------------------------------- intra-device data movement

@dataclass
class WriteSingleBank(Instruction):
    """``WR_SBK CHid OPsize BK RO CO Rs`` — shared buffer -> one DRAM bank."""

    opcode: ClassVar[Opcode] = Opcode.WR_SBK
    ch_id: int = 0
    op_size: int = 1
    bank: int = 0
    row: int = 0
    column: int = 0
    rs: int = 0

    def __post_init__(self) -> None:
        _require_positive("op_size", self.op_size)


@dataclass
class ReadSingleBank(Instruction):
    """``RD_SBK CHid OPsize BK RO CO Rd`` — one DRAM bank -> shared buffer."""

    opcode: ClassVar[Opcode] = Opcode.RD_SBK
    ch_id: int = 0
    op_size: int = 1
    bank: int = 0
    row: int = 0
    column: int = 0
    rd: int = 0

    def __post_init__(self) -> None:
        _require_positive("op_size", self.op_size)


@dataclass
class WriteAllBanks(Instruction):
    """``WR_ABK CHid RO CO Rs Regid`` — scatter the 16 BF16 elements of one
    shared-buffer slot to the same (row, column) of all 16 banks."""

    opcode: ClassVar[Opcode] = Opcode.WR_ABK
    ch_id: int = 0
    row: int = 0
    column: int = 0
    rs: int = 0
    reg_id: int = 0


@dataclass
class CopyBankToGlobalBuffer(Instruction):
    """``COPY_BKGB CHmask OPsize RO CO`` — bank -> global buffer copy."""

    opcode: ClassVar[Opcode] = Opcode.COPY_BKGB
    ch_mask: int = 1
    op_size: int = 1
    row: int = 0
    column: int = 0

    def __post_init__(self) -> None:
        _require_positive("op_size", self.op_size)
        _require_mask("ch_mask", self.ch_mask)


@dataclass
class CopyGlobalBufferToBank(Instruction):
    """``COPY_GBBK CHmask OPsize RO CO`` — global buffer -> bank copy."""

    opcode: ClassVar[Opcode] = Opcode.COPY_GBBK
    ch_mask: int = 1
    op_size: int = 1
    row: int = 0
    column: int = 0

    def __post_init__(self) -> None:
        _require_positive("op_size", self.op_size)
        _require_mask("ch_mask", self.ch_mask)


@dataclass
class WriteBias(Instruction):
    """``WR_BIAS CHmask Rs`` — initialise the accumulation registers."""

    opcode: ClassVar[Opcode] = Opcode.WR_BIAS
    ch_mask: int = 1
    rs: int = 0

    def __post_init__(self) -> None:
        _require_mask("ch_mask", self.ch_mask)


@dataclass
class ReadMacRegister(Instruction):
    """``RD_MAC CHmask Rd Regid`` — read accumulation registers to the shared
    buffer."""

    opcode: ClassVar[Opcode] = Opcode.RD_MAC
    ch_mask: int = 1
    rd: int = 0
    reg_id: int = 0

    def __post_init__(self) -> None:
        _require_mask("ch_mask", self.ch_mask)


@dataclass
class WriteGlobalBuffer(Instruction):
    """``WR_GB CHmask OPsize CO Rs`` — shared buffer -> global buffer."""

    opcode: ClassVar[Opcode] = Opcode.WR_GB
    ch_mask: int = 1
    op_size: int = 1
    column: int = 0
    rs: int = 0

    def __post_init__(self) -> None:
        _require_positive("op_size", self.op_size)
        _require_mask("ch_mask", self.ch_mask)


# --------------------------------------------------------------------------- validation helpers

def _require_positive(name: str, value: int) -> None:
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")


def _require_mask(name: str, value: int) -> None:
    if value <= 0:
        raise ValueError(f"{name} must select at least one channel, got {value}")
