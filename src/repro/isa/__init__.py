"""CENT instruction set architecture.

The CENT ISA (paper §4.3, Tables 2 and 3) has two instruction classes:

* **Arithmetic** instructions executed by near-bank PUs (``MAC_ABK``,
  ``EW_MUL``, ``AF``) and PNM units (``EXP``, ``RED``, ``ACC``, ``RISCV``).
* **Data movement** instructions between CXL devices (``SEND_CXL``,
  ``RECV_CXL``, ``BCAST_CXL``), between the shared buffer and DRAM banks
  (``WR_SBK``, ``RD_SBK``, ``WR_ABK``), between the global buffer and banks
  (``COPY_BKGB``, ``COPY_GBBK``), and between the shared buffer and PUs /
  global buffer (``WR_BIAS``, ``RD_MAC``, ``WR_GB``).

Instructions are plain dataclasses; a :class:`~repro.isa.program.Program` is
an ordered container with static statistics, and ``repro.isa.encoding``
serialises programs to/from a textual trace format compatible with the
assembly mnemonics of the paper.
"""

from repro.isa.instructions import (
    Opcode,
    Instruction,
    MacAllBank,
    ElementwiseMul,
    ActivationFunction,
    Exponent,
    Reduction,
    Accumulation,
    RiscvOp,
    SendCxl,
    RecvCxl,
    BroadcastCxl,
    WriteSingleBank,
    ReadSingleBank,
    WriteAllBanks,
    CopyBankToGlobalBuffer,
    CopyGlobalBufferToBank,
    WriteBias,
    ReadMacRegister,
    WriteGlobalBuffer,
)
from repro.isa.program import Program, ProgramStats
from repro.isa.encoding import encode_program, decode_program, encode_instruction, decode_instruction

__all__ = [
    "Opcode",
    "Instruction",
    "MacAllBank",
    "ElementwiseMul",
    "ActivationFunction",
    "Exponent",
    "Reduction",
    "Accumulation",
    "RiscvOp",
    "SendCxl",
    "RecvCxl",
    "BroadcastCxl",
    "WriteSingleBank",
    "ReadSingleBank",
    "WriteAllBanks",
    "CopyBankToGlobalBuffer",
    "CopyGlobalBufferToBank",
    "WriteBias",
    "ReadMacRegister",
    "WriteGlobalBuffer",
    "Program",
    "ProgramStats",
    "encode_program",
    "decode_program",
    "encode_instruction",
    "decode_instruction",
]
