"""Program container and static statistics for CENT instruction traces."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

from repro.isa.instructions import Instruction, Opcode

__all__ = ["Program", "ProgramStats"]


@dataclass
class ProgramStats:
    """Static statistics of a program, independent of any timing model."""

    instruction_counts: Dict[Opcode, int] = field(default_factory=dict)
    micro_op_counts: Dict[Opcode, int] = field(default_factory=dict)

    def record(self, instruction: Instruction) -> None:
        opcode = instruction.opcode
        self.instruction_counts[opcode] = self.instruction_counts.get(opcode, 0) + 1
        self.micro_op_counts[opcode] = (
            self.micro_op_counts.get(opcode, 0) + instruction.micro_op_count
        )

    @property
    def total_instructions(self) -> int:
        return sum(self.instruction_counts.values())

    @property
    def total_micro_ops(self) -> int:
        return sum(self.micro_op_counts.values())

    def count(self, opcode: Opcode) -> int:
        return self.instruction_counts.get(opcode, 0)

    def micro_ops(self, opcode: Opcode) -> int:
        return self.micro_op_counts.get(opcode, 0)

    def mac_fraction(self) -> float:
        """Fraction of arithmetic micro-ops that are MAC operations.

        The paper observes that MAC operations constitute over 99% of the
        arithmetic operations of a transformer block; this statistic lets
        tests check the same property on compiled programs.
        """
        arithmetic = sum(
            count for opcode, count in self.micro_op_counts.items() if opcode.is_arithmetic
        )
        if arithmetic == 0:
            return 0.0
        macs = self.micro_op_counts.get(Opcode.MAC_ABK, 0) + self.micro_op_counts.get(
            Opcode.EW_MUL, 0
        )
        return macs / arithmetic


class Program:
    """An ordered list of CENT instructions with a label and static stats."""

    def __init__(self, label: str = "program", instructions: Optional[Iterable[Instruction]] = None) -> None:
        self.label = label
        self._instructions: List[Instruction] = []
        self.stats = ProgramStats()
        if instructions is not None:
            for instruction in instructions:
                self.append(instruction)

    def append(self, instruction: Instruction) -> None:
        if not isinstance(instruction, Instruction):
            raise TypeError(f"expected an Instruction, got {type(instruction).__name__}")
        self._instructions.append(instruction)
        self.stats.record(instruction)

    def extend(self, instructions: Iterable[Instruction]) -> None:
        for instruction in instructions:
            self.append(instruction)

    def concat(self, other: "Program") -> "Program":
        """Return a new program with ``other`` appended after ``self``."""
        combined = Program(label=f"{self.label}+{other.label}")
        combined.extend(self._instructions)
        combined.extend(other._instructions)
        return combined

    def filter(self, predicate) -> "Program":
        """Return a new program containing the instructions matching
        ``predicate``."""
        result = Program(label=f"{self.label}[filtered]")
        result.extend(inst for inst in self._instructions if predicate(inst))
        return result

    @property
    def instructions(self) -> List[Instruction]:
        return list(self._instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def __len__(self) -> int:
        return len(self._instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self._instructions[index]

    def __repr__(self) -> str:
        return f"Program(label={self.label!r}, instructions={len(self)})"
