"""Automatic plan selection.

The planner reproduces the choices the paper makes: pipeline parallelism for
throughput-critical serving, tensor parallelism for latency-critical serving,
and the PP + DP combination used by the scalability study (Figure 19), where
devices beyond what pipeline parallelism can use efficiently are filled with
additional data-parallel replicas and leftover devices stay idle rather than
splitting a block across devices.
"""

from __future__ import annotations

from typing import List

from repro.mapping.parallelism import (
    DataParallel,
    ParallelismPlan,
    TensorParallel,
)
from repro.mapping.placement import validate_capacity
from repro.models.config import ModelConfig

__all__ = ["plan_for_throughput", "plan_for_latency", "scalability_plans"]


def plan_for_throughput(
    model: ModelConfig,
    num_devices: int,
    channels_per_device: int = 32,
    context_length: int | None = None,
) -> ParallelismPlan:
    """Pipeline-parallel plan with as many data-parallel replicas as the
    device count supports without splitting any block across devices."""
    if num_devices <= 0:
        raise ValueError("num_devices must be positive")
    # Throughput is proportional to the number of replicas times the channels
    # each block receives (more channels -> proportionally shorter pipeline
    # stages).  Among the capacity-feasible replica counts, pick the best
    # score; ties favour fewer replicas (lower query latency), which matches
    # the paper's "PP first, then DP as the system scales" methodology.
    best: ParallelismPlan | None = None
    best_score = -1
    for replicas in range(1, num_devices + 1):
        if num_devices % replicas != 0:
            continue
        plan = DataParallel(num_devices, model, dp_replicas=replicas,
                            channels_per_device=channels_per_device)
        try:
            validate_capacity(model, plan, context_length)
        except MemoryError:
            break
        score = replicas * plan.fc_channels_per_block(model)
        if score > best_score:
            best = plan
            best_score = score
    if best is None:
        raise MemoryError(
            f"{model.name} does not fit on {num_devices} devices in any "
            "pipeline-parallel configuration"
        )
    return best


def plan_for_latency(
    model: ModelConfig,
    num_devices: int,
    channels_per_device: int = 32,
    context_length: int | None = None,
) -> ParallelismPlan:
    """Tensor-parallel plan across all devices (latency-critical serving)."""
    plan = TensorParallel(num_devices, channels_per_device=channels_per_device)
    validate_capacity(model, plan, context_length)
    return plan


def scalability_plans(
    model: ModelConfig,
    device_counts: List[int],
    channels_per_device: int = 32,
) -> List[ParallelismPlan]:
    """One throughput plan per device count (Figure 19 sweep)."""
    return [
        plan_for_throughput(model, devices, channels_per_device=channels_per_device)
        for devices in device_counts
    ]
