"""Capacity validation and block placement.

A pipeline stage must never be split across two CXL devices (paper §5.1), and
the weights plus the KV caches of every in-flight query must fit in the PIM
channels assigned to the block.  ``validate_capacity`` performs that check;
``placement_for`` returns the per-block placement summary used by the
performance model and by the examples to report where a model landed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.dram.geometry import ChannelGeometry, GDDR6_PIM_GEOMETRY
from repro.mapping.parallelism import ParallelismPlan
from repro.models.config import ModelConfig
from repro.models.memory import ModelMemoryProfile

__all__ = ["BlockPlacement", "validate_capacity", "placement_for"]


@dataclass(frozen=True)
class BlockPlacement:
    """Where one transformer block lives and what it must store."""

    block_index: int
    device_index: int
    fc_channels: int
    attention_channels: int
    weight_bytes: int
    kv_cache_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.weight_bytes + self.kv_cache_bytes


def _per_block_bytes(
    model: ModelConfig,
    plan: ParallelismPlan,
    context_length: int,
    kv_occupancy: float = 1.0,
) -> tuple:
    """(weight bytes, KV bytes) one block must store, before channel sharding.

    ``kv_occupancy`` scales the aggregate KV footprint of the in-flight
    queries; 1.0 reserves the full context for every query, lower values model
    vLLM-style on-demand allocation where the in-flight queries are staggered
    across their generation progress.
    """
    if not 0 < kv_occupancy <= 1:
        raise ValueError("kv_occupancy must be in (0, 1]")
    profile = ModelMemoryProfile(model)
    weight_bytes = profile.block_parameter_bytes
    kv_per_query = profile.kv_cache_bytes_per_block_per_query(context_length)
    # Every in-flight query of the replica keeps its KV cache at the block.
    kv_bytes = int(kv_per_query * plan.pp_stages * kv_occupancy)
    return weight_bytes, kv_bytes


def validate_capacity(
    model: ModelConfig,
    plan: ParallelismPlan,
    context_length: int | None = None,
    geometry: ChannelGeometry = GDDR6_PIM_GEOMETRY,
    kv_occupancy: float = 1.0,
) -> None:
    """Raise ``MemoryError`` if the plan cannot hold the model.

    ``context_length`` defaults to the model's maximum supported context.
    """
    if context_length is None:
        context_length = model.max_context
    weight_bytes, kv_bytes = _per_block_bytes(model, plan, context_length, kv_occupancy)
    channel_capacity = geometry.channel_capacity_bytes

    if plan.is_tensor_parallel:
        # Weights are sharded across all tp devices; KV caches live on the
        # master device of each stage group.
        blocks_per_stage = plan.blocks_per_stage(model)
        weight_per_device = blocks_per_stage * weight_bytes // plan.tp_devices
        kv_per_device = blocks_per_stage * kv_bytes
        device_capacity = plan.channels_per_device * channel_capacity
        if weight_per_device + kv_per_device > device_capacity:
            raise MemoryError(
                f"{plan.name}: a stage's master device needs "
                f"{(weight_per_device + kv_per_device) / 2**30:.1f} GiB but provides "
                f"{device_capacity / 2**30:.1f} GiB"
            )
        return

    channels = plan.fc_channels_per_block(model)
    block_capacity = channels * channel_capacity
    if weight_bytes + kv_bytes > block_capacity:
        raise MemoryError(
            f"{plan.name}: one block of {model.name} needs "
            f"{(weight_bytes + kv_bytes) / 2**30:.2f} GiB "
            f"(weights {weight_bytes / 2**30:.2f} GiB + KV {kv_bytes / 2**30:.2f} GiB) "
            f"but its {channels} channels provide {block_capacity / 2**30:.2f} GiB"
        )


def placement_for(
    model: ModelConfig,
    plan: ParallelismPlan,
    context_length: int | None = None,
) -> List[BlockPlacement]:
    """Return the placement of every transformer block under ``plan``."""
    if context_length is None:
        context_length = model.max_context
    validate_capacity(model, plan, context_length)
    weight_bytes, kv_bytes = _per_block_bytes(model, plan, context_length)
    fc_channels = plan.fc_channels_per_block(model)
    attention_channels = plan.attention_channels_per_block(model)

    placements: List[BlockPlacement] = []
    if plan.is_tensor_parallel:
        blocks_per_stage = plan.blocks_per_stage(model)
        for block in range(model.num_layers):
            stage = block // blocks_per_stage
            master_device = stage * plan.tp_devices
            placements.append(BlockPlacement(
                block_index=block,
                device_index=master_device,
                fc_channels=fc_channels,
                attention_channels=attention_channels,
                weight_bytes=weight_bytes,
                kv_cache_bytes=kv_bytes,
            ))
        return placements

    blocks_per_device = plan.blocks_per_device(model)
    for block in range(model.num_layers):
        device = block // blocks_per_device
        placements.append(BlockPlacement(
            block_index=block,
            device_index=device,
            fc_channels=fc_channels,
            attention_channels=attention_channels,
            weight_bytes=weight_bytes,
            kv_cache_bytes=kv_bytes,
        ))
    return placements
