"""Parallelisation plans: pipeline, tensor, hybrid and data parallelism."""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Tuple

from repro.models.config import ModelConfig

__all__ = [
    "ParallelismPlan",
    "PipelineParallel",
    "TensorParallel",
    "HybridParallel",
    "DataParallel",
]

#: Bytes of a BF16 element, used for embedding-vector transfer sizes.
_BYTES_PER_ELEMENT = 2


@lru_cache(maxsize=512)
def _blocks_per_stage(num_layers: int, pp_stages: int) -> int:
    """Ceil-divided blocks per pipeline stage, memoized across plans.

    ``ParallelismPlan.blocks_per_stage`` sits on the serving engine's
    per-request, per-iteration path (via ``stage_latency_s``); keying the
    cache on the two scalars keeps it shared across equal plans without
    holding references to ``ModelConfig`` instances.
    """
    return -(-num_layers // pp_stages)


@dataclass(frozen=True)
class ParallelismPlan:
    """How a model is distributed across the CXL devices.

    Attributes
    ----------
    name:
        Human-readable plan name, e.g. ``"PP=80"`` or ``"PP=4 TP=8"``.
    num_devices:
        Total CXL devices available to the plan (all replicas).
    tp_devices:
        Devices one transformer block spans.  ``1`` means the block lives
        inside a single device (pure pipeline parallelism).
    pp_stages:
        Pipeline stages per replica; equals the number of queries processed
        concurrently by one replica.
    dp_replicas:
        Independent model replicas (data parallelism).
    channels_per_device:
        PIM channels per CXL device (32 in the paper's configuration).
    """

    name: str
    num_devices: int
    tp_devices: int = 1
    pp_stages: int = 1
    dp_replicas: int = 1
    channels_per_device: int = 32

    def __post_init__(self) -> None:
        if self.num_devices <= 0 or self.channels_per_device <= 0:
            raise ValueError("device and channel counts must be positive")
        if self.tp_devices <= 0 or self.pp_stages <= 0 or self.dp_replicas <= 0:
            raise ValueError("parallelism degrees must be positive")
        if self.tp_devices * self.dp_replicas > self.num_devices:
            raise ValueError(
                f"plan {self.name!r} needs at least "
                f"{self.tp_devices * self.dp_replicas} devices, has {self.num_devices}"
            )

    # ------------------------------------------------------------------ structure

    @property
    def devices_per_replica(self) -> int:
        return self.num_devices // self.dp_replicas

    @property
    def is_tensor_parallel(self) -> bool:
        return self.tp_devices > 1

    @property
    def queries_in_flight(self) -> int:
        """Concurrent queries across all replicas (the CENT batch size)."""
        return self.pp_stages * self.dp_replicas

    def blocks_per_stage(self, model: ModelConfig) -> int:
        """Transformer blocks executed sequentially within one pipeline stage."""
        return _blocks_per_stage(model.num_layers, self.pp_stages)

    def blocks_per_device(self, model: ModelConfig) -> int:
        """Blocks whose weights (or weight shards) live on one device."""
        if self.is_tensor_parallel:
            # Every device of a stage group holds a 1/tp_devices shard of each
            # block assigned to that stage.
            return self.blocks_per_stage(model)
        devices = min(self.devices_per_replica, model.num_layers)
        return -(-model.num_layers // devices)

    def devices_used(self, model: ModelConfig) -> int:
        """Devices actually carrying weights (idle devices excluded)."""
        if self.is_tensor_parallel:
            return self.tp_devices * self.dp_replicas
        per_device = self.blocks_per_device(model)
        return min(self.devices_per_replica, -(-model.num_layers // per_device)) * self.dp_replicas

    # ------------------------------------------------------------------ compute resources

    def fc_channels_per_block(self, model: ModelConfig) -> int:
        """PIM channels executing the fully-connected GEMVs of one block."""
        if self.is_tensor_parallel:
            return self.tp_devices * self.channels_per_device
        per_device = self.blocks_per_device(model)
        return max(self.channels_per_device // per_device, 1)

    def attention_channels_per_block(self, model: ModelConfig) -> int:
        """PIM channels executing the attention layer of one block.

        Tensor parallelism confines attention (and the KV caches) to the
        master device of the block to avoid AllReduce traffic (paper §5.2).
        """
        if self.is_tensor_parallel:
            return self.channels_per_device
        return self.fc_channels_per_block(model)

    # ------------------------------------------------------------------ communication

    def cxl_transfers_per_block(self, model: ModelConfig) -> List[Tuple[str, int, int]]:
        """CXL traffic of one block: a list of (primitive, bytes, fan-out).

        * Pure PP: one peer-to-peer send/receive of the embedding vector per
          block boundary (16 KB for Llama2-70B), and only when the next stage
          lives on a different device.
        * TP / hybrid: before each group of sharded FC layers the embedding
          vector is broadcast (or multicast within the stage's device group),
          and the partial results are gathered back to the master device.
        """
        embedding_bytes = model.d_model * _BYTES_PER_ELEMENT
        if not self.is_tensor_parallel:
            blocks_on_device = self.blocks_per_device(model)
            # Only the last block of a device hands off to another device.
            if blocks_on_device <= 0:
                return []
            cross_device_fraction = 1.0 / blocks_on_device
            return [("send_receive", int(embedding_bytes * cross_device_fraction), 1)]
        fan_out = self.tp_devices - 1
        if fan_out <= 0:
            return []
        primitive = "broadcast" if self.pp_stages == 1 else "multicast"
        transfers: List[Tuple[str, int, int]] = []
        # Four broadcast points per block: attention input (shared by Q/K/V),
        # attention output projection input, FFN input (shared by W1/W3) and
        # the W2 input; each followed by a gather of the sharded outputs.
        ffn_out_bytes = model.d_ff * _BYTES_PER_ELEMENT
        for gathered_bytes in (embedding_bytes, embedding_bytes, ffn_out_bytes, embedding_bytes):
            transfers.append((primitive, embedding_bytes, fan_out))
            transfers.append(("gather", gathered_bytes // max(self.tp_devices, 1), fan_out))
        return transfers


# ----------------------------------------------------------------------------- factories

def PipelineParallel(
    num_devices: int,
    model: ModelConfig,
    channels_per_device: int = 32,
    dp_replicas: int = 1,
) -> ParallelismPlan:
    """Pure pipeline parallelism: one pipeline stage per transformer block."""
    return ParallelismPlan(
        name=f"PP={model.num_layers}" + (f" DP={dp_replicas}" if dp_replicas > 1 else ""),
        num_devices=num_devices,
        tp_devices=1,
        pp_stages=model.num_layers,
        dp_replicas=dp_replicas,
        channels_per_device=channels_per_device,
    )


def TensorParallel(
    num_devices: int,
    channels_per_device: int = 32,
) -> ParallelismPlan:
    """Pure tensor parallelism: every block spans all devices, batch of one."""
    return ParallelismPlan(
        name=f"TP={num_devices}",
        num_devices=num_devices,
        tp_devices=num_devices,
        pp_stages=1,
        channels_per_device=channels_per_device,
    )


def HybridParallel(
    num_devices: int,
    tp_devices: int,
    channels_per_device: int = 32,
) -> ParallelismPlan:
    """Hybrid TP-PP: each pipeline stage spans ``tp_devices`` devices."""
    if num_devices % tp_devices != 0:
        raise ValueError(
            f"hybrid mapping needs num_devices ({num_devices}) divisible by "
            f"tp_devices ({tp_devices})"
        )
    pp_stages = num_devices // tp_devices
    return ParallelismPlan(
        name=f"PP={pp_stages} TP={tp_devices}",
        num_devices=num_devices,
        tp_devices=tp_devices,
        pp_stages=pp_stages,
        channels_per_device=channels_per_device,
    )


def DataParallel(
    num_devices: int,
    model: ModelConfig,
    dp_replicas: int,
    channels_per_device: int = 32,
) -> ParallelismPlan:
    """Data parallelism over pipeline-parallel replicas (scalability study)."""
    if num_devices % dp_replicas != 0:
        raise ValueError("num_devices must be divisible by dp_replicas")
    return PipelineParallel(
        num_devices, model, channels_per_device=channels_per_device, dp_replicas=dp_replicas
    )
