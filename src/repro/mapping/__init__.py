"""LLM parallelisation mappings onto the CXL network (paper §5).

Three strategies distribute transformer blocks across CXL devices:

* **Pipeline parallel (PP)** — each block is a pipeline stage mapped to a
  group of PIM channels within one device; as many queries are in flight as
  there are stages, maximising throughput.
* **Tensor parallel (TP)** — each block is spread across all devices; the
  fully-connected layers are sharded and the embedding vector is broadcast /
  gathered through the CXL switch, minimising latency.
* **Hybrid TP-PP** — each pipeline stage spans several devices, trading
  throughput against latency.
* **Data parallel (DP)** — whole-model replicas, used by the scalability
  study to keep adding devices past the point where PP saturates.
"""

from repro.mapping.parallelism import (
    ParallelismPlan,
    PipelineParallel,
    TensorParallel,
    HybridParallel,
    DataParallel,
)
from repro.mapping.placement import BlockPlacement, validate_capacity, placement_for
from repro.mapping.planner import plan_for_throughput, plan_for_latency, scalability_plans

__all__ = [
    "ParallelismPlan",
    "PipelineParallel",
    "TensorParallel",
    "HybridParallel",
    "DataParallel",
    "BlockPlacement",
    "validate_capacity",
    "placement_for",
    "plan_for_throughput",
    "plan_for_latency",
    "scalability_plans",
]
