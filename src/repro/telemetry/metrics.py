"""Unified metrics namespace: counters, gauges and histograms.

Every scattered counter the stack accumulated over six PRs —
``num_preemptions`` here, ``migration_stall_s`` there — reads out through
one flat dotted namespace:

* ``serving.*``  — request lifecycle counters of one engine run
  (``serving.preemptions``, ``serving.swap_time_s``, …)
* ``kv.*``       — KV pool footprint (``kv.pool_occupancy``,
  ``kv.peak_memory_bytes``, …)
* ``cluster.*``  — control-plane totals (``cluster.rebalances``,
  ``cluster.migration_stall_s``, …)

:class:`MetricsRegistry` is deliberately dumb storage: counters are
monotonic floats, gauges are last-write-wins, histograms keep raw samples
(the simulator's epoch counts are small) and summarize on snapshot.  The
closed-loop controller snapshots the registry at every epoch boundary;
the snapshots ride on :class:`~repro.core.results.ClusterResult` as
``metrics_timeline``, and both result types expose their final counters
through a ``metrics`` property built on the same names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

__all__ = ["MetricsRegistry", "MetricsSnapshot"]


def _percentile(ordered: List[float], fraction: float) -> float:
    """Nearest-rank percentile over an already-sorted sample list."""
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


@dataclass(frozen=True)
class MetricsSnapshot:
    """Point-in-time read of every metric in the registry."""

    ts_s: float
    values: Mapping[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, float]:
        return dict(self.values)

    def __getitem__(self, name: str) -> float:
        return self.values[name]


class MetricsRegistry:
    """Counters / gauges / histograms behind one dotted namespace."""

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, List[float]] = {}
        #: Epoch-boundary snapshots, appended by :meth:`snapshot`.
        self.timeline: List[MetricsSnapshot] = []

    # ------------------------------------------------------------------ write

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Increment counter ``name`` (monotonic; negative amounts raise)."""
        if amount < 0:
            raise ValueError(f"counter {name!r} cannot decrease by {amount}")
        self._counters[name] = self._counters.get(name, 0.0) + amount

    def set_counter(self, name: str, value: float) -> None:
        """Set counter ``name`` to an externally-accumulated total.

        For subsystems that already fold their own sums (the engine's
        per-request counters): the registry still enforces monotonicity.
        """
        if value < self._counters.get(name, 0.0):
            raise ValueError(
                f"counter {name!r} cannot decrease to {value} "
                f"(currently {self._counters[name]})")
        self._counters[name] = float(value)

    def set_gauge(self, name: str, value: float) -> None:
        self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Add one sample to histogram ``name``."""
        self._histograms.setdefault(name, []).append(float(value))

    # ------------------------------------------------------------------ read

    def value(self, name: str) -> float:
        if name in self._counters:
            return self._counters[name]
        if name in self._gauges:
            return self._gauges[name]
        raise KeyError(name)

    def snapshot(self, ts_s: float, *, record: bool = True) -> MetricsSnapshot:
        """Freeze every metric; histograms summarize to
        ``name.count/mean/p50/p95/max``.  Appended to :attr:`timeline`
        unless ``record=False``."""
        values: Dict[str, float] = {}
        values.update(self._counters)
        values.update(self._gauges)
        for name, samples in self._histograms.items():
            ordered = sorted(samples)
            count = len(ordered)
            values[f"{name}.count"] = float(count)
            values[f"{name}.mean"] = (sum(ordered) / count) if count else 0.0
            values[f"{name}.p50"] = _percentile(ordered, 0.50)
            values[f"{name}.p95"] = _percentile(ordered, 0.95)
            values[f"{name}.max"] = ordered[-1] if ordered else 0.0
        frozen = MetricsSnapshot(ts_s=ts_s, values=values)
        if record:
            self.timeline.append(frozen)
        return frozen

    def timeline_tuple(self) -> Tuple[MetricsSnapshot, ...]:
        return tuple(self.timeline)
