"""``python -m repro.telemetry`` — summarize a saved JSONL trace.

Examples::

    python -m repro.telemetry trace.jsonl                 # overview + audits
    python -m repro.telemetry trace.jsonl --request 17    # one lifecycle
    python -m repro.telemetry trace.jsonl --epochs        # decision audit
    python -m repro.telemetry trace.jsonl --preemptions   # preempt chains
    python -m repro.telemetry trace.jsonl --attribution   # latency breakdown
    python -m repro.telemetry trace.jsonl --utilization   # busy/idle + KV
    python -m repro.telemetry trace.jsonl --slo           # replay SLO rules
    python -m repro.telemetry trace.jsonl --report out.html
"""

from __future__ import annotations

import argparse

from repro.telemetry.attribution import attribution_table, utilization_summary
from repro.telemetry.export import read_jsonl
from repro.telemetry.report import write_report
from repro.telemetry.slo import SloMonitor, default_rules, snapshots_from_trace
from repro.telemetry.summary import (
    epoch_audit,
    overview,
    preemption_chains,
    request_timeline,
)


def slo_replay(events, *, ttft_slo_s=None) -> str:
    """Replay the stock SLO rules over a saved trace's pseudo-snapshots."""
    snapshots = snapshots_from_trace(events)
    if not snapshots:
        return ("no cluster.epoch spans in this trace — SLO replay needs a "
                "closed-loop run")
    monitor = SloMonitor(default_rules(ttft_slo_s=ttft_slo_s))
    log = monitor.observe_timeline(snapshots)
    lines = [f"replayed {len(monitor.rules)} rules over "
             f"{len(snapshots)} epoch snapshots:"]
    lines.append(log.describe())
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Summarize a telemetry JSONL trace "
                    "(written by repro.telemetry.export.write_jsonl).")
    parser.add_argument("trace", help="path to the JSONL event log")
    parser.add_argument("--request", type=int, default=None, metavar="ID",
                        help="print one request's lifecycle timeline "
                             "(follows live migrations across replicas)")
    parser.add_argument("--scope", default=None,
                        help="scope (replica) the --request id belongs to; "
                             "defaults to the first scope that saw it")
    parser.add_argument("--epochs", action="store_true",
                        help="print only the epoch decision audit")
    parser.add_argument("--preemptions", action="store_true",
                        help="print only the preemption chains")
    parser.add_argument("--attribution", action="store_true",
                        help="per-request latency breakdown "
                             "(queued/prefill/decode walls, slowest first)")
    parser.add_argument("--utilization", action="store_true",
                        help="per-scope busy/idle accounting, KV-pool "
                             "occupancy and CXL-link traffic")
    parser.add_argument("--slo", action="store_true",
                        help="replay the stock SLO rules over the trace's "
                             "epoch snapshots and print the alert log")
    parser.add_argument("--ttft-slo", type=float, default=None, metavar="S",
                        help="arm the TTFT-p99 rule of --slo against this "
                             "target (seconds)")
    parser.add_argument("--report", default=None, metavar="PATH",
                        help="write the self-contained HTML report "
                             "(attribution + utilization + SLO + timeline)")
    args = parser.parse_args(argv)

    events = read_jsonl(args.trace)
    sections = []
    if args.request is not None:
        sections.append(request_timeline(events, args.request,
                                         scope=args.scope))
    if args.epochs:
        sections.append(epoch_audit(events))
    if args.preemptions:
        sections.append(preemption_chains(events))
    if args.attribution:
        sections.append(attribution_table(events))
    if args.utilization:
        sections.append(utilization_summary(events))
    if args.slo:
        sections.append(slo_replay(events, ttft_slo_s=args.ttft_slo))
    if args.report is not None:
        sections.append(
            f"wrote {write_report(args.report, events, title=args.trace)}")
    if not sections:
        sections = [overview(events), "", epoch_audit(events), "",
                    preemption_chains(events)]
    try:
        print("\n".join(sections))
    except BrokenPipeError:
        # Piping into e.g. ``head`` closes stdout early; exit quietly like
        # other line-oriented tools instead of tracebacking.
        import os
        import sys
        sys.stderr.close()
        os._exit(0)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
