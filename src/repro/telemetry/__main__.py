"""``python -m repro.telemetry`` — summarize a saved JSONL trace.

Examples::

    python -m repro.telemetry trace.jsonl                 # overview + audits
    python -m repro.telemetry trace.jsonl --request 17    # one lifecycle
    python -m repro.telemetry trace.jsonl --epochs        # decision audit
    python -m repro.telemetry trace.jsonl --preemptions   # preempt chains
"""

from __future__ import annotations

import argparse

from repro.telemetry.export import read_jsonl
from repro.telemetry.summary import (
    epoch_audit,
    overview,
    preemption_chains,
    request_timeline,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Summarize a telemetry JSONL trace "
                    "(written by repro.telemetry.export.write_jsonl).")
    parser.add_argument("trace", help="path to the JSONL event log")
    parser.add_argument("--request", type=int, default=None, metavar="ID",
                        help="print one request's lifecycle timeline "
                             "(follows live migrations across replicas)")
    parser.add_argument("--scope", default=None,
                        help="scope (replica) the --request id belongs to; "
                             "defaults to the first scope that saw it")
    parser.add_argument("--epochs", action="store_true",
                        help="print only the epoch decision audit")
    parser.add_argument("--preemptions", action="store_true",
                        help="print only the preemption chains")
    args = parser.parse_args(argv)

    events = read_jsonl(args.trace)
    sections = []
    if args.request is not None:
        sections.append(request_timeline(events, args.request,
                                         scope=args.scope))
    if args.epochs:
        sections.append(epoch_audit(events))
    if args.preemptions:
        sections.append(preemption_chains(events))
    if not sections:
        sections = [overview(events), "", epoch_audit(events), "",
                    preemption_chains(events)]
    try:
        print("\n".join(sections))
    except BrokenPipeError:
        # Piping into e.g. ``head`` closes stdout early; exit quietly like
        # other line-oriented tools instead of tracebacking.
        import os
        import sys
        sys.stderr.close()
        os._exit(0)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
