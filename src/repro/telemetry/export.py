"""Trace exporters: Chrome/Perfetto ``trace_event`` JSON and JSONL.

The Perfetto export maps the recorder's structure onto the trace-event
model the way production serving dashboards do:

* each **scope** (a cluster replica, the control plane) is a *process*
  (``pid``), named by a ``process_name`` metadata event;
* track 0 of each scope is the **engine track**: decode/prefill window
  spans and any event not tied to a request;
* each **request** gets its own track (``tid = request_id + 1``) carrying
  derived lifecycle slices — ``queued`` → ``prefill`` → ``decode`` —
  with nested ``preempted`` slices and instant markers for evictions,
  resumes and live migrations;
* the queue-depth signal becomes a per-process **counter track**.

Timestamps are microseconds (the trace-event unit); the whole file is the
``{"traceEvents": [...]}`` JSON object form, loadable in
``chrome://tracing`` or https://ui.perfetto.dev.

The JSONL export is the lossless form: one event per line, time-ordered,
which ``python -m repro.telemetry`` consumes.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

from repro.telemetry.recorder import ScopedRecorder, TraceRecorder

__all__ = [
    "perfetto_trace",
    "read_jsonl",
    "write_jsonl",
    "write_perfetto",
]

_US = 1e6  # seconds -> trace-event microseconds

#: Request-lifecycle event names (emitted by the serving engine) that the
#: Perfetto export derives phase slices from.
_LIFECYCLE = ("request.queued", "request.admitted", "request.first_token",
              "request.finished", "request.rejected", "request.resume",
              "request.migrate_out", "request.migrate_in", "serving.preempt")


def _jsonable(value: Any) -> Any:
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return value


def _request_slices(scope: ScopedRecorder) -> List[Dict[str, Any]]:
    """Derive per-request phase slices from the scope's lifecycle events."""
    marks: Dict[int, Dict[str, float]] = {}
    preempts: Dict[int, List[float]] = {}
    resumes: Dict[int, List[float]] = {}
    last_seen: Dict[int, float] = {}
    for event in scope.events:
        rid = event.request_id
        if rid is None:
            continue
        last_seen[rid] = max(last_seen.get(rid, event.ts_s), event.end_s)
        if event.name == "serving.preempt":
            preempts.setdefault(rid, []).append(event.ts_s)
        elif event.name == "request.resume":
            resumes.setdefault(rid, []).append(event.ts_s)
        elif event.name in _LIFECYCLE:
            marks.setdefault(rid, {})[event.name] = event.ts_s

    slices: List[Dict[str, Any]] = []
    for rid, seen in sorted(marks.items()):
        tid = rid + 1
        end = seen.get("request.finished",
                       seen.get("request.migrate_out",
                                seen.get("request.rejected",
                                         last_seen[rid])))

        def phase(name: str, start: Optional[float],
                  stop: Optional[float]) -> None:
            if start is None or stop is None or stop < start:
                return
            slices.append({"ph": "X", "name": name, "pid": scope.pid,
                           "tid": tid, "ts": start * _US,
                           "dur": (stop - start) * _US,
                           "cat": "request"})

        queued = seen.get("request.queued", seen.get("request.migrate_in"))
        admitted = seen.get("request.admitted", seen.get("request.resume"))
        first = seen.get("request.first_token")
        phase("queued", queued, admitted if admitted is not None else end)
        phase("prefill", admitted, first if first is not None else end)
        phase("decode", first if first is not None else admitted, end)
        for start, stop in zip(preempts.get(rid, []),
                               resumes.get(rid, []) + [end],
                               strict=False):
            phase("preempted", start, stop)
    return slices


def perfetto_trace(recorder: TraceRecorder) -> Dict[str, Any]:
    """Render the whole session as a ``trace_event`` JSON object."""
    recorder.finalize()
    events: List[Dict[str, Any]] = []
    for scope in recorder.scopes:
        events.append({"ph": "M", "name": "process_name", "pid": scope.pid,
                       "tid": 0, "args": {"name": scope.name}})
        events.append({"ph": "M", "name": "process_sort_index",
                       "pid": scope.pid, "tid": 0,
                       "args": {"sort_index": scope.pid}})
        events.append({"ph": "M", "name": "thread_name", "pid": scope.pid,
                       "tid": 0, "args": {"name": "engine"}})
        request_ids = sorted({event.request_id for event in scope.events
                              if event.request_id is not None})
        for rid in request_ids:
            events.append({"ph": "M", "name": "thread_name",
                           "pid": scope.pid, "tid": rid + 1,
                           "args": {"name": f"request {rid}"}})
        for event in scope.events:
            tid = 0 if event.request_id is None else event.request_id + 1
            args = _jsonable(event.args) if event.args else {}
            if event.request_id is not None:
                args.setdefault("request_id", event.request_id)
            if event.dur_s is not None:
                events.append({"ph": "X", "name": event.name,
                               "pid": scope.pid, "tid": tid,
                               "ts": event.ts_s * _US,
                               "dur": event.dur_s * _US,
                               "cat": event.name.split(".")[0],
                               "args": args})
            else:
                events.append({"ph": "i", "name": event.name,
                               "pid": scope.pid, "tid": tid,
                               "ts": event.ts_s * _US, "s": "t",
                               "cat": event.name.split(".")[0],
                               "args": args})
        events.extend(_request_slices(scope))
        for ts_s, queued, running in scope.queue_signal:
            events.append({"ph": "C", "name": "queue_depth",
                           "pid": scope.pid, "tid": 0, "ts": ts_s * _US,
                           "args": {"queued": queued, "running": running}})
    events.sort(key=lambda item: (item.get("ts", -1.0), item["pid"]))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_perfetto(recorder: TraceRecorder, path: str) -> int:
    """Write the Perfetto JSON trace; returns the number of trace events."""
    trace = perfetto_trace(recorder)
    with open(path, "w") as handle:
        json.dump(trace, handle)
    return len(trace["traceEvents"])


def write_jsonl(recorder: TraceRecorder, path: str, *,
                include_queue_signal: bool = False) -> int:
    """Write the lossless JSONL event log (one event per line,
    time-ordered).  ``include_queue_signal`` additionally emits one
    ``engine.queue_sample`` line per queue-depth sample (off by default:
    large traces carry far more samples than events)."""
    count = 0
    with open(path, "w") as handle:
        lines: List[Dict[str, Any]] = []
        for scope, event in recorder.iter_events():
            record = {"scope": scope.name, "pid": scope.pid}
            record.update(event.to_dict())
            if event.args:
                record["args"] = _jsonable(event.args)
            lines.append(record)
        if include_queue_signal:
            for scope in recorder.scopes:
                for ts_s, queued, running in scope.queue_signal:
                    lines.append({"scope": scope.name, "pid": scope.pid,
                                  "name": "engine.queue_sample", "ts_s": ts_s,
                                  "args": {"queued": queued,
                                           "running": running}})
            lines.sort(key=lambda item: (item["ts_s"], item["pid"]))
        for record in lines:
            handle.write(json.dumps(record) + "\n")
            count += 1
    return count


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Load a JSONL event log back into a list of event dicts."""
    events = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def iter_scope_events(recorder: TraceRecorder) -> Iterable[Dict[str, Any]]:
    """In-memory equivalent of ``write_jsonl`` + ``read_jsonl``."""
    for scope, event in recorder.iter_events():
        record = {"scope": scope.name, "pid": scope.pid}
        record.update(event.to_dict())
        if event.args:
            record["args"] = _jsonable(event.args)
        yield record
