"""Time and resource attribution: where did the simulated seconds go?

The dynamic-serving generalisation of the paper's static analyses: the
per-request latency breakdown (Fig 14c decomposed per *phase* instead of
per hardware block) and the device-utilization accounting (Fig 2, measured
over an event-driven run instead of a closed-form batch).

Two complementary inputs:

* :func:`attribute_run` consumes an :class:`~repro.serving.engine.EngineRun`
  (the object ``ServingEngine.simulate`` returns) and decomposes **exact
  simulated time**: each finished request's latency splits into
  queued / prefill / prefill-stall / decode-stall / decode segments, each
  replica's makespan into prefill / decode / idle, and the CXL link's
  swap/migration traffic is totalled.  It needs no trace — the engine's
  per-request counters carry everything — so it works identically on
  traced and untraced, scalar and vectorized runs.
* :func:`attribute_trace` consumes the flat JSONL event dicts
  (``read_jsonl`` / ``iter_scope_events``) so ``python -m repro.telemetry``
  can answer the same questions about any *saved* trace: per-request
  phase walls with preempted overlays, per-scope busy/idle from the
  coalesced window spans, the KV block-pool occupancy timeline from the
  ``kv.*`` events, and CXL-link bytes from swap/migration records.

**Conservation invariant.**  Attribution that silently loses time is worse
than none: every :class:`RequestAttribution`'s segments sum *bit-exactly*
to its measured latency, and every :class:`ReplicaAttribution`'s segments
to its makespan.  The final segment of each decomposition is computed as
the residual of the same left-to-right fold ``segment_sum_s`` performs, so
the identity holds by construction — and :func:`verify_conservation`
(called by :func:`attribute_run` itself) additionally cross-checks the
residual against its independent closed form, so a subsystem that forgets
to account a stall fails loudly instead of shifting time into "decode".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "ConservationError",
    "LinkAttribution",
    "ReplicaAttribution",
    "RequestAttribution",
    "RunAttribution",
    "TraceAttribution",
    "attribute_run",
    "attribute_trace",
    "attribution_table",
    "utilization_summary",
    "verify_conservation",
]

Event = Dict[str, Any]

#: Tolerance of the *cross-check* between a residual segment and its
#: independent closed form (never of the conservation identity itself,
#: which is exact): generous against float noise, far below any real
#: unaccounted stall.
_CROSS_CHECK_TOL_S = 1e-6


class ConservationError(AssertionError):
    """A time decomposition failed to add up to the measured total."""


# ---------------------------------------------------------------------------
# exact attribution over an EngineRun
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RequestAttribution:
    """One finished request's latency, decomposed.

    ``queued + prefill + prefill_stall + decode_stall + decode`` summed
    left to right reproduces ``latency_s`` bit-exactly (``decode_s`` is
    the residual of that fold).  The stall segments are the request's
    off-device time (eviction to decode-ready, swap-in drain, recompute
    rebuild) split at the first token; ``swap_s`` is the request's CXL
    time and overlaps the stalls, so it is reported alongside rather than
    summed.
    """

    request_id: int
    arrival_s: float
    latency_s: float
    queued_s: float
    prefill_s: float
    prefill_stall_s: float
    decode_stall_s: float
    decode_s: float
    #: CXL time of this request's swap-outs and swap-ins (informational).
    swap_s: float
    num_preemptions: int
    migrated_count: int

    #: Segment order of the conservation fold.
    SEGMENT_KINDS = ("queued", "prefill", "prefill_stall",
                     "decode_stall", "decode")

    @property
    def segments(self) -> Tuple[Tuple[str, float], ...]:
        return (("queued", self.queued_s),
                ("prefill", self.prefill_s),
                ("prefill_stall", self.prefill_stall_s),
                ("decode_stall", self.decode_stall_s),
                ("decode", self.decode_s))

    @property
    def segment_sum_s(self) -> float:
        """Left-to-right fold of the segments (the conserved total)."""
        total = 0.0
        for _, seconds in self.segments:
            total += seconds
        return total


@dataclass(frozen=True)
class ReplicaAttribution:
    """One replica's makespan, decomposed into busy and idle time.

    ``prefill_busy + decode_busy + idle`` summed left to right reproduces
    ``makespan_s`` bit-exactly (``idle_s`` is the fold's residual).  Idle
    covers everything the engine did not spend in iterations: arrival
    gaps, swap serialisation, weight-reload stalls.
    """

    name: str
    makespan_s: float
    prefill_busy_s: float
    decode_busy_s: float
    idle_s: float

    @property
    def segments(self) -> Tuple[Tuple[str, float], ...]:
        return (("prefill", self.prefill_busy_s),
                ("decode", self.decode_busy_s),
                ("idle", self.idle_s))

    @property
    def segment_sum_s(self) -> float:
        total = 0.0
        for _, seconds in self.segments:
            total += seconds
        return total

    @property
    def busy_fraction(self) -> float:
        if self.makespan_s <= 0:
            return 0.0
        return (self.prefill_busy_s + self.decode_busy_s) / self.makespan_s


@dataclass(frozen=True)
class LinkAttribution:
    """CXL-link traffic of a run: swap restores plus live migrations."""

    #: Link time spent staging KV out and back (summed over requests).
    swap_busy_s: float
    num_swap_outs: int
    num_swap_ins: int
    #: KV bytes that travelled through host memory for live migrations.
    migrated_kv_bytes: int
    num_migrated_in: int


@dataclass(frozen=True)
class RunAttribution:
    """Full attribution of one engine run (conservation-verified)."""

    replica: ReplicaAttribution
    #: One row per *finished* request, in request-id order; unfinished and
    #: rejected requests have no complete latency to decompose and are
    #: counted instead.
    requests: Tuple[RequestAttribution, ...]
    num_requests: int
    num_finished: int
    num_rejected: int
    num_unfinished: int
    link: LinkAttribution

    def totals(self) -> Dict[str, float]:
        """Summed request segments (seconds per kind, across requests)."""
        sums = {kind: 0.0 for kind in RequestAttribution.SEGMENT_KINDS}
        for row in self.requests:
            for kind, seconds in row.segments:
                sums[kind] += seconds
        return sums


def _residual(total: float, acc: float) -> float:
    """The final segment that makes ``acc``'s fold reach ``total`` exactly.

    ``total - acc`` is the residual up to one rounding of the re-fold
    ``acc + residual``; a couple of Dekker-style corrections pin
    ``acc + residual == total`` bit-exactly whenever ``acc`` and
    ``total`` are of comparable magnitude (always true for non-negative
    segments).  :func:`verify_conservation` remains the backstop for the
    pathological magnitudes where no exact residual exists.
    """
    residual = total - acc
    for _ in range(4):
        if acc + residual == total:
            break
        residual += total - (acc + residual)
    # A round-to-even tie can leave ``acc + residual`` oscillating one ulp
    # around ``total`` with no exact fixed point; callers therefore report
    # the re-fold ``acc + residual`` as the conserved total, which equals
    # the measured one whenever an exact residual exists and is one ulp
    # off in the tie cases.
    return residual


def _attribute_request(request) -> Optional[RequestAttribution]:
    """Decompose one finished :class:`ServingRequest`; None if unfinished."""
    finish = request.finish_time_s
    if finish is None:
        return None
    arrival = request.arrival_time_s
    admitted = request.admitted_time_s
    first = request.first_token_time_s
    latency = finish - arrival
    prefill_stall = request.prefill_stall_s
    decode_stall = request.stall_s - request.prefill_stall_s
    # The conservation fold: decode is the residual of the exact
    # left-to-right sum, so segment_sum_s reproduces latency bit-exactly.
    acc = 0.0
    queued = admitted - arrival
    acc += queued
    prefill = (first - admitted) - prefill_stall
    acc += prefill
    acc += prefill_stall
    acc += decode_stall
    decode = _residual(latency, acc)
    row = RequestAttribution(
        request_id=request.request_id,
        arrival_s=arrival,
        # The conserved total is the fold itself (``acc + decode`` is the
        # same operation sequence ``segment_sum_s`` performs), equal to
        # the measured ``finish - arrival`` up to the tie ulp.
        latency_s=acc + decode,
        queued_s=queued,
        prefill_s=prefill,
        prefill_stall_s=prefill_stall,
        decode_stall_s=decode_stall,
        decode_s=decode,
        swap_s=request.swap_time_s,
        num_preemptions=request.preempted_count,
        migrated_count=request.migrated_count,
    )
    # Cross-check the residual against its independent closed form: any
    # real unaccounted time (a stall path missing its accrual) lands here.
    direct = (finish - first) - decode_stall
    if abs(decode - direct) > _CROSS_CHECK_TOL_S * max(1.0, abs(latency)):
        raise ConservationError(
            f"request {request.request_id}: residual decode segment "
            f"{decode:.9f}s disagrees with (finish - first_token) - "
            f"decode_stall = {direct:.9f}s — unaccounted time in the run")
    return row


def attribute_run(run, *, name: str = "engine") -> RunAttribution:
    """Exact time attribution of one :class:`~repro.serving.engine.EngineRun`.

    Works identically on traced and untraced, scalar and vectorized runs:
    everything derives from the engine's per-request timing marks and
    counters, never from the event stream.  The result is conservation-
    verified before it is returned.
    """
    from repro.serving.request import RequestState

    rows: List[RequestAttribution] = []
    num_rejected = 0
    swap_busy = 0.0
    swap_outs = swap_ins = 0
    migrated_bytes = 0
    migrated_in = 0
    for request in run.requests:
        swap_busy += request.swap_time_s
        swap_outs += request.num_swap_outs
        swap_ins += request.num_swap_ins
        if request.state is RequestState.REJECTED:
            num_rejected += 1
            continue
        if request.migrated_count:
            migrated_bytes += request.migrated_kv_bytes
            migrated_in += 1
        row = _attribute_request(request)
        if row is not None:
            rows.append(row)

    makespan = run.makespan_s
    acc = 0.0
    prefill_busy = run.prefill_time_s
    acc += prefill_busy
    decode_busy = run.decode_time_s
    acc += decode_busy
    idle = _residual(makespan, acc)
    replica = ReplicaAttribution(
        name=name,
        makespan_s=acc + idle,
        prefill_busy_s=prefill_busy,
        decode_busy_s=decode_busy,
        idle_s=idle,
    )

    attribution = RunAttribution(
        replica=replica,
        requests=tuple(rows),
        num_requests=len(run.requests),
        num_finished=len(rows),
        num_rejected=num_rejected,
        num_unfinished=len(run.requests) - len(rows) - num_rejected,
        link=LinkAttribution(
            swap_busy_s=swap_busy,
            num_swap_outs=swap_outs,
            num_swap_ins=swap_ins,
            migrated_kv_bytes=migrated_bytes,
            num_migrated_in=migrated_in,
        ),
    )
    verify_conservation(attribution)
    return attribution


def verify_conservation(attribution: RunAttribution) -> None:
    """Raise :class:`ConservationError` unless every decomposition adds up.

    Checks, bit-exactly: each request's segment fold equals its measured
    latency, and the replica's segment fold equals its makespan.  Also
    rejects meaningfully negative segments (a negative residual beyond
    float noise means some other segment was over-charged).
    """
    problems: List[str] = []
    for row in attribution.requests:
        if row.segment_sum_s != row.latency_s:
            problems.append(
                f"request {row.request_id}: segments sum to "
                f"{row.segment_sum_s!r}, latency is {row.latency_s!r}")
        for kind, seconds in row.segments:
            if seconds < -_CROSS_CHECK_TOL_S:
                problems.append(
                    f"request {row.request_id}: negative {kind} segment "
                    f"{seconds!r}")
    replica = attribution.replica
    if replica.segment_sum_s != replica.makespan_s:
        problems.append(
            f"replica {replica.name}: segments sum to "
            f"{replica.segment_sum_s!r}, makespan is {replica.makespan_s!r}")
    for kind, seconds in replica.segments:
        if seconds < -_CROSS_CHECK_TOL_S:
            problems.append(
                f"replica {replica.name}: negative {kind} segment "
                f"{seconds!r}")
    if problems:
        raise ConservationError(
            "time attribution does not conserve:\n  " + "\n  ".join(problems))


# ---------------------------------------------------------------------------
# post-hoc attribution over a saved trace
# ---------------------------------------------------------------------------

_WINDOW_KINDS = {
    "engine.decode_window": "decode",
    "engine.prefill_window": "prefill",
    "engine.mixed_window": "mixed",
}


@dataclass(frozen=True)
class TraceAttribution:
    """Post-hoc attribution of a saved JSONL trace.

    ``request_rows`` carry phase *walls* (queued: arrival→admission,
    prefill: admission→first token, decode: first token→finish) per scope,
    with the preempted overlay summed from preempt→resume pairs — the
    same derivation as the Perfetto request tracks.  ``scope_busy`` maps
    each scope to its summed window-span seconds per kind plus the scope's
    observed time range; ``kv_occupancy`` maps each scope to a
    ``(ts_s, used_fraction)`` timeline.
    """

    #: ``{scope: {"decode": s, "prefill": s, "mixed": s,
    #:            "start_s": t0, "end_s": t1}}``
    scope_busy: Dict[str, Dict[str, float]]
    #: One dict per request per scope: scope, request_id, queued_s,
    #: prefill_s, decode_s, preempted_s, finished.
    request_rows: Tuple[Dict[str, Any], ...]
    #: ``{scope: [(ts_s, used_fraction), ...]}`` from the kv.* events.
    kv_occupancy: Dict[str, List[Tuple[float, float]]]
    #: KV bytes staged over the CXL link (evictions + readmissions).
    link_swap_bytes: int
    #: KV bytes live migrations moved through host memory.
    link_migrated_bytes: int

    def scope_utilization(self, scope: str) -> float:
        busy = self.scope_busy.get(scope)
        if not busy:
            return 0.0
        span = busy["end_s"] - busy["start_s"]
        if span <= 0:
            return 0.0
        return (busy["decode"] + busy["prefill"] + busy["mixed"]) / span


def _scope_busy(events: Sequence[Event]) -> Dict[str, Dict[str, float]]:
    busy: Dict[str, Dict[str, float]] = {}
    for event in events:
        scope = event["scope"]
        entry = busy.setdefault(scope, {"decode": 0.0, "prefill": 0.0,
                                        "mixed": 0.0, "start_s": event["ts_s"],
                                        "end_s": event["ts_s"]})
        entry["start_s"] = min(entry["start_s"], event["ts_s"])
        entry["end_s"] = max(entry["end_s"],
                             event["ts_s"] + event.get("dur_s", 0.0))
        kind = _WINDOW_KINDS.get(event["name"])
        if kind is not None:
            entry[kind] += event.get("dur_s", 0.0)
    return busy


def _request_rows(events: Sequence[Event]) -> List[Dict[str, Any]]:
    marks: Dict[Tuple[str, int], Dict[str, float]] = {}
    preempts: Dict[Tuple[str, int], List[float]] = {}
    resumes: Dict[Tuple[str, int], List[float]] = {}
    last_seen: Dict[Tuple[str, int], float] = {}
    for event in events:
        rid = event.get("request_id")
        if rid is None or event["name"].startswith("cluster."):
            continue
        key = (event["scope"], rid)
        end = event["ts_s"] + event.get("dur_s", 0.0)
        last_seen[key] = max(last_seen.get(key, end), end)
        if event["name"] == "serving.preempt":
            preempts.setdefault(key, []).append(event["ts_s"])
        elif event["name"] == "request.resume":
            resumes.setdefault(key, []).append(event["ts_s"])
        elif event["name"].startswith("request."):
            marks.setdefault(key, {}).setdefault(event["name"],
                                                 event["ts_s"])

    rows: List[Dict[str, Any]] = []
    for key in sorted(marks):
        scope, rid = key
        seen = marks[key]
        arrival = seen.get("request.queued", seen.get("request.migrate_in"))
        if arrival is None:
            continue
        finish = seen.get("request.finished")
        closed = seen.get("request.finished",
                          seen.get("request.migrate_out",
                                   seen.get("request.rejected",
                                            last_seen[key])))
        admitted = seen.get("request.admitted",
                            seen.get("request.resume", closed))
        first = seen.get("request.first_token")
        preempted = 0.0
        for start, stop in zip(preempts.get(key, []),
                               resumes.get(key, []) + [closed],
                               strict=False):
            preempted += max(stop - start, 0.0)
        rows.append({
            "scope": scope,
            "request_id": rid,
            "queued_s": max(admitted - arrival, 0.0),
            "prefill_s": max((first if first is not None else closed)
                             - admitted, 0.0),
            "decode_s": max(closed - first, 0.0) if first is not None else 0.0,
            "preempted_s": preempted,
            "finished": finish is not None,
        })
    return rows


def _kv_occupancy(events: Sequence[Event]) -> Tuple[
        Dict[str, List[Tuple[float, float]]], int]:
    """Per-scope occupancy timeline plus total CXL-staged KV bytes."""
    capacity: Dict[str, int] = {}
    block_bytes: Dict[str, int] = {}
    timelines: Dict[str, List[Tuple[float, float]]] = {}
    swap_bytes = 0
    for event in events:
        name = event["name"]
        if not name.startswith("kv."):
            continue
        scope = event["scope"]
        args = event.get("args") or {}
        if name == "kv.pool":
            capacity[scope] = int(args.get("total_blocks", 0))
            block_bytes[scope] = int(args.get("block_bytes", 0))
            continue
        free = args.get("free_blocks")
        if free is not None:
            # Without a kv.pool record (older traces) fall back to the
            # largest free count ever observed as the capacity estimate.
            total = capacity.get(scope, 0)
            if total <= 0:
                capacity[scope] = total = max(
                    int(free), capacity.get(scope, 0))
            used = max(total - int(free), 0)
            timelines.setdefault(scope, []).append(
                (event["ts_s"], used / total if total else 0.0))
        if name == "kv.evict":
            swap_bytes += int(args.get("staged_blocks", 0)) \
                * block_bytes.get(scope, 0)
        elif name == "kv.readmit":
            swap_bytes += int(args.get("blocks", 0)) \
                * block_bytes.get(scope, 0)
    return timelines, swap_bytes


def attribute_trace(events: Iterable[Event]) -> TraceAttribution:
    """Post-hoc attribution of a saved trace (JSONL event dicts)."""
    events = list(events)
    timelines, swap_bytes = _kv_occupancy(events)
    migrated = sum(int((event.get("args") or {}).get("kv_bytes", 0))
                   for event in events
                   if event["name"] == "cluster.migrate"
                   and (event.get("args") or {}).get("accepted", True))
    return TraceAttribution(
        scope_busy=_scope_busy(events),
        request_rows=tuple(_request_rows(events)),
        kv_occupancy=timelines,
        link_swap_bytes=swap_bytes,
        link_migrated_bytes=migrated,
    )


# ---------------------------------------------------------------------------
# text renderers (CLI + examples)
# ---------------------------------------------------------------------------


def attribution_table(events: Iterable[Event], *, top: int = 15) -> str:
    """Per-request latency breakdown of a saved trace, slowest first."""
    rows = attribute_trace(events).request_rows
    if not rows:
        return "no request lifecycle events recorded"
    ranked = sorted(
        rows, key=lambda row: -(row["queued_s"] + row["prefill_s"]
                                + row["decode_s"]))
    lines = [f"{len(rows)} request lifecycles "
             f"({sum(1 for r in rows if r['finished'])} finished); "
             f"slowest {min(top, len(ranked))} by wall time:",
             f"  {'scope':<14} {'req':>4}  {'queued':>9} {'prefill':>9} "
             f"{'decode':>9} {'preempted':>9}  total"]
    for row in ranked[:top]:
        total = row["queued_s"] + row["prefill_s"] + row["decode_s"]
        flag = "" if row["finished"] else "  (unfinished)"
        lines.append(
            f"  {row['scope']:<14} {row['request_id']:>4}  "
            f"{row['queued_s'] * 1e3:>7.1f}ms {row['prefill_s'] * 1e3:>7.1f}ms "
            f"{row['decode_s'] * 1e3:>7.1f}ms {row['preempted_s'] * 1e3:>7.1f}ms"
            f"  {total * 1e3:7.1f}ms{flag}")
    return "\n".join(lines)


def utilization_summary(events: Iterable[Event]) -> str:
    """Per-scope busy/idle accounting plus KV-pool and CXL-link activity."""
    attribution = attribute_trace(events)
    if not attribution.scope_busy:
        return "empty trace"
    lines = ["per-scope utilization (window-span seconds over observed span):",
             f"  {'scope':<14} {'span':>9} {'prefill':>9} {'decode':>9} "
             f"{'mixed':>9}  busy%"]
    for scope in sorted(attribution.scope_busy):
        busy = attribution.scope_busy[scope]
        span = busy["end_s"] - busy["start_s"]
        if busy["decode"] == 0.0 and busy["prefill"] == 0.0 \
                and busy["mixed"] == 0.0 and scope == "control":
            continue
        lines.append(
            f"  {scope:<14} {span:>8.3f}s {busy['prefill']:>8.3f}s "
            f"{busy['decode']:>8.3f}s {busy['mixed']:>8.3f}s "
            f"{attribution.scope_utilization(scope):>6.1%}")
    if attribution.kv_occupancy:
        lines.append("")
        lines.append("KV block-pool occupancy (fraction of pool blocks):")
        for scope in sorted(attribution.kv_occupancy):
            timeline = attribution.kv_occupancy[scope]
            total = 0.0
            for _, fraction in timeline:  # explicit left fold (float-fold)
                total += fraction
            mean = total / len(timeline)
            peak = max(f for _, f in timeline)
            lines.append(f"  {scope:<14} {len(timeline):>5} samples  "
                         f"mean {mean:>6.1%}  peak {peak:>6.1%}")
    lines.append("")
    lines.append(
        f"CXL link: {attribution.link_swap_bytes / 2**20:.1f} MiB KV "
        f"swapped (evict + readmit), "
        f"{attribution.link_migrated_bytes / 2**20:.1f} MiB live-migrated "
        "through host memory")
    return "\n".join(lines)
