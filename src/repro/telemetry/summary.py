"""Trace summarization behind ``python -m repro.telemetry``.

All functions operate on the flat event dicts the JSONL export produces
(``read_jsonl``) — ``{"scope", "pid", "name", "ts_s", "dur_s"?,
"request_id"?, "args"?}`` — so the CLI can audit any saved trace without
re-running the simulation.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "epoch_audit",
    "overview",
    "preemption_chains",
    "request_timeline",
]

Event = Dict[str, Any]


def _args(event: Event) -> Dict[str, Any]:
    return event.get("args") or {}


def overview(events: Iterable[Event]) -> str:
    """Event counts per name, per scope, plus the trace's time range."""
    events = list(events)
    if not events:
        return "empty trace"
    names = Counter(event["name"] for event in events)
    scopes = Counter(event["scope"] for event in events)
    start = min(event["ts_s"] for event in events)
    end = max(event["ts_s"] + event.get("dur_s", 0.0) for event in events)
    lines = [f"{len(events)} events across {len(scopes)} scopes, "
             f"t = {start:.3f}s .. {end:.3f}s", "", "by event type:"]
    for name, count in sorted(names.items()):
        lines.append(f"  {name:<28} {count:>7}")
    lines.append("")
    lines.append("by scope:")
    for scope, count in sorted(scopes.items()):
        lines.append(f"  {scope:<28} {count:>7}")
    return "\n".join(lines)


def request_timeline(events: Iterable[Event], request_id: int,
                     scope: Optional[str] = None) -> str:
    """Chronological walk of one request's events.

    Follows ``cluster.migrate`` correlation events across replicas: if the
    request was live-migrated, the timeline continues under the request id
    it received on the destination replica.
    """
    events = sorted(events, key=lambda event: event["ts_s"])
    if scope is None:
        for event in events:
            if event.get("request_id") == request_id:
                scope = event["scope"]
                break
        if scope is None:
            return f"request {request_id}: no events"

    lines: List[str] = []
    hops = 0
    while True:
        lines.append(f"[{scope}] request {request_id}:")
        migrated_to: Optional[Tuple[str, int]] = None
        for event in events:
            if event["scope"] != scope or event.get("request_id") != request_id:
                continue
            detail = ", ".join(f"{key}={value}" for key, value
                               in sorted(_args(event).items())
                               if key != "request_id")
            dur = event.get("dur_s")
            span = f" [{dur * 1e3:.2f} ms]" if dur is not None else ""
            lines.append(f"  t={event['ts_s']:10.4f}s  "
                         f"{event['name']:<24}{span}"
                         f"{'  ' + detail if detail else ''}")
        for event in events:
            if (event["name"] == "cluster.migrate"
                    and _args(event).get("source_scope") == scope
                    and _args(event).get("source_request") == request_id):
                migrated_to = (_args(event)["dest_scope"],
                               _args(event)["dest_request"])
                break
        if migrated_to is None or hops >= 8:
            break
        hops += 1
        scope, request_id = migrated_to
        lines.append(f"  -- live-migrated to {scope} "
                     f"as request {request_id} --")
    return "\n".join(lines)


def preemption_chains(events: Iterable[Event], *, top: int = 10) -> str:
    """Per-request preempt -> resume chains, longest chains first."""
    chains: Dict[Tuple[str, int], List[Event]] = defaultdict(list)
    for event in events:
        if event["name"] in ("serving.preempt", "request.resume"):
            chains[(event["scope"], event["request_id"])].append(event)
    if not chains:
        return "no preemptions recorded"
    ranked = sorted(chains.items(),
                    key=lambda item: -sum(entry["name"] == "serving.preempt"
                                          for entry in item[1]))
    lines = [f"{len(chains)} requests preempted; "
             f"longest chains:"]
    for (scope, rid), chain in ranked[:top]:
        chain.sort(key=lambda event: event["ts_s"])
        steps = []
        for event in chain:
            if event["name"] == "serving.preempt":
                kind = _args(event).get("kind", "evict")
                steps.append(f"preempt({kind})@{event['ts_s']:.3f}s")
            else:
                steps.append(f"resume@{event['ts_s']:.3f}s")
        lines.append(f"  [{scope}] request {rid}: " + " -> ".join(steps))
    return "\n".join(lines)


def epoch_audit(events: Iterable[Event]) -> str:
    """Control-plane decision audit: one line per epoch, with the
    projected-gain-vs-stall arithmetic of every applied rebalance."""
    epochs = [event for event in events if event["name"] == "cluster.epoch"]
    decisions = [event for event in events
                 if event["name"] == "cluster.rebalance"]
    if not epochs and not decisions:
        return "no control-plane events recorded"
    by_end: Dict[float, List[Event]] = defaultdict(list)
    for decision in decisions:
        by_end[decision["ts_s"]].append(decision)
    lines = [f"{len(epochs)} epochs, {len(decisions)} applied rebalances:"]
    for epoch in sorted(epochs, key=lambda event: event["ts_s"]):
        args = _args(epoch)
        end_s = epoch["ts_s"] + epoch.get("dur_s", 0.0)
        lines.append(f"  epoch {args.get('epoch', '?'):>3}  "
                     f"t={epoch['ts_s']:8.2f}s..{end_s:8.2f}s  "
                     f"goodput {args.get('goodput_tokens_per_s', 0.0):9.1f} "
                     f"tok/s  backlog {args.get('backlog', 0.0):7.1f}")
        for decision in by_end.get(end_s, []):
            d_args = _args(decision)
            gain = d_args.get("projected_gain_tokens", 0.0)
            cost = d_args.get("migration_cost_tokens", 0.0)
            lines.append(
                f"       -> REBALANCE: projected gain {gain:,.0f} tokens vs "
                f"migration cost {cost:,.0f} tokens "
                f"(stall {d_args.get('stall_s', 0.0):.2f}s, rebuilt "
                f"replicas {d_args.get('rebuilt', [])})")
    orphans = [decision for decision in decisions
               if not any(abs(decision["ts_s"] - (epoch["ts_s"]
                              + epoch.get("dur_s", 0.0))) < 1e-9
                          for epoch in epochs)]
    for decision in orphans:
        d_args = _args(decision)
        lines.append(f"  t={decision['ts_s']:8.2f}s  REBALANCE "
                     f"(gain {d_args.get('projected_gain_tokens', 0.0):,.0f} "
                     f"vs cost {d_args.get('migration_cost_tokens', 0.0):,.0f}"
                     f" tokens)")
    return "\n".join(lines)
