"""Typed span/event recording for the serving stack.

One :class:`TraceRecorder` collects everything a simulation emits: the
serving engine, the paged KV allocator, the cluster scheduler and the
closed-loop controller all write typed events into *scopes* — one
:class:`ScopedRecorder` per engine run (a cluster replica, the control
plane) — and the exporters (:mod:`repro.telemetry.export`) turn the scopes
into a Chrome/Perfetto trace or a JSONL event log.

Design rules (see CONTRIBUTING "Instrumenting a subsystem"):

* **Zero overhead when disabled.**  Tracing off means ``recorder is None``
  everywhere; every emission site is guarded by a single ``is not None``
  check and builds no args, so the vectorized fast-forward stays fully
  batched.
* **No per-token events.**  Decode/prefill iterations coalesce into
  *window* spans via :meth:`ScopedRecorder.window_step`: consecutive
  iterations with the same batch and a contiguous clock merge into one
  span, so the event-horizon fast-forward (which advances a whole window
  in one closed-form step) and the scalar reference loop (which walks the
  same window one iteration at a time) flush **identical** spans.  This is
  what keeps the scalar/vectorized trace-equivalence test honest.
* **Record each fact once.**  ``EngineState.preemption_log`` and
  ``queue_depth_timeline`` become views over the event stream when a
  recorder is attached (`serving.preempt` events / the scope's queue
  signal); the engine never double-writes.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["ScopedRecorder", "TraceEvent", "TraceRecorder"]

#: Event names whose ``(ts_s, request_id)`` pairs reconstruct the legacy
#: ``preemption_log`` exactly (one event per eviction, full or partial).
PREEMPTION_EVENT = "serving.preempt"


class TraceEvent:
    """One typed record: an instant (``dur_s is None``) or a span."""

    __slots__ = ("name", "ts_s", "dur_s", "request_id", "args")

    def __init__(
        self,
        name: str,
        ts_s: float,
        *,
        dur_s: Optional[float] = None,
        request_id: Optional[int] = None,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.ts_s = ts_s
        self.dur_s = dur_s
        self.request_id = request_id
        self.args = args

    @property
    def end_s(self) -> float:
        return self.ts_s if self.dur_s is None else self.ts_s + self.dur_s

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {"name": self.name, "ts_s": self.ts_s}
        if self.dur_s is not None:
            record["dur_s"] = self.dur_s
        if self.request_id is not None:
            record["request_id"] = self.request_id
        if self.args:
            record["args"] = self.args
        return record

    def _key(self) -> Tuple:
        args = self.args or {}
        return (self.name, self.ts_s, self.dur_s, self.request_id,
                tuple(sorted(args.items())))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceEvent):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dur = "" if self.dur_s is None else f", dur={self.dur_s:.6g}s"
        rid = "" if self.request_id is None else f", request={self.request_id}"
        return f"TraceEvent({self.name!r}, t={self.ts_s:.6g}s{dur}{rid})"


class ScopedRecorder:
    """Event sink for one engine run (one replica, or the control plane).

    Scopes are single-writer: the cluster's ``parallel_replicas`` executor
    advances each replica's engine on its own thread, and because every
    replica owns a distinct scope no recording path needs a lock.

    ``now_s`` mirrors the owning engine's clock so passive emitters that
    don't carry timestamps of their own (the KV allocator) can stamp their
    events; the engine updates it only while tracing is on.
    """

    __slots__ = ("session", "name", "pid", "events", "queue_signal",
                 "now_s", "_open_window", "_preempt_cache", "_preempt_seen")

    def __init__(self, session: "TraceRecorder", name: str, pid: int) -> None:
        self.session = session
        self.name = name
        self.pid = pid
        self.events: List[TraceEvent] = []
        #: ``(ts_s, queued, running)`` samples — the queue-depth timeline
        #: lives here (and only here) when tracing is on.
        self.queue_signal: List[Tuple[float, int, int]] = []
        self.now_s = 0.0
        # Open coalescing window: [kind, key, start_s, end_s, steps, tokens].
        self._open_window: Optional[list] = None
        self._preempt_cache: List[Tuple[float, int]] = []
        self._preempt_seen = 0

    # ------------------------------------------------------------------ emit

    def event(
        self,
        name: str,
        ts_s: float,
        request_id: Optional[int] = None,
        **args: Any,
    ) -> None:
        """Record an instant event."""
        self.events.append(TraceEvent(name, ts_s, request_id=request_id,
                                      args=args or None))

    def span(
        self,
        name: str,
        start_s: float,
        end_s: float,
        request_id: Optional[int] = None,
        **args: Any,
    ) -> None:
        """Record a completed span."""
        self.events.append(TraceEvent(name, start_s, dur_s=end_s - start_s,
                                      request_id=request_id,
                                      args=args or None))

    # ------------------------------------------------------ window coalescing

    def window_step(
        self,
        kind: str,
        key: Tuple,
        start_s: float,
        end_s: float,
        steps: int,
        tokens: int,
    ) -> None:
        """Merge one engine iteration (or a fast-forwarded window of
        ``steps`` iterations) into the open window span.

        Consecutive calls merge iff the kind and batch ``key`` match and the
        clock is contiguous (``start_s`` equals the open window's end,
        float-exactly); anything else flushes the open window as one
        ``engine.<kind>_window`` span and opens a new one.  The scalar loop
        calls this once per iteration, the fast-forward once per closed-form
        window — both collapse to the same final spans.
        """
        window = self._open_window
        if (window is not None and window[0] == kind and window[1] == key
                and window[3] == start_s):
            window[3] = end_s
            window[4] += steps
            window[5] += tokens
            return
        if window is not None:
            self._flush_window()
        self._open_window = [kind, key, start_s, end_s, steps, tokens]

    def _flush_window(self) -> None:
        kind, key, start_s, end_s, steps, tokens = self._open_window
        self._open_window = None
        decode_ids, prefill_ids = key
        args: Dict[str, Any] = {"steps": steps}
        if decode_ids:
            args["decode_batch"] = decode_ids
        if prefill_ids:
            args["prefill_batch"] = prefill_ids
            args["prefill_tokens"] = tokens
        self.events.append(TraceEvent(f"engine.{kind}_window", start_s,
                                      dur_s=end_s - start_s, args=args))

    def flush(self) -> None:
        """Flush the open window span, if any (end of run / export time)."""
        if self._open_window is not None:
            self._flush_window()

    # ------------------------------------------------------------ derived views

    def preemption_view(self) -> List[Tuple[float, int]]:
        """``(ts_s, request_id)`` per eviction — the legacy
        ``preemption_log``, derived from the event stream (cached by event
        count, so repeated reads stay O(new events))."""
        events = self.events
        if self._preempt_seen < len(events):
            for index in range(self._preempt_seen, len(events)):
                record = events[index]
                if record.name == PREEMPTION_EVENT:
                    self._preempt_cache.append((record.ts_s,
                                                record.request_id))
            self._preempt_seen = len(events)
        return self._preempt_cache


class TraceRecorder:
    """Root telemetry session: scopes plus the metrics registry.

    Pass one as ``telemetry=`` to :meth:`ServingEngine.simulate` /
    :meth:`ClusterEngine.run`; subsystems create scopes off it and the
    exporters consume it whole.
    """

    def __init__(self) -> None:
        from repro.telemetry.metrics import MetricsRegistry

        self.scopes: List[ScopedRecorder] = []
        self.metrics = MetricsRegistry()

    def scope(self, name: str) -> ScopedRecorder:
        """Create (and register) a new event scope — a Perfetto process."""
        scope = ScopedRecorder(self, name, pid=len(self.scopes) + 1)
        self.scopes.append(scope)
        return scope

    def finalize(self) -> None:
        """Flush every scope's open window span (idempotent)."""
        for scope in self.scopes:
            scope.flush()

    def iter_events(self) -> Iterator[Tuple[ScopedRecorder, TraceEvent]]:
        """All events, time-ordered (ties broken by pid, then emit order)."""
        self.finalize()
        flat = [(event.ts_s, scope.pid, seq, scope, event)
                for scope in self.scopes
                for seq, event in enumerate(scope.events)]
        flat.sort(key=lambda item: item[:3])
        for _, _, _, scope, event in flat:
            yield scope, event
