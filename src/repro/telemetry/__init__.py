"""Unified telemetry: request-lifecycle tracing, metrics, trace export.

Quickstart::

    from repro.telemetry import TraceRecorder, write_perfetto, write_jsonl

    recorder = TraceRecorder()
    run = engine.simulate(trace, sla_latency_s=30.0, telemetry=recorder)
    write_perfetto(recorder, "trace.json")    # chrome://tracing / Perfetto
    write_jsonl(recorder, "trace.jsonl")      # python -m repro.telemetry

The same ``telemetry=`` keyword threads through
:meth:`ClusterEngine.run`, where every replica (and the control plane)
records into its own scope — replicas render as processes in the
Perfetto UI, requests as tracks.
"""

from repro.telemetry.export import (
    perfetto_trace,
    read_jsonl,
    write_jsonl,
    write_perfetto,
)
from repro.telemetry.metrics import MetricsRegistry, MetricsSnapshot
from repro.telemetry.recorder import ScopedRecorder, TraceEvent, TraceRecorder
from repro.telemetry.summary import (
    epoch_audit,
    overview,
    preemption_chains,
    request_timeline,
)

__all__ = [
    "MetricsRegistry",
    "MetricsSnapshot",
    "ScopedRecorder",
    "TraceEvent",
    "TraceRecorder",
    "epoch_audit",
    "overview",
    "perfetto_trace",
    "preemption_chains",
    "read_jsonl",
    "request_timeline",
    "write_jsonl",
    "write_perfetto",
]
