"""Unified telemetry: request-lifecycle tracing, metrics, trace export.

Quickstart::

    from repro.telemetry import TraceRecorder, write_perfetto, write_jsonl

    recorder = TraceRecorder()
    run = engine.simulate(trace, sla_latency_s=30.0, telemetry=recorder)
    write_perfetto(recorder, "trace.json")    # chrome://tracing / Perfetto
    write_jsonl(recorder, "trace.jsonl")      # python -m repro.telemetry

The same ``telemetry=`` keyword threads through
:meth:`ClusterEngine.run`, where every replica (and the control plane)
records into its own scope — replicas render as processes in the
Perfetto UI, requests as tracks.

The analysis layer answers questions over what was recorded:
:func:`attribute_run` decomposes exact simulated time (per-request
latency segments, per-replica busy/idle) with a hard conservation
invariant, :class:`SloMonitor` evaluates windowed health rules over the
per-epoch metrics timeline, and :func:`write_report` renders everything
into one self-contained HTML artifact.
"""

from repro.telemetry.attribution import (
    ConservationError,
    RunAttribution,
    TraceAttribution,
    attribute_run,
    attribute_trace,
    attribution_table,
    utilization_summary,
    verify_conservation,
)
from repro.telemetry.export import (
    perfetto_trace,
    read_jsonl,
    write_jsonl,
    write_perfetto,
)
from repro.telemetry.metrics import MetricsRegistry, MetricsSnapshot
from repro.telemetry.recorder import ScopedRecorder, TraceEvent, TraceRecorder
from repro.telemetry.report import render_report, write_report
from repro.telemetry.slo import (
    Alert,
    AlertLog,
    SloMonitor,
    SloRule,
    default_rules,
    snapshots_from_trace,
)
from repro.telemetry.summary import (
    epoch_audit,
    overview,
    preemption_chains,
    request_timeline,
)

__all__ = [
    "Alert",
    "AlertLog",
    "ConservationError",
    "MetricsRegistry",
    "MetricsSnapshot",
    "RunAttribution",
    "ScopedRecorder",
    "SloMonitor",
    "SloRule",
    "TraceAttribution",
    "TraceEvent",
    "TraceRecorder",
    "attribute_run",
    "attribute_trace",
    "attribution_table",
    "default_rules",
    "epoch_audit",
    "overview",
    "perfetto_trace",
    "preemption_chains",
    "read_jsonl",
    "render_report",
    "request_timeline",
    "snapshots_from_trace",
    "utilization_summary",
    "verify_conservation",
    "write_jsonl",
    "write_perfetto",
    "write_report",
]
