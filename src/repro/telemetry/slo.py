"""SLO health monitoring over the per-epoch metrics timeline.

End-of-run goodput tells you *whether* a run met its objectives;
operators (and the ROADMAP's future predictive autoscaler) need to know
*when* it stopped meeting them.  :class:`SloMonitor` evaluates a set of
:class:`SloRule` objects against each :class:`MetricsSnapshot` the
closed-loop control plane records at its epoch boundaries, and produces
a typed :class:`AlertLog` that lands on
:attr:`~repro.core.results.ClusterResult.alert_log`.

Rules are deliberately boring — windowed burn rate plus hysteresis, the
shape every production alerting stack converges on:

* **burn rate**: a rule fires only when at least ``breach_fraction`` of
  the last ``window`` snapshots breach the threshold, so a single noisy
  epoch never pages;
* **guard metric**: a rule can require a second metric to be unhealthy
  too (goodput of an *idle* pool is legitimately zero — the collapse
  rule only arms while backlog shows unserved demand);
* **hysteresis**: an active alert clears only when the value recovers
  past ``threshold`` by ``clear_margin`` (relative), so a value
  oscillating around the threshold yields one alert, not a flap storm;
* **rate rules**: ``rate=True`` evaluates the per-second derivative of
  a monotonic counter between consecutive snapshots (preemptions per
  second, not preemptions ever).

The monitor is pure observation: it never changes routing, placement or
admission.  A controller that *wants* to react subscribes via
``on_alert`` (called once per newly fired alert) — the groundwork for
the ROADMAP's predictive-autoscaling item.

:func:`snapshots_from_trace` rebuilds pseudo-snapshots from a saved
JSONL trace (the ``cluster.epoch`` spans plus preemption and first-token
events), so ``python -m repro.telemetry trace.jsonl --slo`` can replay
the rules over any recorded run.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.telemetry.metrics import MetricsSnapshot, _percentile

__all__ = [
    "Alert",
    "AlertLog",
    "SloMonitor",
    "SloRule",
    "default_rules",
    "snapshots_from_trace",
]

#: Comparison direction of a rule: the value *breaches* when it is on
#: this side of the threshold.
_OPS = (">", "<")


@dataclass(frozen=True)
class SloRule:
    """One windowed health rule over a metrics-timeline series.

    The rule breaches a snapshot when ``metric``'s value (or its
    per-second rate, with ``rate=True``) compares ``op`` against
    ``threshold`` — but only while the optional guard metric is also on
    the unhealthy side of its own threshold.  It *fires* when at least
    ``breach_fraction`` of the last ``window`` snapshots breached, and
    an active alert *clears* when the value recovers past the threshold
    by the relative ``clear_margin`` (or the guard disarms).
    """

    name: str
    metric: str
    threshold: float
    op: str = ">"
    #: Snapshots in the burn-rate window (the rule cannot fire before the
    #: window has filled once).
    window: int = 3
    #: Fraction of the window that must breach for the rule to fire.
    breach_fraction: float = 1.0
    #: Evaluate the per-second derivative of a monotonic counter instead
    #: of the raw value.
    rate: bool = False
    #: Optional second condition that must hold for a breach to count.
    guard_metric: Optional[str] = None
    guard_op: str = ">"
    guard_threshold: float = 0.0
    #: Relative hysteresis: a ``>`` rule clears at
    #: ``threshold * (1 - clear_margin)``, a ``<`` rule at
    #: ``threshold * (1 + clear_margin)``.
    clear_margin: float = 0.25

    def __post_init__(self) -> None:
        if self.op not in _OPS or self.guard_op not in _OPS:
            raise ValueError(f"rule ops must be one of {_OPS}")
        if self.window <= 0:
            raise ValueError("window must be positive")
        if not 0 < self.breach_fraction <= 1:
            raise ValueError("breach_fraction must be in (0, 1]")
        if self.clear_margin < 0:
            raise ValueError("clear_margin must be non-negative")

    # ------------------------------------------------------------------

    def breaches(self, value: float) -> bool:
        return value > self.threshold if self.op == ">" \
            else value < self.threshold

    def recovers(self, value: float) -> bool:
        """True when ``value`` is healthy *with* the hysteresis margin."""
        if self.op == ">":
            return value <= self.threshold * (1.0 - self.clear_margin)
        return value >= self.threshold * (1.0 + self.clear_margin)

    def guard_armed(self, snapshot: MetricsSnapshot) -> bool:
        if self.guard_metric is None:
            return True
        guard = snapshot.values.get(self.guard_metric)
        if guard is None:
            return False
        return guard > self.guard_threshold if self.guard_op == ">" \
            else guard < self.guard_threshold


@dataclass(frozen=True)
class Alert:
    """One firing of an :class:`SloRule` (cleared or still active)."""

    rule: str
    metric: str
    fired_ts_s: float
    #: Metric value (or rate) at the firing snapshot.
    value: float
    threshold: float
    op: str
    #: ``None`` while the alert is still active at end of run.
    cleared_ts_s: Optional[float] = None

    @property
    def active(self) -> bool:
        return self.cleared_ts_s is None

    def describe(self) -> str:
        state = ("active" if self.active
                 else f"cleared at {self.cleared_ts_s:.3f}s")
        return (f"[{self.rule}] {self.metric} = {self.value:.4g} "
                f"{self.op} {self.threshold:.4g} "
                f"at {self.fired_ts_s:.3f}s ({state})")


@dataclass(frozen=True)
class AlertLog:
    """Every alert a monitor raised over one run, in firing order."""

    alerts: Tuple[Alert, ...] = ()

    def __iter__(self):
        return iter(self.alerts)

    def __len__(self) -> int:
        return len(self.alerts)

    def __bool__(self) -> bool:
        return bool(self.alerts)

    @property
    def active(self) -> Tuple[Alert, ...]:
        """Alerts never cleared before the run ended."""
        return tuple(alert for alert in self.alerts if alert.active)

    def for_rule(self, name: str) -> Tuple[Alert, ...]:
        return tuple(alert for alert in self.alerts if alert.rule == name)

    def fired(self, name: str) -> bool:
        return any(alert.rule == name for alert in self.alerts)

    def describe(self) -> str:
        if not self.alerts:
            return "no alerts fired"
        return "\n".join(alert.describe() for alert in self.alerts)


def default_rules(
    *,
    ttft_slo_s: Optional[float] = None,
    goodput_floor_tokens_per_s: float = 1.0,
    backlog_limit: float = 32.0,
    preemptions_per_s: float = 50.0,
) -> Tuple[SloRule, ...]:
    """The stock rule set the control loop arms when tracing is on.

    * ``goodput-collapse`` — goodput under ``goodput_floor_tokens_per_s``
      for a full window *while backlog shows unserved demand* (the guard
      keeps an idle pool silent).
    * ``queue-depth-spike`` — mean measured backlog above
      ``backlog_limit`` for most of a window.
    * ``preemption-storm`` — preemption *rate* above
      ``preemptions_per_s`` (derivative of the monotonic
      ``serving.preemptions`` counter).
    * ``ttft-p99-breach`` — observed TTFT p99 above ``ttft_slo_s``
      (omitted when no SLO target is known).
    """
    rules = [
        SloRule(name="goodput-collapse",
                metric="cluster.goodput_tokens_per_s",
                threshold=goodput_floor_tokens_per_s, op="<",
                window=3, breach_fraction=1.0,
                guard_metric="cluster.backlog",
                guard_threshold=max(backlog_limit / 2.0, 1.0),
                clear_margin=1.0),
        SloRule(name="queue-depth-spike",
                metric="cluster.backlog",
                threshold=backlog_limit, op=">",
                window=4, breach_fraction=0.75,
                clear_margin=0.5),
        SloRule(name="preemption-storm",
                metric="serving.preemptions",
                threshold=preemptions_per_s, op=">", rate=True,
                window=3, breach_fraction=2 / 3,
                clear_margin=0.5),
    ]
    if ttft_slo_s is not None:
        rules.append(
            SloRule(name="ttft-p99-breach",
                    metric="serving.ttft_p99_s",
                    threshold=ttft_slo_s, op=">",
                    window=3, breach_fraction=1.0,
                    clear_margin=0.25))
    return tuple(rules)


class SloMonitor:
    """Evaluates :class:`SloRule` burn rates over a snapshot stream.

    Feed it :meth:`observe` once per epoch snapshot (the cluster control
    loop does this automatically when telemetry is attached); read
    :attr:`alert_log` at any time.  ``on_alert`` is called once per
    newly *fired* alert — observation only, the monitor never mutates
    the run.
    """

    def __init__(self, rules: Optional[Sequence[SloRule]] = None, *,
                 on_alert: Optional[Callable[[Alert], None]] = None) -> None:
        self.rules: Tuple[SloRule, ...] = tuple(
            default_rules() if rules is None else rules)
        names = [rule.name for rule in self.rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rule names in {names}")
        self.on_alert = on_alert
        self._history: Dict[str, Deque[bool]] = {
            rule.name: deque(maxlen=rule.window) for rule in self.rules}
        #: Rule name -> index of its open alert in ``_alerts``.
        self._active: Dict[str, int] = {}
        #: Rule name -> most recent breaching value (what the alert cites:
        #: with ``breach_fraction < 1`` the firing snapshot itself may be
        #: healthy).
        self._last_breach: Dict[str, float] = {}
        self._alerts: List[Alert] = []
        self._prev: Optional[MetricsSnapshot] = None

    # ------------------------------------------------------------------

    def _rule_value(self, rule: SloRule,
                    snapshot: MetricsSnapshot) -> Optional[float]:
        value = snapshot.values.get(rule.metric)
        if value is None:
            return None
        if not rule.rate:
            return value
        prev = self._prev
        if prev is None:
            return None
        prev_value = prev.values.get(rule.metric)
        dt = snapshot.ts_s - prev.ts_s
        if prev_value is None or dt <= 0:
            return None
        return (value - prev_value) / dt

    def observe(self, snapshot: MetricsSnapshot) -> List[Alert]:
        """Evaluate every rule against one snapshot; return newly fired
        alerts (already appended to the log and reported to ``on_alert``)."""
        fired: List[Alert] = []
        for rule in self.rules:
            value = self._rule_value(rule, snapshot)
            if value is None:
                continue  # metric absent this epoch: window holds still
            armed = rule.guard_armed(snapshot)
            breach = armed and rule.breaches(value)
            if breach:
                self._last_breach[rule.name] = value
            history = self._history[rule.name]
            history.append(breach)
            open_index = self._active.get(rule.name)
            if open_index is None:
                if (len(history) == rule.window
                        and sum(history)
                        >= rule.breach_fraction * rule.window):
                    alert = Alert(rule=rule.name, metric=rule.metric,
                                  fired_ts_s=snapshot.ts_s,
                                  value=self._last_breach[rule.name],
                                  threshold=rule.threshold, op=rule.op)
                    self._active[rule.name] = len(self._alerts)
                    self._alerts.append(alert)
                    fired.append(alert)
                    if self.on_alert is not None:
                        self.on_alert(alert)
            elif rule.recovers(value) or not armed:
                # Hysteresis: clear only on a margin-deep recovery (or
                # when the guard disarms — the precondition went away).
                self._alerts[open_index] = replace(
                    self._alerts[open_index], cleared_ts_s=snapshot.ts_s)
                del self._active[rule.name]
                history.clear()
        self._prev = snapshot
        return fired

    def observe_timeline(
            self, timeline: Iterable[MetricsSnapshot]) -> "AlertLog":
        """Replay a whole metrics timeline; returns the final log."""
        for snapshot in timeline:
            self.observe(snapshot)
        return self.alert_log

    @property
    def alert_log(self) -> AlertLog:
        return AlertLog(alerts=tuple(self._alerts))


# ---------------------------------------------------------------------------
# replaying rules over a saved trace
# ---------------------------------------------------------------------------


def snapshots_from_trace(events: Iterable[Dict[str, Any]]) \
        -> List[MetricsSnapshot]:
    """Pseudo metrics timeline of a saved JSONL trace.

    Rebuilds, per recorded ``cluster.epoch`` span, the subset of metrics
    the stock rules consume: the span's own ``goodput_tokens_per_s`` and
    ``backlog`` args, the cumulative ``serving.preemptions`` count, and
    the running ``serving.ttft_p99_s`` over every first token observed
    so far.  Traces without a control plane (single-engine runs) yield
    an empty list.
    """
    epochs: List[Tuple[float, Dict[str, float]]] = []
    preempt_ts: List[float] = []
    queued_ts: Dict[Tuple[str, int], float] = {}
    ttft_ts: List[Tuple[float, float]] = []  # (first_token_ts, ttft_s)
    for event in events:
        name = event["name"]
        if name == "cluster.epoch":
            args = event.get("args") or {}
            end_s = event["ts_s"] + event.get("dur_s", 0.0)
            epochs.append((end_s, {
                "cluster.goodput_tokens_per_s":
                    float(args.get("goodput_tokens_per_s", 0.0)),
                "cluster.backlog": float(args.get("backlog", 0.0)),
            }))
        elif name == "serving.preempt":
            preempt_ts.append(event["ts_s"])
        elif name == "request.queued":
            queued_ts.setdefault((event["scope"], event["request_id"]),
                                 event["ts_s"])
        elif name == "request.first_token":
            key = (event["scope"], event["request_id"])
            arrival = queued_ts.get(key)
            if arrival is not None:
                ttft_ts.append((event["ts_s"], event["ts_s"] - arrival))

    preempt_ts.sort()
    ttft_ts.sort()
    snapshots: List[MetricsSnapshot] = []
    preempt_i = ttft_i = 0
    ttfts_sorted: List[float] = []
    for end_s, values in sorted(epochs):
        while preempt_i < len(preempt_ts) and preempt_ts[preempt_i] <= end_s:
            preempt_i += 1
        new_ttfts = []
        while ttft_i < len(ttft_ts) and ttft_ts[ttft_i][0] <= end_s:
            new_ttfts.append(ttft_ts[ttft_i][1])
            ttft_i += 1
        if new_ttfts:
            ttfts_sorted = sorted(ttfts_sorted + new_ttfts)
        values["serving.preemptions"] = float(preempt_i)
        if ttfts_sorted:
            values["serving.ttft_p99_s"] = _percentile(ttfts_sorted, 0.99)
        snapshots.append(MetricsSnapshot(ts_s=end_s, values=values))
    return snapshots
