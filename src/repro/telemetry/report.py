"""Self-contained HTML report over a saved telemetry trace.

One artifact, no dependencies, no network: :func:`write_report` renders
the attribution tables, per-replica utilization bars, KV-pool occupancy
sparklines, the epoch goodput/backlog timeline, and the SLO alert log
into a single HTML file (inline CSS + SVG only), so a CI run can upload
"what happened in this run" as one browsable artifact next to the
Perfetto trace.

Inputs mirror the CLI: the flat JSONL event dicts
(:func:`~repro.telemetry.export.read_jsonl` /
:func:`~repro.telemetry.export.iter_scope_events`), plus an optional
:class:`~repro.core.results.ClusterResult` whose measured
``metrics_timeline`` and ``alert_log`` replace the trace-replayed
equivalents when available.
"""

from __future__ import annotations

import html
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

from repro.telemetry.attribution import TraceAttribution, attribute_trace
from repro.telemetry.slo import (
    AlertLog,
    SloMonitor,
    default_rules,
    snapshots_from_trace,
)

__all__ = ["render_report", "write_report"]

Event = Dict[str, Any]

#: Segment palette of the stacked bars (matched across table and legend).
_COLORS = {
    "queued": "#c9b458",
    "prefill": "#4c78a8",
    "decode": "#59a14f",
    "preempted": "#e15759",
    "mixed": "#9d755d",
    "idle": "#d3d3d3",
}

_CSS = """
body { font-family: system-ui, sans-serif; margin: 2rem auto;
       max-width: 70rem; color: #1a1a1a; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem;
border-bottom: 1px solid #ddd; padding-bottom: .3rem; }
table { border-collapse: collapse; font-size: .85rem; }
th, td { padding: .25rem .6rem; text-align: right; }
th { border-bottom: 1px solid #aaa; }
td.name, th.name { text-align: left; font-family: ui-monospace, monospace; }
.bar { display: flex; height: .9rem; width: 16rem; background: #eee;
       border-radius: 2px; overflow: hidden; }
.bar span { display: block; height: 100%; }
.legend span.chip { display: inline-block; width: .8rem; height: .8rem;
                    border-radius: 2px; margin: 0 .25rem 0 .9rem;
                    vertical-align: -0.1rem; }
.alert { border-left: 4px solid #e15759; background: #fbecec;
         padding: .4rem .8rem; margin: .4rem 0; font-size: .9rem; }
.alert.cleared { border-color: #c9b458; background: #fdf7e3; }
.ok { border-left: 4px solid #59a14f; background: #eef7ee;
      padding: .4rem .8rem; font-size: .9rem; }
svg .axis { stroke: #999; stroke-width: 1; }
svg text { font-size: 10px; fill: #555; }
.muted { color: #777; font-size: .85rem; }
"""


def _esc(value: Any) -> str:
    return html.escape(str(value))


def _stacked_bar(parts: Sequence[Tuple[str, float]], total: float) -> str:
    """One horizontal stacked bar; ``parts`` are (kind, seconds)."""
    if total <= 0:
        return '<div class="bar"></div>'
    spans = []
    for kind, seconds in parts:
        width = 100.0 * max(seconds, 0.0) / total
        if width < 0.05:
            continue
        spans.append(f'<span style="width:{width:.2f}%;'
                     f'background:{_COLORS.get(kind, "#888")}" '
                     f'title="{_esc(kind)}: {seconds * 1e3:.1f}ms"></span>')
    return f'<div class="bar">{"".join(spans)}</div>'


def _legend(kinds: Sequence[str]) -> str:
    chips = "".join(
        f'<span class="chip" style="background:{_COLORS[k]}"></span>{k}'
        for k in kinds)
    return f'<p class="legend muted">{chips}</p>'


def _sparkline(points: Sequence[Tuple[float, float]], *, width: int = 640,
               height: int = 60, y_max: Optional[float] = None,
               color: str = "#4c78a8") -> str:
    """Inline SVG polyline over ``(x, y)`` samples (y clamped at 0)."""
    if not points:
        return '<p class="muted">no samples</p>'
    xs = [p[0] for p in points]
    ys = [max(p[1], 0.0) for p in points]
    x0, x1 = min(xs), max(xs)
    top = y_max if y_max is not None else max(max(ys), 1e-12)
    span = (x1 - x0) or 1.0
    coords = " ".join(
        f"{4 + (width - 8) * (x - x0) / span:.1f},"
        f"{height - 4 - (height - 12) * min(y / top, 1.0):.1f}"
        for x, y in zip(xs, ys, strict=True))
    return (
        f'<svg width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">'
        f'<line class="axis" x1="4" y1="{height - 4}" x2="{width - 4}" '
        f'y2="{height - 4}"/>'
        f'<polyline points="{coords}" fill="none" stroke="{color}" '
        f'stroke-width="1.5"/>'
        f'<text x="4" y="10">max {top:.4g}</text>'
        f'<text x="{width - 120}" y="{height - 8}">'
        f'{x0:.3f}s&#8211;{x1:.3f}s</text>'
        "</svg>")


# ---------------------------------------------------------------------------
# sections
# ---------------------------------------------------------------------------


def _overview_section(events: Sequence[Event]) -> str:
    families: Dict[str, int] = {}
    t0 = t1 = None
    scopes = set()
    for event in events:
        family = event["name"].split(".", 1)[0]
        families[family] = families.get(family, 0) + 1
        scopes.add(event["scope"])
        end = event["ts_s"] + event.get("dur_s", 0.0)
        t0 = event["ts_s"] if t0 is None else min(t0, event["ts_s"])
        t1 = end if t1 is None else max(t1, end)
    cells = "".join(
        f"<tr><td class='name'>{_esc(name)}</td><td>{count}</td></tr>"
        for name, count in sorted(families.items()))
    span = f"{t0:.3f}s &#8211; {t1:.3f}s" if events else "empty"
    return (
        f"<h2>Overview</h2>"
        f"<p>{len(events)} events across {len(scopes)} scopes, "
        f"time span {span}.</p>"
        f"<table><tr><th class='name'>family</th><th>events</th></tr>"
        f"{cells}</table>")


def _utilization_section(attribution: TraceAttribution) -> str:
    rows = []
    for scope in sorted(attribution.scope_busy):
        busy = attribution.scope_busy[scope]
        span = busy["end_s"] - busy["start_s"]
        active = busy["prefill"] + busy["decode"] + busy["mixed"]
        if active == 0.0 and scope == "control":
            continue  # the control plane has no engine windows
        parts = [("prefill", busy["prefill"]), ("decode", busy["decode"]),
                 ("mixed", busy["mixed"]), ("idle", max(span - active, 0.0))]
        rows.append(
            f"<tr><td class='name'>{_esc(scope)}</td>"
            f"<td>{span:.3f}s</td>"
            f"<td>{attribution.scope_utilization(scope):.1%}</td>"
            f"<td>{_stacked_bar(parts, span)}</td></tr>")
    if not rows:
        return "<h2>Replica utilization</h2><p class='muted'>no engine " \
               "window spans in this trace</p>"
    return (
        "<h2>Replica utilization</h2>"
        "<table><tr><th class='name'>scope</th><th>span</th>"
        "<th>busy</th><th style='text-align:left'>breakdown</th></tr>"
        + "".join(rows) + "</table>"
        + _legend(("prefill", "decode", "mixed", "idle")))


def _attribution_section(attribution: TraceAttribution, *,
                         top: int = 20) -> str:
    rows = sorted(
        attribution.request_rows,
        key=lambda row: -(row["queued_s"] + row["prefill_s"]
                          + row["decode_s"]))
    if not rows:
        return "<h2>Request attribution</h2><p class='muted'>no request " \
               "lifecycles in this trace</p>"
    cells = []
    for row in rows[:top]:
        total = row["queued_s"] + row["prefill_s"] + row["decode_s"]
        parts = [("queued", row["queued_s"]), ("prefill", row["prefill_s"]),
                 ("decode", row["decode_s"])]
        flag = "" if row["finished"] else " *"
        cells.append(
            f"<tr><td class='name'>{_esc(row['scope'])}</td>"
            f"<td>{row['request_id']}{flag}</td>"
            f"<td>{row['queued_s'] * 1e3:.1f}</td>"
            f"<td>{row['prefill_s'] * 1e3:.1f}</td>"
            f"<td>{row['decode_s'] * 1e3:.1f}</td>"
            f"<td>{row['preempted_s'] * 1e3:.1f}</td>"
            f"<td>{total * 1e3:.1f}</td>"
            f"<td>{_stacked_bar(parts, total)}</td></tr>")
    finished = sum(1 for row in rows if row["finished"])
    return (
        "<h2>Request attribution</h2>"
        f"<p class='muted'>{len(rows)} lifecycles ({finished} finished); "
        f"slowest {min(top, len(rows))} by wall time, milliseconds; "
        "* = did not finish on this scope (migrated or still open); "
        "preempted time overlays the phase walls.</p>"
        "<table><tr><th class='name'>scope</th><th>req</th><th>queued</th>"
        "<th>prefill</th><th>decode</th><th>preempted</th><th>total</th>"
        "<th style='text-align:left'>breakdown</th></tr>"
        + "".join(cells) + "</table>"
        + _legend(("queued", "prefill", "decode")))


def _kv_section(attribution: TraceAttribution) -> str:
    if not attribution.kv_occupancy:
        return ""
    blocks = []
    for scope in sorted(attribution.kv_occupancy):
        timeline = attribution.kv_occupancy[scope]
        blocks.append(f"<h3 class='name'>{_esc(scope)}</h3>"
                      + _sparkline(timeline, y_max=1.0, color="#e15759"))
    swapped = attribution.link_swap_bytes / 2 ** 20
    migrated = attribution.link_migrated_bytes / 2 ** 20
    return (
        "<h2>KV pool occupancy</h2>"
        "<p class='muted'>fraction of pool blocks in use, per sample</p>"
        + "".join(blocks)
        + f"<p>CXL link: {swapped:.1f} MiB KV swapped (evict + readmit), "
          f"{migrated:.1f} MiB live-migrated through host memory.</p>")


def _epoch_section(events: Sequence[Event], result) -> str:
    if result is not None and result.metrics_timeline:
        goodput = [(s.ts_s, s.values.get("cluster.goodput_tokens_per_s", 0.0))
                   for s in result.metrics_timeline]
        backlog = [(s.ts_s, s.values.get("cluster.backlog", 0.0))
                   for s in result.metrics_timeline]
        source = "measured metrics timeline"
    else:
        epochs = [event for event in events
                  if event["name"] == "cluster.epoch"]
        goodput = [(e["ts_s"] + e.get("dur_s", 0.0),
                    (e.get("args") or {}).get("goodput_tokens_per_s", 0.0))
                   for e in epochs]
        backlog = [(e["ts_s"] + e.get("dur_s", 0.0),
                    (e.get("args") or {}).get("backlog", 0.0))
                   for e in epochs]
        source = "trace epoch spans"
    if not goodput:
        return ""
    return (
        "<h2>Epoch timeline</h2>"
        f"<p class='muted'>{len(goodput)} epochs ({source})</p>"
        "<h3>goodput (tokens/s)</h3>"
        + _sparkline(goodput, color="#59a14f")
        + "<h3>backlog (mean queued requests)</h3>"
        + _sparkline(backlog, color="#c9b458"))


def _alerts_section(events: Sequence[Event], result) -> str:
    if result is not None:
        log: AlertLog = result.alert_log
        source = "recorded during the run"
    else:
        snapshots = snapshots_from_trace(events)
        log = SloMonitor(default_rules()).observe_timeline(snapshots)
        source = "replayed from the trace with the stock rules"
    if not log:
        body = "<p class='ok'>no SLO alerts fired</p>"
    else:
        body = "".join(
            f"<div class='alert{'' if alert.active else ' cleared'}'>"
            f"{_esc(alert.describe())}</div>"
            for alert in log)
    return f"<h2>SLO alerts</h2><p class='muted'>{source}</p>{body}"


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------


def render_report(events: Iterable[Event], *, result=None,
                  title: str = "telemetry report") -> str:
    """The full report as one self-contained HTML string."""
    events = list(events)
    attribution = attribute_trace(events)
    sections = [
        _overview_section(events),
        _utilization_section(attribution),
        _attribution_section(attribution),
        _kv_section(attribution),
        _epoch_section(events, result),
        _alerts_section(events, result),
    ]
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>{_esc(title)}</title><style>{_CSS}</style></head>"
        f"<body><h1>{_esc(title)}</h1>"
        + "".join(section for section in sections if section)
        + "</body></html>")


def write_report(path: str, events: Iterable[Event], *, result=None,
                 title: str = "telemetry report") -> str:
    """Render and write the HTML report; returns ``path``."""
    document = render_report(events, result=result, title=title)
    with open(path, "w") as handle:
        handle.write(document)
    return path
