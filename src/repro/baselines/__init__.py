"""Baseline systems the paper compares CENT against.

* ``gpu`` — the multi-A100 + vLLM baseline of the main evaluation, modelled
  with a roofline (compute-bound prefill, bandwidth-bound decoding) plus the
  vLLM-style capacity-limited batch size.
* ``cxl_pnm`` — Samsung's LPDDR5X-based CXL-PNM platform (Figure 17).
* ``attacc`` and ``neupim`` — heterogeneous GPU + HBM-PIM systems
  (Figure 18).

All baselines are analytical: the paper's own comparisons are made at the
throughput / TCO level using the configurations published for each system.
"""

from repro.baselines.gpu import GPUConfig, GPUSystem, A100_80GB
from repro.baselines.cxl_pnm import CxlPnmConfig, CxlPnmSystem, CXL_PNM_DEVICE
from repro.baselines.attacc import AttAccSystem, ATTACC_8GPU_8PIM
from repro.baselines.neupim import NeuPimSystem, NEUPIM_8GPU_8PIM

__all__ = [
    "GPUConfig",
    "GPUSystem",
    "A100_80GB",
    "CxlPnmConfig",
    "CxlPnmSystem",
    "CXL_PNM_DEVICE",
    "AttAccSystem",
    "ATTACC_8GPU_8PIM",
    "NeuPimSystem",
    "NEUPIM_8GPU_8PIM",
]
