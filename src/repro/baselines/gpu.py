"""GPU baseline: multi-A100 serving with vLLM-style batching.

The model captures the behaviours the paper's motivation and evaluation rely
on:

* **Capacity-limited batching** — KV caches limit the feasible batch size;
  throughput saturates once memory is exhausted (Figure 1).
* **Compute-bound prefill** — prompt tokens are encoded with GEMMs that run
  near the tensor-core roofline.
* **Bandwidth-bound decoding** — token generation is dominated by streaming
  weights and KV caches from HBM; weights are amortised across the batch,
  KV caches are not.
* **Tensor-parallel collectives** — multi-GPU deployments pay two AllReduce
  operations per transformer block over NVLink.
* **Low compute utilisation in decoding** (Figure 2b), reported as achieved
  FLOPs over peak.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.config import ModelConfig
from repro.models.memory import ModelMemoryProfile

__all__ = ["GPUConfig", "GPUSystem", "A100_80GB"]


@dataclass(frozen=True)
class GPUConfig:
    """One GPU's capability envelope."""

    name: str = "A100-80GB"
    memory_bytes: int = 80 * 1024**3
    hbm_bandwidth_gbps: float = 2039.0
    bf16_tflops: float = 312.0
    nvlink_bandwidth_gbps: float = 600.0
    tdp_w: float = 300.0
    #: Achievable fraction of peak HBM bandwidth for GEMM-style weight reads.
    #: Calibrated against the vLLM measurements the paper reports (Figures 1,
    #: 2a and 14d), not against theoretical STREAM-style peaks.
    gemm_bandwidth_efficiency: float = 0.70
    #: Achievable fraction of peak HBM bandwidth for paged KV-cache reads.
    attention_bandwidth_efficiency: float = 0.35
    #: Achievable fraction of peak tensor-core throughput in the prefill GEMMs.
    prefill_compute_efficiency: float = 0.50
    #: Kernel-launch and framework overhead per transformer block per step (us).
    kernel_overhead_us_per_block: float = 10.0
    #: Latency of one AllReduce across the tensor-parallel group (us).
    allreduce_latency_us: float = 20.0
    #: vLLM per-iteration scheduling / sampling / detokenisation overhead (ms).
    step_overhead_ms: float = 8.0
    #: Per-additional-GPU derating of the aggregate bandwidth/compute when a
    #: model is tensor-parallel across several GPUs (shard skew, kernel-launch
    #: skew and synchronisation).
    tp_derating_per_gpu: float = 0.12

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0 or self.hbm_bandwidth_gbps <= 0 or self.bf16_tflops <= 0:
            raise ValueError("capacities and rates must be positive")
        for name in ("gemm_bandwidth_efficiency", "attention_bandwidth_efficiency",
                     "prefill_compute_efficiency"):
            value = getattr(self, name)
            if not 0 < value <= 1:
                raise ValueError(f"{name} must be in (0, 1]")
        if self.step_overhead_ms < 0:
            raise ValueError("step_overhead_ms must be non-negative")
        if not 0 <= self.tp_derating_per_gpu < 1:
            raise ValueError("tp_derating_per_gpu must be in [0, 1)")


#: The baseline GPU of the paper.
A100_80GB = GPUConfig()


class GPUSystem:
    """A multi-GPU inference server running one model."""

    def __init__(self, model: ModelConfig, num_gpus: int = 1,
                 gpu: GPUConfig = A100_80GB) -> None:
        if num_gpus <= 0:
            raise ValueError("num_gpus must be positive")
        self.model = model
        self.num_gpus = num_gpus
        self.gpu = gpu
        self.memory = ModelMemoryProfile(model)
        if self.memory.parameter_bytes > self.total_memory_bytes:
            raise MemoryError(
                f"{model.name} needs {self.memory.parameter_bytes / 2**30:.0f} GiB of "
                f"weights but {num_gpus}x {gpu.name} provides "
                f"{self.total_memory_bytes / 2**30:.0f} GiB"
            )

    # ------------------------------------------------------------------ capacity

    @property
    def total_memory_bytes(self) -> int:
        return self.num_gpus * self.gpu.memory_bytes

    @property
    def tp_efficiency(self) -> float:
        """Scaling efficiency of the tensor-parallel group (1.0 for one GPU)."""
        return 1.0 - self.gpu.tp_derating_per_gpu * (self.num_gpus - 1)

    @property
    def aggregate_bandwidth_gbps(self) -> float:
        return self.num_gpus * self.gpu.hbm_bandwidth_gbps * self.tp_efficiency

    @property
    def aggregate_tflops(self) -> float:
        return self.num_gpus * self.gpu.bf16_tflops * self.tp_efficiency

    def memory_requirement_bytes(self, batch_size: int, context_length: int) -> int:
        """Weights plus KV caches for a batch at one context length (Figure 1)."""
        return self.memory.total_bytes(batch_size, context_length)

    def max_batch_size(self, context_length: int) -> int:
        """Largest batch whose weights + KV caches fit in GPU memory."""
        return self.memory.max_batch_size(self.total_memory_bytes, context_length)

    # ------------------------------------------------------------------ decode

    def decode_step_latency_s(self, batch_size: int, context_length: int) -> float:
        """Latency of generating one token for every query of the batch."""
        if batch_size <= 0 or context_length <= 0:
            raise ValueError("batch size and context length must be positive")
        model = self.model
        gpu = self.gpu

        weight_bytes = self.memory.parameter_bytes
        kv_bytes = batch_size * self.memory.kv_cache_bytes_per_query(context_length)
        gemm_bw = self.aggregate_bandwidth_gbps * gpu.gemm_bandwidth_efficiency
        attn_bw = self.aggregate_bandwidth_gbps * gpu.attention_bandwidth_efficiency

        weight_time = weight_bytes / gemm_bw * 1e-9
        kv_time = kv_bytes / attn_bw * 1e-9

        flops = batch_size * model.decode_flops_per_token(context_length)
        compute_time = flops / (self.aggregate_tflops * 1e12 * gpu.prefill_compute_efficiency)

        memory_time = weight_time + kv_time
        roofline_time = max(memory_time, compute_time)

        overhead = (model.num_layers * gpu.kernel_overhead_us_per_block * 1e-6
                    + gpu.step_overhead_ms * 1e-3)
        comm = self._allreduce_time_s(batch_size) * model.num_layers if self.num_gpus > 1 else 0.0
        return roofline_time + overhead + comm

    def decode_throughput(self, batch_size: int, context_length: int) -> float:
        """Generated tokens per second at a fixed batch and context."""
        return batch_size / self.decode_step_latency_s(batch_size, context_length)

    # ------------------------------------------------------------------ prefill

    def prefill_latency_s(self, batch_size: int, prompt_tokens: int) -> float:
        """Latency of encoding ``prompt_tokens`` for every query of the batch."""
        if batch_size <= 0 or prompt_tokens <= 0:
            raise ValueError("batch size and prompt length must be positive")
        model = self.model
        flops = 2 * model.total_params * prompt_tokens * batch_size
        # Attention inside the prompt (quadratic term).
        flops += (2 * model.num_layers * model.num_heads * model.head_dim
                  * prompt_tokens * prompt_tokens * batch_size)
        compute_time = flops / (
            self.aggregate_tflops * 1e12 * self.gpu.prefill_compute_efficiency
        )
        weight_time = self.memory.parameter_bytes / (
            self.aggregate_bandwidth_gbps * self.gpu.gemm_bandwidth_efficiency) * 1e-9
        comm = self._allreduce_time_s(batch_size * prompt_tokens) * model.num_layers \
            if self.num_gpus > 1 else 0.0
        return max(compute_time, weight_time) + comm

    def prefill_throughput(self, batch_size: int, prompt_tokens: int) -> float:
        """Prompt tokens encoded per second."""
        latency = self.prefill_latency_s(batch_size, prompt_tokens)
        return batch_size * prompt_tokens / latency

    # ------------------------------------------------------------------ end to end

    def query_latency_s(self, batch_size: int, prompt_tokens: int, decode_tokens: int) -> float:
        """End-to-end latency of one query served within a batch."""
        if decode_tokens <= 0:
            raise ValueError("decode_tokens must be positive")
        prefill = self.prefill_latency_s(batch_size, prompt_tokens)
        total = prefill
        # Integrate the growing context with a handful of samples.
        samples = 8
        for i in range(samples):
            context = prompt_tokens + int((i + 0.5) * decode_tokens / samples)
            total += self.decode_step_latency_s(batch_size, context) * decode_tokens / samples
        return total

    def end_to_end_throughput(self, batch_size: int, prompt_tokens: int,
                              decode_tokens: int) -> float:
        """Output tokens per second over the whole query duration."""
        latency = self.query_latency_s(batch_size, prompt_tokens, decode_tokens)
        return batch_size * decode_tokens / latency

    # ------------------------------------------------------------------ utilisation

    def decode_compute_utilization(self, batch_size: int, context_length: int) -> float:
        """Achieved / peak FLOPs during decoding (Figure 2b)."""
        flops = batch_size * self.model.decode_flops_per_token(context_length)
        elapsed = self.decode_step_latency_s(batch_size, context_length)
        return flops / elapsed / (self.aggregate_tflops * 1e12)

    # ------------------------------------------------------------------ internals

    def _allreduce_time_s(self, vector_elements_scale: int) -> float:
        """One ring AllReduce of the hidden activations across the GPUs."""
        bytes_moved = 2 * self.model.d_model * vector_elements_scale * 2
        ring_factor = 2 * (self.num_gpus - 1) / self.num_gpus
        transfer = bytes_moved * ring_factor / (self.gpu.nvlink_bandwidth_gbps * 1e9)
        return transfer + self.gpu.allreduce_latency_us * 1e-6
