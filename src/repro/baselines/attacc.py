"""AttAcc baseline (paper Figure 16c / 18a).

AttAcc is a heterogeneous system: 8 A100-class GPUs with HBM3 run the prefill
stage and the fully-connected layers, while 8 HBM-PIM devices accelerate the
batched attention of the decoding stage.  Each HBM-PIM device consumes 116 W
and provides 80 GB.  The model splits a decoding step into the FC part (on
the GPUs, amortised over the batch) and the attention part (on the PIM
devices, whose internal bandwidth serves the KV caches).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.gpu import A100_80GB, GPUConfig
from repro.models.config import ModelConfig
from repro.models.memory import ModelMemoryProfile

__all__ = ["AttAccConfig", "AttAccSystem", "ATTACC_8GPU_8PIM"]


@dataclass(frozen=True)
class AttAccConfig:
    """System-level configuration of the AttAcc baseline."""

    num_gpus: int = 8
    num_pim_devices: int = 8
    gpu: GPUConfig = A100_80GB
    #: HBM3 bandwidth per GPU (GB/s); AttAcc upgrades the A100 to HBM3.
    hbm3_bandwidth_gbps: float = 3352.0
    #: Internal bandwidth of one HBM-PIM device (GB/s).
    pim_internal_bandwidth_gbps: float = 12300.0
    pim_capacity_bytes: int = 80 * 1024**3
    pim_device_power_w: float = 116.0

    def __post_init__(self) -> None:
        if self.num_gpus <= 0 or self.num_pim_devices <= 0:
            raise ValueError("device counts must be positive")


ATTACC_8GPU_8PIM = AttAccConfig()


class AttAccSystem:
    """Throughput model of the AttAcc GPU + HBM-PIM system."""

    def __init__(self, model: ModelConfig, config: AttAccConfig = ATTACC_8GPU_8PIM) -> None:
        self.model = model
        self.config = config
        self.memory = ModelMemoryProfile(model)

    # ------------------------------------------------------------------ capacity

    @property
    def kv_capacity_bytes(self) -> int:
        """KV caches live in the HBM-PIM devices."""
        return self.config.num_pim_devices * self.config.pim_capacity_bytes

    def max_batch_size(self, context_length: int) -> int:
        per_query = self.memory.kv_cache_bytes_per_query(context_length)
        return max(self.kv_capacity_bytes // per_query, 1)

    # ------------------------------------------------------------------ decode

    def decode_step_latency_s(self, batch_size: int, context_length: int) -> float:
        if batch_size <= 0 or context_length <= 0:
            raise ValueError("batch and context must be positive")
        cfg = self.config
        # FC layers on the GPUs: weights streamed once per step, compute
        # amortised over the batch.
        weight_bytes = self.memory.parameter_bytes
        gpu_bandwidth = cfg.num_gpus * cfg.hbm3_bandwidth_gbps * cfg.gpu.gemm_bandwidth_efficiency
        fc_flops = 2 * batch_size * (self.model.total_params - self.model.embedding_params // 2)
        gpu_compute = cfg.num_gpus * cfg.gpu.bf16_tflops * 1e12 * cfg.gpu.prefill_compute_efficiency
        fc_time = max(weight_bytes / (gpu_bandwidth * 1e9), fc_flops / gpu_compute)
        # Attention on the PIM devices: KV caches streamed at internal bandwidth.
        kv_bytes = batch_size * self.memory.kv_cache_bytes_per_query(context_length)
        pim_bandwidth = cfg.num_pim_devices * cfg.pim_internal_bandwidth_gbps * 0.6
        attention_time = kv_bytes / (pim_bandwidth * 1e9)
        return fc_time + attention_time

    def prefill_latency_s(self, batch_size: int, prompt_tokens: int) -> float:
        flops = 2 * self.model.total_params * prompt_tokens * batch_size
        gpu_compute = (self.config.num_gpus * self.config.gpu.bf16_tflops * 1e12
                       * self.config.gpu.prefill_compute_efficiency)
        return flops / gpu_compute

    def end_to_end_throughput(self, batch_size: int, prompt_tokens: int,
                              decode_tokens: int) -> float:
        total = self.prefill_latency_s(batch_size, prompt_tokens)
        samples = 8
        for i in range(samples):
            context = prompt_tokens + int((i + 0.5) * decode_tokens / samples)
            total += self.decode_step_latency_s(batch_size, context) * decode_tokens / samples
        return batch_size * decode_tokens / total

    # ------------------------------------------------------------------ power

    @property
    def system_power_w(self) -> float:
        return (self.config.num_gpus * self.config.gpu.tdp_w
                + self.config.num_pim_devices * self.config.pim_device_power_w)
