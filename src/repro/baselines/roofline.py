"""Shared roofline helpers for the analytical accelerator baselines.

CXL-PNM, AttAcc and NeuPIM are compared with CENT at the throughput level
using their published compute throughput, memory bandwidth and capacity.
The roofline model splits one decoding step into the weight-streaming part
(amortised over the batch) and the per-query KV-cache part, and bounds both
by compute throughput — the same structure as the GPU baseline, without the
GPU-specific overheads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.config import ModelConfig
from repro.models.memory import ModelMemoryProfile

__all__ = ["AcceleratorEnvelope"]


@dataclass(frozen=True)
class AcceleratorEnvelope:
    """Capability envelope of one accelerator system."""

    name: str
    tflops: float
    memory_bandwidth_gbps: float
    memory_capacity_bytes: int
    bandwidth_efficiency: float = 0.7
    compute_efficiency: float = 0.7

    def __post_init__(self) -> None:
        if self.tflops <= 0 or self.memory_bandwidth_gbps <= 0 or self.memory_capacity_bytes <= 0:
            raise ValueError("capability values must be positive")
        for name in ("bandwidth_efficiency", "compute_efficiency"):
            if not 0 < getattr(self, name) <= 1:
                raise ValueError(f"{name} must be in (0, 1]")

    # ------------------------------------------------------------------ capacity

    def max_batch_size(self, model: ModelConfig, context_length: int) -> int:
        profile = ModelMemoryProfile(model)
        return profile.max_batch_size(self.memory_capacity_bytes, context_length)

    # ------------------------------------------------------------------ decode

    def decode_step_latency_s(self, model: ModelConfig, batch_size: int,
                              context_length: int) -> float:
        if batch_size <= 0 or context_length <= 0:
            raise ValueError("batch and context must be positive")
        profile = ModelMemoryProfile(model)
        bandwidth = self.memory_bandwidth_gbps * self.bandwidth_efficiency * 1e9
        weight_time = profile.parameter_bytes / bandwidth
        kv_time = batch_size * profile.kv_cache_bytes_per_query(context_length) / bandwidth
        flops = batch_size * model.decode_flops_per_token(context_length)
        compute_time = flops / (self.tflops * 1e12 * self.compute_efficiency)
        return max(weight_time + kv_time, compute_time)

    def decode_throughput(self, model: ModelConfig, batch_size: int,
                          context_length: int) -> float:
        return batch_size / self.decode_step_latency_s(model, batch_size, context_length)

    # ------------------------------------------------------------------ prefill

    def prefill_latency_s(self, model: ModelConfig, batch_size: int,
                          prompt_tokens: int) -> float:
        if batch_size <= 0 or prompt_tokens <= 0:
            raise ValueError("batch and prompt length must be positive")
        flops = 2 * model.total_params * prompt_tokens * batch_size
        flops += (2 * model.num_layers * model.num_heads * model.head_dim
                  * prompt_tokens * prompt_tokens * batch_size)
        compute_time = flops / (self.tflops * 1e12 * self.compute_efficiency)
        profile = ModelMemoryProfile(model)
        bandwidth = self.memory_bandwidth_gbps * self.bandwidth_efficiency * 1e9
        weight_time = profile.parameter_bytes / bandwidth
        return max(compute_time, weight_time)

    # ------------------------------------------------------------------ end to end

    def query_latency_s(self, model: ModelConfig, batch_size: int,
                        prompt_tokens: int, decode_tokens: int,
                        samples: int = 8) -> float:
        total = self.prefill_latency_s(model, batch_size, prompt_tokens)
        for i in range(samples):
            context = prompt_tokens + int((i + 0.5) * decode_tokens / samples)
            total += (self.decode_step_latency_s(model, batch_size, context)
                      * decode_tokens / samples)
        return total

    def end_to_end_throughput(self, model: ModelConfig, batch_size: int,
                              prompt_tokens: int, decode_tokens: int) -> float:
        latency = self.query_latency_s(model, batch_size, prompt_tokens, decode_tokens)
        return batch_size * decode_tokens / latency
