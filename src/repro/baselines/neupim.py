"""NeuPIM baseline (paper Figure 16d / 18b).

NeuPIM integrates a TPUv4-like NPU near HBM-PIM modules with dual row buffers
so NPU and PIM accesses overlap, and pairs 8 such devices with 8 A100 GPUs.
As in the AttAcc model, the GPUs/NPUs run the fully-connected layers and the
PIM side serves the batched attention; the dual-row-buffer optimisation is
modelled as partial overlap between the two components of a decoding step.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.gpu import A100_80GB, GPUConfig
from repro.models.config import ModelConfig
from repro.models.memory import ModelMemoryProfile

__all__ = ["NeuPimConfig", "NeuPimSystem", "NEUPIM_8GPU_8PIM"]


@dataclass(frozen=True)
class NeuPimConfig:
    """System-level configuration of the NeuPIM baseline."""

    num_gpus: int = 8
    num_pim_devices: int = 8
    gpu: GPUConfig = A100_80GB
    #: NPU compute throughput per NeuPIM device (TPUv4-like, BF16 TFLOPS).
    npu_tflops: float = 275.0
    #: Internal bandwidth of one NeuPIM HBM-PIM device (GB/s).
    pim_internal_bandwidth_gbps: float = 12300.0
    pim_capacity_bytes: int = 80 * 1024**3
    pim_device_power_w: float = 130.0
    #: Fraction of attention time hidden behind FC time thanks to the dual
    #: row buffers enabling concurrent NPU / PIM access.
    overlap_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.num_gpus <= 0 or self.num_pim_devices <= 0:
            raise ValueError("device counts must be positive")
        if not 0 <= self.overlap_fraction < 1:
            raise ValueError("overlap fraction must be in [0, 1)")


NEUPIM_8GPU_8PIM = NeuPimConfig()


class NeuPimSystem:
    """Throughput model of the NeuPIM GPU + NPU-PIM system."""

    def __init__(self, model: ModelConfig, config: NeuPimConfig = NEUPIM_8GPU_8PIM) -> None:
        self.model = model
        self.config = config
        self.memory = ModelMemoryProfile(model)

    def max_batch_size(self, context_length: int) -> int:
        per_query = self.memory.kv_cache_bytes_per_query(context_length)
        capacity = self.config.num_pim_devices * self.config.pim_capacity_bytes
        return max(capacity // per_query, 1)

    def decode_step_latency_s(self, batch_size: int, context_length: int) -> float:
        if batch_size <= 0 or context_length <= 0:
            raise ValueError("batch and context must be positive")
        cfg = self.config
        weight_bytes = self.memory.parameter_bytes
        gpu_bandwidth = cfg.num_gpus * cfg.gpu.hbm_bandwidth_gbps * cfg.gpu.gemm_bandwidth_efficiency
        fc_flops = 2 * batch_size * (self.model.total_params - self.model.embedding_params // 2)
        compute = ((cfg.num_gpus * cfg.gpu.bf16_tflops + cfg.num_pim_devices * cfg.npu_tflops)
                   * 1e12 * cfg.gpu.prefill_compute_efficiency)
        fc_time = max(weight_bytes / (gpu_bandwidth * 1e9), fc_flops / compute)
        kv_bytes = batch_size * self.memory.kv_cache_bytes_per_query(context_length)
        pim_bandwidth = cfg.num_pim_devices * cfg.pim_internal_bandwidth_gbps * 0.6
        attention_time = kv_bytes / (pim_bandwidth * 1e9)
        # Dual row buffers let part of the attention hide behind the FC phase.
        return fc_time + attention_time * (1.0 - cfg.overlap_fraction)

    def prefill_latency_s(self, batch_size: int, prompt_tokens: int) -> float:
        flops = 2 * self.model.total_params * prompt_tokens * batch_size
        compute = (self.config.num_gpus * self.config.gpu.bf16_tflops * 1e12
                   * self.config.gpu.prefill_compute_efficiency)
        return flops / compute

    def end_to_end_throughput(self, batch_size: int, prompt_tokens: int,
                              decode_tokens: int) -> float:
        total = self.prefill_latency_s(batch_size, prompt_tokens)
        samples = 8
        for i in range(samples):
            context = prompt_tokens + int((i + 0.5) * decode_tokens / samples)
            total += self.decode_step_latency_s(batch_size, context) * decode_tokens / samples
        return batch_size * decode_tokens / total

    @property
    def system_power_w(self) -> float:
        return (self.config.num_gpus * self.config.gpu.tdp_w
                + self.config.num_pim_devices * self.config.pim_device_power_w)
