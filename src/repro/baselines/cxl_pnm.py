"""Samsung CXL-PNM baseline (paper Figure 16b / 17).

CXL-PNM is a processing-near-memory platform: a CXL controller integrates
matrix and vector units near eight commodity LPDDR5X packages.  One device
offers 8.2 TFLOPS, 1.1 TB/s of memory bandwidth and 512 GB of capacity —
much more capacity but far less bandwidth and compute than a CENT device.
The paper evaluates OPT-66B with prefill 64 / decoding 1024 at the maximum
supported batch size of each configuration (Figure 17).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.roofline import AcceleratorEnvelope
from repro.models.config import ModelConfig

__all__ = ["CxlPnmConfig", "CxlPnmSystem", "CXL_PNM_DEVICE"]


@dataclass(frozen=True)
class CxlPnmConfig:
    """Published per-device capabilities of CXL-PNM (Figure 17b)."""

    tflops_per_device: float = 8.2
    bandwidth_gbps_per_device: float = 1100.0
    capacity_bytes_per_device: int = 512 * 1024**3
    device_power_w: float = 75.0


#: Default single-device configuration.
CXL_PNM_DEVICE = CxlPnmConfig()


class CxlPnmSystem:
    """A CXL-PNM deployment of one or more devices."""

    def __init__(self, num_devices: int = 1, config: CxlPnmConfig = CXL_PNM_DEVICE) -> None:
        if num_devices <= 0:
            raise ValueError("num_devices must be positive")
        self.num_devices = num_devices
        self.config = config
        # The matrix/vector units near commodity LPDDR5X achieve a noticeably
        # lower fraction of their peak than near-bank PIM; the efficiencies
        # follow the utilisation Samsung reports for transformer inference on
        # the platform.
        self.envelope = AcceleratorEnvelope(
            name=f"CXL-PNM x{num_devices}",
            tflops=config.tflops_per_device * num_devices,
            memory_bandwidth_gbps=config.bandwidth_gbps_per_device * num_devices,
            memory_capacity_bytes=config.capacity_bytes_per_device * num_devices,
            bandwidth_efficiency=0.6,
            compute_efficiency=0.4,
        )

    @property
    def tflops(self) -> float:
        return self.envelope.tflops

    @property
    def memory_bandwidth_tbps(self) -> float:
        return self.envelope.memory_bandwidth_gbps / 1e3

    @property
    def memory_capacity_bytes(self) -> int:
        return self.envelope.memory_capacity_bytes

    def max_batch_size(self, model: ModelConfig, context_length: int) -> int:
        return self.envelope.max_batch_size(model, context_length)

    def end_to_end_throughput(self, model: ModelConfig, prompt_tokens: int,
                              decode_tokens: int, batch_size: int | None = None) -> float:
        """Tokens/s at the maximum supported batch size (Figure 17a)."""
        context = prompt_tokens + decode_tokens
        if batch_size is None:
            batch_size = max(self.max_batch_size(model, context), 1)
        return self.envelope.end_to_end_throughput(
            model, batch_size, prompt_tokens, decode_tokens)
