"""Query definitions, synthetic trace generators and arrival processes."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

__all__ = [
    "Query",
    "fixed_queries",
    "sharegpt_like_queries",
    "prefix_reuse_queries",
    "poisson_arrivals",
    "bursty_arrivals",
    "validate_arrivals",
    "with_arrivals",
]


@dataclass(frozen=True)
class Query:
    """One inference request: a prompt, tokens to generate, and when it arrives.

    ``arrival_time_s`` defaults to zero, which reproduces the paper's static
    evaluation shape (every query present at the start of the run); the
    serving engine uses it to replay trace-driven open-loop traffic.
    ``priority`` ranks requests for the paged-admission ``priority``
    preemption policy (lower values are evicted first); the default gives
    every request equal standing, so traces that never set it behave as
    before.

    ``prefix_id`` / ``prefix_tokens`` declare that the first
    ``prefix_tokens`` of the prompt are content-identical across every
    query carrying the same id (a tenant's system prompt, a shared few-shot
    preamble).  A prefix-sharing engine keys its KV cache on the pair, so
    the id must change whenever the underlying prefix text does.  Both
    default off; a trace that never sets them is served exactly as before.
    """

    prompt_tokens: int
    decode_tokens: int
    arrival_time_s: float = 0.0
    priority: float = 1.0
    prefix_id: Optional[str] = None
    prefix_tokens: int = 0

    def __post_init__(self) -> None:
        if self.prompt_tokens <= 0 or self.decode_tokens <= 0:
            raise ValueError("prompt and decode token counts must be positive")
        if not np.isfinite(self.arrival_time_s) or self.arrival_time_s < 0:
            raise ValueError("arrival time must be finite and non-negative")
        if not np.isfinite(self.priority) or self.priority < 0:
            raise ValueError(
                f"priority must be finite and non-negative, got {self.priority!r}"
            )
        if (self.prefix_id is None) != (self.prefix_tokens == 0):
            raise ValueError(
                "prefix_id and prefix_tokens must be set together "
                f"(got prefix_id={self.prefix_id!r}, "
                f"prefix_tokens={self.prefix_tokens})"
            )
        if self.prefix_tokens < 0 or self.prefix_tokens > self.prompt_tokens:
            raise ValueError(
                f"prefix_tokens must lie in [0, prompt_tokens], got "
                f"{self.prefix_tokens} with prompt_tokens={self.prompt_tokens}"
            )

    @property
    def total_context(self) -> int:
        return self.prompt_tokens + self.decode_tokens

    @property
    def prefix_key(self) -> Optional[tuple]:
        """Hash key of the shared prefix, or None for a prefix-free query."""
        if self.prefix_id is None:
            return None
        return (self.prefix_id, self.prefix_tokens)


def fixed_queries(count: int, prompt_tokens: int = 512, decode_tokens: int = 3584) -> List[Query]:
    """A batch of identical queries (the paper's main evaluation shape)."""
    if count <= 0:
        raise ValueError("count must be positive")
    return [Query(prompt_tokens, decode_tokens) for _ in range(count)]


def sharegpt_like_queries(
    count: int,
    seed: int = 2025,
    mean_prompt_tokens: float = 161.0,
    mean_decode_tokens: float = 338.0,
    sigma: float = 0.8,
    max_context: int = 2048,
) -> List[Query]:
    """A deterministic synthetic trace with ShareGPT-like length statistics.

    Prompt and output lengths follow log-normal distributions whose means
    match the commonly reported ShareGPT averages (~161 prompt tokens, ~338
    output tokens); lengths are clipped so the total stays within
    ``max_context``.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    if mean_prompt_tokens <= 0 or mean_decode_tokens <= 0 or sigma <= 0:
        raise ValueError("length statistics must be positive")
    rng = np.random.default_rng(seed)

    def lengths(mean: float) -> np.ndarray:
        mu = np.log(mean) - sigma**2 / 2.0
        values = rng.lognormal(mean=mu, sigma=sigma, size=count)
        return np.maximum(values.astype(int), 1)

    prompts = lengths(mean_prompt_tokens)
    outputs = lengths(mean_decode_tokens)
    queries = []
    for prompt, output in zip(prompts, outputs, strict=True):
        prompt = int(min(prompt, max_context - 1))
        output = int(min(output, max_context - prompt))
        queries.append(Query(max(prompt, 1), max(output, 1)))
    return queries


def prefix_reuse_queries(
    count: int,
    num_tenants: int = 8,
    reuse_fraction: float = 0.8,
    mean_prefix_tokens: float = 256.0,
    mean_suffix_tokens: float = 96.0,
    mean_decode_tokens: float = 256.0,
    sigma: float = 0.6,
    tenant_skew: float = 1.2,
    seed: int = 2025,
    max_context: int = 4096,
) -> List[Query]:
    """A deterministic multi-tenant trace with shared-prefix reuse.

    Each of ``num_tenants`` tenants owns one fixed prefix (its system
    prompt / few-shot preamble) whose length is log-normal around
    ``mean_prefix_tokens``; tenants are picked with Zipf-like popularity
    (``weight ∝ 1 / rank^tenant_skew``), so a few hot tenants dominate —
    the regime where prefix caching pays.  A query reuses its tenant's
    prefix with probability ``reuse_fraction`` (tagging ``prefix_id`` /
    ``prefix_tokens``, prompt = prefix + fresh suffix); otherwise it is an
    untagged one-off prompt of suffix length.  Suffix and decode lengths
    are log-normal, everything clipped into ``max_context``, and the trace
    is deterministic under ``seed``.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    if num_tenants <= 0:
        raise ValueError(f"num_tenants must be positive, got {num_tenants}")
    if not 0.0 <= reuse_fraction <= 1.0:
        raise ValueError(
            f"reuse_fraction must lie in [0, 1], got {reuse_fraction!r}"
        )
    if min(mean_prefix_tokens, mean_suffix_tokens, mean_decode_tokens) <= 0 \
            or sigma <= 0:
        raise ValueError("length statistics must be positive")
    if tenant_skew < 0:
        raise ValueError(f"tenant_skew must be non-negative, got {tenant_skew!r}")
    rng = np.random.default_rng(seed)
    mu_prefix = np.log(mean_prefix_tokens) - sigma**2 / 2.0
    prefix_lengths = np.maximum(
        rng.lognormal(mean=mu_prefix, sigma=sigma, size=num_tenants).astype(int),
        8,
    )
    prefix_lengths = np.minimum(prefix_lengths, max(max_context // 2, 8))
    weights = 1.0 / np.arange(1, num_tenants + 1) ** tenant_skew
    weights /= weights.sum()
    tenants = rng.choice(num_tenants, size=count, p=weights)
    reuses = rng.random(count) < reuse_fraction

    def lengths(mean: float) -> np.ndarray:
        mu = np.log(mean) - sigma**2 / 2.0
        values = rng.lognormal(mean=mu, sigma=sigma, size=count)
        return np.maximum(values.astype(int), 1)

    suffixes = lengths(mean_suffix_tokens)
    outputs = lengths(mean_decode_tokens)
    queries = []
    for tenant, reuse, suffix, output in zip(tenants, reuses, suffixes,
                                             outputs, strict=True):
        if reuse:
            prefix = int(prefix_lengths[tenant])
            prompt = min(prefix + int(suffix), max_context - 1)
            decode = max(min(int(output), max_context - prompt), 1)
            queries.append(Query(prompt, decode,
                                 prefix_id=f"tenant-{int(tenant)}",
                                 prefix_tokens=min(prefix, prompt)))
        else:
            prompt = max(min(int(suffix), max_context - 1), 1)
            decode = max(min(int(output), max_context - prompt), 1)
            queries.append(Query(prompt, decode))
    return queries


# --------------------------------------------------------------------- arrivals

def _validate_arrival_args(count: int, rate_qps: float, start_s: float) -> None:
    """Shared argument validation of the arrival-process generators.

    NaN/infinite rates and fractional or negative counts would otherwise
    flow silently into ``numpy`` and come back as nonsense traces (NaN
    times, empty processes); reject them with explicit errors instead.
    """
    if isinstance(count, bool) or not isinstance(count, (int, np.integer)):
        raise ValueError(f"count must be an integer, got {count!r}")
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if not np.isfinite(rate_qps) or rate_qps <= 0:
        raise ValueError(
            f"arrival rate must be a positive finite number, got {rate_qps!r}"
        )
    if not np.isfinite(start_s) or start_s < 0:
        raise ValueError(
            f"start time must be finite and non-negative, got {start_s!r}"
        )


def validate_arrivals(arrival_times_s: Sequence[float]) -> None:
    """Raise ``ValueError`` unless arrivals are finite, non-negative, sorted."""
    previous = 0.0
    for index, value in enumerate(arrival_times_s):
        if not np.isfinite(value) or value < 0:
            raise ValueError(
                f"arrival {index} is {value!r}; arrivals must be finite and "
                "non-negative"
            )
        if value < previous:
            raise ValueError(
                f"arrival {index} ({value}) precedes arrival {index - 1} "
                f"({previous}); arrivals must be sorted ascending"
            )
        previous = value


def poisson_arrivals(
    count: int,
    rate_qps: float,
    seed: int = 2025,
    start_s: float = 0.0,
) -> List[float]:
    """Arrival times of a Poisson process with ``rate_qps`` queries/second.

    Inter-arrival gaps are exponential with mean ``1 / rate_qps``; the result
    is deterministic under ``seed``, non-negative and sorted ascending.
    """
    _validate_arrival_args(count, rate_qps, start_s)
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(scale=1.0 / rate_qps, size=count)
    times = [float(t) for t in start_s + np.cumsum(gaps)]
    validate_arrivals(times)
    return times


def bursty_arrivals(
    count: int,
    rate_qps: float,
    burstiness: float = 4.0,
    seed: int = 2025,
    start_s: float = 0.0,
) -> List[float]:
    """Arrival times of a bursty (Gamma-renewal) process.

    Inter-arrival gaps follow a Gamma distribution with mean ``1 / rate_qps``
    and squared coefficient of variation ``burstiness``; ``burstiness=1``
    degenerates to the Poisson process, larger values cluster arrivals into
    bursts separated by long gaps.  Deterministic under ``seed``.
    """
    _validate_arrival_args(count, rate_qps, start_s)
    if not np.isfinite(burstiness) or burstiness <= 0:
        raise ValueError(
            f"burstiness must be a positive finite number, got {burstiness!r}"
        )
    rng = np.random.default_rng(seed)
    shape = 1.0 / burstiness
    scale = burstiness / rate_qps
    gaps = rng.gamma(shape=shape, scale=scale, size=count)
    times = [float(t) for t in start_s + np.cumsum(gaps)]
    validate_arrivals(times)
    return times


def with_arrivals(queries: Sequence[Query], arrival_times_s: Sequence[float]) -> List[Query]:
    """Attach arrival times to a trace, validating the arrival process.

    The i-th query receives the i-th arrival time; order is preserved.
    """
    queries = list(queries)
    arrival_times_s = list(arrival_times_s)
    if len(queries) != len(arrival_times_s):
        raise ValueError(
            f"{len(queries)} queries but {len(arrival_times_s)} arrival times"
        )
    validate_arrivals(arrival_times_s)
    return [dataclasses.replace(query, arrival_time_s=float(time))
            for query, time in zip(queries, arrival_times_s, strict=True)]
