"""Query definitions and synthetic trace generators."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

__all__ = ["Query", "fixed_queries", "sharegpt_like_queries"]


@dataclass(frozen=True)
class Query:
    """One inference request: a prompt and a number of tokens to generate."""

    prompt_tokens: int
    decode_tokens: int

    def __post_init__(self) -> None:
        if self.prompt_tokens <= 0 or self.decode_tokens <= 0:
            raise ValueError("prompt and decode token counts must be positive")

    @property
    def total_context(self) -> int:
        return self.prompt_tokens + self.decode_tokens


def fixed_queries(count: int, prompt_tokens: int = 512, decode_tokens: int = 3584) -> List[Query]:
    """A batch of identical queries (the paper's main evaluation shape)."""
    if count <= 0:
        raise ValueError("count must be positive")
    return [Query(prompt_tokens, decode_tokens) for _ in range(count)]


def sharegpt_like_queries(
    count: int,
    seed: int = 2025,
    mean_prompt_tokens: float = 161.0,
    mean_decode_tokens: float = 338.0,
    sigma: float = 0.8,
    max_context: int = 2048,
) -> List[Query]:
    """A deterministic synthetic trace with ShareGPT-like length statistics.

    Prompt and output lengths follow log-normal distributions whose means
    match the commonly reported ShareGPT averages (~161 prompt tokens, ~338
    output tokens); lengths are clipped so the total stays within
    ``max_context``.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    if mean_prompt_tokens <= 0 or mean_decode_tokens <= 0 or sigma <= 0:
        raise ValueError("length statistics must be positive")
    rng = np.random.default_rng(seed)

    def lengths(mean: float) -> np.ndarray:
        mu = np.log(mean) - sigma**2 / 2.0
        values = rng.lognormal(mean=mu, sigma=sigma, size=count)
        return np.maximum(values.astype(int), 1)

    prompts = lengths(mean_prompt_tokens)
    outputs = lengths(mean_decode_tokens)
    queries = []
    for prompt, output in zip(prompts, outputs):
        prompt = int(min(prompt, max_context - 1))
        output = int(min(output, max_context - prompt))
        queries.append(Query(max(prompt, 1), max(output, 1)))
    return queries
