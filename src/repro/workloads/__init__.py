"""Workload generation, arrival processes and service-level evaluation.

The evaluation uses fixed-shape queries (512 prompt / 3584 decode tokens for
the main results) and a ShareGPT-like length distribution for the NeuPIM
comparison.  The real ShareGPT dataset is not redistributable, so
``sharegpt_like_queries`` generates a deterministic synthetic trace with the
same summary statistics (log-normal prompt and output lengths with the means
reported for the dataset).

For trace-driven serving, :func:`poisson_arrivals` and
:func:`bursty_arrivals` generate deterministic open-loop arrival processes,
:func:`with_arrivals` attaches them to a trace, and
:func:`evaluate_sla_from_serving` checks measured serving runs against a
query-latency SLA.

:func:`prefix_reuse_queries` generates multi-tenant traffic where queries
share per-tenant prompt prefixes (Zipf tenant popularity, tunable reuse
probability) — the workload shape behind the serving engine's
shared-prefix KV reuse (``prefix_sharing``) and the
``prefix_reuse_study`` sweep.
"""

from repro.workloads.queries import (
    Query,
    bursty_arrivals,
    fixed_queries,
    poisson_arrivals,
    prefix_reuse_queries,
    sharegpt_like_queries,
    validate_arrivals,
    with_arrivals,
)
from repro.workloads.batching import max_feasible_batch, split_into_batches
from repro.workloads.sla import SlaReport, evaluate_sla, evaluate_sla_from_serving

__all__ = [
    "Query",
    "fixed_queries",
    "sharegpt_like_queries",
    "prefix_reuse_queries",
    "poisson_arrivals",
    "bursty_arrivals",
    "validate_arrivals",
    "with_arrivals",
    "max_feasible_batch",
    "split_into_batches",
    "SlaReport",
    "evaluate_sla",
    "evaluate_sla_from_serving",
]
