"""Workload generation and service-level evaluation.

The evaluation uses fixed-shape queries (512 prompt / 3584 decode tokens for
the main results) and a ShareGPT-like length distribution for the NeuPIM
comparison.  The real ShareGPT dataset is not redistributable, so
``sharegpt_like_queries`` generates a deterministic synthetic trace with the
same summary statistics (log-normal prompt and output lengths with the means
reported for the dataset).
"""

from repro.workloads.queries import Query, fixed_queries, sharegpt_like_queries
from repro.workloads.batching import max_feasible_batch, split_into_batches
from repro.workloads.sla import SlaReport, evaluate_sla

__all__ = [
    "Query",
    "fixed_queries",
    "sharegpt_like_queries",
    "max_feasible_batch",
    "split_into_batches",
    "SlaReport",
    "evaluate_sla",
]
