"""Batch formation under memory-capacity constraints (vLLM-style)."""

from __future__ import annotations

import numbers
from typing import Iterable, List

from repro.models.config import ModelConfig
from repro.models.memory import ModelMemoryProfile
from repro.workloads.queries import Query

__all__ = ["max_feasible_batch", "split_into_batches"]


def max_feasible_batch(
    model: ModelConfig,
    memory_budget_bytes: int,
    context_length: int,
    requested_batch: int | None = None,
) -> int:
    """Largest batch whose weights + KV caches fit the budget.

    When ``requested_batch`` is given the result is capped at it, mirroring
    how the paper runs the GPU baseline at batch 128 unless memory forces a
    smaller batch (Figure 1).
    """
    profile = ModelMemoryProfile(model)
    feasible = profile.max_batch_size(memory_budget_bytes, context_length)
    if feasible <= 0:
        raise MemoryError(
            f"{model.name} does not fit in {memory_budget_bytes / 2**30:.0f} GiB "
            f"at context {context_length}"
        )
    if requested_batch is not None:
        if requested_batch <= 0:
            raise ValueError("requested batch must be positive")
        return min(feasible, requested_batch)
    return feasible


def split_into_batches(queries: Iterable[Query], batch_size: int) -> List[List[Query]]:
    """Partition a query trace into consecutive batches.

    Accepts any sequence or iterable of queries (lists, tuples, materialised
    generators); the input is materialised once and the original query order
    is preserved within and across batches.  Every batch is full except
    possibly the last.
    """
    if (isinstance(batch_size, bool)
            or not isinstance(batch_size, numbers.Integral)
            or batch_size <= 0):
        raise ValueError(
            f"batch size must be a positive integer, got {batch_size!r}"
        )
    batch_size = int(batch_size)
    items = list(queries)
    if not items:
        return []
    return [items[i:i + batch_size] for i in range(0, len(items), batch_size)]
