"""Quality-of-service evaluation against a query-latency SLA.

The paper's QoS study (Figure 14b) serves Llama2-70B under different batch
sizes (GPU) and TP/PP mappings (CENT) and reports query latency against
throughput; a realistic SLA bounds the acceptable query latency (the MLPerf
Llama2-70B server scenario is the reference the paper cites).

``evaluate_sla`` classifies generic (latency, throughput) operating points;
``evaluate_sla_from_serving`` derives those points from **measured**
serving runs (:class:`~repro.core.results.ServingResult`) instead of
hand-fed closed-form numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.results import ServingResult

__all__ = ["SlaReport", "evaluate_sla", "evaluate_sla_from_serving"]


@dataclass(frozen=True)
class SlaReport:
    """Outcome of checking (latency, throughput) operating points."""

    sla_latency_s: float
    compliant_points: List[Tuple[float, float]]
    violating_points: List[Tuple[float, float]]

    @property
    def best_compliant_throughput(self) -> float:
        """Highest throughput among the SLA-compliant operating points."""
        if not self.compliant_points:
            return 0.0
        return max(throughput for _, throughput in self.compliant_points)

    @property
    def violation_fraction(self) -> float:
        total = len(self.compliant_points) + len(self.violating_points)
        if total == 0:
            return 0.0
        return len(self.violating_points) / total


def evaluate_sla(
    operating_points: Sequence[Tuple[float, float]],
    sla_latency_s: float,
) -> SlaReport:
    """Split (query latency [s], throughput) points by SLA compliance."""
    if sla_latency_s <= 0:
        raise ValueError("the SLA latency bound must be positive")
    compliant = [(lat, thr) for lat, thr in operating_points if lat <= sla_latency_s]
    violating = [(lat, thr) for lat, thr in operating_points if lat > sla_latency_s]
    return SlaReport(
        sla_latency_s=sla_latency_s,
        compliant_points=compliant,
        violating_points=violating,
    )


def evaluate_sla_from_serving(
    results: Sequence[ServingResult],
    sla_latency_s: float,
    percentile: str = "p99",
) -> SlaReport:
    """Classify measured serving runs by a query-latency SLA.

    Each run contributes one operating point: its measured query-latency
    percentile (``"p50"``, ``"p90"``, ``"p99"``, ``"mean"`` or ``"max"``)
    against its measured throughput in generated tokens per second.
    """
    valid = ("p50", "p90", "p99", "mean", "max")
    if percentile not in valid:
        raise ValueError(f"percentile must be one of {valid}, got {percentile!r}")
    points = [
        (getattr(result.query_latency, f"{percentile}_s"),
         result.throughput_tokens_per_s)
        for result in results
    ]
    return evaluate_sla(points, sla_latency_s)
