"""Peer-to-peer and collective communication primitives.

The parallelisation mappings of §5 are built from five primitives:

* ``send_receive`` — one pipeline stage hands the embedding vector to the next
  (pipeline parallelism, 16 KB for Llama2-70B);
* ``broadcast`` — the master device distributes the embedding vector to all
  devices before a fully-connected layer (tensor parallelism);
* ``multicast`` — the hybrid TP-PP mapping multicasts within one pipeline
  stage's device group;
* ``gather`` — partial FC results return to the master device;
* ``all_reduce`` — provided for completeness (the paper maps attention onto a
  single device exactly to avoid it); modelled as gather followed by
  broadcast.

Each primitive returns a :class:`CommunicationResult` with the transfer
latency and the volume moved, which the performance model adds to the CXL
component of the latency breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cxl.link import CxlLinkParameters, CXL_3_0_LINK

__all__ = [
    "CommunicationResult",
    "send_receive",
    "broadcast",
    "multicast",
    "gather",
    "all_reduce",
]


@dataclass(frozen=True)
class CommunicationResult:
    """Outcome of one communication primitive."""

    primitive: str
    latency_ns: float
    bytes_moved: int
    fan: int

    def __post_init__(self) -> None:
        if self.latency_ns < 0 or self.bytes_moved < 0 or self.fan < 0:
            raise ValueError("communication results must be non-negative")


def send_receive(
    num_bytes: int,
    link: CxlLinkParameters = CXL_3_0_LINK,
) -> CommunicationResult:
    """Peer-to-peer SEND_CXL / RECV_CXL pair (one CXL write transaction)."""
    latency = link.transfer_ns(num_bytes, multicast=False)
    return CommunicationResult("send_receive", latency, num_bytes, fan=1)


def broadcast(
    num_bytes: int,
    num_destinations: int,
    link: CxlLinkParameters = CXL_3_0_LINK,
) -> CommunicationResult:
    """BCAST_CXL to ``num_destinations`` devices through the switch.

    The payload is serialised once on the sender's uplink; the switch
    replicates it at the multicast bandwidth/latency derating and the sender
    waits for all write acknowledgements (covered by the derated latency).
    """
    if num_destinations <= 0:
        raise ValueError("broadcast needs at least one destination")
    latency = link.transfer_ns(num_bytes, multicast=True)
    return CommunicationResult(
        "broadcast", latency, num_bytes * num_destinations, fan=num_destinations
    )


def multicast(
    num_bytes: int,
    num_destinations: int,
    link: CxlLinkParameters = CXL_3_0_LINK,
) -> CommunicationResult:
    """Multicast within a device group (hybrid TP-PP mapping)."""
    result = broadcast(num_bytes, num_destinations, link)
    return CommunicationResult("multicast", result.latency_ns, result.bytes_moved,
                               fan=num_destinations)


def gather(
    num_bytes_per_sender: int,
    num_senders: int,
    link: CxlLinkParameters = CXL_3_0_LINK,
) -> CommunicationResult:
    """Gather partial results from ``num_senders`` devices to the master.

    Each sender issues one SEND_CXL; the receiver executes ``num_senders``
    RECV_CXL instructions.  The senders' transfers overlap in the switch but
    serialise on the receiver's x4 downlink, so the time is one link latency
    plus the serialisation of the total gathered volume.
    """
    if num_senders <= 0:
        raise ValueError("gather needs at least one sender")
    total_bytes = num_bytes_per_sender * num_senders
    latency = link.base_latency_ns + total_bytes / link.device_bandwidth_gbps
    return CommunicationResult("gather", latency, total_bytes, fan=num_senders)


def all_reduce(
    num_bytes: int,
    num_devices: int,
    link: CxlLinkParameters = CXL_3_0_LINK,
) -> CommunicationResult:
    """AllReduce across ``num_devices``: gather to the master, reduce locally,
    then broadcast the result.  Used only to quantify why the paper confines
    the attention layer to a single master device."""
    if num_devices <= 1:
        return CommunicationResult("all_reduce", 0.0, 0, fan=max(num_devices, 0))
    gather_part = gather(num_bytes, num_devices - 1, link)
    broadcast_part = broadcast(num_bytes, num_devices - 1, link)
    return CommunicationResult(
        "all_reduce",
        gather_part.latency_ns + broadcast_part.latency_ns,
        gather_part.bytes_moved + broadcast_part.bytes_moved,
        fan=num_devices,
    )
