"""Analytical latency/bandwidth parameters of the CXL 3.0 / PCIe 6.0 links.

The paper models inter-device communication analytically from the CXL access
latency reported for genuine CXL memory (Pond / DirectCXL measurements) and
the PCIe 6.0 physical-layer bandwidth.  A PCIe 6.0 lane delivers 64 GT/s with
FLIT-mode efficiency close to 0.97, i.e. roughly 7.75 GB/s of usable payload
bandwidth per lane per direction; devices connect with x4 lanes, the host
with x16.  The multicast-capable switch is modelled with half the bandwidth
and double the latency of the baseline switch, as stated in §6.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CxlLinkParameters", "CXL_3_0_LINK"]


@dataclass(frozen=True)
class CxlLinkParameters:
    """Link and switch parameters of the CENT interconnect."""

    #: One-way CXL.mem access latency through the switch (ns).
    base_latency_ns: float = 255.0
    #: Usable bandwidth of one PCIe 6.0 lane, GB/s per direction.
    lane_bandwidth_gbps: float = 7.75
    #: Lanes from the switch to each CXL device.
    device_lanes: int = 4
    #: Lanes from the switch to the host CPU.
    host_lanes: int = 16
    #: Multicast support costs half the bandwidth of the baseline switch.
    multicast_bandwidth_derating: float = 0.5
    #: ... and doubles its latency.
    multicast_latency_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.base_latency_ns <= 0 or self.lane_bandwidth_gbps <= 0:
            raise ValueError("latency and bandwidth must be positive")
        if self.device_lanes <= 0 or self.host_lanes <= 0:
            raise ValueError("lane counts must be positive")
        if not 0 < self.multicast_bandwidth_derating <= 1:
            raise ValueError("bandwidth derating must be in (0, 1]")
        if self.multicast_latency_factor < 1:
            raise ValueError("multicast latency factor must be >= 1")

    @property
    def device_bandwidth_gbps(self) -> float:
        """Per-device link bandwidth (GB/s, one direction)."""
        return self.device_lanes * self.lane_bandwidth_gbps

    @property
    def host_bandwidth_gbps(self) -> float:
        """Host link bandwidth (GB/s, one direction)."""
        return self.host_lanes * self.lane_bandwidth_gbps

    @property
    def multicast_device_bandwidth_gbps(self) -> float:
        return self.device_bandwidth_gbps * self.multicast_bandwidth_derating

    @property
    def multicast_latency_ns(self) -> float:
        return self.base_latency_ns * self.multicast_latency_factor

    def transfer_ns(self, num_bytes: int, multicast: bool = False) -> float:
        """One point-to-point transfer: latency plus serialisation time."""
        if num_bytes < 0:
            raise ValueError("transfer size must be non-negative")
        if multicast:
            latency = self.multicast_latency_ns
            bandwidth = self.multicast_device_bandwidth_gbps
        else:
            latency = self.base_latency_ns
            bandwidth = self.device_bandwidth_gbps
        return latency + num_bytes / bandwidth


#: Default CXL 3.0 link parameters used throughout the evaluation.
CXL_3_0_LINK = CxlLinkParameters()
