"""CXL 3.0 network model.

CENT interconnects up to 4,096 CXL devices through a CXL switch built on the
PCIe 6.0 physical layer: the switch connects to the host with x16 lanes and to
every CXL device with x4 lanes.  This subpackage models the flit/port layer
(Figure 6), read/write transactions, the switch with the reserved-H-slot
broadcast extension, an analytical latency/bandwidth link model, and the
peer-to-peer and collective communication primitives (send/receive,
broadcast, multicast, gather) used by the parallelisation mappings.
"""

from repro.cxl.flit import Flit, FlitType, HeaderSlotCode, PBR_FLIT_BYTES
from repro.cxl.link import CxlLinkParameters, CXL_3_0_LINK
from repro.cxl.port import CxlPort, VirtualChannel
from repro.cxl.transactions import Transaction, TransactionType, transaction_latency_ns
from repro.cxl.switch import CxlSwitch
from repro.cxl.primitives import (
    CommunicationResult,
    send_receive,
    broadcast,
    multicast,
    gather,
    all_reduce,
)

__all__ = [
    "Flit",
    "FlitType",
    "HeaderSlotCode",
    "PBR_FLIT_BYTES",
    "CxlLinkParameters",
    "CXL_3_0_LINK",
    "CxlPort",
    "VirtualChannel",
    "Transaction",
    "TransactionType",
    "transaction_latency_ns",
    "CxlSwitch",
    "CommunicationResult",
    "send_receive",
    "broadcast",
    "multicast",
    "gather",
    "all_reduce",
]
