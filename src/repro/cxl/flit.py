"""Port-Based-Routing (PBR) flit model.

CXL 3.0 transports 256-byte PBR flits.  The header slot (H-slot) carries the
routing information decoded by the switch; CENT repurposes one of the reserved
H-slot codes to implement the broadcast/multicast primitive, adding a device
ID mask so one flit can fan out to several destination devices.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

__all__ = ["FlitType", "HeaderSlotCode", "Flit", "PBR_FLIT_BYTES", "FLIT_PAYLOAD_BYTES"]

#: Size of one PBR flit on the wire, including header and CRC.
PBR_FLIT_BYTES = 256

#: Payload bytes carried per flit (header slot, credits and CRC removed).
FLIT_PAYLOAD_BYTES = 224


class FlitType(enum.Enum):
    """Transaction roles a flit can play (paper Figure 6)."""

    REQUEST = "Req"
    REQUEST_WITH_DATA = "RWD"
    DATA_RESPONSE = "DRS"
    NO_DATA_RESPONSE = "NDR"


class HeaderSlotCode(enum.Enum):
    """H-slot codes decoded by the switch for routing."""

    UNICAST = 0
    BROADCAST = 14      # one of the reserved codes, as used by CENT
    MULTICAST = 15


@dataclass
class Flit:
    """One PBR flit with CENT's broadcast extension fields."""

    flit_type: FlitType
    source_device: int
    destination_device: int = 0
    header_code: HeaderSlotCode = HeaderSlotCode.UNICAST
    device_id_mask: int = 0
    payload_bytes: int = 0

    def __post_init__(self) -> None:
        if self.payload_bytes < 0 or self.payload_bytes > FLIT_PAYLOAD_BYTES:
            raise ValueError(
                f"payload must be within [0, {FLIT_PAYLOAD_BYTES}] bytes, "
                f"got {self.payload_bytes}"
            )
        if self.header_code is HeaderSlotCode.UNICAST and self.device_id_mask:
            raise ValueError("unicast flits must not carry a device ID mask")
        if self.header_code is not HeaderSlotCode.UNICAST and self.device_id_mask == 0:
            raise ValueError("broadcast/multicast flits need a non-empty device ID mask")

    @property
    def destinations(self) -> Tuple[int, ...]:
        """Destination device IDs this flit is routed to."""
        if self.header_code is HeaderSlotCode.UNICAST:
            return (self.destination_device,)
        ids = []
        mask = self.device_id_mask
        device = 0
        while mask:
            if mask & 1:
                ids.append(device)
            mask >>= 1
            device += 1
        return tuple(ids)

    @property
    def expects_acknowledgements(self) -> int:
        """Number of write acknowledgements (NDR) the sender waits for."""
        if self.flit_type is not FlitType.REQUEST_WITH_DATA:
            return 0
        return len(self.destinations)


def flits_for_payload(num_bytes: int) -> int:
    """Number of PBR flits needed to move ``num_bytes`` of payload."""
    if num_bytes < 0:
        raise ValueError("payload size must be non-negative")
    if num_bytes == 0:
        return 1
    return -(-num_bytes // FLIT_PAYLOAD_BYTES)
