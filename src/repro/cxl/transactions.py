"""CXL transaction model.

The port supports two transaction types (Figure 6): read transactions begin
with a Request (Req) and conclude with Data with Response (DRS); write
transactions begin with a Request with Data (RWD) and finish with a No Data
Response (NDR) acknowledgement.  A pair of ``SEND_CXL`` / ``RECV_CXL``
instructions constitutes one CXL write transaction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.cxl.flit import FLIT_PAYLOAD_BYTES, flits_for_payload
from repro.cxl.link import CxlLinkParameters, CXL_3_0_LINK

__all__ = ["TransactionType", "Transaction", "transaction_latency_ns"]


class TransactionType(enum.Enum):
    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class Transaction:
    """One CXL.mem transaction between two devices (or host and device)."""

    kind: TransactionType
    source_device: int
    destination_device: int
    payload_bytes: int

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ValueError("payload must be non-negative")

    @property
    def num_flits(self) -> int:
        """Data flits needed for the payload (plus one for the closing
        response, which carries no payload)."""
        return flits_for_payload(self.payload_bytes)


def transaction_latency_ns(
    transaction: Transaction,
    link: CxlLinkParameters = CXL_3_0_LINK,
    multicast: bool = False,
) -> float:
    """Latency of one transaction: request latency + payload serialisation +
    response.  The closing NDR/DRS acknowledgement is pipelined behind the
    data and adds one flit of serialisation, not a full round trip."""
    payload_time = transaction.payload_bytes / (
        link.multicast_device_bandwidth_gbps if multicast else link.device_bandwidth_gbps
    )
    ack_bytes = FLIT_PAYLOAD_BYTES
    ack_time = ack_bytes / (
        link.multicast_device_bandwidth_gbps if multicast else link.device_bandwidth_gbps
    )
    latency = link.multicast_latency_ns if multicast else link.base_latency_ns
    return latency + payload_time + ack_time
