"""CXL port model with virtual channels (Figure 6).

The port classifies CXL nodes into Host (H), Local (L) and Remote (R).
Requests arriving from the host and from remote devices are unpacked onto the
Rx ``H2L`` and ``R2L`` virtual channels; responses leave on the Tx ``L2H`` and
``L2R`` channels.  The transmit datapath packs requests into flits, the
receive datapath unpacks them and performs an integrity check.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional

from repro.cxl.flit import Flit, FlitType

__all__ = ["VirtualChannel", "ChannelName", "CxlPort"]


class ChannelName(enum.Enum):
    """Virtual channels of the CXL port."""

    RX_H2L_RWD = "Rx H2L RWD"
    RX_H2L_REQ = "Rx H2L Req"
    RX_R2L_RWD = "Rx R2L RWD"
    RX_R2L_NDR = "Rx R2L NDR"
    TX_L2H_DRS = "Tx L2H DRS"
    TX_L2H_NDR = "Tx L2H NDR"
    TX_L2R_RWD = "Tx L2R RWD"
    TX_L2R_NDR = "Tx L2R NDR"


@dataclass
class VirtualChannel:
    """A bounded FIFO of flits."""

    name: ChannelName
    capacity: int = 64
    _queue: Deque[Flit] = field(default_factory=deque, repr=False)

    def push(self, flit: Flit) -> None:
        if len(self._queue) >= self.capacity:
            raise RuntimeError(f"virtual channel {self.name.value} overflow")
        self._queue.append(flit)

    def pop(self) -> Optional[Flit]:
        if not self._queue:
            return None
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)


class CxlPort:
    """The CXL port of one device: packs/unpacks flits onto virtual channels."""

    def __init__(self, device_id: int, queue_capacity: int = 64) -> None:
        self.device_id = device_id
        self.channels: Dict[ChannelName, VirtualChannel] = {
            name: VirtualChannel(name, capacity=queue_capacity) for name in ChannelName
        }
        self.flits_transmitted = 0
        self.flits_received = 0
        self.integrity_failures = 0

    # ------------------------------------------------------------------ transmit

    def transmit(self, flit: Flit) -> Flit:
        """Pack an outbound flit onto the appropriate Tx channel."""
        if flit.source_device != self.device_id:
            raise ValueError(
                f"device {self.device_id} cannot transmit a flit sourced by "
                f"device {flit.source_device}"
            )
        channel = {
            FlitType.REQUEST_WITH_DATA: ChannelName.TX_L2R_RWD,
            FlitType.NO_DATA_RESPONSE: ChannelName.TX_L2R_NDR,
            FlitType.DATA_RESPONSE: ChannelName.TX_L2H_DRS,
            FlitType.REQUEST: ChannelName.TX_L2R_RWD,
        }[flit.flit_type]
        self.channels[channel].push(flit)
        self.flits_transmitted += 1
        return flit

    def drain_tx(self) -> list:
        """Pop all queued outbound flits in channel order (switch pickup)."""
        drained = []
        for name in (ChannelName.TX_L2R_RWD, ChannelName.TX_L2R_NDR,
                     ChannelName.TX_L2H_DRS, ChannelName.TX_L2H_NDR):
            channel = self.channels[name]
            while True:
                flit = channel.pop()
                if flit is None:
                    break
                drained.append(flit)
        return drained

    # ------------------------------------------------------------------ receive

    def receive(self, flit: Flit, from_host: bool = False) -> None:
        """Unpack an inbound flit onto the appropriate Rx channel after the
        integrity check."""
        if not self._integrity_check(flit):
            self.integrity_failures += 1
            raise RuntimeError("flit integrity check failed")
        if from_host:
            channel = (ChannelName.RX_H2L_RWD
                       if flit.flit_type is FlitType.REQUEST_WITH_DATA
                       else ChannelName.RX_H2L_REQ)
        else:
            channel = (ChannelName.RX_R2L_NDR
                       if flit.flit_type is FlitType.NO_DATA_RESPONSE
                       else ChannelName.RX_R2L_RWD)
        self.channels[channel].push(flit)
        self.flits_received += 1

    def pending(self, channel: ChannelName) -> int:
        return len(self.channels[channel])

    def pop(self, channel: ChannelName) -> Optional[Flit]:
        return self.channels[channel].pop()

    @staticmethod
    def _integrity_check(flit: Flit) -> bool:
        """CRC-style sanity check: payload within bounds, destinations valid."""
        return 0 <= flit.payload_bytes and len(flit.destinations) >= 1
