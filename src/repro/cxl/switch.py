"""CXL switch with CENT's broadcast/multicast extension.

The switch routes PBR flits between the host port (x16 lanes) and up to
``max_devices`` device ports (x4 lanes each).  Standard CXL.mem only supports
unicast; CENT repurposes a reserved H-slot code so the switch replicates a
single flit to every device selected by the device-ID mask, and the sending
port collects a write acknowledgement from each destination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.cxl.flit import Flit, FlitType, HeaderSlotCode
from repro.cxl.link import CxlLinkParameters, CXL_3_0_LINK
from repro.cxl.port import CxlPort

__all__ = ["CxlSwitch"]


@dataclass
class _SwitchStats:
    unicast_flits: int = 0
    broadcast_flits: int = 0
    multicast_flits: int = 0
    delivered_copies: int = 0
    bytes_routed: int = 0


class CxlSwitch:
    """Routing and replication model of the CENT CXL switch."""

    def __init__(
        self,
        num_devices: int,
        link: CxlLinkParameters = CXL_3_0_LINK,
        max_devices: int = 4096,
        num_lanes: int = 144,
        num_ports: int = 72,
    ) -> None:
        if num_devices <= 0:
            raise ValueError("the switch needs at least one device")
        if num_devices > max_devices:
            raise ValueError(
                f"CXL 3.0 supports up to {max_devices} nodes, got {num_devices}"
            )
        required_lanes = num_devices * link.device_lanes + link.host_lanes
        if required_lanes > num_lanes:
            raise ValueError(
                f"switch provides {num_lanes} lanes; {num_devices} devices plus the "
                f"host require {required_lanes}.  Use fewer devices or a larger switch."
            )
        self.link = link
        self.num_devices = num_devices
        self.ports: Dict[int, CxlPort] = {i: CxlPort(i) for i in range(num_devices)}
        self.stats = _SwitchStats()

    # ------------------------------------------------------------------ routing

    def route(self, flit: Flit) -> List[int]:
        """Deliver a flit to its destination port(s); return the device IDs
        that received a copy."""
        if flit.source_device not in self.ports:
            raise ValueError(f"unknown source device {flit.source_device}")
        destinations = [d for d in flit.destinations if d != flit.source_device]
        for destination in destinations:
            if destination not in self.ports:
                raise ValueError(f"unknown destination device {destination}")
        for destination in destinations:
            self.ports[destination].receive(flit)
        if flit.header_code is HeaderSlotCode.BROADCAST:
            self.stats.broadcast_flits += 1
        elif flit.header_code is HeaderSlotCode.MULTICAST:
            self.stats.multicast_flits += 1
        else:
            self.stats.unicast_flits += 1
        self.stats.delivered_copies += len(destinations)
        self.stats.bytes_routed += flit.payload_bytes * max(len(destinations), 1)
        return destinations

    def acknowledge(self, flit: Flit) -> int:
        """Model the write acknowledgements expected by the CXL port for a
        routed RWD flit: one NDR per destination."""
        if flit.flit_type is not FlitType.REQUEST_WITH_DATA:
            return 0
        acks = 0
        for destination in flit.destinations:
            if destination == flit.source_device:
                continue
            ack = Flit(
                flit_type=FlitType.NO_DATA_RESPONSE,
                source_device=destination,
                destination_device=flit.source_device,
            )
            self.ports[flit.source_device].receive(ack)
            acks += 1
        return acks

    # ------------------------------------------------------------------ latency

    def point_to_point_ns(self, num_bytes: int) -> float:
        """Device-to-device transfer time through the switch."""
        return self.link.transfer_ns(num_bytes, multicast=False)

    def replicated_ns(self, num_bytes: int, fan_out: int) -> float:
        """Broadcast/multicast transfer time to ``fan_out`` devices.

        The sender serialises the payload once on its x4 uplink; the switch
        replicates it, at the multicast bandwidth/latency derating.
        """
        if fan_out <= 0:
            raise ValueError("fan-out must be positive")
        return self.link.transfer_ns(num_bytes, multicast=True)
