"""Taylor-series exponent approximation used by the PNM exponent accelerators.

Each of the 32 exponent accelerators in a CXL device divides a 256-bit shared
buffer slot into 16 BF16 lanes and evaluates ``exp(x)`` per lane with a
10-order Taylor series.  Softmax score vectors are the main consumer.  The
series is evaluated around zero after range reduction by powers of two so the
approximation stays accurate for the negative scores produced by the
``x - max(x)`` normalisation step.
"""

from __future__ import annotations

import math

import numpy as np

from repro.numerics.bf16 import bf16_quantize

__all__ = ["taylor_exp", "TAYLOR_ORDER"]

#: Order of the Taylor expansion implemented in the exponent accelerator.
TAYLOR_ORDER = 10

# exp(x) = 2**k * exp(r) with r = x - k*ln2, |r| <= ln2/2, keeps the series
# well conditioned.  ln2 is stored as a BF16 coefficient in hardware.
_LN2 = math.log(2.0)


def taylor_exp(values: np.ndarray, order: int = TAYLOR_ORDER) -> np.ndarray:
    """Approximate ``exp(values)`` with an ``order``-term Taylor series.

    The input is quantized to BF16 (it arrives from the shared buffer) and the
    result is quantized to BF16 before being written back, as the accelerator
    does.  Intermediate arithmetic uses float32, matching the accelerator's
    wider internal datapath.
    """
    if order < 1:
        raise ValueError(f"Taylor order must be >= 1, got {order}")
    x = bf16_quantize(values).astype(np.float32)
    k = np.round(x / _LN2)
    r = x - k * _LN2
    result = np.ones_like(r)
    term = np.ones_like(r)
    for i in range(1, order + 1):
        term = term * r / np.float32(i)
        result = result + term
    result = result * np.exp2(k).astype(np.float32)
    return bf16_quantize(result)
