"""Numeric primitives shared by the PIM and PNM functional models.

The GDDR6-PIM near-bank processing units operate on Bfloat16 (BF16) values,
the PNM exponent accelerators use a 10-order Taylor-series approximation, and
activation functions are evaluated through lookup tables with linear
interpolation.  This subpackage provides faithful software models of those
numeric behaviours so the functional simulator reproduces the precision the
hardware would deliver.
"""

from repro.numerics.bf16 import (
    bf16_quantize,
    bf16_to_float,
    float_to_bf16_bits,
    bf16_bits_to_float,
    bf16_mac,
)
from repro.numerics.taylor import taylor_exp
from repro.numerics.lut import ActivationLUT, silu, gelu, sigmoid

__all__ = [
    "bf16_quantize",
    "bf16_to_float",
    "float_to_bf16_bits",
    "bf16_bits_to_float",
    "bf16_mac",
    "taylor_exp",
    "ActivationLUT",
    "silu",
    "gelu",
    "sigmoid",
]
