"""Lookup-table activation functions of the near-bank processing units.

The activation-function (AF) unit inside each PU evaluates non-linear
functions with lookup tables stored in the DRAM bank plus linear
interpolation.  CENT decomposes GeLU, Swish/SiLU and their GLU variants into
sigmoid/tanh lookups combined with PIM multiplications (paper §7.5), so the
LUT model here covers sigmoid, tanh, SiLU and GeLU.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.numerics.bf16 import bf16_quantize

__all__ = ["ActivationLUT", "sigmoid", "silu", "gelu", "AF_TABLE_IDS"]

#: Identifier values used by the ``AF`` instruction's ``AFid`` field.
AF_TABLE_IDS = {
    "sigmoid": 0,
    "tanh": 1,
    "silu": 2,
    "gelu": 3,
    "exp": 4,
}


def sigmoid(values: np.ndarray) -> np.ndarray:
    """Reference sigmoid used to build lookup tables."""
    x = np.asarray(values, dtype=np.float64)
    return (1.0 / (1.0 + np.exp(-x))).astype(np.float32)


def silu(values: np.ndarray) -> np.ndarray:
    """Reference SiLU (x * sigmoid(x))."""
    x = np.asarray(values, dtype=np.float64)
    return (x / (1.0 + np.exp(-x))).astype(np.float32)


def gelu(values: np.ndarray) -> np.ndarray:
    """Reference GeLU (tanh approximation used by most LLM implementations)."""
    x = np.asarray(values, dtype=np.float64)
    inner = np.sqrt(2.0 / np.pi) * (x + 0.044715 * x**3)
    return (0.5 * x * (1.0 + np.tanh(inner))).astype(np.float32)


_REFERENCE_FUNCTIONS = {
    "sigmoid": sigmoid,
    "tanh": lambda x: np.tanh(np.asarray(x, dtype=np.float64)).astype(np.float32),
    "silu": silu,
    "gelu": gelu,
    "exp": lambda x: np.exp(np.asarray(x, dtype=np.float64)).astype(np.float32),
}


@dataclass
class ActivationLUT:
    """Piecewise-linear lookup table for one activation function.

    Parameters
    ----------
    function:
        Name of the activation function; one of :data:`AF_TABLE_IDS`.
    num_entries:
        Number of table entries.  The hardware stores the table in one DRAM
        row; 256 BF16 entries fit comfortably and give sub-0.5% error over the
        clamped input range.
    input_range:
        Inputs are clamped to ``[-input_range, +input_range]`` before lookup,
        matching the saturating behaviour of the hardware table.
    """

    function: str
    num_entries: int = 256
    input_range: float = 8.0
    _grid: np.ndarray = field(init=False, repr=False)
    _table: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.function not in _REFERENCE_FUNCTIONS:
            raise ValueError(
                f"unknown activation function {self.function!r}; "
                f"expected one of {sorted(_REFERENCE_FUNCTIONS)}"
            )
        if self.num_entries < 2:
            raise ValueError("a lookup table needs at least two entries")
        if self.input_range <= 0:
            raise ValueError("input_range must be positive")
        self._grid = np.linspace(
            -self.input_range, self.input_range, self.num_entries, dtype=np.float32
        )
        reference = _REFERENCE_FUNCTIONS[self.function]
        self._table = bf16_quantize(reference(self._grid))

    @property
    def af_id(self) -> int:
        """The ``AFid`` encoding of this table."""
        return AF_TABLE_IDS[self.function]

    def evaluate(self, values: np.ndarray) -> np.ndarray:
        """Evaluate the activation with LUT + linear interpolation.

        Inputs and outputs are BF16-quantized, as in the PU datapath.
        """
        x = bf16_quantize(values).astype(np.float32)
        clamped = np.clip(x, -self.input_range, self.input_range)
        result = np.interp(clamped, self._grid, self._table.astype(np.float64))
        return bf16_quantize(result.astype(np.float32))

    def max_error(self, num_samples: int = 4096) -> float:
        """Maximum absolute error versus the reference function over the
        clamped input range.  Used by tests to bound LUT accuracy."""
        samples = np.linspace(
            -self.input_range, self.input_range, num_samples, dtype=np.float32
        )
        reference = _REFERENCE_FUNCTIONS[self.function](samples)
        return float(np.max(np.abs(self.evaluate(samples) - reference)))
