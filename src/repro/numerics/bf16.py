"""Bfloat16 (BF16) arithmetic emulation.

BF16 keeps the 8-bit exponent of IEEE-754 single precision but truncates the
mantissa to 7 bits.  The near-bank processing units of a GDDR6-PIM channel
multiply and accumulate BF16 operands; accumulation registers hold values with
single-precision range, and results are written back as BF16.  These helpers
emulate that behaviour on top of NumPy float32 arrays.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "float_to_bf16_bits",
    "bf16_bits_to_float",
    "bf16_quantize",
    "bf16_to_float",
    "bf16_mac",
]


def float_to_bf16_bits(values: np.ndarray) -> np.ndarray:
    """Convert float32 values to their 16-bit BF16 bit patterns.

    Rounding is round-to-nearest-even on the truncated mantissa, matching the
    behaviour of commercial BF16 hardware.
    """
    as_f32 = np.asarray(values, dtype=np.float32)
    bits = as_f32.view(np.uint32)
    # Round-to-nearest-even: add 0x7FFF plus the LSB of the surviving mantissa.
    rounding_bias = np.uint32(0x7FFF) + ((bits >> np.uint32(16)) & np.uint32(1))
    rounded = bits + rounding_bias
    return (rounded >> np.uint32(16)).astype(np.uint16)


def bf16_bits_to_float(bits: np.ndarray) -> np.ndarray:
    """Expand 16-bit BF16 bit patterns back to float32 values."""
    as_u16 = np.asarray(bits, dtype=np.uint16)
    expanded = as_u16.astype(np.uint32) << np.uint32(16)
    return expanded.view(np.float32)


def bf16_quantize(values: np.ndarray) -> np.ndarray:
    """Quantize float values to BF16 precision, returned as float32.

    This is the canonical "store to a DRAM bank" operation: the value keeps
    only the precision a BF16 cell can represent.
    """
    return bf16_bits_to_float(float_to_bf16_bits(values))


def bf16_to_float(values: np.ndarray) -> np.ndarray:
    """Alias of :func:`bf16_quantize`, provided for readability at call sites
    that semantically *read* BF16 data rather than *write* it."""
    return bf16_quantize(values)


def bf16_mac(
    accumulator: np.ndarray,
    operand_a: np.ndarray,
    operand_b: np.ndarray,
) -> np.ndarray:
    """One multiply-accumulate step of the 16-lane near-bank MAC tree.

    Operands are quantized to BF16 before the multiply (they come from a DRAM
    bank and the global buffer respectively); products are summed in float32,
    mirroring the wider accumulation registers of the PU.
    """
    a = bf16_quantize(operand_a)
    b = bf16_quantize(operand_b)
    return np.asarray(accumulator, dtype=np.float32) + np.sum(
        a.astype(np.float32) * b.astype(np.float32), axis=-1
    )
