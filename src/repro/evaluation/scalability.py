"""Figure 19: CENT scalability from 16 to 128 devices on Llama2-70B.

Throughput grows with the device count, with intermittent plateaus where an
additional device cannot receive a whole transformer block (blocks are never
split across devices, so those devices idle), and data parallelism takes over
once pipeline parallelism has consumed all the blocks.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.config import CentConfig
from repro.core.system import CentSystem
from repro.mapping.planner import plan_for_throughput
from repro.models.config import LLAMA2_70B, ModelConfig

__all__ = ["figure19_scalability"]


def figure19_scalability(
    model: ModelConfig = LLAMA2_70B,
    device_counts: Sequence[int] = (16, 24, 32, 40, 44, 48, 64, 80, 96, 128),
    prompt_tokens: int = 512,
    decode_tokens: int = 3584,
    context_samples: int = 3,
) -> List[Dict[str, object]]:
    """Throughput and device utilisation versus device count."""
    rows: List[Dict[str, object]] = []
    # One shared performance-model cache across device counts: the per-block
    # simulation only depends on the channels assigned to a block, which
    # repeats across many device counts.
    reference_config = CentConfig(num_devices=max(device_counts),
                                  context_samples=context_samples)
    reference_system = CentSystem(reference_config, model)
    for devices in device_counts:
        config = CentConfig(num_devices=devices, context_samples=context_samples)
        system = CentSystem(config, model)
        # Reuse compiled/simulated blocks across device counts.
        system.performance._cache = reference_system.performance._cache
        system.simulator.performance = system.performance
        plan = plan_for_throughput(model, devices,
                                   context_length=prompt_tokens + decode_tokens)
        result = system.run_inference(prompt_tokens, decode_tokens, plan=plan,
                                      with_power=False)
        rows.append({
            "devices": devices,
            "plan": plan.name,
            "dp_replicas": plan.dp_replicas,
            "devices_used": result.devices_used,
            "device_utilization": result.devices_used / devices,
            "tokens_per_s": result.decode_throughput_tokens_per_s,
            "k_tokens_per_s": result.decode_throughput_tokens_per_s / 1e3,
        })
    return rows
