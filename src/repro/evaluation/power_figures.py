"""Figure 15: power consumption, GPU throttling and energy efficiency."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.baselines.gpu import GPUSystem
from repro.core.config import CentConfig
from repro.core.system import CentSystem
from repro.evaluation.main_results import DEPLOYMENTS
from repro.mapping.parallelism import PipelineParallel
from repro.models.config import LLAMA2_7B, ModelConfig
from repro.power.gpu_power import A100_POWER, GpuPowerModel
from repro.workloads.batching import max_feasible_batch

__all__ = ["figure15a_power", "figure15b_gpu_throttling", "figure15c_energy_efficiency"]


def _gpu_phase_times(model: ModelConfig, num_gpus: int, prompt_tokens: int,
                     decode_tokens: int, gpu_batch: int) -> Tuple[int, float, float]:
    gpu = GPUSystem(model, num_gpus=num_gpus)
    average_context = prompt_tokens + decode_tokens // 2
    batch = max_feasible_batch(model, gpu.total_memory_bytes, average_context,
                               requested_batch=gpu_batch)
    prefill_s = gpu.prefill_latency_s(batch, prompt_tokens)
    decode_s = gpu.query_latency_s(batch, prompt_tokens, decode_tokens) - prefill_s
    return batch, prefill_s, decode_s


def figure15a_power(
    prompt_tokens: int = 512,
    decode_tokens: int = 3584,
    gpu_batch: int = 128,
    context_samples: int = 3,
    deployments: Sequence[Tuple[ModelConfig, int, int]] = DEPLOYMENTS,
) -> List[Dict[str, object]]:
    """Average power of the CENT and GPU deployments per model (Figure 15a)."""
    rows: List[Dict[str, object]] = []
    for model, cent_devices, gpu_count in deployments:
        config = CentConfig(num_devices=cent_devices, context_samples=context_samples)
        cent = CentSystem(config, model)
        plan = PipelineParallel(cent_devices, model)
        result = cent.run_inference(prompt_tokens, decode_tokens, plan=plan)
        _, prefill_s, decode_s = _gpu_phase_times(
            model, gpu_count, prompt_tokens, decode_tokens, gpu_batch)
        gpu_power = A100_POWER.average_power_w(prefill_s, decode_s, num_gpus=gpu_count)
        rows.append({
            "model": model.name,
            "cent_devices": cent_devices,
            "cent_power_w": result.average_power_w,
            "cent_power_per_device_w": (result.average_power_w - 125.0) / max(result.devices_used, 1),
            "gpu_count": gpu_count,
            "gpu_power_w": gpu_power,
            "gpu_power_per_device_w": gpu_power / gpu_count,
        })
    return rows


def figure15b_gpu_throttling(
    model: ModelConfig = LLAMA2_7B,
    num_gpus: int = 1,
    prompt_tokens: int = 512,
    decode_tokens: int = 3584,
    gpu_batch: int = 128,
    init_s: float = 2.0,
    power_model: GpuPowerModel = A100_POWER,
) -> List[Dict[str, object]]:
    """GPU SM clock and board power across init / prefill / decode (Figure 15b)."""
    _, prefill_s, decode_s = _gpu_phase_times(
        model, num_gpus, prompt_tokens, decode_tokens, gpu_batch)
    samples = power_model.trace(init_s=init_s, prefill_s=prefill_s,
                                decode_s=min(decode_s, 20.0), sample_interval_s=0.5)
    return [
        {"time_s": s.time_s, "phase": s.phase, "sm_clock_mhz": s.sm_clock_mhz,
         "board_power_w": s.board_power_w}
        for s in samples
    ]


def figure15c_energy_efficiency(
    prompt_tokens: int = 512,
    decode_tokens: int = 3584,
    gpu_batch: int = 128,
    context_samples: int = 3,
    deployments: Sequence[Tuple[ModelConfig, int, int]] = DEPLOYMENTS,
) -> List[Dict[str, object]]:
    """Tokens per Joule of CENT normalised to the GPU (Figure 15c)."""
    rows: List[Dict[str, object]] = []
    ratios: List[float] = []
    for model, cent_devices, gpu_count in deployments:
        config = CentConfig(num_devices=cent_devices, context_samples=context_samples)
        cent = CentSystem(config, model)
        plan = PipelineParallel(cent_devices, model)
        result = cent.run_inference(prompt_tokens, decode_tokens, plan=plan)
        cent_tokens_per_joule = result.tokens_per_joule

        batch, prefill_s, decode_s = _gpu_phase_times(
            model, gpu_count, prompt_tokens, decode_tokens, gpu_batch)
        gpu_decode_tps = batch * decode_tokens / decode_s
        gpu_power = A100_POWER.phase_power_w("decode") * gpu_count
        gpu_tokens_per_joule = gpu_decode_tps / gpu_power

        ratio = cent_tokens_per_joule / gpu_tokens_per_joule if gpu_tokens_per_joule else 0.0
        ratios.append(ratio)
        rows.append({
            "model": model.name,
            "cent_tokens_per_joule": cent_tokens_per_joule,
            "gpu_tokens_per_joule": gpu_tokens_per_joule,
            "normalized_tokens_per_joule": ratio,
        })
    if ratios:
        geomean = 1.0
        for ratio in ratios:
            geomean *= ratio
        rows.append({
            "model": "geomean",
            "normalized_tokens_per_joule": geomean ** (1.0 / len(ratios)),
        })
    return rows
