"""Static comparison tables of the paper (Tables 1, 4, 5 and 6)."""

from __future__ import annotations

from typing import Dict, List

from repro.core.config import CentConfig
from repro.cost.tco import (
    CENT_SYSTEM_COST,
    GPU_SYSTEM_COST,
    TcoModel,
    cent_controller_unit_cost,
)
from repro.power.cxl_controller import CXL_CONTROLLER_28NM

__all__ = [
    "table1_hardware_comparison",
    "table4_system_configurations",
    "table5_cxl_controller",
    "table6_hardware_costs",
]


def table1_hardware_comparison() -> List[Dict[str, object]]:
    """Table 1: manufactured PIM prototypes versus an A100 GPU."""
    return [
        {"system": "UPMEM", "type": "PIM", "memory_units": "8 DIMMs",
         "external_bw_tbps": 0.15, "internal_bw_tbps": 1.0, "capacity_gb": 64,
         "tflops": 0.5, "ops_per_byte": 0.5, "memory_density": "25-50%"},
        {"system": "AiM", "type": "PIM", "memory_units": "32 channels",
         "external_bw_tbps": 1.0, "internal_bw_tbps": 16.0, "capacity_gb": 16,
         "tflops": 16.0, "ops_per_byte": 1.0, "memory_density": "75%"},
        {"system": "FIMDRAM", "type": "PIM", "memory_units": "5 stacks",
         "external_bw_tbps": 1.5, "internal_bw_tbps": 12.3, "capacity_gb": 30,
         "tflops": 6.2, "ops_per_byte": 0.5, "memory_density": "75%"},
        {"system": "A100", "type": "GPU", "memory_units": "5 stacks",
         "external_bw_tbps": 2.0, "internal_bw_tbps": float("nan"), "capacity_gb": 80,
         "tflops": 312.0, "ops_per_byte": 156.0, "memory_density": "-"},
    ]


def table4_system_configurations(
    config: CentConfig | None = None,
    cent_power_w: float = 1160.0,
    gpu_power_w: float = 1400.0,
) -> List[Dict[str, object]]:
    """Table 4: CENT versus the 4x A100 GPU baseline."""
    config = config or CentConfig()
    tco = TcoModel()
    cent_row = {
        "system": "CENT",
        "hardware": f"{config.num_devices} CXL devices",
        "memory_gb": config.memory_capacity_bytes / 2**30,
        "compute_tflops": config.peak_pim_tflops + config.peak_pnm_tflops,
        "peak_bandwidth_tbps": config.peak_internal_bandwidth_tbps,
        "owned_tco_per_hour": tco.cent_tco_per_hour(config.num_devices, cent_power_w, owned=True),
        "rental_tco_per_hour": tco.cent_tco_per_hour(config.num_devices, cent_power_w, owned=False),
    }
    gpu_row = {
        "system": "GPU",
        "hardware": "4 NVIDIA A100",
        "memory_gb": 320.0,
        "compute_tflops": 1248.0,
        "peak_bandwidth_tbps": 8.0,
        "owned_tco_per_hour": tco.gpu_tco_per_hour(4, gpu_power_w, owned=True),
        "rental_tco_per_hour": tco.gpu_tco_per_hour(4, gpu_power_w, owned=False),
    }
    return [cent_row, gpu_row]


def table5_cxl_controller() -> List[Dict[str, object]]:
    """Table 5: CXL controller custom-logic area and power at 28 nm."""
    controller = CXL_CONTROLLER_28NM
    rows = []
    for component, (area, power) in controller.components_28nm.items():
        rows.append({"component": component, "area_mm2": area, "power_w": power})
    rows.append({
        "component": "total",
        "area_mm2": controller.custom_logic_area_28nm_mm2,
        "power_w": controller.custom_logic_power_w,
    })
    rows.append({
        "component": "total_7nm_die",
        "area_mm2": controller.total_area_7nm_mm2,
        "power_w": controller.custom_logic_power_w,
    })
    return rows


def table6_hardware_costs() -> List[Dict[str, object]]:
    """Table 6: hardware bill of materials of the two systems."""
    rows: List[Dict[str, object]] = []
    for system in (GPU_SYSTEM_COST, CENT_SYSTEM_COST):
        for component, cost in system.components_usd.items():
            rows.append({"system": system.name, "component": component, "cost_usd": cost})
        rows.append({"system": system.name, "component": "total",
                     "cost_usd": system.hardware_cost_usd})
    rows.append({
        "system": "CENT controller detail",
        "component": "per-unit cost at 3M volume",
        "cost_usd": cent_controller_unit_cost()["total"],
    })
    return rows
