"""Figure 12: CXL controller cost breakdown and cost versus volume."""

from __future__ import annotations

from typing import Dict, List

from repro.cost.die import DieCostModel
from repro.cost.nre import NreCostModel
from repro.cost.packaging import PackagingCostModel
from repro.cost.tco import cent_controller_unit_cost

__all__ = ["figure12_controller_cost"]


def figure12_controller_cost(
    die_area_mm2: float = 19.0,
    volumes_millions: List[float] = (1.0, 2.0, 3.0, 4.0, 5.0),
) -> Dict[str, object]:
    """NRE breakdown plus per-unit controller cost versus production volume."""
    nre = NreCostModel()
    die = DieCostModel()
    packaging = PackagingCostModel()

    nre_rows = [
        {"component": name, "cost_musd": cost}
        for name, cost in nre.breakdown.components_musd.items()
    ]
    nre_rows.append({"component": "total", "cost_musd": nre.breakdown.total_musd})

    volume_rows = []
    for volume in volumes_millions:
        breakdown = cent_controller_unit_cost(
            die_area_mm2=die_area_mm2,
            production_volume=int(volume * 1e6),
            die_model=die, packaging=packaging, nre=nre,
        )
        volume_rows.append({
            "volume_millions": volume,
            "die_cost_usd": breakdown["die"],
            "packaging_cost_usd": breakdown["packaging"],
            "nre_cost_usd": breakdown["nre"],
            "total_cost_usd": breakdown["total"],
        })
    return {"nre_breakdown": nre_rows, "cost_vs_volume": volume_rows}
