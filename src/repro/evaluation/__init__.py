"""Evaluation harness: one entry point per paper table and figure.

Every function returns plain Python data (lists of dict rows) so the
benchmarks can print the same rows/series the paper reports and the tests can
assert on the qualitative shape (who wins, by roughly what factor, where the
crossovers fall).  ``repro.evaluation.report`` renders the rows as aligned
text tables.
"""

from repro.evaluation.report import format_table, rows_to_csv
from repro.evaluation.gpu_motivation import figure1_gpu_throughput, figure2_gpu_utilization
from repro.evaluation.tables import (
    table1_hardware_comparison,
    table4_system_configurations,
    table5_cxl_controller,
    table6_hardware_costs,
)
from repro.evaluation.cost_figures import figure12_controller_cost
from repro.evaluation.main_results import figure13_speedups
from repro.evaluation.analysis import (
    figure14a_long_context,
    figure14b_qos,
    figure14c_latency_breakdown,
    figure14d_query_latency,
)
from repro.evaluation.power_figures import (
    figure15a_power,
    figure15b_gpu_throttling,
    figure15c_energy_efficiency,
)
from repro.evaluation.pim_baselines import figure17_cxl_pnm, figure18_gpu_pim
from repro.evaluation.scalability import figure19_scalability
from repro.evaluation.serving_studies import (
    figure14b_qos_serving,
    figure14d_query_latency_serving,
)
from repro.evaluation.cluster_studies import multi_tenant_policy_study
from repro.evaluation.closed_loop_studies import closed_loop_study, migration_study
from repro.evaluation.preemption_studies import overload_preemption_study
from repro.evaluation.prefix_studies import prefix_reuse_study

__all__ = [
    "format_table",
    "rows_to_csv",
    "figure1_gpu_throughput",
    "figure2_gpu_utilization",
    "table1_hardware_comparison",
    "table4_system_configurations",
    "table5_cxl_controller",
    "table6_hardware_costs",
    "figure12_controller_cost",
    "figure13_speedups",
    "figure14a_long_context",
    "figure14b_qos",
    "figure14c_latency_breakdown",
    "figure14d_query_latency",
    "figure15a_power",
    "figure15b_gpu_throttling",
    "figure15c_energy_efficiency",
    "figure17_cxl_pnm",
    "figure18_gpu_pim",
    "figure19_scalability",
    "figure14b_qos_serving",
    "figure14d_query_latency_serving",
    "multi_tenant_policy_study",
    "closed_loop_study",
    "migration_study",
    "overload_preemption_study",
    "prefix_reuse_study",
]
