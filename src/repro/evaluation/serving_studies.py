"""Serving-mode variants of the QoS and query-latency studies.

Figures 14(b) and 14(d) in the paper are built from closed-form batch math:
every operating point is one ``run_inference`` call on a static batch of
identical queries.  The serving-mode variants here replay **timed traces**
through the event-driven :class:`~repro.serving.ServingEngine` instead, so
the reported latencies include queueing, admission and continuous-batching
effects that the closed-form path cannot express:

* :func:`figure14b_qos_serving` — the TP/PP mapping sweep of Figure 14b
  under open-loop Poisson traffic, reporting measured TTFT/TBT/query-latency
  percentiles, throughput and SLA goodput per mapping, plus an
  :class:`~repro.workloads.sla.SlaReport` over the measured operating
  points;
* :func:`figure14d_query_latency_serving` — the output-length sweep of
  Figure 14d with measured (queueing-inclusive) prefill and decode
  latencies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.config import CentConfig
from repro.core.results import ServingResult
from repro.core.system import CentSystem
from repro.evaluation.analysis import cent_mappings_for
from repro.models.config import LLAMA2_70B, ModelConfig
from repro.serving.engine import ServingEngine
from repro.workloads.queries import (
    fixed_queries,
    poisson_arrivals,
    sharegpt_like_queries,
    with_arrivals,
)
from repro.workloads.sla import evaluate_sla_from_serving

__all__ = ["figure14b_qos_serving", "figure14d_query_latency_serving"]


def _serve_poisson(
    engine: ServingEngine,
    queries,
    utilization: float,
    seed: int,
    sla_latency_s: Optional[float],
) -> ServingResult:
    rate = utilization * engine.estimated_capacity_qps(queries)
    trace = with_arrivals(queries, poisson_arrivals(len(queries), rate, seed=seed))
    return engine.run(trace, sla_latency_s=sla_latency_s)


def figure14b_qos_serving(
    model: ModelConfig = LLAMA2_70B,
    num_devices: int = 32,
    num_queries: int = 200,
    utilization: float = 0.7,
    sla_latency_s: float = 60.0,
    seed: int = 2025,
    context_samples: int = 3,
    context_step: int = 256,
) -> Dict[str, object]:
    """Measured QoS of the Figure 14b mapping sweep under Poisson traffic.

    Every TP/PP mapping serves the same ShareGPT-like trace, with the
    arrival rate scaled to ``utilization`` of that mapping's estimated
    capacity (an open-loop rate one would provision for it).  Returns the
    per-mapping rows plus the SLA classification of the measured
    (p99 latency, throughput) operating points.
    """
    if not 0 < utilization:
        raise ValueError("utilization must be positive")
    config = CentConfig(num_devices=num_devices, context_samples=context_samples)
    system = CentSystem(config, model)
    queries = sharegpt_like_queries(num_queries, seed=seed)

    rows: List[Dict[str, object]] = []
    results: List[ServingResult] = []
    for name, plan in cent_mappings_for(model, num_devices).items():
        engine = ServingEngine(system, plan, context_step=context_step)
        result = _serve_poisson(engine, queries, utilization, seed, sla_latency_s)
        results.append(result)
        rows.append({
            "mapping": name,
            "slots": plan.queries_in_flight,
            "completed": result.num_completed,
            "ttft_p50_s": result.ttft.p50_s,
            "ttft_p99_s": result.ttft.p99_s,
            "tbt_p50_s": result.tbt.p50_s,
            "tbt_p99_s": result.tbt.p99_s,
            "query_latency_p50_s": result.query_latency.p50_s,
            "query_latency_p99_s": result.query_latency.p99_s,
            "throughput_tokens_per_s": result.throughput_tokens_per_s,
            "goodput_tokens_per_s": result.goodput_tokens_per_s,
            "sla_violation_fraction": result.sla_violation_fraction,
        })
    report = evaluate_sla_from_serving(results, sla_latency_s, percentile="p99")
    return {"cent": rows, "sla": report}


def figure14d_query_latency_serving(
    model: ModelConfig = LLAMA2_70B,
    num_devices: int = 32,
    prompt_tokens: int = 512,
    output_sizes: Sequence[int] = (128, 512, 1024, 3584),
    queries_per_point: int = 32,
    utilization: float = 0.7,
    seed: int = 2025,
    context_samples: int = 3,
    context_step: int = 256,
) -> List[Dict[str, object]]:
    """Measured prefill / decoding latency versus output size (Figure 14d).

    Unlike the closed-form study, TTFT here includes the queueing delay of
    the Poisson arrivals and the prefill interference of continuous
    batching.
    """
    config = CentConfig(num_devices=num_devices, context_samples=context_samples)
    system = CentSystem(config, model)
    rows: List[Dict[str, object]] = []
    for output in output_sizes:
        queries = fixed_queries(queries_per_point, prompt_tokens, output)
        plan = system.throughput_plan(context_length=prompt_tokens + output)
        engine = ServingEngine(system, plan, context_step=context_step)
        result = _serve_poisson(engine, queries, utilization, seed, None)
        rows.append({
            "output_tokens": output,
            "ttft_p50_min": result.ttft.p50_s / 60.0,
            "decode_p50_min": result.decode_latency.p50_s / 60.0,
            "query_latency_p50_min": result.query_latency.p50_s / 60.0,
            "query_latency_p99_min": result.query_latency.p99_s / 60.0,
            "throughput_tokens_per_s": result.throughput_tokens_per_s,
        })
    return rows
