"""Motivation figures: GPU throughput saturation and compute utilisation.

* Figure 1 — Llama2-70B throughput and memory requirement on 4x A100 as the
  batch size grows, for 4K/8K/16K/32K contexts; throughput plateaus once the
  KV caches exhaust GPU memory.
* Figure 2 — (a) query latency vs batch size, (b) GPU compute utilisation of
  Llama2-70B against high-operational-intensity models (BERT, ResNet-152).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.baselines.gpu import A100_80GB, GPUConfig, GPUSystem
from repro.models.config import LLAMA2_70B, ModelConfig

__all__ = ["figure1_gpu_throughput", "figure2_gpu_utilization",
           "roofline_utilization", "PROXY_MODEL_INTENSITY"]

#: Representative operational intensities (FLOPs per byte of HBM traffic) of
#: the high-intensity proxy models of Figure 2(b).  BERT-Large inference at
#: a large batch and ResNet-152 are GEMM/conv dominated.
PROXY_MODEL_INTENSITY: Dict[str, float] = {
    "BERT": 250.0,
    "ResNet152": 70.0,
}


def _extended_context(model: ModelConfig, max_context: int) -> ModelConfig:
    """The paper extends Llama2-70B to long contexts via LongLoRA."""
    if max_context <= model.max_context:
        return model
    return dataclasses.replace(model, max_context=max_context)


#: Fraction of peak tensor-core throughput dense GEMM kernels achieve in
#: practice; caps the roofline prediction for the high-intensity proxies.
ACHIEVABLE_COMPUTE_FRACTION = 0.82


def roofline_utilization(operational_intensity: float, gpu: GPUConfig = A100_80GB) -> float:
    """Compute utilisation predicted by the roofline at one intensity."""
    if operational_intensity <= 0:
        raise ValueError("operational intensity must be positive")
    ridge = gpu.bf16_tflops * 1e12 / (gpu.hbm_bandwidth_gbps * 1e9)
    return min(operational_intensity / ridge, 1.0) * ACHIEVABLE_COMPUTE_FRACTION


def figure1_gpu_throughput(
    model: ModelConfig = LLAMA2_70B,
    num_gpus: int = 4,
    contexts: List[int] = (4096, 8192, 16384, 32768),
    batch_sizes_per_context: Dict[int, List[int]] | None = None,
) -> List[Dict[str, object]]:
    """GPU throughput and memory requirement vs batch size (Figure 1)."""
    if batch_sizes_per_context is None:
        batch_sizes_per_context = {
            4096: [32, 64, 128, 256],
            8192: [16, 32, 64, 128],
            16384: [8, 16, 32, 64],
            32768: [4, 8, 16, 32],
        }
    rows: List[Dict[str, object]] = []
    for context in contexts:
        extended = _extended_context(model, context)
        gpu = GPUSystem(extended, num_gpus=num_gpus)
        for batch in batch_sizes_per_context.get(context, [8, 16, 32, 64]):
            requirement = gpu.memory_requirement_bytes(batch, context)
            feasible_batch = min(batch, max(gpu.max_batch_size(context), 1))
            throughput = gpu.decode_throughput(feasible_batch, context)
            rows.append({
                "context": context,
                "batch": batch,
                "memory_requirement_gb": requirement / 2**30,
                "fits_in_memory": requirement <= gpu.total_memory_bytes,
                "throughput_tokens_per_s": throughput,
            })
    return rows


def figure2_gpu_utilization(
    model: ModelConfig = LLAMA2_70B,
    num_gpus: int = 4,
    prompt_tokens: int = 512,
    decode_tokens: int = 3584,
    batch_sizes: List[int] = (8, 32, 128, 317),
) -> Dict[str, List[Dict[str, object]]]:
    """Query latency vs batch and compute utilisation (Figure 2)."""
    gpu = GPUSystem(model, num_gpus=num_gpus)
    latency_rows: List[Dict[str, object]] = []
    for batch in batch_sizes:
        latency = gpu.query_latency_s(batch, prompt_tokens, decode_tokens)
        latency_rows.append({
            "batch": batch,
            "query_latency_min": latency / 60.0,
            "fits_in_memory": gpu.memory_requirement_bytes(
                batch, prompt_tokens + decode_tokens) <= gpu.total_memory_bytes,
        })

    max_batch = min(gpu.max_batch_size(prompt_tokens + decode_tokens), 128)
    utilization_rows = [{
        "model": model.name,
        "gpu_utilization_percent": 100.0 * gpu.decode_compute_utilization(
            max(max_batch, 1), prompt_tokens + decode_tokens),
    }]
    for proxy, intensity in PROXY_MODEL_INTENSITY.items():
        utilization_rows.append({
            "model": proxy,
            "gpu_utilization_percent": 100.0 * roofline_utilization(intensity),
        })
    return {"query_latency": latency_rows, "utilization": utilization_rows}
