"""Closed-loop vs static cluster control on a bursty heavy-tailed mix.

The scenario the ROADMAP's re-placement open item calls for: two tenants
whose demand is *phase-shifted* in time — ``early`` fires a heavy-tailed
burst at t=0, ``late`` fires an equally heavy burst once the first should
have drained.  Aggregate demand is symmetric, so every static placement
splits the pool near-evenly and each tenant is overloaded during its own
burst while its neighbour's devices idle.  The closed loop
(:mod:`repro.cluster.control`) observes the backlog each epoch, re-places
the pool toward the bursting tenant (paying the weight-reload stall), and
routes on measured rather than modelled backlog — delivering more
SLA-compliant tokens from the same pool.

``rebalance="off"`` runs the identical mix through the PR-2 open-loop path
twice and checks the results are bit-exact, so the study doubles as the
regression guard for the legacy path.

:func:`migration_study` reuses the same calibrated mix to isolate what
live KV migration buys: the closed loop is run twice, once with
``migration="restart"`` (a dismantled replica's in-flight requests lose
their progress — the pre-live behaviour) and once with ``migration="live"``
(their KV swaps through host memory and they resume where they left off),
and reports the goodput gain next to the migration economics (KV bytes
moved, CXL time spent, progress tokens preserved).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.control import ControlConfig
from repro.cluster.engine import ClusterEngine
from repro.cluster.tenant import TenantSpec
from repro.core.config import CentConfig
from repro.core.results import ClusterResult
from repro.core.system import CentSystem
from repro.models.config import LLAMA2_7B, ModelConfig
from repro.serving.engine import ServingEngine
from repro.telemetry.recorder import TraceRecorder
from repro.workloads.queries import bursty_arrivals, sharegpt_like_queries, with_arrivals

__all__ = ["closed_loop_study", "migration_study"]


def _calibrated_bursty_mix(
    model: ModelConfig,
    num_devices: int,
    queries_per_tenant: int,
    overload: float,
    burstiness: float,
    sla_drain_fraction: float,
    epoch_drain_fraction: float,
    seed: int,
    context_samples: int,
    context_step: int,
) -> Tuple[CentConfig, Sequence[TenantSpec], float, float, float]:
    """The phase-shifted bursty two-tenant mix both studies run.

    Calibrated from the estimated half-pool capacity ``cap``: each burst
    arrives at ``overload x cap`` (Gamma-renewal arrivals with the given
    burstiness), the ``late`` tenant starts where the ``early`` burst
    would finish draining on a half pool, the per-query SLO is
    ``sla_drain_fraction`` of the half-pool drain time, and the control
    epoch is ``epoch_drain_fraction`` of the drain time.  Returns
    ``(config, tenants, rate_qps, sla_s, epoch_s)``.
    """
    if overload <= 0:
        raise ValueError("overload must be positive")
    if num_devices < 2:
        raise ValueError("the pool needs at least two devices for two tenants")

    config = CentConfig(num_devices=num_devices, context_samples=context_samples)
    early_queries = sharegpt_like_queries(queries_per_tenant, seed=seed)
    late_queries = sharegpt_like_queries(queries_per_tenant, seed=seed + 1)

    half_pool = CentSystem(config.scaled(num_devices // 2), model)
    half_engine = ServingEngine(half_pool, context_step=context_step)
    cap_qps = half_engine.estimated_capacity_qps(early_queries)
    rate_qps = overload * cap_qps
    burst_s = queries_per_tenant / rate_qps
    drain_s = queries_per_tenant / cap_qps
    sla_s = sla_drain_fraction * drain_s
    epoch_s = epoch_drain_fraction * drain_s

    early = TenantSpec(
        "early", model=model, sla_latency_s=sla_s,
        trace=with_arrivals(
            early_queries,
            bursty_arrivals(queries_per_tenant, rate_qps,
                            burstiness=burstiness, seed=seed)),
    )
    late = TenantSpec(
        "late", model=model, sla_latency_s=sla_s,
        trace=with_arrivals(
            late_queries,
            bursty_arrivals(queries_per_tenant, rate_qps,
                            burstiness=burstiness, seed=seed + 1,
                            start_s=drain_s + burst_s)),
    )
    return config, (early, late), rate_qps, sla_s, epoch_s


def closed_loop_study(
    model: ModelConfig = LLAMA2_7B,
    # 12, not the policy study's 8: two Llama2-7B tenants' feasibility
    # floors consume an 8-device pool outright, leaving re-placement no
    # devices to move; the closed loop needs slack above the floors.
    num_devices: int = 12,
    queries_per_tenant: int = 60,
    overload: float = 3.0,
    burstiness: float = 4.0,
    sla_drain_fraction: float = 0.4,
    epoch_drain_fraction: float = 0.13,
    routing_policy: str = "least_outstanding",
    seed: int = 2025,
    context_samples: int = 3,
    context_step: int = 512,
    control: Optional[ControlConfig] = None,
    telemetry: Optional[TraceRecorder] = None,
) -> Dict[str, object]:
    """Compare static ``sla_aware`` placement against the closed loop.

    The mix is calibrated from the estimated half-pool capacity ``cap``:
    each burst arrives at ``overload x cap`` (Gamma-renewal arrivals with
    the given burstiness, i.e. heavy-tailed inter-arrival gaps), the
    ``late`` tenant starts where the ``early`` burst would finish draining
    on a half pool, the per-query SLO is ``sla_drain_fraction`` of the
    half-pool drain time (generous against service, unreachable once a
    static half-share queues a whole burst), and the control epoch is
    ``epoch_drain_fraction`` of the drain time so the loop gets several
    observations per burst.  An explicit ``control`` overrides the
    calibrated epoch.

    Returns per-mode rows, the closed-loop goodput gain, and
    ``static_bit_exact`` — whether two open-loop runs of the mix agree
    exactly (the PR-2 path regression check).  A ``telemetry`` recorder,
    when given, traces the closed-loop run (the static runs stay
    untraced); recording never changes the simulated outcome.
    """
    config, tenants, rate_qps, sla_s, epoch_s = _calibrated_bursty_mix(
        model, num_devices, queries_per_tenant, overload, burstiness,
        sla_drain_fraction, epoch_drain_fraction, seed, context_samples,
        context_step)

    engine = ClusterEngine(
        config, tenants,
        default_model=model,
        routing_policy=routing_policy,
        context_step=context_step,
    )
    if control is None:
        control = ControlConfig(epoch_s=epoch_s)

    static = engine.run(placement_policy="sla_aware")
    static_again = engine.run(placement_policy="sla_aware", rebalance="off")
    closed = engine.run(placement_policy="sla_aware", control=control,
                        telemetry=telemetry)

    def row(mode: str, result: ClusterResult) -> Dict[str, object]:
        fractions = result.tenant_goodput_fractions
        return {
            "mode": mode,
            "aggregate_goodput_tokens_per_s": result.aggregate_goodput_tokens_per_s,
            "aggregate_throughput_tokens_per_s":
                result.aggregate_throughput_tokens_per_s,
            "early_goodput_fraction": fractions["early"],
            "late_goodput_fraction": fractions["late"],
            "early_devices": result.tenant_devices["early"],
            "late_devices": result.tenant_devices["late"],
            "num_rebalances": result.num_rebalances,
            "migration_stall_s": result.migration_stall_s,
            "max_min_goodput_ratio": result.max_min_goodput_ratio,
            "pool_utilization": result.pool_utilization,
        }

    rows: List[Dict[str, object]] = [
        row("static_sla_aware", static),
        row("closed_loop", closed),
    ]
    baseline = static.aggregate_goodput_tokens_per_s
    gain = (closed.aggregate_goodput_tokens_per_s / baseline
            if baseline > 0 else float("inf"))
    return {
        "rows": rows,
        "closed_loop_gain": gain,
        "static_bit_exact": static == static_again,
        "best_mode": max(rows, key=lambda r: r["aggregate_goodput_tokens_per_s"])["mode"],
        "rate_qps": rate_qps,
        "sla_s": sla_s,
        "epoch_s": control.epoch_s,
        "num_rebalances": closed.num_rebalances,
        "migration_stall_s": closed.migration_stall_s,
        "epoch_timeline": closed.epoch_timeline,
        "num_migrated_requests": closed.num_migrated_requests,
        "migrated_kv_bytes": closed.migrated_kv_bytes,
        "kv_migration_time_s": closed.kv_migration_time_s,
        "restored_progress_tokens": closed.restored_progress_tokens,
        # The full closed-loop result, for consumers that want more than
        # the flattened keys above (alert log, metrics timeline, reports).
        "closed_result": closed,
    }


def migration_study(
    model: ModelConfig = LLAMA2_7B,
    num_devices: int = 12,
    queries_per_tenant: int = 60,
    overload: float = 3.0,
    burstiness: float = 4.0,
    sla_drain_fraction: float = 0.4,
    epoch_drain_fraction: float = 0.13,
    routing_policy: str = "least_outstanding",
    seed: int = 2025,
    context_samples: int = 3,
    context_step: int = 512,
) -> Dict[str, object]:
    """Live KV migration vs restart-on-migrate on the closed-loop mix.

    Runs the phase-shifted bursty two-tenant mix of :func:`closed_loop_study`
    through the closed loop twice, holding everything but the migration mode
    fixed: ``restart`` throws a dismantled replica's in-flight progress away
    (the rebalancer pays for its re-placement twice — the priced weight
    reload *and* the unpriced lost work), ``live`` swaps the KV through host
    memory so requests resume at their original token.  Returns per-mode
    rows, the live-over-restart goodput gain, and the migration economics
    (requests moved, KV bytes, CXL time, progress tokens preserved).
    """
    config, tenants, rate_qps, sla_s, epoch_s = _calibrated_bursty_mix(
        model, num_devices, queries_per_tenant, overload, burstiness,
        sla_drain_fraction, epoch_drain_fraction, seed, context_samples,
        context_step)

    engine = ClusterEngine(
        config, tenants,
        default_model=model,
        routing_policy=routing_policy,
        context_step=context_step,
    )
    results = {
        mode: engine.run(
            placement_policy="sla_aware",
            control=ControlConfig(epoch_s=epoch_s, migration=mode))
        for mode in ("restart", "live")
    }

    def row(mode: str, result: ClusterResult) -> Dict[str, object]:
        return {
            "mode": mode,
            "aggregate_goodput_tokens_per_s": result.aggregate_goodput_tokens_per_s,
            "num_rebalances": result.num_rebalances,
            "migration_stall_s": result.migration_stall_s,
            "num_migrated_requests": result.num_migrated_requests,
            "migrated_kv_bytes": result.migrated_kv_bytes,
            "kv_migration_time_s": result.kv_migration_time_s,
            "restored_progress_tokens": result.restored_progress_tokens,
            "max_min_goodput_ratio": result.max_min_goodput_ratio,
        }

    rows = [row(mode, result) for mode, result in results.items()]
    baseline = results["restart"].aggregate_goodput_tokens_per_s
    live = results["live"]
    gain = (live.aggregate_goodput_tokens_per_s / baseline
            if baseline > 0 else float("inf"))
    return {
        "rows": rows,
        "live_gain": gain,
        "best_mode": max(rows, key=lambda r: r["aggregate_goodput_tokens_per_s"])["mode"],
        "rate_qps": rate_qps,
        "sla_s": sla_s,
        "epoch_s": epoch_s,
        "num_migrated_requests": live.num_migrated_requests,
        "migrated_kv_bytes": live.migrated_kv_bytes,
        "kv_migration_time_s": live.kv_migration_time_s,
        "restored_progress_tokens": live.restored_progress_tokens,
        "migration_stall_s": live.migration_stall_s,
    }
