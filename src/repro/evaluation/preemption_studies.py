"""Overload study: full-context reservation vs paged KV with preemption.

The serving engine's legacy ``admission="reserve"`` path reserves KV bytes
for a request's *entire future context* at admission, so a memory-tight
deployment runs far below its slot count and queues (or refuses) traffic
the device pool could actually serve.  ``admission="paged"``
(``repro.kvstore``) admits on the current context and evicts victims when
the block pool runs dry — the vLLM recipe.  This study puts both on the
same overloaded trace and the same memory-constrained deployment and
reports what preemption buys (SLA goodput, latency percentiles) and what
it costs (evictions, swap traffic, recompute work, stall time).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.config import CentConfig
from repro.core.results import ServingResult
from repro.core.system import CentSystem
from repro.kvstore.preemption import RESTORE_MODES
from repro.models.config import LLAMA2_7B, ModelConfig
from repro.models.memory import ModelMemoryProfile
from repro.serving.engine import ServingEngine
from repro.workloads.queries import (
    poisson_arrivals,
    sharegpt_like_queries,
    with_arrivals,
)

__all__ = ["overload_preemption_study"]


def _row(mode: str, result: ServingResult) -> Dict[str, object]:
    return {
        "mode": mode,
        "completed": result.num_completed,
        "rejected": result.num_rejected,
        "goodput_tokens_per_s": result.goodput_tokens_per_s,
        "throughput_tokens_per_s": result.throughput_tokens_per_s,
        "ttft_p99_s": result.ttft.p99_s,
        "query_latency_p99_s": result.query_latency.p99_s,
        "sla_violation_fraction": result.sla_violation_fraction,
        "num_preemptions": result.num_preemptions,
        "swap_time_s": result.swap_time_s,
        "recompute_tokens": result.recompute_tokens,
        "preemption_stall_time_s": result.preemption_stall_time_s,
        "peak_queue_depth": result.peak_queue_depth,
        "mean_queue_depth": result.mean_queue_depth,
    }


def overload_preemption_study(
    model: ModelConfig = LLAMA2_7B,
    num_devices: int = 8,
    num_queries: int = 96,
    overload: float = 2.5,
    kv_capacity_queries: float = 2.5,
    sla_latency_s: Optional[float] = None,
    restores: Sequence[str] = RESTORE_MODES,
    victim_policy: str = "lru",
    seed: int = 2025,
    context_samples: int = 3,
    context_step: int = 512,
) -> Dict[str, object]:
    """Reservation vs paged-with-preemption admission under overload.

    The deployment's memory capacity is clamped to the model weights plus
    ``kv_capacity_queries`` worst-case KV caches of the trace, so the
    reserve path can hold only a couple of requests in flight; the Poisson
    arrival rate is ``overload`` times the *constrained* engine's estimated
    capacity, so the backlog grows for the whole run.  ``sla_latency_s``
    defaults to 1.5x the p99 query latency of a lightly loaded (0.25x
    capacity) reference run of the same constrained deployment — the
    latency a provisioned operator would promise — and every admission
    mode is judged against it on the identical trace.

    Returns the per-mode rows plus the derived operating point and the
    best mode by SLA goodput.
    """
    if overload <= 0:
        raise ValueError("overload must be positive")
    if kv_capacity_queries <= 0:
        raise ValueError("kv_capacity_queries must be positive")

    config = CentConfig(num_devices=num_devices, context_samples=context_samples)
    system = CentSystem(config, model)
    profile = ModelMemoryProfile(model)
    queries = sharegpt_like_queries(num_queries, seed=seed)
    longest = max(q.total_context for q in queries)
    capacity = int(profile.parameter_bytes
                   + kv_capacity_queries * profile.kv_cache_bytes_per_query(longest))

    reserve = ServingEngine(system, memory_capacity_bytes=capacity,
                            context_step=context_step)
    capacity_qps = reserve.estimated_capacity_qps(queries)
    rate_qps = overload * capacity_qps
    trace = with_arrivals(queries,
                          poisson_arrivals(num_queries, rate_qps, seed=seed))

    if sla_latency_s is None:
        reference = reserve.run(with_arrivals(
            queries,
            poisson_arrivals(num_queries, 0.25 * capacity_qps, seed=seed),
        ))
        sla_latency_s = 1.5 * reference.query_latency.p99_s

    rows: List[Dict[str, object]] = [
        _row("reserve", reserve.run(trace, sla_latency_s=sla_latency_s))
    ]
    for restore in restores:
        engine = ServingEngine(
            system,
            memory_capacity_bytes=capacity,
            context_step=context_step,
            admission="paged",
            preemption_policy=victim_policy,
            preemption_restore=restore,
        )
        result = engine.run(trace, sla_latency_s=sla_latency_s)
        rows.append(_row(f"paged[{victim_policy},{restore}]", result))

    best = max(rows, key=lambda r: r["goodput_tokens_per_s"])
    return {
        "rows": rows,
        "rate_qps": rate_qps,
        "sla_latency_s": sla_latency_s,
        "memory_capacity_bytes": capacity,
        "best_mode": best["mode"],
    }
