"""Multi-tenant placement-policy study on one shared device pool.

The cluster analogue of the serving-mode QoS studies: an asymmetric tenant
mix — a heavy interactive *chat* tenant and a light offline *batch* tenant
— shares one pool, and every placement policy serves the identical traces.
The offered chat rate is deliberately set **above** the capacity of a naive
half-pool share, so the study exposes the regime the sRSP line of work
identifies: with asymmetric demand, placement policy (not raw block cost)
determines aggregate SLA goodput.  Demand-aware policies give the chat
tenant the devices its traffic needs and beat the static partition; the
fairness columns show what that costs the batch tenant (nothing, while the
batch SLO stays loose).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.cluster.engine import ClusterEngine
from repro.cluster.placement import PLACEMENT_POLICIES
from repro.cluster.tenant import SlaClass, TenantSpec
from repro.core.config import CentConfig
from repro.core.system import CentSystem
from repro.models.config import LLAMA2_7B, ModelConfig
from repro.serving.engine import ServingEngine
from repro.workloads.queries import poisson_arrivals, sharegpt_like_queries, with_arrivals

__all__ = ["multi_tenant_policy_study"]


def multi_tenant_policy_study(
    model: ModelConfig = LLAMA2_7B,
    num_devices: int = 8,
    chat_queries: int = 120,
    batch_queries: int = 10,
    chat_load: float = 4.5,
    chat_sla_s: Optional[float] = None,
    batch_rate_qps: float = 1.0,
    batch_sla_s: float = 600.0,
    policies: Sequence[str] = PLACEMENT_POLICIES,
    routing_policy: str = "least_outstanding",
    seed: int = 2025,
    context_samples: int = 3,
    context_step: int = 512,
) -> Dict[str, object]:
    """Sweep placement policies over an asymmetric two-tenant mix.

    The chat tenant's Poisson rate is ``chat_load`` times the estimated
    capacity of a *static half-pool share*, sized to overload the static
    partition while leaving demand-aware policies room to serve it (the
    engine's capacity estimate is deliberately conservative — prefills
    serialise — so the default multiplier sits well above 1).  ``chat_sla_s=None`` calibrates the chat SLO
    as 1.5x the p99 query latency of a lightly loaded (0.25x capacity)
    half-pool reference run, i.e. "what a provisioned deployment delivers,
    with slack"; an overloaded share blows past it because its queueing
    delay grows with every arrival, while an adequately sized share stays
    near the reference latency.

    Returns the per-policy rows plus the derived operating point and the
    best policy by aggregate goodput.
    """
    if chat_load <= 0:
        raise ValueError("chat_load must be positive")
    if num_devices < 2:
        raise ValueError("the pool needs at least two devices for two tenants")

    config = CentConfig(num_devices=num_devices, context_samples=context_samples)
    chat_trace = sharegpt_like_queries(chat_queries, seed=seed)
    batch_trace = sharegpt_like_queries(batch_queries, seed=seed + 1)

    # The naive operator's deployment: the chat tenant on half the pool.
    half_pool = CentSystem(config.scaled(num_devices // 2), model)
    half_engine = ServingEngine(half_pool, context_step=context_step)
    half_capacity_qps = half_engine.estimated_capacity_qps(chat_trace)
    chat_rate_qps = chat_load * half_capacity_qps

    if chat_sla_s is None:
        reference = half_engine.run(with_arrivals(
            chat_trace,
            poisson_arrivals(chat_queries, 0.25 * half_capacity_qps, seed=seed),
        ))
        chat_sla_s = 1.5 * reference.query_latency.p99_s

    chat = TenantSpec(
        "chat",
        trace=with_arrivals(chat_trace,
                            poisson_arrivals(chat_queries, chat_rate_qps, seed=seed)),
        sla_class=SlaClass.INTERACTIVE,
        sla_latency_s=chat_sla_s,
        priority=2.0,
    )
    batch = TenantSpec(
        "batch",
        trace=with_arrivals(batch_trace,
                            poisson_arrivals(batch_queries, batch_rate_qps, seed=seed + 1)),
        sla_class=SlaClass.BATCH,
        sla_latency_s=batch_sla_s,
    )
    # One engine for the whole sweep: the feasibility floors and capability
    # probes behind placement are policy-independent, so the per-policy
    # runs share them through the engine's caches.
    engine = ClusterEngine(
        config,
        [chat, batch],
        default_model=model,
        routing_policy=routing_policy,
        context_step=context_step,
    )

    rows: List[Dict[str, object]] = []
    for policy in policies:
        result = engine.run(placement_policy=policy)
        fractions = result.tenant_goodput_fractions
        rows.append({
            "policy": policy,
            "chat_devices": result.tenant_devices["chat"],
            "batch_devices": result.tenant_devices["batch"],
            "aggregate_goodput_tokens_per_s": result.aggregate_goodput_tokens_per_s,
            "aggregate_throughput_tokens_per_s": result.aggregate_throughput_tokens_per_s,
            "chat_goodput_fraction": fractions["chat"],
            "batch_goodput_fraction": fractions["batch"],
            "chat_p99_latency_s": result.tenant_results["chat"].query_latency.p99_s,
            "max_min_goodput_ratio": result.max_min_goodput_ratio,
            "jain_fairness_index": result.jain_fairness_index,
            "pool_utilization": result.pool_utilization,
        })

    best = max(rows, key=lambda r: r["aggregate_goodput_tokens_per_s"])
    return {
        "rows": rows,
        "chat_rate_qps": chat_rate_qps,
        "chat_sla_s": chat_sla_s,
        "best_policy": best["policy"],
    }
