"""Figure 13: CENT speedups over the GPU baseline.

Three comparisons, each across Llama2-7B/13B/70B:

* (a) latency-critical — a single query (batch 1): CENT uses the tensor-
  parallel mapping, the GPU runs batch 1;
* (b) throughput-critical — maximum supported batch sizes: CENT uses pipeline
  parallelism (batch = pipeline stages), the GPU uses vLLM's largest feasible
  batch (128 unless memory forces fewer);
* (c) cost efficiency — tokens per dollar using the owned 3-year TCO of each
  system.

The deployments mirror the paper: 8/20/32 CXL devices versus 1/2/4 A100s for
the three model sizes.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.baselines.gpu import GPUSystem
from repro.core.config import CentConfig
from repro.core.system import CentSystem
from repro.cost.tco import TcoModel
from repro.mapping.parallelism import PipelineParallel, TensorParallel
from repro.models.config import LLAMA2_7B, LLAMA2_13B, LLAMA2_70B, ModelConfig
from repro.workloads.batching import max_feasible_batch

__all__ = ["figure13_speedups", "DEPLOYMENTS"]

#: (model, CENT devices, GPU count) for the three evaluated model sizes.
DEPLOYMENTS: Sequence[Tuple[ModelConfig, int, int]] = (
    (LLAMA2_7B, 8, 1),
    (LLAMA2_13B, 20, 2),
    (LLAMA2_70B, 32, 4),
)


def _geomean(values: List[float]) -> float:
    positives = [v for v in values if v > 0]
    if not positives:
        return 0.0
    return math.exp(sum(math.log(v) for v in positives) / len(positives))


def figure13_speedups(
    prompt_tokens: int = 512,
    decode_tokens: int = 3584,
    gpu_batch: int = 128,
    context_samples: int = 3,
    deployments: Sequence[Tuple[ModelConfig, int, int]] = DEPLOYMENTS,
) -> Dict[str, List[Dict[str, object]]]:
    """Reproduce the latency, throughput and tokens/$ comparisons."""
    tco = TcoModel()

    latency_rows: List[Dict[str, object]] = []
    throughput_rows: List[Dict[str, object]] = []
    cost_rows: List[Dict[str, object]] = []

    for model, cent_devices, gpu_count in deployments:
        config = CentConfig(num_devices=cent_devices, context_samples=context_samples)
        cent = CentSystem(config, model)
        gpu = GPUSystem(model, num_gpus=gpu_count)

        # ----------------------------------------------------- latency critical
        tp_plan = TensorParallel(cent_devices)
        cent_tp = cent.run_inference(prompt_tokens, decode_tokens, plan=tp_plan,
                                     with_power=False)
        gpu_latency = gpu.query_latency_s(1, prompt_tokens, decode_tokens)
        latency_rows.append({
            "model": model.name,
            "cent_query_latency_s": cent_tp.query_latency_s,
            "gpu_query_latency_s": gpu_latency,
            "speedup": gpu_latency / cent_tp.query_latency_s,
        })

        # -------------------------------------------------- throughput critical
        pp_plan = PipelineParallel(cent_devices, model)
        cent_pp = cent.run_inference(prompt_tokens, decode_tokens, plan=pp_plan)
        # vLLM allocates KV pages on demand, so the feasible batch follows the
        # average context during decoding rather than the final context.
        average_context = prompt_tokens + decode_tokens // 2
        batch = max_feasible_batch(model, gpu.total_memory_bytes, average_context,
                                   requested_batch=gpu_batch)
        gpu_prefill_s = gpu.prefill_latency_s(batch, prompt_tokens)
        gpu_query_s = gpu.query_latency_s(batch, prompt_tokens, decode_tokens)
        gpu_decode_s = gpu_query_s - gpu_prefill_s
        gpu_prefill_tps = batch * prompt_tokens / gpu_prefill_s
        gpu_decode_tps = batch * decode_tokens / gpu_decode_s
        gpu_e2e_tps = batch * decode_tokens / gpu_query_s

        cent_prefill_tps = cent_pp.prefill_throughput_tokens_per_s
        cent_decode_tps = cent_pp.decode_throughput_tokens_per_s
        cent_e2e_tps = cent_pp.end_to_end_throughput_tokens_per_s
        throughput_rows.append({
            "model": model.name,
            "cent_batch": cent_pp.queries_in_flight,
            "gpu_batch": batch,
            "prefill_speedup": cent_prefill_tps / gpu_prefill_tps,
            "decode_speedup": cent_decode_tps / gpu_decode_tps,
            "end_to_end_speedup": cent_e2e_tps / gpu_e2e_tps,
            "cent_tokens_per_s": cent_e2e_tps,
            "gpu_tokens_per_s": gpu_e2e_tps,
        })

        # ------------------------------------------------------ cost efficiency
        cent_power = cent_pp.average_power_w or 1160.0
        cent_tco = tco.cent_tco_per_hour(cent_devices, cent_power, owned=True)
        gpu_tco = tco.gpu_tco_per_hour(gpu_count, gpu_count * 350.0, owned=True)
        cent_tpd = tco.tokens_per_dollar(cent_e2e_tps, cent_tco)
        gpu_tpd = tco.tokens_per_dollar(gpu_e2e_tps, gpu_tco)
        cost_rows.append({
            "model": model.name,
            "cent_tokens_per_dollar": cent_tpd,
            "gpu_tokens_per_dollar": gpu_tpd,
            "tokens_per_dollar_ratio": cent_tpd / gpu_tpd,
        })

    latency_rows.append({
        "model": "geomean",
        "speedup": _geomean([row["speedup"] for row in latency_rows]),
    })
    throughput_rows.append({
        "model": "geomean",
        "prefill_speedup": _geomean([row["prefill_speedup"] for row in throughput_rows]),
        "decode_speedup": _geomean([row["decode_speedup"] for row in throughput_rows]),
        "end_to_end_speedup": _geomean([row["end_to_end_speedup"] for row in throughput_rows]),
    })
    cost_rows.append({
        "model": "geomean",
        "tokens_per_dollar_ratio": _geomean(
            [row["tokens_per_dollar_ratio"] for row in cost_rows]),
    })
    return {
        "latency_critical": latency_rows,
        "throughput_critical": throughput_rows,
        "tokens_per_dollar": cost_rows,
    }
