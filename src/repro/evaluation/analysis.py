"""Figure 14: long-context behaviour, QoS, latency breakdown and comparison.

* (a) decoding-throughput speedup over the GPU as the context grows from 4K
  to 32K (the 16K/32K points need the 16 Gb GDDR6-PIM modules, i.e. a 1 TB
  CENT configuration);
* (b) QoS: query latency versus throughput for different CENT TP/PP mappings
  and GPU batch sizes;
* (c) CENT latency breakdown (PIM / CXL / PNM / host) per mapping;
* (d) prefill and decoding latency versus output length at the maximum batch
  sizes of both systems.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence

from repro.baselines.gpu import GPUSystem
from repro.core.config import CentConfig
from repro.core.system import CentSystem
from repro.dram.geometry import ChannelGeometry
from repro.mapping.parallelism import HybridParallel, PipelineParallel, TensorParallel
from repro.models.config import LLAMA2_70B, ModelConfig
from repro.workloads.batching import max_feasible_batch

__all__ = [
    "figure14a_long_context",
    "figure14b_qos",
    "figure14c_latency_breakdown",
    "figure14d_query_latency",
    "cent_mappings_for",
]


def _extended_model(model: ModelConfig, context: int) -> ModelConfig:
    if context <= model.max_context:
        return model
    return dataclasses.replace(model, max_context=context)


def _config_for_context(num_devices: int, context: int, context_samples: int) -> CentConfig:
    """16K and 32K contexts require the 16 Gb (64 MB/bank) GDDR6-PIM modules.

    At 32K the in-flight queries cannot all hold a full-context KV cache on
    the devices carrying three pipeline stages, so capacity validation uses a
    vLLM-style occupancy factor (queries are staggered across their
    generation progress).
    """
    if context > 8192:
        geometry = ChannelGeometry(bank_capacity_bytes=64 * 1024 * 1024)
        return CentConfig(num_devices=num_devices, geometry=geometry,
                          kv_occupancy=0.8, context_samples=context_samples)
    return CentConfig(num_devices=num_devices, context_samples=context_samples)


def cent_mappings_for(model: ModelConfig, num_devices: int = 32) -> Dict[str, object]:
    """The TP/PP mapping sweep of Figures 14(b) and 14(c)."""
    mappings: Dict[str, object] = {f"PP={model.num_layers}": PipelineParallel(num_devices, model)}
    tp = 2
    while tp < num_devices:
        mappings[f"PP={num_devices // tp} TP={tp}"] = HybridParallel(num_devices, tp)
        tp *= 2
    mappings[f"TP={num_devices}"] = TensorParallel(num_devices)
    return mappings


def figure14a_long_context(
    model: ModelConfig = LLAMA2_70B,
    num_devices: int = 32,
    num_gpus: int = 4,
    contexts: Sequence[int] = (4096, 8192, 16384, 32768),
    decode_tokens: int = 3584,
    context_samples: int = 3,
) -> List[Dict[str, object]]:
    """Decoding-throughput speedup of CENT over the GPU vs context length."""
    rows: List[Dict[str, object]] = []
    for context in contexts:
        prompt = context - decode_tokens
        extended = _extended_model(model, context)
        config = _config_for_context(num_devices, context, context_samples)
        cent = CentSystem(config, extended)
        plan = PipelineParallel(num_devices, extended)
        result = cent.run_inference(prompt, decode_tokens, plan=plan, with_power=False)

        gpu = GPUSystem(extended, num_gpus=num_gpus)
        average_context = prompt + decode_tokens // 2
        batch = max_feasible_batch(extended, gpu.total_memory_bytes, average_context,
                                   requested_batch=128)
        gpu_prefill = gpu.prefill_latency_s(batch, prompt)
        gpu_decode = gpu.query_latency_s(batch, prompt, decode_tokens) - gpu_prefill
        gpu_decode_tps = batch * decode_tokens / gpu_decode
        rows.append({
            "context": context,
            "cent_decode_tokens_per_s": result.decode_throughput_tokens_per_s,
            "gpu_batch": batch,
            "gpu_decode_tokens_per_s": gpu_decode_tps,
            "decode_speedup": result.decode_throughput_tokens_per_s / gpu_decode_tps,
        })
    return rows


def figure14b_qos(
    model: ModelConfig = LLAMA2_70B,
    num_devices: int = 32,
    num_gpus: int = 4,
    prompt_tokens: int = 512,
    decode_tokens: int = 3584,
    gpu_batches: Sequence[int] = (8, 16, 32, 64, 128),
    context_samples: int = 3,
) -> Dict[str, List[Dict[str, object]]]:
    """Query latency versus throughput operating points (Figure 14b)."""
    config = CentConfig(num_devices=num_devices, context_samples=context_samples)
    cent = CentSystem(config, model)
    cent_rows: List[Dict[str, object]] = []
    for name, plan in cent_mappings_for(model, num_devices).items():
        result = cent.run_inference(prompt_tokens, decode_tokens, plan=plan,
                                    with_power=False)
        queries_per_minute = (result.queries_in_flight / result.query_latency_s) * 60.0
        cent_rows.append({
            "mapping": name,
            "query_latency_min": result.query_latency_s / 60.0,
            "throughput_queries_per_min": queries_per_minute,
        })

    gpu = GPUSystem(model, num_gpus=num_gpus)
    gpu_rows: List[Dict[str, object]] = []
    for batch in gpu_batches:
        latency = gpu.query_latency_s(batch, prompt_tokens, decode_tokens)
        gpu_rows.append({
            "batch": batch,
            "query_latency_min": latency / 60.0,
            "throughput_queries_per_min": batch / latency * 60.0,
        })
    return {"cent": cent_rows, "gpu": gpu_rows}


def figure14c_latency_breakdown(
    model: ModelConfig = LLAMA2_70B,
    num_devices: int = 32,
    context_length: int = 4096,
    context_samples: int = 3,
) -> List[Dict[str, object]]:
    """Per-mapping latency breakdown into PIM / CXL / PNM / host (Figure 14c)."""
    config = CentConfig(num_devices=num_devices, context_samples=context_samples)
    cent = CentSystem(config, model)
    rows: List[Dict[str, object]] = []
    for name, plan in cent_mappings_for(model, num_devices).items():
        breakdown = cent.token_breakdown(plan, context_length)
        fractions = breakdown.fractions()
        rows.append({
            "mapping": name,
            "token_latency_ms": breakdown.total_ns * 1e-6,
            "pim_fraction": fractions["pim"],
            "cxl_fraction": fractions["cxl"],
            "pnm_fraction": fractions["pnm"],
            "host_fraction": fractions["host"],
        })
    return rows


def figure14d_query_latency(
    model: ModelConfig = LLAMA2_70B,
    num_devices: int = 32,
    num_gpus: int = 4,
    prompt_tokens: int = 512,
    output_sizes: Sequence[int] = (128, 512, 1024, 3584),
    context_samples: int = 3,
) -> List[Dict[str, object]]:
    """Prefill / decoding latency versus output size at max batch (Figure 14d)."""
    config = CentConfig(num_devices=num_devices, context_samples=context_samples)
    cent = CentSystem(config, model)
    gpu = GPUSystem(model, num_gpus=num_gpus)
    plan = PipelineParallel(num_devices, model)
    rows: List[Dict[str, object]] = []
    for output in output_sizes:
        cent_result = cent.run_inference(prompt_tokens, output, plan=plan, with_power=False)
        average_context = prompt_tokens + output // 2
        batch = max_feasible_batch(model, gpu.total_memory_bytes, average_context,
                                   requested_batch=128)
        gpu_prefill = gpu.prefill_latency_s(batch, prompt_tokens)
        gpu_total = gpu.query_latency_s(batch, prompt_tokens, output)
        rows.append({
            "output_tokens": output,
            "cent_prefill_min": cent_result.prefill_latency_s / 60.0,
            "cent_decode_min": cent_result.decode_latency_s / 60.0,
            "gpu_prefill_min": gpu_prefill / 60.0,
            "gpu_decode_min": (gpu_total - gpu_prefill) / 60.0,
        })
    return rows
