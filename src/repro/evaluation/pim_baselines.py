"""Figures 17 and 18: CENT versus CXL-PNM and versus GPU-PIM systems."""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple

from repro.baselines.attacc import ATTACC_8GPU_8PIM, AttAccSystem
from repro.baselines.cxl_pnm import CxlPnmSystem
from repro.baselines.neupim import NEUPIM_8GPU_8PIM, NeuPimSystem
from repro.core.config import CentConfig
from repro.core.system import CentSystem
from repro.cost.tco import TcoModel, cent_controller_unit_cost, DEFAULT_PRICES
from repro.mapping.parallelism import PipelineParallel
from repro.mapping.placement import validate_capacity
from repro.models.config import GPT3_175B, OPT_66B, ModelConfig
from repro.models.memory import ModelMemoryProfile
from repro.workloads.queries import sharegpt_like_queries

__all__ = ["figure17_cxl_pnm", "figure18_gpu_pim", "cent_max_batch"]


def cent_max_batch(model: ModelConfig, plan, config: CentConfig, context: int) -> int:
    """Largest in-flight query count the plan can hold at one context length.

    CENT's pipeline-parallel batch equals the pipeline stages, but long
    contexts can shrink it below ``num_layers`` (the paper reports batch 96
    for GPT3-175B and smaller batches at longer sequence lengths).
    """
    profile = ModelMemoryProfile(model)
    channels = plan.fc_channels_per_block(model)
    capacity = channels * config.geometry.channel_capacity_bytes
    available = capacity - profile.block_parameter_bytes
    per_query = profile.kv_cache_bytes_per_block_per_query(context)
    return max(int(available // per_query), 1)


def figure17_cxl_pnm(
    prompt_tokens: int = 64,
    decode_tokens: int = 1024,
    cent_devices: int = 24,
    cxl_pnm_device_counts: Sequence[int] = (1, 8, 32),
    context_samples: int = 3,
) -> List[Dict[str, object]]:
    """OPT-66B throughput of CXL-PNM versus CENT (Figure 17)."""
    model = OPT_66B
    rows: List[Dict[str, object]] = []
    for devices in cxl_pnm_device_counts:
        system = CxlPnmSystem(num_devices=devices)
        throughput = system.end_to_end_throughput(model, prompt_tokens, decode_tokens)
        rows.append({
            "system": "CXL-PNM",
            "devices": devices,
            "tflops": system.tflops,
            "memory_bandwidth_tbps": system.memory_bandwidth_tbps,
            "memory_capacity_gb": system.memory_capacity_bytes / 2**30,
            "tokens_per_s": throughput,
        })

    config = CentConfig(num_devices=cent_devices, context_samples=context_samples)
    cent = CentSystem(config, model)
    plan = PipelineParallel(cent_devices, model)
    result = cent.run_inference(prompt_tokens, decode_tokens, plan=plan, with_power=False)
    rows.append({
        "system": "CENT",
        "devices": cent_devices,
        "tflops": config.peak_pim_tflops + config.peak_pnm_tflops,
        "memory_bandwidth_tbps": config.peak_internal_bandwidth_tbps,
        "memory_capacity_gb": config.memory_capacity_bytes / 2**30,
        "tokens_per_s": result.end_to_end_throughput_tokens_per_s,
    })
    return rows


def _cent_tco_per_hour(num_devices: int, average_power_w: float) -> float:
    return TcoModel().cent_tco_per_hour(num_devices, average_power_w, owned=True)


def _gpu_pim_tco_per_hour(num_gpus: int, num_pim: int, pim_unit_cost_factor: float,
                          average_power_w: float) -> float:
    """Owned TCO of a GPU + HBM-PIM system.

    HBM-PIM price is estimated at 10x the HBM price (the paper's assumption);
    the NPU adds die/packaging/NRE cost via the same methodology as the CENT
    controller.
    """
    hbm_pim_cost = 2000.0 * 10 * num_pim * pim_unit_cost_factor
    npu_cost = cent_controller_unit_cost(die_area_mm2=400.0, production_volume=400_000)[
        "total"] * num_pim
    hardware = (DEFAULT_PRICES.xeon_gold_6430_usd
                + DEFAULT_PRICES.a100_80gb_usd * num_gpus
                + hbm_pim_cost + npu_cost)
    tco = TcoModel()
    return hardware / tco.amortisation_hours + tco.operational_cost_per_hour(average_power_w)


def figure18_gpu_pim(
    scenarios: Sequence[Tuple[int, int]] = ((128, 128), (128, 2048), (2048, 128), (2048, 2048)),
    cent_devices: int = 96,
    context_samples: int = 3,
) -> Dict[str, List[Dict[str, object]]]:
    """GPT3-175B: CENT versus AttAcc and NeuPIM (Figure 18)."""
    model = dataclasses.replace(GPT3_175B, max_context=4096)
    tco = TcoModel()

    attacc_rows: List[Dict[str, object]] = []
    attacc = AttAccSystem(model)
    config = CentConfig(num_devices=cent_devices, context_samples=context_samples)
    cent = CentSystem(config, model)
    plan = PipelineParallel(cent_devices, model)

    for prompt, output in scenarios:
        context = prompt + output
        attacc_batch = min(attacc.max_batch_size(context), 512)
        attacc_tps = attacc.end_to_end_throughput(attacc_batch, prompt, output)
        attacc_tco = _gpu_pim_tco_per_hour(
            ATTACC_8GPU_8PIM.num_gpus, ATTACC_8GPU_8PIM.num_pim_devices, 1.0,
            attacc.system_power_w)

        cent_batch = min(cent_max_batch(model, plan, config, context), model.num_layers)
        stages = max(cent_batch, 1)
        cent_plan = dataclasses.replace(plan, pp_stages=stages, name=f"PP={stages}")
        validate_capacity(model, cent_plan, context)
        cent_result = cent.run_inference(prompt, output, plan=cent_plan)
        cent_tps = cent_result.end_to_end_throughput_tokens_per_s
        cent_tco = _cent_tco_per_hour(cent_devices, cent_result.average_power_w or 3000.0)

        attacc_rows.append({
            "scenario": f"In {prompt} / Out {output}",
            "attacc_tokens_per_s": attacc_tps,
            "cent_tokens_per_s": cent_tps,
            "attacc_mtokens_per_dollar": tco.tokens_per_dollar(attacc_tps, attacc_tco) / 1e6,
            "cent_mtokens_per_dollar": tco.tokens_per_dollar(cent_tps, cent_tco) / 1e6,
            "tokens_per_dollar_ratio": (tco.tokens_per_dollar(cent_tps, cent_tco)
                                        / tco.tokens_per_dollar(attacc_tps, attacc_tco)),
            "throughput_ratio": cent_tps / attacc_tps,
        })

    # NeuPIM comparison on a ShareGPT-like trace.
    neupim = NeuPimSystem(model)
    queries = sharegpt_like_queries(256, max_context=2048)
    mean_prompt = int(sum(q.prompt_tokens for q in queries) / len(queries))
    mean_output = int(sum(q.decode_tokens for q in queries) / len(queries))
    neupim_rows: List[Dict[str, object]] = []
    for batch in (64, 96, 128, 256):
        neupim_batch = min(batch, neupim.max_batch_size(mean_prompt + mean_output))
        neupim_tps = neupim.end_to_end_throughput(neupim_batch, mean_prompt, mean_output)
        neupim_tco = _gpu_pim_tco_per_hour(
            NEUPIM_8GPU_8PIM.num_gpus, NEUPIM_8GPU_8PIM.num_pim_devices, 1.0,
            neupim.system_power_w)

        cent_batch = min(cent_max_batch(model, plan, config, mean_prompt + mean_output),
                         model.num_layers)
        cent_plan = dataclasses.replace(plan, pp_stages=cent_batch, name=f"PP={cent_batch}")
        cent_result = cent.run_inference(mean_prompt, mean_output, plan=cent_plan)
        cent_tps = cent_result.end_to_end_throughput_tokens_per_s
        cent_tco = _cent_tco_per_hour(cent_devices, cent_result.average_power_w or 3000.0)
        neupim_rows.append({
            "neupim_batch": neupim_batch,
            "neupim_tokens_per_s": neupim_tps,
            "cent_batch": cent_batch,
            "cent_tokens_per_s": cent_tps,
            "neupim_mtokens_per_dollar": tco.tokens_per_dollar(neupim_tps, neupim_tco) / 1e6,
            "cent_mtokens_per_dollar": tco.tokens_per_dollar(cent_tps, cent_tco) / 1e6,
            "tokens_per_dollar_ratio": (tco.tokens_per_dollar(cent_tps, cent_tco)
                                        / tco.tokens_per_dollar(neupim_tps, neupim_tco)),
        })
    return {"attacc": attacc_rows, "neupim": neupim_rows}
