"""Text-table rendering of experiment rows."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

__all__ = ["format_table", "rows_to_csv"]


def _format_value(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(rows: Sequence[Dict[str, object]], title: str = "") -> str:
    """Render a list of dict rows as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    headers: List[str] = []
    for row in rows:
        for key in row:
            if key not in headers:
                headers.append(key)
    table = [[_format_value(row.get(header, "")) for header in headers] for row in rows]
    widths = [max(len(header), *(len(line[i]) for line in table))
              for i, header in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(width) for header, width in zip(headers, widths, strict=True)))
    lines.append("  ".join("-" * width for width in widths))
    for line in table:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(line, widths, strict=True)))
    return "\n".join(lines)


def rows_to_csv(rows: Iterable[Dict[str, object]]) -> str:
    """Render rows as CSV text (the artifact's processed_results.csv analog)."""
    rows = list(rows)
    if not rows:
        return ""
    headers: List[str] = []
    for row in rows:
        for key in row:
            if key not in headers:
                headers.append(key)
    lines = [",".join(headers)]
    for row in rows:
        lines.append(",".join(str(row.get(header, "")) for header in headers))
    return "\n".join(lines)
