"""Prefix-reuse study: goodput vs tenant prefix-reuse rate with KV sharing.

Multi-tenant serving traffic repeats long prompt prefixes — system prompts,
few-shot preambles, retrieval templates — and a paged KV store that hashes
those prefixes into shared refcounted block chains admits a cache-hit
request with only its suffix's blocks and skips the shared prefill
(``prefix_sharing`` in :class:`~repro.serving.engine.ServingEngine`).  This
study sweeps the workload's reuse fraction on an overloaded,
memory-constrained deployment and reports what sharing buys (SLA goodput,
admission latency, fewer preemptions) over the no-sharing engine on the
identical trace.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.config import CentConfig
from repro.core.results import ServingResult
from repro.core.system import CentSystem
from repro.models.config import LLAMA2_7B, ModelConfig
from repro.models.memory import ModelMemoryProfile
from repro.serving.engine import ServingEngine
from repro.workloads.queries import (
    poisson_arrivals,
    prefix_reuse_queries,
    with_arrivals,
)

__all__ = ["prefix_reuse_study"]


def _row(reuse: float, mode: str, result: ServingResult) -> Dict[str, object]:
    return {
        "reuse_fraction": reuse,
        "mode": mode,
        "completed": result.num_completed,
        "goodput_tokens_per_s": result.goodput_tokens_per_s,
        "throughput_tokens_per_s": result.throughput_tokens_per_s,
        "ttft_p99_s": result.ttft.p99_s,
        "query_latency_p99_s": result.query_latency.p99_s,
        "sla_violation_fraction": result.sla_violation_fraction,
        "prefix_hit_rate": result.prefix_hit_rate,
        "prefix_hit_tokens": result.prefix_hit_tokens,
        "num_cow_blocks": result.num_cow_blocks,
        "num_preemptions": result.num_preemptions,
        "preemption_stall_time_s": result.preemption_stall_time_s,
    }


def prefix_reuse_study(
    model: ModelConfig = LLAMA2_7B,
    num_devices: int = 8,
    num_queries: int = 96,
    overload: float = 2.0,
    kv_capacity_queries: float = 3.0,
    reuse_fractions: Sequence[float] = (0.0, 0.5, 0.9),
    num_tenants: int = 6,
    mean_prefix_tokens: float = 512.0,
    sla_latency_s: Optional[float] = None,
    seed: int = 2025,
    context_samples: int = 3,
    context_step: int = 512,
) -> Dict[str, object]:
    """Shared-prefix KV reuse vs fresh allocation under overload.

    Memory capacity is clamped to the model weights plus
    ``kv_capacity_queries`` worst-case KV caches, the Poisson rate is
    ``overload`` times the constrained engine's estimated capacity, and
    ``sla_latency_s`` defaults to 1.5x the p99 query latency of a lightly
    loaded (0.25x capacity) reference run — the same operating-point recipe
    as :func:`~repro.evaluation.preemption_studies.overload_preemption_study`.
    For every reuse fraction the identical trace is served twice, with
    ``prefix_sharing`` on and off, so each row pair isolates what block
    sharing buys at that reuse level.

    Returns the row pairs plus, per reuse fraction, the sharing engine's
    goodput gain over the no-sharing engine.
    """
    if overload <= 0:
        raise ValueError("overload must be positive")
    if kv_capacity_queries <= 0:
        raise ValueError("kv_capacity_queries must be positive")
    if not reuse_fractions:
        raise ValueError("reuse_fractions must be non-empty")

    config = CentConfig(num_devices=num_devices, context_samples=context_samples)
    system = CentSystem(config, model)
    profile = ModelMemoryProfile(model)

    def make_queries(reuse: float):
        return prefix_reuse_queries(
            num_queries,
            num_tenants=num_tenants,
            reuse_fraction=reuse,
            mean_prefix_tokens=mean_prefix_tokens,
            seed=seed,
            max_context=model.max_context,
        )

    # One operating point for the whole sweep, derived from the highest-reuse
    # mix (the longest prompts): capacity, arrival rate and SLA stay fixed so
    # the reuse fraction is the only thing that varies across rows.
    probe_queries = make_queries(max(reuse_fractions))
    longest = max(q.total_context for q in probe_queries)
    capacity = int(profile.parameter_bytes
                   + kv_capacity_queries * profile.kv_cache_bytes_per_query(longest))

    def make_engine(sharing: bool) -> ServingEngine:
        return ServingEngine(
            system,
            memory_capacity_bytes=capacity,
            context_step=context_step,
            admission="paged",
            prefix_sharing=sharing,
        )

    capacity_qps = make_engine(False).estimated_capacity_qps(probe_queries)
    rate_qps = overload * capacity_qps

    if sla_latency_s is None:
        reference = make_engine(False).run(with_arrivals(
            probe_queries,
            poisson_arrivals(num_queries, 0.25 * capacity_qps, seed=seed),
        ))
        sla_latency_s = 1.5 * reference.query_latency.p99_s

    rows: List[Dict[str, object]] = []
    gains: Dict[float, float] = {}
    for reuse in reuse_fractions:
        trace = with_arrivals(make_queries(reuse),
                              poisson_arrivals(num_queries, rate_qps, seed=seed))
        shared = make_engine(True).run(trace, sla_latency_s=sla_latency_s)
        fresh = make_engine(False).run(trace, sla_latency_s=sla_latency_s)
        rows.append(_row(reuse, "prefix-shared", shared))
        rows.append(_row(reuse, "no-sharing", fresh))
        base = fresh.goodput_tokens_per_s
        gains[reuse] = (shared.goodput_tokens_per_s / base) if base > 0 else 1.0

    return {
        "rows": rows,
        "rate_qps": rate_qps,
        "sla_latency_s": sla_latency_s,
        "memory_capacity_bytes": capacity,
        "goodput_gain_by_reuse": gains,
        "max_goodput_gain": max(gains.values()),
    }
