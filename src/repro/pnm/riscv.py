"""RISC-V cores of the PNM units.

Each CXL device integrates 8 BOOM-2wide out-of-order RISC-V cores that execute
the less common operations of a transformer block: square root and inversion
for RMSNorm, the Softmax normalisation divide, residual vector additions, the
complex/real packing of rotary positional embedding, and any future model-
specific operations.  Cores see the shared buffer as byte-addressable memory.

The functional model exposes the routines as named vector functions; the
timing model charges cycles per element based on the routine's arithmetic
complexity on a 2-wide core.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict

import numpy as np

from repro.numerics.bf16 import bf16_quantize

__all__ = ["RiscvCore", "RiscvCluster", "RISCV_ROUTINES", "RoutineSpec"]


@dataclass(frozen=True)
class RoutineSpec:
    """Functional behaviour and per-element cycle cost of one routine."""

    name: str
    function: Callable[[np.ndarray], np.ndarray]
    cycles_per_element: float
    description: str


def _sqrt_inv(values: np.ndarray) -> np.ndarray:
    """1/sqrt(x) — the RMSNorm normalisation factor."""
    x = np.asarray(values, dtype=np.float32)
    with np.errstate(divide="ignore"):
        return bf16_quantize(1.0 / np.sqrt(x))


def _inverse(values: np.ndarray) -> np.ndarray:
    """1/x — Softmax normalisation."""
    x = np.asarray(values, dtype=np.float32)
    with np.errstate(divide="ignore"):
        return bf16_quantize(1.0 / x)


def _residual_add(values: np.ndarray) -> np.ndarray:
    """Vector addition of two concatenated halves (residual connection)."""
    x = np.asarray(values, dtype=np.float32)
    if x.size % 2 != 0:
        raise ValueError("residual_add expects an even-length concatenated input")
    half = x.size // 2
    return bf16_quantize(x[:half] + x[half:])


def _rope_pack(values: np.ndarray) -> np.ndarray:
    """Pack a real head vector [a, b, c, d, ...] into interleaved complex
    pairs [(a, b), (c, d), ...] laid out as [a, c, ..., b, d, ...]."""
    x = np.asarray(values, dtype=np.float32)
    if x.size % 2 != 0:
        raise ValueError("rope_pack expects an even-length head vector")
    real = x[0::2]
    imag = x[1::2]
    return bf16_quantize(np.concatenate([real, imag]))


def _rope_unpack(values: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_rope_pack`."""
    x = np.asarray(values, dtype=np.float32)
    if x.size % 2 != 0:
        raise ValueError("rope_unpack expects an even-length packed vector")
    half = x.size // 2
    result = np.empty_like(x)
    result[0::2] = x[:half]
    result[1::2] = x[half:]
    return bf16_quantize(result)


def _softmax_max(values: np.ndarray) -> np.ndarray:
    """Running maximum used for numerically stable Softmax."""
    x = np.asarray(values, dtype=np.float32)
    return bf16_quantize(np.full_like(x, np.max(x)))


def _generic(values: np.ndarray) -> np.ndarray:
    """Identity routine used as a placeholder for future model operations."""
    return bf16_quantize(np.asarray(values, dtype=np.float32))


#: Registry of routines the compiler may reference by name.
RISCV_ROUTINES: Dict[str, RoutineSpec] = {
    "sqrt_inv": RoutineSpec("sqrt_inv", _sqrt_inv, cycles_per_element=12.0,
                            description="1/sqrt(x) for RMSNorm"),
    "inverse": RoutineSpec("inverse", _inverse, cycles_per_element=10.0,
                           description="1/x for Softmax normalisation"),
    "residual_add": RoutineSpec("residual_add", _residual_add, cycles_per_element=1.0,
                                description="residual vector addition"),
    "rope_pack": RoutineSpec("rope_pack", _rope_pack, cycles_per_element=1.5,
                             description="real to complex packing for RoPE"),
    "rope_unpack": RoutineSpec("rope_unpack", _rope_unpack, cycles_per_element=1.5,
                               description="complex to real unpacking for RoPE"),
    "softmax_max": RoutineSpec("softmax_max", _softmax_max, cycles_per_element=1.0,
                               description="max-reduction for stable Softmax"),
    "generic": RoutineSpec("generic", _generic, cycles_per_element=2.0,
                           description="placeholder for future operations"),
}


@dataclass
class RiscvCore:
    """One BOOM-2wide core: functional routine execution plus a cycle model."""

    core_id: int = 0
    clock_ghz: float = 2.0
    issue_width: int = 2
    executed_elements: int = 0

    def run(self, routine: str, values: np.ndarray) -> np.ndarray:
        spec = self._spec(routine)
        result = spec.function(np.asarray(values, dtype=np.float32))
        self.executed_elements += int(np.asarray(values).size)
        return result

    def latency_ns(self, routine: str, num_elements: int) -> float:
        """Latency for one core to process ``num_elements`` values."""
        if num_elements <= 0:
            return 0.0
        spec = self._spec(routine)
        cycles = num_elements * spec.cycles_per_element / self.issue_width
        return cycles / self.clock_ghz

    @staticmethod
    def _spec(routine: str) -> RoutineSpec:
        if routine not in RISCV_ROUTINES:
            raise ValueError(
                f"unknown RISC-V routine {routine!r}; known routines: "
                f"{sorted(RISCV_ROUTINES)}"
            )
        return RISCV_ROUTINES[routine]


@dataclass
class RiscvCluster:
    """The 8-core RISC-V cluster of one CXL device."""

    num_cores: int = 8
    clock_ghz: float = 2.0
    cores: list = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ValueError("the cluster needs at least one core")
        if not self.cores:
            self.cores = [RiscvCore(core_id=i, clock_ghz=self.clock_ghz)
                          for i in range(self.num_cores)]

    def run(self, routine: str, values: np.ndarray) -> np.ndarray:
        """Functional execution (work split is irrelevant to the result)."""
        return self.cores[0].run(routine, values)

    def latency_ns(self, routine: str, num_elements: int) -> float:
        """Latency with the work striped across all cores."""
        if num_elements <= 0:
            return 0.0
        per_core = -(-num_elements // self.num_cores)
        return self.cores[0].latency_ns(routine, per_core)
