"""PNM accelerators: accumulators, reduction trees and exponent units.

Each CXL device contains 32 of each accelerator type (Figure 7b).  They
operate on 256-bit shared-buffer slots (16 BF16 lanes) at the CXL controller
clock (2.0 GHz after the 7 nm projection, §6).  The latency model charges one
controller cycle per slot per accelerator, with all 32 instances of a type
operating in parallel, which is how the paper's PNM latency component stays
small relative to PIM latency (Figure 14c).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.numerics.bf16 import bf16_quantize
from repro.numerics.taylor import taylor_exp
from repro.pnm.shared_buffer import SharedBuffer

__all__ = [
    "Accumulator",
    "ReductionTree",
    "ExponentUnit",
    "PnmAcceleratorBank",
    "PnmLatencyModel",
]


class Accumulator:
    """Lane-wise accumulation of two shared-buffer slots: Rd[i] += Rs[i]."""

    def execute(self, destination: np.ndarray, source: np.ndarray) -> np.ndarray:
        destination = bf16_quantize(np.asarray(destination, dtype=np.float32))
        source = bf16_quantize(np.asarray(source, dtype=np.float32))
        return bf16_quantize(destination + source)


class ReductionTree:
    """Reduce the 16 BF16 lanes of one slot to a single value in lane 0."""

    def execute(self, source: np.ndarray) -> np.ndarray:
        source = bf16_quantize(np.asarray(source, dtype=np.float32))
        result = np.zeros_like(source)
        result[0] = bf16_quantize(np.float32(np.sum(source.astype(np.float32))))
        return result


class ExponentUnit:
    """Per-lane exponent via the 10-order Taylor approximation."""

    def execute(self, source: np.ndarray) -> np.ndarray:
        return taylor_exp(np.asarray(source, dtype=np.float32))


@dataclass(frozen=True)
class PnmLatencyModel:
    """Latency parameters of the PNM accelerators.

    ``clock_ghz`` is the CXL controller clock (2.0 GHz at 7 nm).  Each
    accelerator instance processes one 256-bit slot per cycle; ``instances``
    of the same type run in parallel.
    """

    clock_ghz: float = 2.0
    instances: int = 32

    def __post_init__(self) -> None:
        if self.clock_ghz <= 0:
            raise ValueError("clock must be positive")
        if self.instances <= 0:
            raise ValueError("instance count must be positive")

    @property
    def cycle_ns(self) -> float:
        return 1.0 / self.clock_ghz

    def latency_ns(self, num_slots: int) -> float:
        """Latency to process ``num_slots`` slots across all instances."""
        if num_slots < 0:
            raise ValueError("num_slots must be non-negative")
        if num_slots == 0:
            return 0.0
        waves = -(-num_slots // self.instances)
        return waves * self.cycle_ns

    def latency_for_elements(self, num_elements: int) -> float:
        """Latency to process a vector of ``num_elements`` BF16 values."""
        if num_elements <= 0:
            return 0.0
        return self.latency_ns(SharedBuffer.slots_for(num_elements))


class PnmAcceleratorBank:
    """The full set of PNM accelerators of one device, with functional and
    timing entry points used by the functional simulator and the performance
    model respectively."""

    def __init__(self, latency_model: PnmLatencyModel | None = None) -> None:
        self.latency = latency_model or PnmLatencyModel()
        self.accumulator = Accumulator()
        self.reduction_tree = ReductionTree()
        self.exponent_unit = ExponentUnit()
        self.slot_operations: int = 0

    # Functional operations on whole vectors -------------------------------

    def accumulate(self, destination: np.ndarray, source: np.ndarray) -> np.ndarray:
        """Element-wise accumulate two vectors (residual connections)."""
        destination = np.asarray(destination, dtype=np.float32)
        source = np.asarray(source, dtype=np.float32)
        if destination.shape != source.shape:
            raise ValueError("accumulate requires equal-shape vectors")
        self.slot_operations += SharedBuffer.slots_for(destination.size)
        return bf16_quantize(bf16_quantize(destination) + bf16_quantize(source))

    def reduce_sum(self, source: np.ndarray) -> float:
        """Sum all elements of a vector using the reduction trees."""
        source = bf16_quantize(np.asarray(source, dtype=np.float32))
        self.slot_operations += SharedBuffer.slots_for(source.size)
        return float(bf16_quantize(np.float32(np.sum(source.astype(np.float32)))))

    def exponent(self, source: np.ndarray) -> np.ndarray:
        """Per-element exponent of a vector."""
        source = np.asarray(source, dtype=np.float32)
        self.slot_operations += SharedBuffer.slots_for(source.size)
        return taylor_exp(source)

    # Timing ---------------------------------------------------------------

    def operation_latency_ns(self, num_elements: int) -> float:
        return self.latency.latency_for_elements(num_elements)
