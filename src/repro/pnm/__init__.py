"""Processing-near-memory (PNM) units of a CXL device.

The CXL controller of every CENT device contains PNM units shared by the 32
PIM channels (Figure 7b): 32 accumulators, 32 reduction trees, 32 exponent
accelerators and 8 BOOM-2wide RISC-V cores, all communicating through a 64 KB
shared buffer viewed as 256-bit registers.  They execute the infrequent
non-MAC operations of a transformer block: Softmax normalisation, square
root and inversion for RMSNorm, residual additions, and the complex/real
transforms of rotary positional embedding.
"""

from repro.pnm.shared_buffer import SharedBuffer
from repro.pnm.accelerators import (
    Accumulator,
    ReductionTree,
    ExponentUnit,
    PnmAcceleratorBank,
    PnmLatencyModel,
)
from repro.pnm.riscv import RiscvCore, RiscvCluster, RISCV_ROUTINES

__all__ = [
    "SharedBuffer",
    "Accumulator",
    "ReductionTree",
    "ExponentUnit",
    "PnmAcceleratorBank",
    "PnmLatencyModel",
    "RiscvCore",
    "RiscvCluster",
    "RISCV_ROUTINES",
]
