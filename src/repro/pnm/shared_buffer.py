"""The 64 KB shared buffer of a CXL device.

PIM channels and PNM units view the shared buffer as a file of 256-bit
registers (2048 slots); the RISC-V cores view the same storage as a
byte-addressable 64 KB region and access it with 16-bit loads and stores.
Inter-device communication stages data in the shared buffer as well, so it is
the rendezvous point for every data movement instruction.
"""

from __future__ import annotations

import numpy as np

from repro.numerics.bf16 import bf16_quantize

__all__ = ["SharedBuffer"]


class SharedBuffer:
    """64 KB buffer addressed as 256-bit slots of 16 BF16 elements."""

    SLOT_BITS = 256
    ELEMENTS_PER_SLOT = SLOT_BITS // 16

    def __init__(self, capacity_bytes: int = 64 * 1024) -> None:
        if capacity_bytes <= 0 or capacity_bytes % (self.SLOT_BITS // 8) != 0:
            raise ValueError("capacity must be a positive multiple of the slot size")
        self.capacity_bytes = capacity_bytes
        self.num_slots = capacity_bytes // (self.SLOT_BITS // 8)
        self._data = np.zeros((self.num_slots, self.ELEMENTS_PER_SLOT), dtype=np.float32)

    # ------------------------------------------------------------------ slot view

    def write_slot(self, slot: int, values: np.ndarray) -> None:
        self._check_slot(slot)
        values = np.asarray(values, dtype=np.float32)
        if values.shape != (self.ELEMENTS_PER_SLOT,):
            raise ValueError(
                f"a slot holds {self.ELEMENTS_PER_SLOT} elements, got shape {values.shape}"
            )
        self._data[slot] = bf16_quantize(values)

    def read_slot(self, slot: int) -> np.ndarray:
        self._check_slot(slot)
        return self._data[slot].copy()

    # ------------------------------------------------------------------ vector view

    def write_vector(self, start_slot: int, vector: np.ndarray) -> int:
        """Write a vector across consecutive slots, zero-padding the tail.

        Returns the number of slots consumed.
        """
        vector = np.asarray(vector, dtype=np.float32).ravel()
        num_slots = self.slots_for(len(vector))
        if start_slot < 0 or start_slot + num_slots > self.num_slots:
            raise ValueError(
                f"vector of {len(vector)} elements does not fit at slot {start_slot}: "
                f"needs {num_slots} of {self.num_slots} slots"
            )
        padded = np.zeros(num_slots * self.ELEMENTS_PER_SLOT, dtype=np.float32)
        padded[: len(vector)] = vector
        self._data[start_slot:start_slot + num_slots] = bf16_quantize(
            padded.reshape(num_slots, self.ELEMENTS_PER_SLOT)
        )
        return num_slots

    def read_vector(self, start_slot: int, length: int) -> np.ndarray:
        num_slots = self.slots_for(length)
        self._check_slot(start_slot)
        self._check_slot(start_slot + num_slots - 1)
        return self._data[start_slot:start_slot + num_slots].ravel()[:length].copy()

    # ------------------------------------------------------------------ byte view (RISC-V)

    def load_halfword(self, byte_address: int) -> float:
        """16-bit load as seen by a RISC-V core (returns the BF16 value)."""
        slot, lane = self._byte_to_slot_lane(byte_address)
        return float(self._data[slot, lane])

    def store_halfword(self, byte_address: int, value: float) -> None:
        """16-bit store as seen by a RISC-V core."""
        slot, lane = self._byte_to_slot_lane(byte_address)
        self._data[slot, lane] = bf16_quantize(np.float32(value))

    # ------------------------------------------------------------------ helpers

    @classmethod
    def slots_for(cls, num_elements: int) -> int:
        """Number of 256-bit slots needed to hold ``num_elements`` BF16 values."""
        if num_elements <= 0:
            raise ValueError("num_elements must be positive")
        return -(-num_elements // cls.ELEMENTS_PER_SLOT)

    def _byte_to_slot_lane(self, byte_address: int) -> tuple:
        if byte_address < 0 or byte_address + 2 > self.capacity_bytes:
            raise ValueError(f"byte address {byte_address} out of range")
        if byte_address % 2 != 0:
            raise ValueError("16-bit accesses must be 2-byte aligned")
        element_index = byte_address // 2
        return divmod(element_index, self.ELEMENTS_PER_SLOT)

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < self.num_slots:
            raise ValueError(f"slot {slot} out of range [0, {self.num_slots})")
