"""Timing model of a PIM channel executing CENT PIM instructions.

The PIM controller of a CXL device manages two PIM channels; each channel
receives micro-ops decoded from CENT instructions and converts them into DRAM
command sequences.  This module models one channel: it expands every PIM-class
instruction (Table 2/3) into the all-bank or per-bank command flow described
in the paper (``ACTab`` → ``MACab``… → ``PREab``) and schedules the commands
on the :class:`~repro.dram.channel.DRAMChannel` substrate, yielding
per-instruction latency and channel activity counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.dram.channel import DRAMChannel
from repro.dram.commands import CommandType, DRAMCommand
from repro.dram.geometry import ChannelGeometry, GDDR6_PIM_GEOMETRY
from repro.dram.timing import TimingParameters, GDDR6_PIM_TIMINGS
from repro.isa.instructions import (
    ActivationFunction,
    CopyBankToGlobalBuffer,
    ElementwiseMul,
    Instruction,
    MacAllBank,
    Opcode,
    WriteAllBanks,
    WriteGlobalBuffer,
    WriteSingleBank,
)

__all__ = ["PIMChannel", "PIMChannelStats"]


@dataclass
class PIMChannelStats:
    """Per-channel activity counters beyond raw DRAM commands."""

    instructions: Dict[Opcode, int] = field(default_factory=dict)
    mac_micro_ops: int = 0
    shared_buffer_transfers: int = 0
    global_buffer_writes: int = 0

    def record_instruction(self, opcode: Opcode) -> None:
        self.instructions[opcode] = self.instructions.get(opcode, 0) + 1


class PIMChannel:
    """One GDDR6-PIM channel: DRAM timing substrate + near-bank PU flow."""

    def __init__(
        self,
        channel_id: int = 0,
        timing: TimingParameters = GDDR6_PIM_TIMINGS,
        geometry: ChannelGeometry = GDDR6_PIM_GEOMETRY,
    ) -> None:
        self.channel_id = channel_id
        self.timing = timing
        self.geometry = geometry
        self.dram = DRAMChannel(timing=timing, geometry=geometry)
        self.stats = PIMChannelStats()
        # Row currently open across all banks by an ACTab, or None.
        self._all_bank_open_row: Optional[int] = None
        # Per-bank open row for single-bank accesses.
        self._bank_open_rows: Dict[int, int] = {}
        self.busy_until_ns: float = 0.0

    # ------------------------------------------------------------------ public

    def execute(self, instruction: Instruction) -> float:
        """Execute one PIM instruction; return its latency in nanoseconds.

        The channel is busy from its previous ``busy_until_ns`` until the new
        completion time; the return value is the incremental busy time added
        by this instruction.
        """
        if not instruction.opcode.is_pim:
            raise ValueError(
                f"{instruction.opcode.value} is not a PIM instruction; "
                "PNM/CXL instructions are handled by the device model"
            )
        start = self.busy_until_ns
        handler = {
            Opcode.MAC_ABK: self._execute_mac_all_bank,
            Opcode.EW_MUL: self._execute_elementwise_mul,
            Opcode.AF: self._execute_activation,
            Opcode.WR_SBK: self._execute_single_bank,
            Opcode.RD_SBK: self._execute_single_bank,
            Opcode.WR_ABK: self._execute_write_all_banks,
            Opcode.COPY_BKGB: self._execute_copy_bank_gb,
            Opcode.COPY_GBBK: self._execute_copy_bank_gb,
            Opcode.WR_BIAS: self._execute_register_io,
            Opcode.RD_MAC: self._execute_register_io,
            Opcode.WR_GB: self._execute_write_global_buffer,
        }[instruction.opcode]
        end = handler(instruction)
        self.stats.record_instruction(instruction.opcode)
        self.busy_until_ns = max(self.busy_until_ns, end)
        return self.busy_until_ns - start

    def execute_program(self, instructions) -> float:
        """Execute a sequence of PIM instructions; return total added latency."""
        start = self.busy_until_ns
        for instruction in instructions:
            self.execute(instruction)
        return self.busy_until_ns - start

    def close_row(self) -> float:
        """Precharge any open all-bank row (end of an operation group)."""
        if self._all_bank_open_row is None:
            return self.busy_until_ns
        issue = self.dram.issue(DRAMCommand(CommandType.PRE_ALL))
        self._all_bank_open_row = None
        self._bank_open_rows.clear()
        self.busy_until_ns = max(self.busy_until_ns, issue + self.timing.t_rp)
        return self.busy_until_ns

    def reset_timing(self) -> None:
        """Reset the clock while keeping accumulated statistics."""
        self.dram.reset_time()
        self._all_bank_open_row = None
        self._bank_open_rows.clear()
        self.busy_until_ns = 0.0

    # ------------------------------------------------------------------ peak rates

    def peak_internal_bandwidth_gbps(self) -> float:
        return self.dram.peak_internal_bandwidth_gbps()

    def peak_compute_gflops(self) -> float:
        return self.dram.peak_compute_gflops()

    # ------------------------------------------------------------------ handlers

    def _open_all_bank_row(self, row: int) -> None:
        """Ensure ``row`` is open in all banks (ACTab), precharging first if a
        different row is open."""
        if self._all_bank_open_row == row:
            return
        if self._all_bank_open_row is not None or self._bank_open_rows:
            self.dram.issue(DRAMCommand(CommandType.PRE_ALL))
            self._bank_open_rows.clear()
        self.dram.issue(DRAMCommand(CommandType.ACT_ALL, row=row))
        self._all_bank_open_row = row

    def _open_bank_row(self, bank: int, row: int) -> None:
        if self._bank_open_rows.get(bank) == row and self._all_bank_open_row is None:
            return
        if self._all_bank_open_row is not None:
            self.dram.issue(DRAMCommand(CommandType.PRE_ALL))
            self._all_bank_open_row = None
            self._bank_open_rows.clear()
        elif bank in self._bank_open_rows:
            self.dram.issue(DRAMCommand(CommandType.PRE, bank=bank))
            del self._bank_open_rows[bank]
        self.dram.issue(DRAMCommand(CommandType.ACT, bank=bank, row=row))
        self._bank_open_rows[bank] = row

    def _execute_mac_all_bank(self, instruction: MacAllBank) -> float:
        """ACTab (if needed) followed by ``op_size`` MACab commands."""
        self._open_all_bank_row(instruction.row)
        last = self.dram.issue_column_burst(
            DRAMCommand(
                CommandType.MAC_ALL,
                row=instruction.row,
                column=instruction.column,
            ),
            count=instruction.op_size,
        )
        self.stats.mac_micro_ops += instruction.op_size
        return self.dram.completion_time(last)

    def _execute_elementwise_mul(self, instruction: ElementwiseMul) -> float:
        self._open_all_bank_row(instruction.row)
        last = self.dram.now_ns
        for group in range(self.geometry.num_bank_groups):
            last = self.dram.issue_column_burst(
                DRAMCommand(
                    CommandType.EWMUL,
                    bank_group=group,
                    row=instruction.row,
                    column=instruction.column,
                ),
                count=instruction.op_size,
            )
        return self.dram.completion_time(last)

    def _execute_activation(self, instruction: ActivationFunction) -> float:
        last = self.dram.issue(DRAMCommand(CommandType.AF))
        return self.dram.completion_time(last)

    def _execute_single_bank(self, instruction) -> float:
        is_write = isinstance(instruction, WriteSingleBank)
        kind = CommandType.WR if is_write else CommandType.RD
        self._open_bank_row(instruction.bank, instruction.row)
        last = self.dram.issue_column_burst(
            DRAMCommand(
                kind,
                bank=instruction.bank,
                row=instruction.row,
                column=instruction.column,
            ),
            count=instruction.op_size,
        )
        self.stats.shared_buffer_transfers += instruction.op_size
        return self.dram.completion_time(last)

    def _execute_write_all_banks(self, instruction: WriteAllBanks) -> float:
        """Scatter one shared-buffer slot across all 16 banks: ACTab + WR."""
        self._open_all_bank_row(instruction.row)
        last = self.dram.now_ns
        for bank in range(self.geometry.num_banks):
            last = self.dram.issue(
                DRAMCommand(
                    CommandType.WR,
                    bank=bank,
                    row=instruction.row,
                    column=instruction.column,
                )
            )
        self.stats.shared_buffer_transfers += 1
        return self.dram.completion_time(last)

    def _execute_copy_bank_gb(self, instruction) -> float:
        to_global_buffer = isinstance(instruction, CopyBankToGlobalBuffer)
        kind = CommandType.RD if to_global_buffer else CommandType.WR
        self._open_all_bank_row(instruction.row)
        last = self.dram.issue_column_burst(
            DRAMCommand(
                kind,
                bank=0,
                row=instruction.row,
                column=instruction.column,
            ),
            count=instruction.op_size,
        )
        return self.dram.completion_time(last)

    def _execute_register_io(self, instruction) -> float:
        """WR_BIAS / RD_MAC: one 256-bit transfer between the shared buffer and
        the PU register file, pipelined at the column-command rate."""
        last = self.dram.issue(DRAMCommand(CommandType.AF))
        self.stats.shared_buffer_transfers += 1
        return last + self.timing.t_ccd_l

    def _execute_write_global_buffer(self, instruction: WriteGlobalBuffer) -> float:
        """WR_GB: stream ``op_size`` slots from the shared buffer to the global
        buffer over the channel I/O at one slot per tCCD_S."""
        start = max(self.busy_until_ns, self.dram.now_ns)
        duration = instruction.op_size * self.timing.t_ccd_s
        self.stats.global_buffer_writes += instruction.op_size
        return start + duration
