"""Functional model of the 2 KB per-channel global buffer.

The global buffer holds the vector operand of a GEMV and broadcasts 256-bit
slots to all 16 near-bank PUs concurrently.  It is addressed in 256-bit
(16-element BF16) slots.
"""

from __future__ import annotations

import numpy as np

from repro.numerics.bf16 import bf16_quantize

__all__ = ["GlobalBuffer"]


class GlobalBuffer:
    """256-bit-slot addressed buffer shared by all PUs of a channel."""

    def __init__(self, capacity_bytes: int = 2 * 1024, slot_bits: int = 256) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if slot_bits % 16 != 0:
            raise ValueError("slot size must hold whole BF16 elements")
        self.capacity_bytes = capacity_bytes
        self.slot_bits = slot_bits
        self.elements_per_slot = slot_bits // 16
        self.num_slots = capacity_bytes // (slot_bits // 8)
        self._data = np.zeros((self.num_slots, self.elements_per_slot), dtype=np.float32)

    def write_slot(self, slot: int, values: np.ndarray) -> None:
        """Write one 16-element slot (values are BF16-quantized on write)."""
        self._check_slot(slot)
        values = np.asarray(values, dtype=np.float32)
        if values.shape != (self.elements_per_slot,):
            raise ValueError(
                f"expected {self.elements_per_slot} elements, got shape {values.shape}"
            )
        self._data[slot] = bf16_quantize(values)

    def read_slot(self, slot: int) -> np.ndarray:
        """Read one slot; the returned array is a copy."""
        self._check_slot(slot)
        return self._data[slot].copy()

    def write_vector(self, start_slot: int, vector: np.ndarray) -> int:
        """Write a vector across consecutive slots; returns slots consumed.

        The final slot is zero-padded when the vector length is not a multiple
        of 16, matching how the compiler pads operands.
        """
        vector = np.asarray(vector, dtype=np.float32).ravel()
        num_slots = int(np.ceil(len(vector) / self.elements_per_slot))
        if start_slot + num_slots > self.num_slots:
            raise ValueError(
                f"vector of {len(vector)} elements does not fit: needs {num_slots} slots "
                f"starting at {start_slot}, buffer has {self.num_slots}"
            )
        padded = np.zeros(num_slots * self.elements_per_slot, dtype=np.float32)
        padded[: len(vector)] = vector
        for i in range(num_slots):
            self.write_slot(start_slot + i, padded[i * self.elements_per_slot:(i + 1) * self.elements_per_slot])
        return num_slots

    def read_vector(self, start_slot: int, length: int) -> np.ndarray:
        """Read ``length`` elements starting at ``start_slot``."""
        num_slots = int(np.ceil(length / self.elements_per_slot))
        self._check_slot(start_slot + num_slots - 1)
        flat = self._data[start_slot:start_slot + num_slots].ravel()
        return flat[:length].copy()

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < self.num_slots:
            raise ValueError(f"slot {slot} out of range [0, {self.num_slots})")
