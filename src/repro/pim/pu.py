"""Functional model of a near-bank processing unit (PU).

Each PU receives one 256-bit operand from its local DRAM bank and a second
256-bit operand from either the global buffer or the neighbouring bank, and
feeds a 16-lane BF16 multiplier array whose products are summed by a reduction
tree into one of 32 accumulation registers.  An activation-function unit
evaluates non-linear functions through lookup tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.numerics.bf16 import bf16_quantize
from repro.numerics.lut import ActivationLUT, AF_TABLE_IDS

__all__ = ["ProcessingUnit", "NUM_ACCUMULATION_REGISTERS", "MAC_LANES"]

#: Number of accumulation registers designated by the CENT ISA.
NUM_ACCUMULATION_REGISTERS = 32

#: Width of the MAC reduction tree (BF16 elements per 256-bit operand).
MAC_LANES = 16


@dataclass
class ProcessingUnit:
    """One near-bank PU: MAC tree, accumulation registers, AF unit."""

    bank_index: int
    registers: np.ndarray = field(
        default_factory=lambda: np.zeros(NUM_ACCUMULATION_REGISTERS, dtype=np.float32)
    )
    _luts: Dict[int, ActivationLUT] = field(default_factory=dict, repr=False)
    mac_count: int = 0

    def write_bias(self, value: float = 0.0, reg_id: int | None = None) -> None:
        """Initialise one register (or all registers when ``reg_id`` is None)."""
        if reg_id is None:
            self.registers[:] = np.float32(value)
        else:
            self._check_register(reg_id)
            self.registers[reg_id] = np.float32(value)

    def mac(self, bank_operand: np.ndarray, broadcast_operand: np.ndarray, reg_id: int) -> None:
        """One MAC step: 16 products reduced into register ``reg_id``."""
        self._check_register(reg_id)
        a = bf16_quantize(np.asarray(bank_operand, dtype=np.float32))
        b = bf16_quantize(np.asarray(broadcast_operand, dtype=np.float32))
        if a.shape != (MAC_LANES,) or b.shape != (MAC_LANES,):
            raise ValueError(
                f"MAC operands must have {MAC_LANES} BF16 lanes, "
                f"got {a.shape} and {b.shape}"
            )
        self.registers[reg_id] += np.float32(np.dot(a, b))
        self.mac_count += 1

    def read_register(self, reg_id: int) -> float:
        """Read one accumulation register as a BF16-quantized value."""
        self._check_register(reg_id)
        return float(bf16_quantize(np.float32(self.registers[reg_id])))

    def apply_activation(self, af_id: int, reg_id: int) -> float:
        """Apply the activation function ``af_id`` to register ``reg_id``."""
        self._check_register(reg_id)
        lut = self._lut_for(af_id)
        result = lut.evaluate(np.float32(self.registers[reg_id]))
        self.registers[reg_id] = np.float32(result)
        return float(result)

    def _lut_for(self, af_id: int) -> ActivationLUT:
        if af_id not in self._luts:
            names = {v: k for k, v in AF_TABLE_IDS.items()}
            if af_id not in names:
                raise ValueError(f"unknown activation function id {af_id}")
            self._luts[af_id] = ActivationLUT(names[af_id])
        return self._luts[af_id]

    def _check_register(self, reg_id: int) -> None:
        if not 0 <= reg_id < NUM_ACCUMULATION_REGISTERS:
            raise ValueError(
                f"register id {reg_id} out of range [0, {NUM_ACCUMULATION_REGISTERS})"
            )
