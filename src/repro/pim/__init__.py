"""GDDR6-PIM channel model: near-bank processing units and PIM controller.

A PIM channel (Figure 7a) couples every DRAM bank with a near-bank processing
unit (PU) containing a 16-lane BF16 MAC reduction tree, 32 accumulation
registers, and an activation-function unit backed by lookup tables.  A 2 KB
global buffer broadcasts 256-bit operands to all PUs.  The PIM controller
receives micro-ops from the device decoder and converts them into DRAM
commands scheduled by the :class:`repro.dram.channel.DRAMChannel` substrate.
"""

from repro.pim.pu import ProcessingUnit
from repro.pim.global_buffer import GlobalBuffer
from repro.pim.channel import PIMChannel, PIMChannelStats

__all__ = ["ProcessingUnit", "GlobalBuffer", "PIMChannel", "PIMChannelStats"]
