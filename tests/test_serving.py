"""Tests for the event-driven serving engine and its supporting layers."""

import dataclasses

import pytest

from repro.core.config import CentConfig
from repro.core.iteration import IterationCostModel
from repro.core.performance import PerformanceModel
from repro.core.results import LatencyStats, percentile
from repro.core.system import CentSystem
from repro.mapping.parallelism import PipelineParallel
from repro.models.memory import ModelMemoryProfile
from repro.serving import RequestState, ServingEngine, ServingRequest
from repro.workloads import (
    Query,
    evaluate_sla_from_serving,
    fixed_queries,
    poisson_arrivals,
    sharegpt_like_queries,
    with_arrivals,
)


@pytest.fixture(scope="module")
def system(small_model_module):
    config = CentConfig(num_devices=4, context_samples=2)
    return CentSystem(config, small_model_module)


@pytest.fixture(scope="module")
def small_model_module():
    from repro.models.config import ModelConfig

    return ModelConfig(name="small-llama", num_layers=8, d_model=1024, num_heads=16,
                       num_kv_heads=4, d_ff=2816, vocab_size=32000, max_context=2048)


@pytest.fixture(scope="module")
def pp_plan(small_model_module):
    return PipelineParallel(4, small_model_module)


class TestPercentileMath:
    def test_linear_interpolation(self):
        values = [10.0, 20.0, 30.0, 40.0, 50.0]
        assert percentile(values, 0) == 10.0
        assert percentile(values, 50) == 30.0
        assert percentile(values, 100) == 50.0
        assert percentile(values, 25) == pytest.approx(20.0)
        assert percentile([5.0, 15.0], 50) == pytest.approx(10.0)

    def test_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_edge_cases(self):
        assert percentile([], 50) == 0.0
        assert percentile([7.0], 99) == 7.0
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_latency_stats(self):
        stats = LatencyStats.from_samples([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean_s == pytest.approx(2.5)
        assert stats.p50_s == pytest.approx(2.5)
        assert stats.max_s == 4.0
        assert stats.p99_s == pytest.approx(percentile([1.0, 2.0, 3.0, 4.0], 99))
        assert LatencyStats.from_samples([]) == LatencyStats()


class TestIterationCostModel:
    def test_interpolation_brackets_grid(self, system, small_model_module, pp_plan):
        cost = IterationCostModel(system.performance, small_model_module, pp_plan,
                                  context_step=256)
        low = cost.block_latency_ns(256)
        mid = cost.block_latency_ns(384)
        high = cost.block_latency_ns(512)
        assert low < mid < high
        assert mid == pytest.approx((low + high) / 2.0)

    def test_empty_decode_iteration_is_free(self, system, small_model_module, pp_plan):
        cost = IterationCostModel(system.performance, small_model_module, pp_plan)
        assert cost.decode_iteration_s([]) == 0.0

    def test_effective_layers_cover_model(self, system, small_model_module, pp_plan):
        cost = IterationCostModel(system.performance, small_model_module, pp_plan)
        assert cost.effective_layers >= small_model_module.num_layers

    def test_context_below_grid_clamps_to_one(self, system, small_model_module, pp_plan):
        cost = IterationCostModel(system.performance, small_model_module, pp_plan,
                                  context_step=256)
        floor = cost.block_latency_ns(1)
        assert cost.block_latency_ns(0) == floor
        assert cost.block_latency_ns(-100) == floor
        assert floor > 0

    def test_context_above_grid_clamps_to_max(self, system, small_model_module, pp_plan):
        cost = IterationCostModel(system.performance, small_model_module, pp_plan,
                                  context_step=256)
        ceiling = cost.block_latency_ns(small_model_module.max_context)
        assert cost.block_latency_ns(10 * small_model_module.max_context) == ceiling
        # Interpolation never prices beyond the clamp.
        assert cost.block_latency_ns(small_model_module.max_context - 1) <= ceiling

    def test_single_point_grid(self, system, small_model_module, pp_plan):
        # A step wider than the model's context: the grid degenerates to the
        # two clamp endpoints (1 and max_context) and interpolation stays
        # monotone between them.
        cost = IterationCostModel(system.performance, small_model_module, pp_plan,
                                  context_step=4 * small_model_module.max_context)
        low = cost.block_latency_ns(1)
        mid = cost.block_latency_ns(small_model_module.max_context // 2)
        high = cost.block_latency_ns(small_model_module.max_context)
        assert low <= mid <= high
        # Exactly two grid evaluations back the whole range.
        assert len(cost._grid_ns) == 2

    def test_grid_point_is_exact(self, system, small_model_module, pp_plan):
        cost = IterationCostModel(system.performance, small_model_module, pp_plan,
                                  context_step=256)
        direct = system.performance.block_cost(
            small_model_module, pp_plan, 512).breakdown.total_ns
        assert cost.block_latency_ns(512) == pytest.approx(direct)

    def test_mixed_batch_prices_at_mean_context(self, system, small_model_module,
                                                pp_plan):
        cost = IterationCostModel(system.performance, small_model_module, pp_plan,
                                  context_step=256)
        short, long = 256, 1024
        mixed = cost.decode_iteration_s([short, long])
        expected = (cost.effective_layers
                    * (cost.block_latency_ns(short) + cost.block_latency_ns(long))
                    / 2.0 * 1e-9)
        assert mixed == pytest.approx(expected)
        # A mixed prefill + decode iteration (chunked-prefill mode) adds the
        # serialised chunk cost on top of the decode step.
        chunk = cost.prefill_chunk_s(128, 64)
        assert chunk > 0
        assert cost.prefill_chunk_s(0, 64) == 0.0
        assert cost.prefill_chunk_s(-5, 64) == 0.0


class TestSetupCache:
    def test_second_setup_is_a_cache_hit(self, system, pp_plan):
        engine = ServingEngine(system, pp_plan)
        trace = fixed_queries(4, prompt_tokens=128, decode_tokens=64)
        first = engine._setup(trace)
        second = engine._setup(trace)
        assert second is first
        # Same servable context through a different trace object hits too.
        assert engine._setup(list(trace)) is first

    def test_capacity_estimate_warms_run(self, system, pp_plan):
        engine = ServingEngine(system, pp_plan)
        trace = fixed_queries(4, prompt_tokens=128, decode_tokens=64)
        engine.estimated_capacity_qps(trace)
        assert len(engine._setup_cache) == 1
        (plan, cost, slots), = engine._setup_cache.values()
        warmed_grid = dict(cost._grid_ns)
        assert warmed_grid  # the estimate priced at least one grid point
        result = engine.run(trace)
        # run() reused the same cost model (and its warmed grid) verbatim.
        assert engine._setup(trace)[1] is cost
        assert warmed_grid.items() <= cost._grid_ns.items()
        assert result.num_completed == 4

    def test_distinct_context_shapes_get_distinct_entries(self, system, pp_plan):
        engine = ServingEngine(system, pp_plan)
        engine._setup(fixed_queries(2, prompt_tokens=128, decode_tokens=64))
        engine._setup(fixed_queries(2, prompt_tokens=512, decode_tokens=512))
        assert len(engine._setup_cache) == 2

    def test_cache_is_bounded(self, system, pp_plan):
        engine = ServingEngine(system, pp_plan)
        for prompt in range(8, 8 + 4 * (engine._setup_cache_entries + 3), 4):
            engine._setup(fixed_queries(1, prompt_tokens=prompt, decode_tokens=8))
        assert len(engine._setup_cache) <= engine._setup_cache_entries

    def test_default_plan_cached_too(self, system):
        engine = ServingEngine(system)
        trace = fixed_queries(2, prompt_tokens=128, decode_tokens=64)
        assert engine._setup(trace) is engine._setup(trace)

    def test_reconfiguring_engine_bypasses_stale_entries(self, system, pp_plan):
        # Mutating an engine knob between runs must not serve the previous
        # configuration's cached setup.
        engine = ServingEngine(system, pp_plan)
        trace = fixed_queries(4, prompt_tokens=128, decode_tokens=64)
        wide = engine.run(trace)
        engine.max_batch_size = 1
        narrow = engine.run(trace)
        fresh = ServingEngine(system, pp_plan, max_batch_size=1).run(trace)
        assert narrow.makespan_s == pytest.approx(fresh.makespan_s)
        assert narrow.makespan_s > wide.makespan_s


class TestStaticBatchRegression:
    def test_matches_run_inference_decode_throughput(self, system, pp_plan):
        """All arrivals at t=0, identical queries, one per pipeline slot: the
        engine must reproduce the closed-form decode throughput within 1%."""
        seed = system.run_inference(512, 512, plan=pp_plan, with_power=False)
        trace = fixed_queries(pp_plan.queries_in_flight,
                              prompt_tokens=512, decode_tokens=512)
        result = ServingEngine(system, pp_plan).run(trace)
        assert result.num_completed == pp_plan.queries_in_flight
        assert result.decode_throughput_tokens_per_s == pytest.approx(
            seed.decode_throughput_tokens_per_s, rel=0.01)


class TestAdmission:
    def test_oversized_request_is_refused(self, system, small_model_module, pp_plan):
        profile = ModelMemoryProfile(small_model_module)
        capacity = (profile.parameter_bytes
                    + 3 * profile.kv_cache_bytes_per_query(192))
        engine = ServingEngine(system, pp_plan, memory_capacity_bytes=capacity)
        big = Query(prompt_tokens=1024, decode_tokens=1024)
        small = fixed_queries(6, prompt_tokens=128, decode_tokens=64)
        result = engine.run([big] + small)
        assert result.num_rejected == 1
        assert result.num_completed == 6
        assert result.peak_memory_bytes <= capacity

    def test_in_flight_context_never_exceeds_capacity(self, system, small_model_module,
                                                      pp_plan):
        profile = ModelMemoryProfile(small_model_module)
        capacity = (profile.parameter_bytes
                    + 2 * profile.kv_cache_bytes_per_query(2048))
        engine = ServingEngine(system, pp_plan, memory_capacity_bytes=capacity)
        queries = sharegpt_like_queries(40, seed=11)
        trace = with_arrivals(queries, poisson_arrivals(40, rate_qps=200.0, seed=11))
        result = engine.run(trace)
        assert result.num_completed + result.num_rejected == result.num_requests
        assert result.peak_memory_bytes <= capacity
        assert result.memory_capacity_bytes == capacity

    def test_oversized_request_does_not_drive_default_plan(self, system):
        # plan=None: the plan must be sized from the servable queries, not
        # from an oversized request the engine itself rejects.
        trace = fixed_queries(4, prompt_tokens=128, decode_tokens=64) \
            + [Query(4000, 1000)]
        result = ServingEngine(system).run(trace)
        assert result.num_rejected == 1
        assert result.num_completed == 4

    def test_context_step_not_dividing_max_context(self, system, pp_plan):
        # The last grid cell is shortened to max_context (2048 here), so a
        # context_step that does not divide it must not price beyond it.
        engine = ServingEngine(system, pp_plan, context_step=300)
        result = engine.run([Query(1024, 1024)])
        assert result.num_completed == 1

    def test_weights_must_fit(self, system, pp_plan):
        engine = ServingEngine(system, pp_plan, memory_capacity_bytes=1024)
        with pytest.raises(MemoryError):
            engine.run(fixed_queries(1, 128, 64))


class TestContinuousBatching:
    def test_serves_200_query_poisson_trace(self, system, pp_plan):
        """The acceptance-shaped run: a 200-query ShareGPT-like trace with
        Poisson arrivals, reporting percentiles and SLA goodput."""
        engine = ServingEngine(system, pp_plan)
        queries = sharegpt_like_queries(200, seed=7)
        rate = 0.7 * engine.estimated_capacity_qps(queries)
        trace = with_arrivals(queries, poisson_arrivals(200, rate, seed=3))
        result = engine.run(trace, sla_latency_s=1.0)
        assert result.num_completed == 200
        assert result.num_rejected == 0
        assert result.makespan_s >= max(q.arrival_time_s for q in trace)
        for stats in (result.ttft, result.tbt, result.query_latency):
            assert stats.count > 0
            assert 0 < stats.p50_s <= stats.p99_s <= stats.max_s
        assert result.goodput_tokens_per_s <= result.throughput_tokens_per_s
        assert 0 <= result.sla_violation_fraction <= 1
        assert result.completed_within_sla > 0

    def test_queueing_delays_show_up_under_pressure(self, system, pp_plan):
        engine = ServingEngine(system, pp_plan, max_batch_size=1)
        trace = fixed_queries(4, prompt_tokens=128, decode_tokens=64)
        result = engine.run(trace)
        # With one slot, the four t=0 queries serialise: the last query waits
        # for three full services, so the latency spread approaches 4x.
        assert result.query_latency.max_s > 1.5 * result.query_latency.mean_s
        assert result.num_completed == 4

    def test_interleaved_prefill_bounds_decode_stalls(self, system, pp_plan):
        """Chunked-prefill mode: a late long prompt stalls decoding by at
        most one chunk per iteration, unlike the prefill-priority default
        which stalls it for the whole prompt."""
        first = Query(128, 256, arrival_time_s=0.0)
        late = Query(1536, 32, arrival_time_s=0.002)
        priority = ServingEngine(system, pp_plan, prefill_chunk_tokens=128)
        chunked = ServingEngine(system, pp_plan, prefill_chunk_tokens=128,
                                interleave_prefill=True)
        stall_priority = priority.run([first, late]).tbt.max_s
        stall_chunked = chunked.run([first, late]).tbt.max_s
        assert stall_chunked < stall_priority

    def test_decode_latency_stats_are_per_request(self, system, pp_plan):
        trace = fixed_queries(4, prompt_tokens=128, decode_tokens=64)
        result = ServingEngine(system, pp_plan).run(trace)
        # decode latency is measured per request (latency - TTFT), so its
        # bounds respect every individual request.
        assert 0 < result.decode_latency.p50_s <= result.decode_latency.max_s
        assert result.decode_latency.max_s <= result.query_latency.max_s

    def test_determinism_of_seeded_traces(self, system, pp_plan):
        queries = sharegpt_like_queries(50, seed=5)
        trace = with_arrivals(queries, poisson_arrivals(50, rate_qps=50.0, seed=5))
        first = ServingEngine(system, pp_plan).run(trace, sla_latency_s=2.0)
        second = ServingEngine(system, pp_plan).run(trace, sla_latency_s=2.0)
        assert first == second
        other = with_arrivals(queries, poisson_arrivals(50, rate_qps=50.0, seed=6))
        third = ServingEngine(system, pp_plan).run(other, sla_latency_s=2.0)
        assert third.makespan_s != first.makespan_s

    def test_empty_trace_rejected(self, system, pp_plan):
        with pytest.raises(ValueError):
            ServingEngine(system, pp_plan).run([])


class TestRequestLifecycle:
    def test_request_metrics(self):
        request = ServingRequest(0, Query(4, 3, arrival_time_s=1.0))
        assert request.state is RequestState.QUEUED
        assert request.context_length == 0
        assert request.ttft_s is None and request.latency_s is None
        request.prefill_remaining = 0
        request.tokens_generated = 2
        request.first_token_time_s = 3.0
        request.finish_time_s = 5.0
        assert request.context_length == 6
        assert request.ttft_s == pytest.approx(2.0)
        assert request.latency_s == pytest.approx(4.0)


class TestSlaFromServing:
    def test_measured_operating_points(self, system, pp_plan):
        engine = ServingEngine(system, pp_plan)
        queries = sharegpt_like_queries(30, seed=9)
        results = []
        for rate in (20.0, 200.0):
            trace = with_arrivals(queries, poisson_arrivals(30, rate, seed=9))
            results.append(engine.run(trace))
        sla = (results[0].query_latency.p99_s + results[1].query_latency.p99_s) / 2.0
        report = evaluate_sla_from_serving(results, sla_latency_s=sla)
        assert len(report.compliant_points) + len(report.violating_points) == 2
        assert report.best_compliant_throughput > 0
        with pytest.raises(ValueError):
            evaluate_sla_from_serving(results, sla, percentile="p42")


class TestBoundedBlockCostCache:
    def test_lru_eviction(self, small_model_module, pp_plan):
        config = CentConfig(num_devices=4, context_samples=2, block_cache_entries=2)
        performance = PerformanceModel(config)
        for context in (64, 128, 192):
            performance.block_cost(small_model_module, pp_plan, context)
        assert len(performance._cache) == 2
        assert performance.cache_capacity == 2

    def test_hit_is_consistent(self, small_model_module, pp_plan):
        config = CentConfig(num_devices=4, context_samples=2, block_cache_entries=2)
        performance = PerformanceModel(config)
        first = performance.block_cost(small_model_module, pp_plan, 64)
        again = performance.block_cost(small_model_module, pp_plan, 64)
        assert first.breakdown.total_ns == again.breakdown.total_ns

    def test_engine_shares_system_performance_model(self, system, pp_plan):
        engine = ServingEngine(system, pp_plan)
        assert engine.system.performance is system.performance

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            CentConfig(num_devices=4, block_cache_entries=0)


class TestSystemServe:
    def test_serve_wrapper(self, system, pp_plan):
        trace = fixed_queries(4, prompt_tokens=128, decode_tokens=32)
        result = system.serve(trace, pp_plan, sla_latency_s=5.0)
        assert result.num_completed == 4
        assert result.sla_latency_s == 5.0
        assert dataclasses.is_dataclass(result)
