"""Unit tests for the Taylor-series exponent accelerator model."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.numerics.taylor import TAYLOR_ORDER, taylor_exp


def test_default_order_is_ten():
    assert TAYLOR_ORDER == 10


def test_exp_zero_is_one():
    assert taylor_exp(np.array([0.0], dtype=np.float32))[0] == pytest.approx(1.0, rel=1e-2)


def test_matches_reference_on_softmax_range():
    # Softmax scores after max-subtraction are non-positive.
    x = np.linspace(-20.0, 0.0, 101).astype(np.float32)
    approx = taylor_exp(x)
    reference = np.exp(x.astype(np.float64))
    assert np.max(np.abs(approx - reference)) < 2e-2


def test_relative_error_small_for_moderate_inputs():
    x = np.linspace(-8.0, 8.0, 201).astype(np.float32)
    approx = taylor_exp(x).astype(np.float64)
    reference = np.exp(x.astype(np.float64))
    relative = np.abs(approx - reference) / reference
    assert np.max(relative) < 2e-2


def test_monotonic_on_grid():
    x = np.linspace(-10.0, 5.0, 64).astype(np.float32)
    y = taylor_exp(x)
    assert np.all(np.diff(y) >= 0)


def test_lower_order_is_less_accurate():
    x = np.linspace(-2.0, 2.0, 33).astype(np.float32)
    reference = np.exp(x.astype(np.float64))
    high = np.max(np.abs(taylor_exp(x, order=10) - reference))
    low = np.max(np.abs(taylor_exp(x, order=2) - reference))
    assert high <= low


def test_invalid_order_rejected():
    with pytest.raises(ValueError):
        taylor_exp(np.array([1.0]), order=0)


@given(st.floats(min_value=-15.0, max_value=5.0, allow_nan=False, width=32))
def test_positive_everywhere(value):
    assert taylor_exp(np.array([value], dtype=np.float32))[0] > 0.0
