"""Tests for the CI benchmark regression gate (benchmarks/compare_bench.py)."""

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parent.parent / "benchmarks" / "compare_bench.py"
_spec = importlib.util.spec_from_file_location("compare_bench", _SCRIPT)
compare_bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(compare_bench)


def report(goodput, throughput=500.0, name="benchmarks/test_x.py::test_x"):
    return {
        "benchmarks": [{
            "fullname": name,
            "extra_info": {
                "aggregate_goodput_tokens_per_s[closed_loop]": goodput,
                "throughput_tokens_per_s": throughput,
                "best_policy": "sla_aware",     # non-numeric: ignored
                "num_rebalances": 2,            # numeric but untracked key
            },
        }],
    }


def write(tmp_path, filename, payload):
    path = tmp_path / filename
    path.write_text(json.dumps(payload))
    return path


class TestMetricExtraction:
    def test_tracks_goodput_and_throughput_numbers_only(self):
        metrics = compare_bench.extract_metrics(report(100.0))
        keys = {key for _, key in metrics}
        assert keys == {"aggregate_goodput_tokens_per_s[closed_loop]",
                        "throughput_tokens_per_s"}

    def test_bools_and_strings_are_not_metrics(self):
        assert not compare_bench.is_tracked_metric("goodput_ok", True)
        assert not compare_bench.is_tracked_metric("goodput_label", "high")
        assert compare_bench.is_tracked_metric("GOODPUT_tokens", 1)

    def test_migration_metrics_are_tracked(self):
        assert compare_bench.is_tracked_metric("migrated_kv_bytes", 1024)
        assert compare_bench.is_tracked_metric("restored_progress_tokens", 9)
        assert compare_bench.is_tracked_metric("migration_stall_s", 0.5)
        # Counters without a marker stay untracked.
        assert not compare_bench.is_tracked_metric("num_rebalances", 2)

    def test_simulator_speed_metrics_are_tracked(self):
        # benchmarks/test_sim_speed.py attaches these; higher is better.
        assert compare_bench.is_tracked_metric(
            "sim_requests_per_s[single_replica]", 5000.0)
        assert compare_bench.is_tracked_metric(
            "sim_requests_per_s[closed_loop]", 40.0)
        assert not compare_bench.is_inverse_metric(
            "sim_requests_per_s[single_replica]")
        # The scalar-path speedup ratio is informational, not gated.
        assert not compare_bench.is_tracked_metric(
            "sim_speedup_vs_scalar", 20.0)
        assert not compare_bench.is_tracked_metric("sim_trace_requests", 10000)

    def test_prefix_cache_metrics_are_tracked(self):
        # benchmarks/test_prefix_reuse_goodput.py attaches these; a falling
        # hit rate regresses the prefix cache even when goodput holds.
        assert compare_bench.is_tracked_metric("prefix_hit_rate", 0.83)
        assert compare_bench.is_tracked_metric(
            "prefix_goodput_tokens_per_s", 612.0)
        assert not compare_bench.is_inverse_metric("prefix_hit_rate")
        # The COW counter stays informational.
        assert not compare_bench.is_tracked_metric("num_cow_blocks", 27)

    def test_stall_metrics_are_inverse(self):
        assert compare_bench.is_inverse_metric("migration_stall_s")
        assert not compare_bench.is_inverse_metric("migrated_kv_bytes")
        assert not compare_bench.is_inverse_metric("goodput_tokens_per_s")


class TestGate:
    def test_identical_run_passes(self, tmp_path):
        base = write(tmp_path, "BENCH_base.json", report(100.0))
        fresh = write(tmp_path, "BENCH_new.json", report(100.0))
        assert compare_bench.main(["--baseline", str(base),
                                   "--current", str(fresh)]) == 0

    def test_twenty_percent_goodput_regression_fails(self, tmp_path):
        base = write(tmp_path, "BENCH_base.json", report(100.0))
        fresh = write(tmp_path, "BENCH_new.json", report(80.0))
        assert compare_bench.main(["--baseline", str(base),
                                   "--current", str(fresh)]) == 1

    def test_regression_within_tolerance_passes(self, tmp_path):
        base = write(tmp_path, "BENCH_base.json", report(100.0))
        fresh = write(tmp_path, "BENCH_new.json", report(91.0))
        assert compare_bench.main(["--baseline", str(base),
                                   "--current", str(fresh)]) == 0

    def test_improvement_passes(self, tmp_path):
        base = write(tmp_path, "BENCH_base.json", report(100.0))
        fresh = write(tmp_path, "BENCH_new.json", report(250.0))
        assert compare_bench.main(["--baseline", str(base),
                                   "--current", str(fresh)]) == 0

    def test_custom_bar(self, tmp_path):
        base = write(tmp_path, "BENCH_base.json", report(100.0))
        fresh = write(tmp_path, "BENCH_new.json", report(91.0))
        assert compare_bench.main(["--baseline", str(base),
                                   "--current", str(fresh),
                                   "--max-regression", "0.05"]) == 1

    def test_missing_baseline_tolerated(self, tmp_path):
        fresh = write(tmp_path, "BENCH_new.json", report(50.0))
        assert compare_bench.main(["--baseline", str(tmp_path / "nope"),
                                   "--current", str(fresh)]) == 0

    def test_malformed_baseline_tolerated(self, tmp_path):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("{not json")
        fresh = write(tmp_path, "BENCH_new.json", report(50.0))
        assert compare_bench.main(["--baseline", str(bad),
                                   "--current", str(fresh)]) == 0

    def test_missing_current_fails(self, tmp_path):
        base = write(tmp_path, "BENCH_base.json", report(100.0))
        assert compare_bench.main(["--baseline", str(base),
                                   "--current", str(tmp_path / "none.json")]) == 1

    def test_baseline_directory_uses_newest_bench_file(self, tmp_path):
        nested = tmp_path / "artifact" / "inner"
        nested.mkdir(parents=True)
        write(nested, "BENCH_a.json", report(100.0))
        write(nested, "BENCH_b.json", report(10.0))
        fresh = write(tmp_path, "BENCH_new.json", report(50.0))
        # BENCH_b sorts last and becomes the baseline: 10 -> 50 improves.
        assert compare_bench.main(["--baseline", str(tmp_path / "artifact"),
                                   "--current", str(fresh)]) == 0

    def test_retired_and_new_benchmarks_do_not_fail(self, tmp_path):
        base = write(tmp_path, "BENCH_base.json",
                     report(100.0, name="benchmarks/test_old.py::test_old"))
        fresh = write(tmp_path, "BENCH_new.json",
                      report(100.0, name="benchmarks/test_new.py::test_new"))
        assert compare_bench.main(["--baseline", str(base),
                                   "--current", str(fresh)]) == 0

    def test_stall_growth_fails_the_gate(self, tmp_path):
        def stall_report(stall_s):
            return {"benchmarks": [{
                "fullname": "benchmarks/test_x.py::test_x",
                "extra_info": {"migration_stall_s": stall_s},
            }]}
        base = write(tmp_path, "BENCH_base.json", stall_report(1.0))
        worse = write(tmp_path, "BENCH_worse.json", stall_report(1.5))
        assert compare_bench.main(["--baseline", str(base),
                                   "--current", str(worse)]) == 1
        # A stall *shrinking* is an improvement, not a regression.
        better = write(tmp_path, "BENCH_better.json", stall_report(0.2))
        assert compare_bench.main(["--baseline", str(base),
                                   "--current", str(better)]) == 0

    def test_migrated_volume_drop_fails_the_gate(self, tmp_path):
        def kv_report(kv_bytes):
            return {"benchmarks": [{
                "fullname": "benchmarks/test_x.py::test_x",
                "extra_info": {"migrated_kv_bytes": kv_bytes},
            }]}
        base = write(tmp_path, "BENCH_base.json", kv_report(1000.0))
        # Live migration silently disabled would show as a collapse here.
        broken = write(tmp_path, "BENCH_broken.json", kv_report(10.0))
        assert compare_bench.main(["--baseline", str(base),
                                   "--current", str(broken)]) == 1
        fine = write(tmp_path, "BENCH_fine.json", kv_report(1200.0))
        assert compare_bench.main(["--baseline", str(base),
                                   "--current", str(fine)]) == 0

    def test_prefix_hit_rate_drop_fails_the_gate(self, tmp_path):
        def hit_report(rate):
            return {"benchmarks": [{
                "fullname": "benchmarks/test_prefix_reuse_goodput.py::test_x",
                "extra_info": {"prefix_hit_rate": rate},
            }]}
        base = write(tmp_path, "BENCH_base.json", hit_report(0.80))
        # The prefix cache silently missing would show as a collapse here.
        broken = write(tmp_path, "BENCH_broken.json", hit_report(0.10))
        assert compare_bench.main(["--baseline", str(base),
                                   "--current", str(broken)]) == 1
        fine = write(tmp_path, "BENCH_fine.json", hit_report(0.78))
        assert compare_bench.main(["--baseline", str(base),
                                   "--current", str(fine)]) == 0

    def test_bad_max_regression_rejected(self, tmp_path):
        base = write(tmp_path, "BENCH_base.json", report(100.0))
        fresh = write(tmp_path, "BENCH_new.json", report(100.0))
        with pytest.raises(SystemExit):
            compare_bench.main(["--baseline", str(base),
                                "--current", str(fresh),
                                "--max-regression", "1.5"])
