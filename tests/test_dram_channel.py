"""Unit tests for the DRAM command scheduler (bank state + channel timing)."""

import pytest

from repro.dram.bank import Bank
from repro.dram.channel import CommandStats, DRAMChannel
from repro.dram.commands import CommandType, DRAMCommand
from repro.dram.timing import GDDR6_PIM_TIMINGS


@pytest.fixture
def channel() -> DRAMChannel:
    return DRAMChannel(apply_refresh_derating=False)


class TestBank:
    def test_activate_then_column(self):
        bank = Bank(index=0, timing=GDDR6_PIM_TIMINGS)
        bank.record_activate(0.0, row=5)
        assert bank.open_row == 5
        assert bank.earliest_column(0.0, is_write=False) == pytest.approx(18.0)
        assert bank.earliest_column(0.0, is_write=True) == pytest.approx(14.0)

    def test_column_without_open_row_fails(self):
        bank = Bank(index=0, timing=GDDR6_PIM_TIMINGS)
        with pytest.raises(RuntimeError):
            bank.earliest_column(0.0, is_write=False)

    def test_precharge_respects_ras(self):
        bank = Bank(index=0, timing=GDDR6_PIM_TIMINGS)
        bank.record_activate(10.0, row=1)
        assert bank.earliest_precharge(10.0) == pytest.approx(37.0)

    def test_reactivation_respects_rc(self):
        bank = Bank(index=0, timing=GDDR6_PIM_TIMINGS)
        bank.record_activate(0.0, row=1)
        bank.record_precharge(27.0)
        assert bank.earliest_activate(0.0) == pytest.approx(43.0)


class TestCommandStats:
    def test_record_and_count(self):
        stats = CommandStats()
        stats.record(CommandType.ACT, 3)
        stats.record(CommandType.ACT)
        assert stats.count(CommandType.ACT) == 4
        assert stats.total == 4

    def test_merge(self):
        a, b = CommandStats(), CommandStats()
        a.record(CommandType.RD, 2)
        b.record(CommandType.RD, 3)
        b.record(CommandType.WR, 1)
        a.merge(b)
        assert a.count(CommandType.RD) == 5
        assert a.count(CommandType.WR) == 1


class TestDRAMChannel:
    def test_read_after_activate_waits_trcd(self, channel):
        activate_time = channel.issue(DRAMCommand(CommandType.ACT, bank=0, row=3))
        read_time = channel.issue(DRAMCommand(CommandType.RD, bank=0, row=3, column=0))
        assert read_time - activate_time >= GDDR6_PIM_TIMINGS.t_rcd_rd

    def test_all_bank_macs_pipeline_at_tccds(self, channel):
        # Back-to-back MACab commands pipeline at tCCD_S (the 1 GHz PU clock),
        # one 256-bit operand per bank per nanosecond.
        channel.issue(DRAMCommand(CommandType.ACT_ALL, row=0))
        first = channel.issue(DRAMCommand(CommandType.MAC_ALL, row=0, column=0))
        second = channel.issue(DRAMCommand(CommandType.MAC_ALL, row=0, column=1))
        assert second - first == pytest.approx(GDDR6_PIM_TIMINGS.t_ccd_s)

    def test_same_bank_columns_use_ccd_l(self, channel):
        channel.issue(DRAMCommand(CommandType.ACT, bank=0, row=0))
        first = channel.issue(DRAMCommand(CommandType.RD, bank=0, column=0))
        second = channel.issue(DRAMCommand(CommandType.RD, bank=0, column=1))
        assert second - first >= GDDR6_PIM_TIMINGS.t_ccd_l

    def test_activate_all_waits_for_all_banks(self, channel):
        channel.issue(DRAMCommand(CommandType.ACT, bank=0, row=0))
        time = channel.issue(DRAMCommand(CommandType.ACT_ALL, row=1))
        # Bank 0 was just activated, so the all-bank activate must wait tRC.
        assert time >= GDDR6_PIM_TIMINGS.t_rc

    def test_column_burst_matches_individual_issues(self):
        burst_channel = DRAMChannel(apply_refresh_derating=False)
        loop_channel = DRAMChannel(apply_refresh_derating=False)
        burst_channel.issue(DRAMCommand(CommandType.ACT_ALL, row=0))
        loop_channel.issue(DRAMCommand(CommandType.ACT_ALL, row=0))
        burst_last = burst_channel.issue_column_burst(
            DRAMCommand(CommandType.MAC_ALL, row=0, column=0), count=32)
        loop_last = 0.0
        for column in range(32):
            loop_last = loop_channel.issue(
                DRAMCommand(CommandType.MAC_ALL, row=0, column=column))
        assert burst_last == pytest.approx(loop_last)
        assert (burst_channel.stats.count(CommandType.MAC_ALL)
                == loop_channel.stats.count(CommandType.MAC_ALL))

    def test_column_burst_rejects_non_column(self, channel):
        with pytest.raises(ValueError):
            channel.issue_column_burst(DRAMCommand(CommandType.ACT, row=0), count=4)

    def test_column_burst_rejects_zero_count(self, channel):
        with pytest.raises(ValueError):
            channel.issue_column_burst(DRAMCommand(CommandType.RD, bank=0), count=0)

    def test_stats_accumulate(self, channel):
        channel.issue(DRAMCommand(CommandType.ACT_ALL, row=0))
        for column in range(4):
            channel.issue(DRAMCommand(CommandType.MAC_ALL, row=0, column=column))
        channel.issue(DRAMCommand(CommandType.PRE_ALL))
        assert channel.stats.count(CommandType.ACT_ALL) == 1
        assert channel.stats.count(CommandType.MAC_ALL) == 4
        assert channel.stats.count(CommandType.PRE_ALL) == 1

    def test_reset_time_keeps_stats(self, channel):
        channel.issue(DRAMCommand(CommandType.ACT_ALL, row=0))
        channel.reset_time()
        assert channel.now_ns == 0.0
        assert channel.stats.count(CommandType.ACT_ALL) == 1

    def test_completion_time_adds_cas_latency(self, channel):
        completion = channel.completion_time(100.0)
        assert completion == pytest.approx(100.0 + GDDR6_PIM_TIMINGS.t_cl
                                           + GDDR6_PIM_TIMINGS.burst_ns)

    def test_refresh_derating_increases_completion(self):
        derated = DRAMChannel(apply_refresh_derating=True)
        plain = DRAMChannel(apply_refresh_derating=False)
        assert derated.completion_time(1000.0) > plain.completion_time(1000.0)

    def test_peak_internal_bandwidth(self, channel):
        # 16 banks x 32 B per 1 ns = 512 GB/s per channel.
        assert channel.peak_internal_bandwidth_gbps() == pytest.approx(512.0)

    def test_peak_compute(self, channel):
        # 16 PUs x 32 FLOP per 1 ns = 512 GFLOPS per channel.
        assert channel.peak_compute_gflops() == pytest.approx(512.0)

    def test_mac_requires_open_rows(self, channel):
        with pytest.raises(RuntimeError):
            channel.issue(DRAMCommand(CommandType.MAC_ALL, row=0, column=0))

    def test_refresh_advances_time(self, channel):
        channel.issue(DRAMCommand(CommandType.ACT_ALL, row=0))
        before = channel.now_ns
        after = channel.issue(DRAMCommand(CommandType.REF))
        assert after >= before
