"""Unit tests for the weight allocator and the GEMV compiler."""

import pytest

from repro.compiler.allocator import ChannelAllocator
from repro.compiler.gemv import compile_gemv
from repro.dram.geometry import GDDR6_PIM_GEOMETRY
from repro.isa.instructions import Opcode


class TestAllocator:
    def test_sequential_allocation(self):
        allocator = ChannelAllocator()
        first = allocator.allocate_matrix("a", rows_per_bank=4, columns=1024)
        second = allocator.allocate_matrix("b", rows_per_bank=4, columns=1024)
        assert first.base_row == 0
        assert second.base_row == first.end_row

    def test_wide_matrix_spans_whole_rows(self):
        allocator = ChannelAllocator()
        placement = allocator.allocate_matrix("wide", rows_per_bank=2, columns=4096)
        # 4096 elements = 256 column accesses = 4 DRAM rows per matrix row.
        assert placement.columns_per_matrix_row == 256
        assert placement.dram_rows == 8

    def test_narrow_matrix_packs_rows(self):
        allocator = ChannelAllocator()
        placement = allocator.allocate_matrix("narrow", rows_per_bank=16, columns=128)
        # 128 elements = 8 columns; 8 matrix rows fit in a 64-column DRAM row.
        assert placement.columns_per_matrix_row == 8
        assert placement.dram_rows == 2

    def test_duplicate_name_rejected(self):
        allocator = ChannelAllocator()
        allocator.allocate_matrix("w", rows_per_bank=1, columns=64)
        with pytest.raises(ValueError):
            allocator.allocate_matrix("w", rows_per_bank=1, columns=64)

    def test_capacity_overflow_raises(self):
        allocator = ChannelAllocator()
        with pytest.raises(MemoryError):
            allocator.allocate_matrix("huge", rows_per_bank=20000, columns=2048)

    def test_utilization_tracks_usage(self):
        allocator = ChannelAllocator()
        assert allocator.utilization() == 0.0
        allocator.allocate_matrix("w", rows_per_bank=1024, columns=1024)
        assert 0.0 < allocator.utilization() <= 1.0
        assert allocator.used_bytes_per_channel > 0

    def test_lookup(self):
        allocator = ChannelAllocator()
        allocator.allocate_matrix("w", rows_per_bank=1, columns=64)
        assert allocator.placement("w").name == "w"
        with pytest.raises(KeyError):
            allocator.placement("missing")

    def test_invalid_dimensions(self):
        allocator = ChannelAllocator()
        with pytest.raises(ValueError):
            allocator.allocate_matrix("w", rows_per_bank=0, columns=64)


class TestGemvCompiler:
    def test_instruction_mix_follows_figure11(self):
        op = compile_gemv("gemv", out_dim=256, in_dim=512, num_channels=2)
        opcodes = [inst.opcode for inst in op.program]
        assert Opcode.WR_GB in opcodes
        assert Opcode.WR_BIAS in opcodes
        assert Opcode.MAC_ABK in opcodes
        assert Opcode.RD_MAC in opcodes
        # The vector is loaded before any MAC touches it.
        assert opcodes.index(Opcode.WR_GB) < opcodes.index(Opcode.MAC_ABK)

    def test_mac_micro_ops_cover_matrix(self):
        out_dim, in_dim, channels = 1024, 2048, 4
        op = compile_gemv("gemv", out_dim, in_dim, channels)
        elements_per_channel = (out_dim // channels) * in_dim
        covered = op.mac_micro_ops * 16 * GDDR6_PIM_GEOMETRY.num_banks
        assert covered >= elements_per_channel
        assert covered <= elements_per_channel * 1.2

    def test_flops_and_bytes(self):
        op = compile_gemv("gemv", out_dim=128, in_dim=256, num_channels=1)
        assert op.flops == 2 * 128 * 256
        assert op.dram_bytes_read == 128 * 256 * 2

    def test_repeat_scales_work(self):
        single = compile_gemv("g1", out_dim=256, in_dim=128, num_channels=2, repeat=1)
        repeated = compile_gemv("g2", out_dim=256, in_dim=128, num_channels=2, repeat=4)
        assert repeated.mac_micro_ops == 4 * single.mac_micro_ops
        assert repeated.flops == 4 * single.flops

    def test_one_rd_mac_per_sweep_per_repeat(self):
        out_dim, channels = 512, 2
        op = compile_gemv("gemv", out_dim, 128, channels)
        sweeps = out_dim // channels // GDDR6_PIM_GEOMETRY.num_banks
        assert op.program.stats.count(Opcode.RD_MAC) == sweeps

    def test_register_ids_stay_in_range(self):
        op = compile_gemv("gemv", out_dim=8192, in_dim=4096, num_channels=2)
        for inst in op.program:
            if inst.opcode is Opcode.MAC_ABK:
                assert 0 <= inst.reg_id < 32

    def test_addresses_stay_inside_placement(self):
        allocator = ChannelAllocator()
        op = compile_gemv("gemv", out_dim=2048, in_dim=4096, num_channels=2,
                          allocator=allocator)
        placement = allocator.placement("gemv")
        for inst in op.program:
            if inst.opcode is Opcode.MAC_ABK:
                assert placement.base_row <= inst.row < placement.end_row
                assert 0 <= inst.column < GDDR6_PIM_GEOMETRY.columns_per_row

    def test_shared_allocator_accumulates(self):
        allocator = ChannelAllocator()
        compile_gemv("a", out_dim=512, in_dim=1024, num_channels=2, allocator=allocator)
        compile_gemv("b", out_dim=512, in_dim=1024, num_channels=2, allocator=allocator)
        assert allocator.placement("b").base_row > allocator.placement("a").base_row

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            compile_gemv("g", out_dim=0, in_dim=16, num_channels=1)
        with pytest.raises(ValueError):
            compile_gemv("g", out_dim=16, in_dim=16, num_channels=0)
        with pytest.raises(ValueError):
            compile_gemv("g", out_dim=16, in_dim=16, num_channels=1, repeat=0)

    def test_more_channels_less_work_per_channel(self):
        few = compile_gemv("few", out_dim=4096, in_dim=1024, num_channels=2)
        many = compile_gemv("many", out_dim=4096, in_dim=1024, num_channels=8)
        assert many.mac_micro_ops < few.mac_micro_ops
        assert many.flops == few.flops
