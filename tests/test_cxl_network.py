"""Unit tests for the CXL link model, switch, transactions and primitives."""

import pytest

from repro.cxl.flit import Flit, FlitType, HeaderSlotCode
from repro.cxl.link import CXL_3_0_LINK, CxlLinkParameters
from repro.cxl.primitives import all_reduce, broadcast, gather, multicast, send_receive
from repro.cxl.switch import CxlSwitch
from repro.cxl.transactions import Transaction, TransactionType, transaction_latency_ns


class TestLinkParameters:
    def test_device_link_is_x4(self):
        assert CXL_3_0_LINK.device_bandwidth_gbps == pytest.approx(4 * 7.75)

    def test_host_link_is_x16(self):
        assert CXL_3_0_LINK.host_bandwidth_gbps == pytest.approx(16 * 7.75)

    def test_multicast_derating(self):
        assert CXL_3_0_LINK.multicast_device_bandwidth_gbps == pytest.approx(
            CXL_3_0_LINK.device_bandwidth_gbps / 2)
        assert CXL_3_0_LINK.multicast_latency_ns == pytest.approx(
            2 * CXL_3_0_LINK.base_latency_ns)

    def test_transfer_time_scales_with_size(self):
        small = CXL_3_0_LINK.transfer_ns(1024)
        large = CXL_3_0_LINK.transfer_ns(1024 * 1024)
        assert large > small

    def test_cxl_latency_below_rdma(self):
        # The paper motivates CXL with ~8x lower latency than RDMA (~2 us).
        assert CXL_3_0_LINK.base_latency_ns < 2000 / 4

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CxlLinkParameters(base_latency_ns=0)
        with pytest.raises(ValueError):
            CxlLinkParameters(multicast_bandwidth_derating=1.5)


class TestTransactions:
    def test_write_transaction_latency(self):
        transaction = Transaction(TransactionType.WRITE, 0, 1, payload_bytes=16 * 1024)
        latency = transaction_latency_ns(transaction)
        assert latency > CXL_3_0_LINK.base_latency_ns
        assert transaction.num_flits > 1

    def test_multicast_transaction_slower(self):
        transaction = Transaction(TransactionType.WRITE, 0, 1, payload_bytes=16 * 1024)
        assert (transaction_latency_ns(transaction, multicast=True)
                > transaction_latency_ns(transaction, multicast=False))

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            Transaction(TransactionType.READ, 0, 1, payload_bytes=-1)


class TestSwitch:
    def test_unicast_routing(self):
        switch = CxlSwitch(num_devices=4)
        flit = Flit(FlitType.REQUEST_WITH_DATA, source_device=0, destination_device=2,
                    payload_bytes=64)
        assert switch.route(flit) == [2]
        assert switch.stats.unicast_flits == 1

    def test_broadcast_routing_and_acks(self):
        switch = CxlSwitch(num_devices=8)
        flit = Flit(FlitType.REQUEST_WITH_DATA, source_device=0,
                    header_code=HeaderSlotCode.BROADCAST,
                    device_id_mask=0b11111110, payload_bytes=64)
        destinations = switch.route(flit)
        assert destinations == list(range(1, 8))
        assert switch.acknowledge(flit) == 7
        assert switch.stats.broadcast_flits == 1

    def test_unknown_destination_rejected(self):
        switch = CxlSwitch(num_devices=2)
        with pytest.raises(ValueError):
            switch.route(Flit(FlitType.REQUEST, source_device=0, destination_device=5))

    def test_lane_capacity_enforced(self):
        # A 144-lane switch supports at most 32 x4 devices plus the x16 host.
        CxlSwitch(num_devices=32)
        with pytest.raises(ValueError):
            CxlSwitch(num_devices=33)

    def test_node_limit_enforced(self):
        with pytest.raises(ValueError):
            CxlSwitch(num_devices=5000, num_lanes=10**6, num_ports=10**6)

    def test_larger_switch_supports_more_devices(self):
        switch = CxlSwitch(num_devices=64, num_lanes=272, num_ports=136)
        assert switch.num_devices == 64

    def test_point_to_point_vs_replicated(self):
        switch = CxlSwitch(num_devices=4)
        assert switch.replicated_ns(16 * 1024, fan_out=3) > switch.point_to_point_ns(16 * 1024)


class TestPrimitives:
    def test_send_receive_volume(self):
        result = send_receive(16 * 1024)
        assert result.bytes_moved == 16 * 1024
        assert result.fan == 1

    def test_broadcast_counts_copies(self):
        result = broadcast(16 * 1024, num_destinations=31)
        assert result.bytes_moved == 16 * 1024 * 31
        assert result.latency_ns > send_receive(16 * 1024).latency_ns

    def test_multicast_same_cost_as_broadcast(self):
        assert multicast(4096, 7).latency_ns == pytest.approx(broadcast(4096, 7).latency_ns)

    def test_gather_serialises_on_receiver(self):
        few = gather(512, num_senders=4)
        many = gather(512, num_senders=31)
        assert many.latency_ns > few.latency_ns
        assert many.bytes_moved == 512 * 31

    def test_all_reduce_is_gather_plus_broadcast(self):
        result = all_reduce(16 * 1024, num_devices=8)
        expected = (gather(16 * 1024, 7).latency_ns + broadcast(16 * 1024, 7).latency_ns)
        assert result.latency_ns == pytest.approx(expected)

    def test_all_reduce_single_device_free(self):
        assert all_reduce(1024, num_devices=1).latency_ns == 0.0

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            broadcast(1024, 0)
        with pytest.raises(ValueError):
            gather(1024, 0)

    def test_pp_transfer_negligible_vs_block_time(self):
        # The paper notes the 16 KB inter-stage transfer is negligible
        # compared to PIM latencies (hundreds of microseconds).
        result = send_receive(16 * 1024)
        assert result.latency_ns < 10_000
