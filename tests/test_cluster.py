"""Tests for multi-tenant cluster serving on one shared device pool."""

import pytest

from repro.cluster import (
    ClusterPlacer,
    ClusterScheduler,
    SlaClass,
    TenantSpec,
    min_feasible_devices,
)
from repro.cluster.placement import ReplicaSpec
from repro.core.config import CentConfig
from repro.core.results import ClusterResult, ServingResult
from repro.core.system import CentSystem
from repro.evaluation import multi_tenant_policy_study
from repro.models.config import ModelConfig
from repro.serving import ServingEngine
from repro.workloads import (
    Query,
    fixed_queries,
    poisson_arrivals,
    sharegpt_like_queries,
    with_arrivals,
)


@pytest.fixture(scope="module")
def small_model():
    return ModelConfig(name="small-llama", num_layers=8, d_model=1024, num_heads=16,
                       num_kv_heads=4, d_ff=2816, vocab_size=32000, max_context=2048)


@pytest.fixture(scope="module")
def pool_config():
    return CentConfig(num_devices=6, context_samples=2)


def make_tenant(name, count=10, rate=20.0, seed=1, model=None, **kwargs):
    queries = sharegpt_like_queries(count, seed=seed)
    trace = with_arrivals(queries, poisson_arrivals(count, rate, seed=seed))
    return TenantSpec(name, model=model, trace=trace, **kwargs)


class TestTenantSpec:
    def test_validation(self, small_model):
        with pytest.raises(ValueError):
            TenantSpec("", model=small_model, trace=fixed_queries(1))
        with pytest.raises(ValueError):
            TenantSpec("empty", model=small_model, trace=[])
        with pytest.raises(ValueError):
            TenantSpec("t", model=small_model, trace=fixed_queries(1), priority=0.0)
        with pytest.raises(ValueError):
            TenantSpec("t", model=small_model, trace=fixed_queries(1),
                       sla_latency_s=-1.0)

    def test_sla_class_defaults_and_override(self, small_model):
        base = TenantSpec("t", model=small_model, trace=fixed_queries(1),
                          sla_class=SlaClass.INTERACTIVE)
        assert base.latency_slo_s == 30.0
        override = TenantSpec("t", model=small_model, trace=fixed_queries(1),
                              sla_class=SlaClass.INTERACTIVE, sla_latency_s=5.0)
        assert override.latency_slo_s == 5.0

    def test_demand_accounting(self, small_model):
        tenant = TenantSpec("t", model=small_model,
                            trace=[Query(100, 50), Query(200, 25)])
        assert tenant.offered_prompt_tokens == 300
        assert tenant.offered_decode_tokens == 75
        assert tenant.offered_tokens == 375
        assert tenant.max_context == 225


class TestPlacement:
    def test_min_feasible_devices_monotone_entry(self, small_model):
        floor = min_feasible_devices(small_model, 6)
        assert 1 <= floor <= 6

    def test_devices_conserved_and_floored(self, small_model):
        placer = ClusterPlacer("proportional")
        heavy = make_tenant("heavy", count=40, seed=1, model=small_model)
        light = make_tenant("light", count=5, seed=2, model=small_model)
        placement = placer.place([heavy, light], 6)
        assert placement.devices_used <= 6
        assert sum(placement.tenant_devices.values()) == 6
        floor = min_feasible_devices(small_model, 6)
        assert all(d >= floor for d in placement.tenant_devices.values())

    def test_proportional_favours_heavy_tenant(self, small_model):
        placer = ClusterPlacer("proportional")
        heavy = make_tenant("heavy", count=40, seed=1, model=small_model)
        light = make_tenant("light", count=5, seed=2, model=small_model)
        placement = placer.place([heavy, light], 6)
        assert placement.tenant_devices["heavy"] > placement.tenant_devices["light"]

    def test_static_splits_evenly(self, small_model):
        placer = ClusterPlacer("static")
        a = make_tenant("a", count=40, seed=1, model=small_model)
        b = make_tenant("b", count=5, seed=2, model=small_model)
        placement = placer.place([a, b], 6)
        assert placement.tenant_devices["a"] == placement.tenant_devices["b"] == 3

    def test_sla_aware_favours_tight_slo(self, small_model):
        placer = ClusterPlacer("sla_aware")
        urgent = make_tenant("urgent", count=10, seed=1, model=small_model,
                             sla_class=SlaClass.INTERACTIVE, priority=2.0)
        lazy = make_tenant("lazy", count=10, seed=2, model=small_model,
                           sla_class=SlaClass.BATCH)
        placement = placer.place([urgent, lazy], 6)
        assert placement.tenant_devices["urgent"] > placement.tenant_devices["lazy"]

    def test_replica_sizes_respect_cap_and_floor(self, small_model):
        placer = ClusterPlacer("static", max_replica_devices=2)
        # floor 2, cap 2, allotment 5: both bounds hold and the odd device
        # stays idle instead of inflating one replica past the cap.
        assert placer._replica_sizes(5, 2) == [2, 2]
        assert placer._replica_sizes(5, 1) == [2, 2, 1]
        assert placer._replica_sizes(4, 2) == [2, 2]
        # A cap below the floor is raised to the floor (feasibility wins).
        tight = ClusterPlacer("static", max_replica_devices=1)
        assert tight._replica_sizes(5, 2) == [2, 2]

    def test_max_replica_devices_splits_allotment(self, small_model):
        placer = ClusterPlacer("static", max_replica_devices=1)
        tenant = make_tenant("t", count=10, model=small_model)
        placement = placer.place([tenant], 4)
        assert len(placement.replicas) == 4
        assert all(r.num_devices == 1 for r in placement.replicas)
        # Device ranges tile the pool without overlap.
        ranges = sorted(r.device_range for r in placement.replicas)
        assert ranges == [(0, 1), (1, 2), (2, 3), (3, 4)]

    def test_share_replicas_merges_same_model(self, small_model):
        placer = ClusterPlacer("static", share_replicas=True)
        a = make_tenant("a", count=10, seed=1, model=small_model)
        b = make_tenant("b", count=10, seed=2, model=small_model)
        placement = placer.place([a, b], 6)
        assert len(placement.replicas) == 1
        assert set(placement.replicas[0].tenant_names) == {"a", "b"}

    def test_capability_trims_to_best_count(self, small_model):
        # A capability curve that peaks below the grant: the placer must
        # leave the excess idle rather than deploy the worse mapping.
        placer = ClusterPlacer("static", capability=lambda members, d: -abs(d - 2))
        tenant = make_tenant("t", count=10, model=small_model)
        placement = placer.place([tenant], 5)
        assert placement.tenant_devices["t"] == 2
        assert placement.devices_used == 2

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            ClusterPlacer("fifo")

    def test_pool_too_small(self, small_model):
        big = ModelConfig(name="huge", num_layers=96, d_model=12288, num_heads=96,
                          num_kv_heads=96, d_ff=49152, vocab_size=50000,
                          max_context=2048)
        tenant = TenantSpec("t", model=big, trace=fixed_queries(1))
        with pytest.raises(MemoryError):
            ClusterPlacer("static").place([tenant], 1)


class TestScheduler:
    def _replicas(self, model, count):
        return tuple(
            ReplicaSpec(replica_id=i, tenant_names=("t",), model=model,
                        num_devices=1, first_device=i)
            for i in range(count)
        )

    def _placement(self, model, count):
        from repro.cluster.placement import ClusterPlacement

        return ClusterPlacement(policy="static", pool_devices=count,
                                replicas=self._replicas(model, count),
                                tenant_devices={"t": count})

    def test_round_robin_cycles(self, small_model):
        tenant = make_tenant("t", count=9, rate=100.0, model=small_model)
        plan = ClusterScheduler("round_robin").route(
            [tenant], self._placement(small_model, 3), lambda r, q: 0.1)
        sizes = sorted(len(v) for v in plan.assignments.values())
        assert sizes == [3, 3, 3]

    def test_least_outstanding_balances(self, small_model):
        tenant = make_tenant("t", count=30, rate=1000.0, model=small_model)
        plan = ClusterScheduler("least_outstanding").route(
            [tenant], self._placement(small_model, 3), lambda r, q: 0.05)
        sizes = [len(v) for v in plan.assignments.values()]
        assert sum(sizes) == 30
        assert max(sizes) - min(sizes) <= 1

    def test_admission_cap_rejects_excess(self, small_model):
        queries = [Query(64, 32, arrival_time_s=0.0) for _ in range(6)]
        tenant = TenantSpec("t", model=small_model, trace=queries, max_outstanding=2)
        plan = ClusterScheduler("least_outstanding").route(
            [tenant], self._placement(small_model, 1), lambda r, q: 10.0)
        assert plan.accounting["t"].routed == 2
        assert plan.accounting["t"].rejected == 4
        assert len(plan.rejected["t"]) == 4
        assert plan.accounting["t"].admitted_fraction == pytest.approx(2 / 6)

    def test_sla_deadline_prefers_meeting_replicas(self, small_model):
        # Replica 0 is slow (never meets the 1 s SLO), replica 1 is fast:
        # the deadline-aware router must send traffic to the fast one, while
        # round robin would alternate.
        queries = [Query(64, 32, arrival_time_s=0.01 * i) for i in range(10)]
        tenant = TenantSpec("t", model=small_model, trace=queries, sla_latency_s=1.0)
        placement = self._placement(small_model, 2)
        def estimator(r, q):
            return 5.0 if r.replica_id == 0 else 0.01

        plan = ClusterScheduler("sla_deadline").route([tenant], placement, estimator)
        assert len(plan.assignments[1]) == 10
        assert len(plan.assignments[0]) == 0

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            ClusterScheduler("random")


class TestClusterEngine:
    def test_single_tenant_matches_serving_engine(self, small_model):
        """Acceptance: a single-tenant cluster run reproduces
        ``ServingEngine.run`` on the same pool within 1%."""
        config = CentConfig(num_devices=4, context_samples=2)
        system = CentSystem(config, small_model)
        trace = with_arrivals(sharegpt_like_queries(50, seed=5),
                              poisson_arrivals(50, 40.0, seed=5))
        solo = ServingEngine(system).run(trace, sla_latency_s=2.0)
        cluster = system.serve_cluster(
            [TenantSpec("only", trace=trace, sla_latency_s=2.0)])
        tenant = cluster.tenant_results["only"]
        assert tenant.num_completed == solo.num_completed
        assert tenant.makespan_s == pytest.approx(solo.makespan_s, rel=0.01)
        assert tenant.goodput_tokens_per_s == pytest.approx(
            solo.goodput_tokens_per_s, rel=0.01)
        assert tenant.ttft.p99_s == pytest.approx(solo.ttft.p99_s, rel=0.01)
        assert tenant.query_latency.p99_s == pytest.approx(
            solo.query_latency.p99_s, rel=0.01)

    def test_two_tenants_with_default_model(self, small_model, pool_config):
        system = CentSystem(pool_config, small_model)
        result = system.serve_cluster([
            make_tenant("a", count=12, seed=1, sla_latency_s=5.0),
            make_tenant("b", count=8, seed=2, sla_latency_s=5.0),
        ])
        assert isinstance(result, ClusterResult)
        assert set(result.tenant_results) == {"a", "b"}
        for tenant_result in result.tenant_results.values():
            assert isinstance(tenant_result, ServingResult)
            assert tenant_result.num_completed == tenant_result.num_requests
        assert result.makespan_s > 0
        assert 0 < result.pool_utilization <= 1
        assert 0 < result.max_min_goodput_ratio <= 1
        assert 0 < result.jain_fairness_index <= 1

    def test_admission_cap_shows_in_tenant_result(self, small_model, pool_config):
        system = CentSystem(pool_config, small_model)
        queries = [Query(64, 256, arrival_time_s=0.0) for _ in range(8)]
        capped = TenantSpec("capped", trace=queries, max_outstanding=2)
        other = make_tenant("other", count=4, seed=3, sla_latency_s=10.0)
        result = system.serve_cluster([capped, other])
        tenant = result.tenant_results["capped"]
        assert tenant.num_requests == 8
        assert tenant.num_rejected > 0
        assert tenant.num_completed + tenant.num_rejected == 8

    def test_routed_replicas_share_one_pool(self, small_model, pool_config):
        system = CentSystem(pool_config, small_model)
        result = system.serve_cluster(
            [make_tenant("t", count=20, rate=200.0, sla_latency_s=5.0)],
            max_replica_devices=2,
            routing_policy="round_robin",
        )
        assert result.devices_used <= pool_config.num_devices
        assert result.tenant_results["t"].num_completed == 20

    def test_share_replicas_time_share_same_model(self, small_model, pool_config):
        system = CentSystem(pool_config, small_model)
        result = system.serve_cluster(
            [make_tenant("a", count=10, seed=1, sla_latency_s=10.0),
             make_tenant("b", count=10, seed=2, sla_latency_s=10.0)],
            share_replicas=True,
        )
        for tenant_result in result.tenant_results.values():
            assert tenant_result.num_completed == 10
        # Both tenants time-share every device of the merged allotment.
        assert result.tenant_devices["a"] == result.tenant_devices["b"]

    def test_duplicate_tenant_names_rejected(self, small_model, pool_config):
        system = CentSystem(pool_config, small_model)
        tenant = make_tenant("dup", count=2)
        with pytest.raises(ValueError):
            system.serve_cluster([tenant, tenant])


class TestClusterResultMetrics:
    def test_total_collapse_scores_zero_fairness(self):
        from repro.core.results import ServingResult

        empty = ServingResult(model_name="m", plan_name="p", num_requests=4,
                              num_completed=0, num_rejected=4, makespan_s=1.0,
                              sla_latency_s=1.0)
        collapsed = ClusterResult(
            placement_policy="static", routing_policy="round_robin",
            pool_devices=4, devices_used=4, makespan_s=1.0,
            tenant_results={"a": empty, "b": empty},
            tenant_devices={"a": 2, "b": 2},
            tenant_offered_decode_tokens={"a": 100, "b": 100})
        assert collapsed.max_min_goodput_ratio == 0.0
        assert collapsed.jain_fairness_index == 0.0
        assert collapsed.aggregate_goodput_tokens_per_s == 0.0


class TestMultiTenantStudy:
    def test_adaptive_placement_beats_static(self, small_model):
        """Acceptance: at least one placement policy beats the static
        partition on aggregate SLA goodput for an asymmetric tenant mix."""
        study = multi_tenant_policy_study(
            model=small_model, num_devices=6, context_samples=2,
            context_step=256, seed=3)
        rows = {row["policy"]: row for row in study["rows"]}
        assert set(rows) == {"static", "proportional", "sla_aware"}
        static = rows["static"]["aggregate_goodput_tokens_per_s"]
        adaptive = max(rows["proportional"]["aggregate_goodput_tokens_per_s"],
                       rows["sla_aware"]["aggregate_goodput_tokens_per_s"])
        assert adaptive > static
        assert study["best_policy"] != "static"
        # The overloaded static chat share violates its SLO; the winner
        # serves a strictly larger fraction of the chat demand.
        best = rows[study["best_policy"]]
        assert best["chat_goodput_fraction"] > rows["static"]["chat_goodput_fraction"]
        for row in rows.values():
            assert 0 <= row["max_min_goodput_ratio"] <= 1
            assert 0 <= row["jain_fairness_index"] <= 1
            assert 0 <= row["pool_utilization"] <= 1
