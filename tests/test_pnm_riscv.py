"""Unit tests for the RISC-V PNM cores."""

import numpy as np
import pytest

from repro.pnm.riscv import RISCV_ROUTINES, RiscvCluster, RiscvCore


class TestRoutines:
    def test_registry_contains_paper_operations(self):
        for routine in ("sqrt_inv", "inverse", "residual_add", "rope_pack",
                        "rope_unpack", "softmax_max"):
            assert routine in RISCV_ROUTINES

    def test_sqrt_inv(self):
        core = RiscvCore()
        result = core.run("sqrt_inv", np.array([4.0], dtype=np.float32))
        assert result[0] == pytest.approx(0.5, rel=1e-2)

    def test_inverse(self):
        core = RiscvCore()
        result = core.run("inverse", np.array([8.0], dtype=np.float32))
        assert result[0] == pytest.approx(0.125, rel=1e-2)

    def test_residual_add(self):
        core = RiscvCore()
        x = np.concatenate([np.ones(8), np.full(8, 2.0)]).astype(np.float32)
        assert np.allclose(core.run("residual_add", x), 3.0)

    def test_residual_add_odd_length_rejected(self):
        with pytest.raises(ValueError):
            RiscvCore().run("residual_add", np.ones(7, dtype=np.float32))

    def test_rope_pack_unpack_roundtrip(self):
        core = RiscvCore()
        head = np.arange(128, dtype=np.float32)
        packed = core.run("rope_pack", head)
        unpacked = core.run("rope_unpack", packed)
        assert np.array_equal(unpacked, head)

    def test_softmax_max(self):
        core = RiscvCore()
        scores = np.array([1.0, 5.0, -2.0, 3.0], dtype=np.float32)
        assert np.all(core.run("softmax_max", scores) == 5.0)

    def test_unknown_routine_rejected(self):
        with pytest.raises(ValueError):
            RiscvCore().run("nonexistent", np.ones(4))

    def test_executed_elements_counted(self):
        core = RiscvCore()
        core.run("generic", np.ones(10, dtype=np.float32))
        assert core.executed_elements == 10


class TestLatency:
    def test_core_latency_scales_with_elements(self):
        core = RiscvCore()
        assert core.latency_ns("residual_add", 200) == pytest.approx(
            2 * core.latency_ns("residual_add", 100))

    def test_core_latency_depends_on_routine(self):
        core = RiscvCore()
        assert core.latency_ns("sqrt_inv", 100) > core.latency_ns("residual_add", 100)

    def test_zero_elements_free(self):
        assert RiscvCore().latency_ns("generic", 0) == 0.0

    def test_cluster_distributes_work(self):
        cluster = RiscvCluster(num_cores=8)
        single = RiscvCore().latency_ns("residual_add", 8000)
        assert cluster.latency_ns("residual_add", 8000) == pytest.approx(single / 8)

    def test_cluster_functional_matches_core(self):
        cluster = RiscvCluster()
        x = np.array([16.0], dtype=np.float32)
        assert cluster.run("sqrt_inv", x)[0] == pytest.approx(0.25, rel=1e-2)

    def test_invalid_cluster(self):
        with pytest.raises(ValueError):
            RiscvCluster(num_cores=0)
