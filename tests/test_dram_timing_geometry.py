"""Unit tests for DRAM timing parameters and channel geometry."""

import dataclasses

import pytest

from repro.dram.geometry import ChannelGeometry, GDDR6_PIM_GEOMETRY
from repro.dram.timing import GDDR6_PIM_TIMINGS, TimingParameters


class TestTimingParameters:
    def test_paper_table4_values(self):
        t = GDDR6_PIM_TIMINGS
        assert t.t_rcd_rd == 18.0
        assert t.t_ras == 27.0
        assert t.t_cl == 25.0
        assert t.t_rcd_wr == 14.0
        assert t.t_ccd_s == 1.0
        assert t.t_rp == 16.0

    def test_row_cycle_is_ras_plus_rp(self):
        assert GDDR6_PIM_TIMINGS.t_rc == pytest.approx(43.0)

    def test_pu_clock_is_one_ghz(self):
        assert GDDR6_PIM_TIMINGS.pu_clock_ghz == pytest.approx(1.0)

    def test_negative_parameter_rejected(self):
        with pytest.raises(ValueError):
            TimingParameters(t_rcd_rd=-1.0)

    def test_ccd_l_must_cover_ccd_s(self):
        with pytest.raises(ValueError):
            TimingParameters(t_ccd_s=2.0, t_ccd_l=1.0)

    def test_ras_must_cover_rcd(self):
        with pytest.raises(ValueError):
            TimingParameters(t_rcd_rd=30.0, t_ras=20.0)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            GDDR6_PIM_TIMINGS.t_cl = 10.0


class TestChannelGeometry:
    def test_sixteen_banks(self):
        assert GDDR6_PIM_GEOMETRY.num_banks == 16

    def test_channel_capacity_is_512mb(self):
        assert GDDR6_PIM_GEOMETRY.channel_capacity_bytes == 512 * 1024 * 1024

    def test_columns_per_row(self):
        # 2 KB row / 32 B access = 64 column accesses per row.
        assert GDDR6_PIM_GEOMETRY.columns_per_row == 64

    def test_elements_per_access(self):
        assert GDDR6_PIM_GEOMETRY.elements_per_access == 16

    def test_global_buffer_slots(self):
        assert GDDR6_PIM_GEOMETRY.global_buffer_slots == 64

    def test_rows_per_bank(self):
        assert GDDR6_PIM_GEOMETRY.rows_per_bank == 16384

    def test_sixteen_gigabit_module_doubles_capacity(self):
        geometry = ChannelGeometry(bank_capacity_bytes=64 * 1024 * 1024)
        assert geometry.channel_capacity_bytes == 2 * GDDR6_PIM_GEOMETRY.channel_capacity_bytes

    def test_invalid_bank_count_rejected(self):
        with pytest.raises(ValueError):
            ChannelGeometry(num_bank_groups=0)

    def test_capacity_must_be_whole_rows(self):
        with pytest.raises(ValueError):
            ChannelGeometry(bank_capacity_bytes=1000, row_size_bytes=2048)

    def test_access_granularity_holds_bf16(self):
        with pytest.raises(ValueError):
            ChannelGeometry(access_granularity_bits=100)
