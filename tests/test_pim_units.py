"""Unit tests for the near-bank PU and the global buffer."""

import numpy as np
import pytest

from repro.numerics.bf16 import bf16_quantize
from repro.numerics.lut import AF_TABLE_IDS
from repro.pim.global_buffer import GlobalBuffer
from repro.pim.pu import MAC_LANES, NUM_ACCUMULATION_REGISTERS, ProcessingUnit


class TestProcessingUnit:
    def test_register_file_size(self):
        pu = ProcessingUnit(bank_index=0)
        assert len(pu.registers) == NUM_ACCUMULATION_REGISTERS == 32

    def test_mac_accumulates_dot_product(self):
        pu = ProcessingUnit(bank_index=0)
        a = np.arange(16, dtype=np.float32)
        b = np.ones(16, dtype=np.float32)
        pu.write_bias(0.0, 0)
        pu.mac(a, b, reg_id=0)
        assert pu.read_register(0) == pytest.approx(float(np.sum(a)), rel=1e-2)

    def test_mac_counts_operations(self):
        pu = ProcessingUnit(bank_index=0)
        for _ in range(5):
            pu.mac(np.ones(16, dtype=np.float32), np.ones(16, dtype=np.float32), 1)
        assert pu.mac_count == 5
        assert pu.read_register(1) == pytest.approx(80.0)

    def test_write_bias_specific_register(self):
        pu = ProcessingUnit(bank_index=0)
        pu.write_bias(3.0, reg_id=7)
        assert pu.read_register(7) == pytest.approx(3.0)
        assert pu.read_register(6) == 0.0

    def test_write_bias_all_registers(self):
        pu = ProcessingUnit(bank_index=0)
        pu.write_bias(1.5)
        assert all(pu.read_register(i) == pytest.approx(1.5) for i in range(32))

    def test_wrong_operand_width_rejected(self):
        pu = ProcessingUnit(bank_index=0)
        with pytest.raises(ValueError):
            pu.mac(np.ones(8, dtype=np.float32), np.ones(16, dtype=np.float32), 0)

    def test_register_bounds_checked(self):
        pu = ProcessingUnit(bank_index=0)
        with pytest.raises(ValueError):
            pu.read_register(32)
        with pytest.raises(ValueError):
            pu.write_bias(0.0, reg_id=-1)

    def test_activation_function_sigmoid(self):
        pu = ProcessingUnit(bank_index=0)
        pu.write_bias(0.0, reg_id=0)
        result = pu.apply_activation(AF_TABLE_IDS["sigmoid"], reg_id=0)
        assert result == pytest.approx(0.5, abs=0.02)

    def test_unknown_activation_rejected(self):
        pu = ProcessingUnit(bank_index=0)
        with pytest.raises(ValueError):
            pu.apply_activation(99, reg_id=0)

    def test_results_are_bf16_quantized(self):
        pu = ProcessingUnit(bank_index=0)
        a = np.full(16, 1.001, dtype=np.float32)
        b = np.full(16, 1.0, dtype=np.float32)
        pu.mac(a, b, 0)
        value = pu.read_register(0)
        assert value == pytest.approx(float(bf16_quantize(np.float32(value))))

    def test_lanes_constant(self):
        assert MAC_LANES == 16


class TestGlobalBuffer:
    def test_capacity_and_slots(self):
        gb = GlobalBuffer()
        assert gb.capacity_bytes == 2048
        assert gb.num_slots == 64
        assert gb.elements_per_slot == 16

    def test_slot_roundtrip(self):
        gb = GlobalBuffer()
        values = np.arange(16, dtype=np.float32)
        gb.write_slot(3, values)
        assert np.array_equal(gb.read_slot(3), values)

    def test_write_quantizes_to_bf16(self):
        gb = GlobalBuffer()
        values = np.full(16, 1.0009765625, dtype=np.float32)
        gb.write_slot(0, values)
        assert np.array_equal(gb.read_slot(0), bf16_quantize(values))

    def test_vector_roundtrip_with_padding(self):
        gb = GlobalBuffer()
        vector = np.arange(40, dtype=np.float32)
        slots = gb.write_vector(0, vector)
        assert slots == 3
        assert np.array_equal(gb.read_vector(0, 40), vector)

    def test_vector_overflow_rejected(self):
        gb = GlobalBuffer()
        with pytest.raises(ValueError):
            gb.write_vector(0, np.zeros(2048, dtype=np.float32))

    def test_slot_bounds_checked(self):
        gb = GlobalBuffer()
        with pytest.raises(ValueError):
            gb.read_slot(64)

    def test_wrong_slot_shape_rejected(self):
        gb = GlobalBuffer()
        with pytest.raises(ValueError):
            gb.write_slot(0, np.zeros(8, dtype=np.float32))

    def test_read_is_a_copy(self):
        gb = GlobalBuffer()
        gb.write_slot(0, np.ones(16, dtype=np.float32))
        view = gb.read_slot(0)
        view[:] = 99.0
        assert gb.read_slot(0)[0] == 1.0

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            GlobalBuffer(capacity_bytes=0)
        with pytest.raises(ValueError):
            GlobalBuffer(slot_bits=100)
