"""Unit tests for the CENT configuration and result containers."""

import pytest

from repro.core.config import CentConfig
from repro.core.results import InferenceResult, LatencyBreakdown


class TestCentConfig:
    def test_paper_defaults(self):
        config = CentConfig()
        assert config.num_devices == 32
        assert config.total_channels == 1024
        assert config.memory_capacity_bytes == 512 * 1024**3

    def test_peak_rates_match_table4(self):
        config = CentConfig()
        # Table 4: 512 TB/s internal bandwidth, 512 TFLOPS PIM, 96 TFLOPS PNM.
        assert config.peak_internal_bandwidth_tbps == pytest.approx(524.3, rel=0.05)
        assert config.peak_pim_tflops == pytest.approx(524.3, rel=0.05)
        assert config.peak_pnm_tflops == pytest.approx(98.3, rel=0.1)

    def test_scaled_copy(self):
        config = CentConfig(num_devices=32, context_samples=3)
        scaled = config.scaled(8)
        assert scaled.num_devices == 8
        assert scaled.context_samples == 3
        assert scaled.timing is config.timing

    def test_validation(self):
        with pytest.raises(ValueError):
            CentConfig(num_devices=0)
        with pytest.raises(ValueError):
            CentConfig(context_samples=1)
        with pytest.raises(ValueError):
            CentConfig(kv_occupancy=0.0)
        with pytest.raises(ValueError):
            CentConfig(device_bus_gbps=0.0)

    def test_kv_occupancy_bounds_and_message(self):
        # The (0, 1] validation must reject both ends and name the value,
        # so a sweep that mis-scales the knob fails with context.
        for bad in (0.0, -0.25, 1.5, float("nan")):
            with pytest.raises(ValueError, match="kv_occupancy") as excinfo:
                CentConfig(kv_occupancy=bad)
            assert "(0, 1]" in str(excinfo.value)
            assert repr(bad) in str(excinfo.value)
        # Both boundaries of the valid range construct fine.
        assert CentConfig(kv_occupancy=1.0).kv_occupancy == 1.0
        assert CentConfig(kv_occupancy=0.05).kv_occupancy == 0.05


class TestLatencyBreakdown:
    def test_total_and_fractions(self):
        breakdown = LatencyBreakdown(pim_ns=80, pnm_ns=10, cxl_ns=5, host_ns=5)
        assert breakdown.total_ns == 100
        fractions = breakdown.fractions()
        assert fractions["pim"] == pytest.approx(0.8)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_scaled_and_plus(self):
        a = LatencyBreakdown(pim_ns=10, pnm_ns=2, cxl_ns=1, host_ns=0)
        b = a.scaled(3.0).plus(a)
        assert b.pim_ns == pytest.approx(40)
        assert b.total_ns == pytest.approx(4 * a.total_ns)

    def test_zero_breakdown_fractions(self):
        assert LatencyBreakdown().fractions()["pim"] == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyBreakdown(pim_ns=-1)


class TestInferenceResult:
    def _result(self) -> InferenceResult:
        return InferenceResult(
            model_name="m", plan_name="PP=4", prompt_tokens=100, decode_tokens=400,
            queries_in_flight=4, prefill_latency_s=1.0, decode_latency_s=9.0,
            prefill_throughput_tokens_per_s=400.0, decode_throughput_tokens_per_s=200.0,
        )

    def test_query_latency(self):
        assert self._result().query_latency_s == pytest.approx(10.0)

    def test_token_latency(self):
        assert self._result().token_latency_s == pytest.approx(9.0 / 400)

    def test_end_to_end_throughput(self):
        result = self._result()
        assert result.end_to_end_throughput_tokens_per_s == pytest.approx(4 * 400 / 10.0)

    def test_tokens_per_joule(self):
        result = self._result()
        assert result.tokens_per_joule == 0.0
        result.energy_per_token_j = 0.5
        assert result.tokens_per_joule == pytest.approx(2.0)

    def test_tokens_per_dollar(self):
        result = self._result()
        tokens_per_hour = result.end_to_end_throughput_tokens_per_s * 3600
        assert result.tokens_per_dollar(2.0) == pytest.approx(tokens_per_hour / 2.0)
        with pytest.raises(ValueError):
            result.tokens_per_dollar(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            InferenceResult("m", "p", prompt_tokens=-1, decode_tokens=1,
                            queries_in_flight=1, prefill_latency_s=0, decode_latency_s=0,
                            prefill_throughput_tokens_per_s=0,
                            decode_throughput_tokens_per_s=0)
