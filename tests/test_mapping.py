"""Unit tests for parallelisation plans, placement and the planner."""

import pytest

from repro.dram.geometry import ChannelGeometry
from repro.mapping.parallelism import (
    DataParallel,
    HybridParallel,
    ParallelismPlan,
    PipelineParallel,
    TensorParallel,
)
from repro.mapping.placement import placement_for, validate_capacity
from repro.mapping.planner import plan_for_latency, plan_for_throughput, scalability_plans
from repro.models.config import LLAMA2_7B, LLAMA2_13B, LLAMA2_70B


class TestParallelismPlans:
    def test_pipeline_parallel_batch_equals_layers(self):
        plan = PipelineParallel(32, LLAMA2_70B)
        assert plan.pp_stages == 80
        assert plan.queries_in_flight == 80
        assert not plan.is_tensor_parallel

    def test_paper_channel_assignment_for_70b(self):
        # 80 blocks over 32 devices -> 3 blocks per device, 27 devices used,
        # 10 channels per block (the paper's configuration).
        plan = PipelineParallel(32, LLAMA2_70B)
        assert plan.blocks_per_device(LLAMA2_70B) == 3
        assert plan.devices_used(LLAMA2_70B) == 27
        assert plan.fc_channels_per_block(LLAMA2_70B) == 10

    def test_tensor_parallel_uses_all_channels(self):
        plan = TensorParallel(32)
        assert plan.is_tensor_parallel
        assert plan.queries_in_flight == 1
        assert plan.fc_channels_per_block(LLAMA2_70B) == 32 * 32
        # Attention is confined to the master device.
        assert plan.attention_channels_per_block(LLAMA2_70B) == 32

    def test_hybrid_plan(self):
        plan = HybridParallel(32, tp_devices=8)
        assert plan.pp_stages == 4
        assert plan.tp_devices == 8
        assert plan.blocks_per_stage(LLAMA2_70B) == 20

    def test_hybrid_requires_divisibility(self):
        with pytest.raises(ValueError):
            HybridParallel(32, tp_devices=5)

    def test_data_parallel_replicas(self):
        plan = DataParallel(16, LLAMA2_7B, dp_replicas=2)
        assert plan.dp_replicas == 2
        assert plan.devices_per_replica == 8
        assert plan.queries_in_flight == 2 * LLAMA2_7B.num_layers

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            ParallelismPlan("bad", num_devices=2, tp_devices=4)
        with pytest.raises(ValueError):
            ParallelismPlan("bad", num_devices=0)

    def test_cxl_traffic_pp_is_peer_to_peer(self):
        plan = PipelineParallel(32, LLAMA2_70B)
        transfers = plan.cxl_transfers_per_block(LLAMA2_70B)
        assert all(primitive == "send_receive" for primitive, _, _ in transfers)

    def test_cxl_traffic_tp_has_broadcast_and_gather(self):
        plan = TensorParallel(32)
        transfers = plan.cxl_transfers_per_block(LLAMA2_70B)
        primitives = {primitive for primitive, _, _ in transfers}
        assert primitives == {"broadcast", "gather"}
        total_bytes = sum(num_bytes for _, num_bytes, _ in transfers)
        # The paper reports ~135 KB of CXL traffic per Llama2-70B block.
        assert 64 * 1024 < total_bytes < 256 * 1024

    def test_cxl_traffic_hybrid_uses_multicast(self):
        plan = HybridParallel(32, tp_devices=8)
        primitives = {primitive for primitive, _, _ in plan.cxl_transfers_per_block(LLAMA2_70B)}
        assert "multicast" in primitives


class TestPlacement:
    def test_validate_accepts_paper_configurations(self):
        validate_capacity(LLAMA2_7B, PipelineParallel(8, LLAMA2_7B))
        validate_capacity(LLAMA2_13B, PipelineParallel(20, LLAMA2_13B))
        validate_capacity(LLAMA2_70B, PipelineParallel(32, LLAMA2_70B))
        validate_capacity(LLAMA2_70B, TensorParallel(32))

    def test_validate_rejects_too_few_devices(self):
        with pytest.raises(MemoryError):
            validate_capacity(LLAMA2_70B, PipelineParallel(8, LLAMA2_70B))

    def test_kv_occupancy_relaxes_capacity(self):
        plan = PipelineParallel(8, LLAMA2_13B)
        with pytest.raises(MemoryError):
            validate_capacity(LLAMA2_13B, plan, context_length=4096)
        validate_capacity(LLAMA2_13B, plan, context_length=4096, kv_occupancy=0.3)

    def test_larger_banks_increase_capacity(self):
        plan = PipelineParallel(12, LLAMA2_70B)
        with pytest.raises(MemoryError):
            validate_capacity(LLAMA2_70B, plan, context_length=4096)
        big_banks = ChannelGeometry(bank_capacity_bytes=64 * 1024 * 1024)
        validate_capacity(LLAMA2_70B, plan, context_length=4096, geometry=big_banks)

    def test_placement_covers_every_block(self):
        plan = PipelineParallel(32, LLAMA2_70B)
        placements = placement_for(LLAMA2_70B, plan)
        assert len(placements) == LLAMA2_70B.num_layers
        assert placements[0].device_index == 0
        assert placements[-1].device_index == plan.devices_used(LLAMA2_70B) - 1
        assert all(p.total_bytes > 0 for p in placements)

    def test_tensor_parallel_placement_uses_stage_masters(self):
        plan = TensorParallel(4)
        placements = placement_for(LLAMA2_7B, plan)
        assert {p.device_index for p in placements} == {0}
        assert placements[0].fc_channels == 4 * 32


class TestPlanner:
    def test_throughput_plan_matches_paper_deployments(self):
        assert plan_for_throughput(LLAMA2_7B, 8, context_length=4096).dp_replicas == 1
        assert plan_for_throughput(LLAMA2_70B, 32, context_length=4096).pp_stages == 80

    def test_throughput_plan_uses_dp_at_scale(self):
        plan = plan_for_throughput(LLAMA2_70B, 128, context_length=4096)
        assert plan.dp_replicas >= 2

    def test_throughput_plan_rejects_undersized_system(self):
        with pytest.raises(MemoryError):
            plan_for_throughput(LLAMA2_70B, 4, context_length=4096)

    def test_latency_plan_is_tensor_parallel(self):
        plan = plan_for_latency(LLAMA2_70B, 32)
        assert plan.is_tensor_parallel
        assert plan.tp_devices == 32

    def test_scalability_plans_cover_counts(self):
        plans = scalability_plans(LLAMA2_70B, [32, 64])
        assert len(plans) == 2
        assert plans[0].num_devices == 32
        assert plans[1].num_devices == 64
