"""Unit tests for the CENT ISA: instructions, programs and trace encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import (
    ActivationFunction,
    BroadcastCxl,
    ElementwiseMul,
    Exponent,
    MacAllBank,
    Opcode,
    Program,
    ReadMacRegister,
    ReadSingleBank,
    RecvCxl,
    RiscvOp,
    SendCxl,
    WriteBias,
    WriteGlobalBuffer,
    WriteSingleBank,
    decode_instruction,
    decode_program,
    encode_instruction,
    encode_program,
)


class TestOpcodes:
    def test_classification_is_partition(self):
        for opcode in Opcode:
            kinds = [opcode.is_pim, opcode.is_pnm, opcode.is_cxl]
            assert sum(kinds) == 1, f"{opcode} must belong to exactly one class"

    def test_arithmetic_set(self):
        assert Opcode.MAC_ABK.is_arithmetic
        assert Opcode.EXP.is_arithmetic
        assert not Opcode.SEND_CXL.is_arithmetic

    def test_table2_and_table3_covered(self):
        names = {opcode.value for opcode in Opcode}
        assert {"MAC_ABK", "EW_MUL", "AF", "EXP", "RED", "ACC", "RISCV",
                "SEND_CXL", "RECV_CXL", "BCAST_CXL", "WR_SBK", "RD_SBK",
                "WR_ABK", "COPY_BKGB", "COPY_GBBK", "WR_BIAS", "RD_MAC",
                "WR_GB"} == names


class TestInstructionValidation:
    def test_mac_requires_positive_op_size(self):
        with pytest.raises(ValueError):
            MacAllBank(ch_mask=1, op_size=0)

    def test_mac_register_bounds(self):
        with pytest.raises(ValueError):
            MacAllBank(ch_mask=1, op_size=1, reg_id=32)

    def test_channel_mask_required(self):
        with pytest.raises(ValueError):
            ElementwiseMul(ch_mask=0, op_size=1)

    def test_riscv_names_routine(self):
        instruction = RiscvOp(op_size=4, routine="sqrt_inv")
        assert instruction.routine == "sqrt_inv"

    def test_send_device_id_non_negative(self):
        with pytest.raises(ValueError):
            SendCxl(device_id=-1)

    def test_broadcast_fanout_positive(self):
        with pytest.raises(ValueError):
            BroadcastCxl(device_count=0)

    def test_micro_op_count_defaults(self):
        assert MacAllBank(ch_mask=1, op_size=7).micro_op_count == 7
        assert WriteBias(ch_mask=1).micro_op_count == 1


class TestProgram:
    def _sample_program(self) -> Program:
        program = Program(label="sample")
        program.append(WriteGlobalBuffer(ch_mask=3, op_size=8, column=0, rs=0))
        program.append(WriteBias(ch_mask=3, rs=0))
        program.append(MacAllBank(ch_mask=3, op_size=64, row=1, column=0, reg_id=0))
        program.append(ReadMacRegister(ch_mask=3, rd=1, reg_id=0))
        program.append(Exponent(op_size=4, rd=2, rs=1))
        return program

    def test_counts(self):
        program = self._sample_program()
        assert len(program) == 5
        assert program.stats.total_instructions == 5
        assert program.stats.count(Opcode.MAC_ABK) == 1
        assert program.stats.micro_ops(Opcode.MAC_ABK) == 64

    def test_mac_fraction(self):
        program = self._sample_program()
        assert 0 < program.stats.mac_fraction() < 1

    def test_concat(self):
        program = self._sample_program()
        combined = program.concat(program)
        assert len(combined) == 10

    def test_filter(self):
        program = self._sample_program()
        pim_only = program.filter(lambda inst: inst.opcode.is_pim)
        assert len(pim_only) == 4

    def test_indexing_and_iteration(self):
        program = self._sample_program()
        assert program[0].opcode is Opcode.WR_GB
        assert [inst.opcode for inst in program][-1] is Opcode.EXP

    def test_type_checked(self):
        program = Program()
        with pytest.raises(TypeError):
            program.append("MAC_ABK")


class TestEncoding:
    def test_instruction_roundtrip(self):
        original = MacAllBank(ch_mask=255, op_size=64, row=12, column=8, reg_id=3)
        decoded = decode_instruction(encode_instruction(original))
        assert decoded == original

    def test_program_roundtrip(self):
        program = Program(label="trace-test")
        program.append(WriteSingleBank(ch_id=1, op_size=2, bank=3, row=4, column=5, rs=6))
        program.append(ReadSingleBank(ch_id=1, op_size=2, bank=3, row=4, column=7, rd=8))
        program.append(RecvCxl(num_slots=4))
        program.append(ActivationFunction(ch_mask=1, af_id=2, reg_id=3))
        decoded = decode_program(encode_program(program))
        assert decoded.label == "trace-test"
        assert len(decoded) == len(program)
        assert decoded.instructions == program.instructions

    def test_riscv_routine_survives_roundtrip(self):
        original = RiscvOp(op_size=16, pc=128, rd=1, rs=2, routine="rope_pack")
        assert decode_instruction(encode_instruction(original)) == original

    def test_unknown_opcode_rejected(self):
        with pytest.raises(ValueError):
            decode_instruction("NOT_AN_OPCODE op_size=1")

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            decode_instruction("MAC_ABK bogus=1")

    def test_malformed_token_rejected(self):
        with pytest.raises(ValueError):
            decode_instruction("MAC_ABK op_size")

    def test_empty_line_rejected(self):
        with pytest.raises(ValueError):
            decode_instruction("")

    @given(
        ch_mask=st.integers(min_value=1, max_value=2**32 - 1),
        op_size=st.integers(min_value=1, max_value=4096),
        row=st.integers(min_value=0, max_value=16383),
        column=st.integers(min_value=0, max_value=63),
        reg_id=st.integers(min_value=0, max_value=31),
    )
    def test_mac_roundtrip_property(self, ch_mask, op_size, row, column, reg_id):
        original = MacAllBank(ch_mask=ch_mask, op_size=op_size, row=row,
                              column=column, reg_id=reg_id)
        assert decode_instruction(encode_instruction(original)) == original
